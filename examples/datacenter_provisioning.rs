//! Datacenter provisioning monitoring with runtime task churn.
//!
//! Emulates the paper's §1 provisioning scenario: performance
//! attributes (CPU, memory, packet rates) are collected from
//! application-hosting servers, while operators keep adding, modifying
//! and withdrawing monitoring tasks. The ADAPTIVE planner keeps the
//! topology near-optimal without re-planning the world on every
//! change.
//!
//! ```sh
//! cargo run --example datacenter_provisioning
//! ```

// Examples favor terse unwraps over error plumbing; a panic here is a
// broken example, not a library error path.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use rand::rngs::SmallRng;
use rand::SeedableRng;
use remo::prelude::*;
use remo_workloads::churn::churn_pairs;

fn main() -> Result<(), PlanError> {
    let nodes = 60;
    let caps = CapacityMap::uniform(nodes, 22.0, 300.0)?;
    let cost = CostModel::new(2.0, 1.0)?;

    // Initial demand: 40 small provisioning tasks over 30 metric types.
    let scenario = Scenario::with_taskgen(
        &ScenarioConfig {
            nodes,
            attrs: 30,
            tasks: 40,
            node_budget: 22.0,
            collector_budget: 300.0,
            c_over_a: 2.0,
            seed: 42,
        },
        &TaskGenConfig::small_scale(nodes, 30),
    );

    let mut adaptive = AdaptivePlanner::new(
        Planner::default(),
        AdaptScheme::Adaptive,
        scenario.pairs.clone(),
        caps,
        cost,
        AttrCatalog::new(),
    );
    println!(
        "initial plan: {} trees, {:.1}% coverage",
        adaptive.plan().trees().len(),
        adaptive.plan().coverage() * 100.0
    );

    // Ten batches of churn: 5% of nodes swap half their attributes.
    let mut rng = SmallRng::seed_from_u64(7);
    let churn_cfg = ChurnConfig {
        node_fraction: 0.05,
        attr_fraction: 0.5,
        attr_universe: 30,
    };
    let mut pairs = scenario.pairs.clone();
    for batch in 1..=10u64 {
        pairs = churn_pairs(&pairs, &churn_cfg, &mut rng);
        let report = adaptive.update(pairs.clone(), batch * 10);
        println!(
            "batch {batch:>2}: rebuilt {} trees, {} search ops ({} throttled), \
             {} adaptation messages, planned in {:?} → coverage {:.1}%",
            report.trees_rebuilt,
            report.ops_applied,
            report.ops_throttled,
            report.adaptation_messages,
            report.planning_time,
            adaptive.plan().coverage() * 100.0
        );
    }

    println!(
        "final topology: {} trees over {} pairs",
        adaptive.plan().trees().len(),
        adaptive.plan().demanded_pairs()
    );
    Ok(())
}
