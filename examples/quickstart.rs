//! Quickstart: submit monitoring tasks, plan a resource-aware
//! monitoring forest, and inspect the result.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

// Examples favor terse unwraps over error plumbing; a panic here is a
// broken example, not a library error path.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use remo::prelude::*;

fn main() -> Result<(), PlanError> {
    // A 24-node cluster. Each node can spend 60 capacity units per
    // epoch on monitoring; the central collector can spend 400.
    let caps = CapacityMap::uniform(24, 60.0, 400.0)?;

    // Message cost model: sending/receiving a message with x values
    // costs C + a·x = 6 + 1·x (per-message overhead is what makes
    // naive topologies collapse).
    let cost = CostModel::new(6.0, 1.0)?;

    // Three overlapping monitoring tasks, the way operators actually
    // submit them: one dashboard task over everything, two debugging
    // tasks over subsets.
    let mut tasks = TaskManager::new();
    tasks.add(MonitoringTask::new(
        TaskId(0),
        [AttrId(0), AttrId(1)], // cpu, memory
        (0..24).map(NodeId),
    ))?;
    tasks.add(MonitoringTask::new(
        TaskId(1),
        [AttrId(1), AttrId(2), AttrId(3)], // memory, rx_rate, tx_rate
        (0..12).map(NodeId),
    ))?;
    tasks.add(MonitoringTask::new(
        TaskId(2),
        [AttrId(0), AttrId(3)],
        (8..24).map(NodeId),
    ))?;

    // Deduplicate into node-attribute pairs and plan.
    let pairs = tasks.pairs();
    println!(
        "{} tasks → {} deduplicated node-attribute pairs",
        tasks.len(),
        pairs.len()
    );

    let planner = Planner::new(PlannerConfig::default());
    let plan = planner.plan(&pairs, &caps, cost);

    println!(
        "planned {} trees, collected {}/{} pairs ({:.1}% coverage)",
        plan.trees().len(),
        plan.collected_pairs(),
        plan.demanded_pairs(),
        plan.coverage() * 100.0
    );
    println!("attribute partition: {}", plan.partition());

    for (i, (set, tree)) in plan.partition().sets().iter().zip(plan.trees()).enumerate() {
        let attrs: Vec<String> = set.iter().map(|a| a.to_string()).collect();
        match &tree.tree {
            Some(t) => println!(
                "  tree {i}: attrs [{}] — {} nodes, height {}, root {}",
                attrs.join(" "),
                t.len(),
                t.height(),
                t.root()
            ),
            None => println!("  tree {i}: attrs [{}] — unplaceable", attrs.join(" ")),
        }
    }

    // Compare against the two classical baselines.
    let catalog = AttrCatalog::new();
    for (name, scheme) in [
        ("SINGLETON-SET", PartitionScheme::SingletonSet),
        ("ONE-SET", PartitionScheme::OneSet),
        ("REMO", PartitionScheme::Remo),
    ] {
        let p = scheme.plan(&planner, &pairs, &caps, cost, &catalog);
        println!(
            "{name:>14}: {:>3} trees, {:>5.1}% coverage, volume {:.0}",
            p.trees().len(),
            p.coverage() * 100.0,
            p.message_volume()
        );
    }
    Ok(())
}
