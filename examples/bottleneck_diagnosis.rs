//! Bottleneck diagnosis in a stream-processing dataflow.
//!
//! The paper's §1 motivating loop, end to end: a dashboard task watches
//! every operator's buffer occupancy; when the result processor flags a
//! hot buffer, a *diagnosis task* covering the suspect operator's
//! upstream path is submitted on the fly, the ADAPTIVE planner patches
//! the monitoring topology, and the collector's task-scoped snapshot
//! answers the question.
//!
//! ```sh
//! cargo run --example bottleneck_diagnosis
//! ```

// Examples favor terse unwraps over error plumbing; a panic here is a
// broken example, not a library error path.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use remo::prelude::*;
use remo_core::adapt::{AdaptScheme, AdaptivePlanner};
use remo_core::TaskId;
use remo_sim::alerts::{AlertRule, ResultProcessor};
use remo_sim::query::snapshot_for_pairs;
use remo_sim::{SimSetup, Simulator};
use remo_workloads::{DataflowApp, DataflowConfig, OperatorKind};

fn main() -> Result<(), PlanError> {
    // A 5-layer dataflow over 30 nodes.
    let app = DataflowApp::generate(&DataflowConfig {
        nodes: 30,
        layers: 5,
        operators_per_layer: 6,
        seed: 11,
    });
    let caps = CapacityMap::uniform(app.nodes(), 60.0, 600.0)?;
    let cost = CostModel::new(4.0, 1.0)?;

    // Dashboard: every operator's buffer_occupancy (metric index 2).
    let mut tasks = TaskManager::new();
    tasks.add(app.dashboard_task(TaskId(0), 2))?;
    let pairs = app.observable_pairs(&tasks.iter().cloned().collect::<Vec<_>>());

    let mut adaptive = AdaptivePlanner::new(
        Planner::default(),
        AdaptScheme::Adaptive,
        pairs.clone(),
        caps.clone(),
        cost,
        app.catalog().clone(),
    );
    println!(
        "dashboard deployed: {} trees covering {} pairs",
        adaptive.plan().trees().len(),
        adaptive.plan().collected_pairs()
    );

    let mut sim = Simulator::new(SimSetup {
        plan: adaptive.plan(),
        planned_pairs: &pairs,
        metric_pairs: None,
        caps: &caps,
        cost,
        catalog: app.catalog(),
        aliases: Default::default(),
        config: SimConfig::default(),
    });

    // Make one mid-layer operator's buffer run hot.
    let suspect = app
        .operators()
        .iter()
        .find(|op| op.kind == OperatorKind::Aggregate || op.kind == OperatorKind::Join)
        .expect("dataflow has a middle layer");
    let hot_attr = suspect.metrics[2];
    sim.set_model(suspect.node, hot_attr, ValueModel::Constant(97.0));

    // Result processor: buffer occupancy above 90% pages us.
    let mut rp = ResultProcessor::new();
    rp.add_rule(AlertRule::above("buffer-hot", hot_attr, 90.0).with_max_staleness(10));

    sim.run(12);
    let fired = rp.evaluate(sim.collector(), pairs.iter(), sim.epoch());
    println!("epoch {}: {} alert(s)", sim.epoch(), fired);
    let alert = rp.alerts().first().expect("the hot buffer must page");
    println!(
        "  {} on {} ({}): value {:.1}",
        alert.rule, alert.node, alert.attr, alert.value
    );

    // Diagnose: monitor the full upstream path of the suspect.
    let diag = app.diagnosis_task(TaskId(1), suspect.id);
    println!(
        "diagnosis task: {} attrs on {} nodes (upstream closure of operator {:?})",
        diag.attrs().len(),
        diag.nodes().len(),
        suspect.id
    );
    tasks.add(diag.clone())?;
    let new_pairs = app.observable_pairs(&tasks.iter().cloned().collect::<Vec<_>>());
    let report = adaptive.update(new_pairs.clone(), sim.epoch());
    let control = sim.apply_plan(adaptive.plan(), &new_pairs);
    println!(
        "topology adapted: {} trees rebuilt, {} control messages, planned in {:?}",
        report.trees_rebuilt, control, report.planning_time
    );

    // Collect for a while, then read the diagnosis snapshot over the
    // pairs the application can actually observe (the task's raw
    // node × attr cross product includes pairs no node produces).
    sim.run(15);
    let observable = app.observable_pairs(std::slice::from_ref(&diag));
    let snap = snapshot_for_pairs(sim.collector(), observable.iter(), sim.epoch());
    println!(
        "diagnosis snapshot: {:.0}% complete, max staleness {:?} epochs, mean value {:.1}",
        snap.completeness() * 100.0,
        snap.max_staleness(),
        snap.mean().unwrap_or(0.0)
    );
    let (pair, v) = snap.max_pair().expect("snapshot has data");
    println!(
        "  hottest upstream reading: {}/{} = {:.1}",
        pair.0, pair.1, v.value
    );
    assert!(
        snap.completeness() > 0.9,
        "diagnosis must actually observe the path"
    );
    Ok(())
}
