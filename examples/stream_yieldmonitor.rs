//! A System-S-like streaming deployment monitored end to end.
//!
//! Recreates the shape of the paper's real-system experiment: a
//! YieldMonitor-style streaming application on many nodes with 30–50
//! observable attributes each, ~1 monitoring task per node, and the
//! percentage error of collected values measured at the collector —
//! comparing REMO against the SINGLETON-SET and ONE-SET baselines.
//!
//! ```sh
//! cargo run --release --example stream_yieldmonitor
//! ```

// Examples favor terse unwraps over error plumbing; a panic here is a
// broken example, not a library error path.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use rand::rngs::SmallRng;
use rand::SeedableRng;
use remo::prelude::*;
use remo_core::TaskId;
use std::collections::BTreeMap;

fn main() -> Result<(), PlanError> {
    let nodes = 80; // scaled-down BlueGene rack; --release handles 200 too
    let app = AppModel::generate(&AppModelConfig {
        nodes,
        attrs_per_node: (30, 50),
        attr_types: 80,
        seed: 2009,
        ..AppModelConfig::default()
    });

    // About one monitoring task per node (paper: "about as many
    // monitoring tasks" as nodes).
    let gen = TaskGenConfig::small_scale(nodes, 80);
    let mut rng = SmallRng::seed_from_u64(5);
    let tasks = gen.generate(nodes, TaskId(0), &mut rng);
    let pairs = app.observable_pairs(&tasks);
    println!(
        "{} tasks over {} nodes → {} observable node-attribute pairs",
        tasks.len(),
        nodes,
        pairs.len()
    );

    let caps = CapacityMap::uniform(nodes, 40.0, 500.0)?;
    let cost = CostModel::new(2.0, 1.0)?;
    let planner = Planner::default();

    let mut results: BTreeMap<&str, (f64, f64)> = BTreeMap::new();
    for (name, scheme) in [
        ("SINGLETON-SET", PartitionScheme::SingletonSet),
        ("ONE-SET", PartitionScheme::OneSet),
        ("REMO", PartitionScheme::Remo),
    ] {
        let plan = scheme.plan(&planner, &pairs, &caps, cost, app.catalog());
        let mut sim = Simulator::new(SimSetup {
            plan: &plan,
            planned_pairs: &pairs,
            metric_pairs: None,
            caps: &caps,
            cost,
            catalog: app.catalog(),
            aliases: Default::default(),
            config: SimConfig {
                seed: 99,
                default_model: ValueModel::Bursty {
                    lo: 10.0,
                    hi: 100.0,
                    step: 2.0,
                    burst_p: 0.1,
                    burst_gain: 6.0,
                },
                error_cap: 1.0,
            },
        });
        sim.run(60);
        let err = sim.metrics().mean_error(15);
        results.insert(name, (plan.coverage(), err));
        println!(
            "{name:>14}: coverage {:>5.1}%, mean % error {:>5.2}%, volume {:.0}",
            plan.coverage() * 100.0,
            err * 100.0,
            plan.message_volume(),
        );
    }

    let (_, remo_err) = results["REMO"];
    let best_baseline = results["SINGLETON-SET"].1.min(results["ONE-SET"].1);
    if best_baseline > 0.0 {
        println!(
            "REMO reduces percentage error by {:.0}% vs the best baseline",
            (1.0 - remo_err / best_baseline) * 100.0
        );
    }
    Ok(())
}
