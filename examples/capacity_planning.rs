//! Capacity planning: how much per-node monitoring headroom does a
//! target coverage require?
//!
//! Operators ask the inverse of the planning question: given the task
//! mix, find the smallest per-node budget at which REMO collects, say,
//! 95% of the demanded pairs — and quantify how much budget the
//! resource-aware planner saves versus the SINGLETON-SET baseline.
//! Binary search over the budget does it, with an independent audit of
//! the chosen plan.
//!
//! ```sh
//! cargo run --release --example capacity_planning
//! ```

// Examples favor terse unwraps over error plumbing; a panic here is a
// broken example, not a library error path.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use remo::prelude::*;
use remo_core::planner::PartitionScheme;
use remo_core::validate::{Audit, AuditInput};

const TARGET: f64 = 0.95;

fn coverage_at(scheme: PartitionScheme, s: &Scenario, budget: f64) -> f64 {
    let caps =
        CapacityMap::uniform(s.caps.len(), budget, s.caps.collector()).expect("valid budget");
    let catalog = AttrCatalog::new();
    scheme
        .plan(&Planner::default(), &s.pairs, &caps, s.cost, &catalog)
        .coverage()
}

/// Smallest budget in `[lo, hi]` reaching the target coverage, to a
/// 1-unit resolution; `None` if even `hi` is insufficient.
fn min_budget(scheme: PartitionScheme, s: &Scenario, lo: f64, hi: f64) -> Option<f64> {
    if coverage_at(scheme, s, hi) < TARGET {
        return None;
    }
    let (mut lo, mut hi) = (lo, hi);
    while hi - lo > 1.0 {
        let mid = (lo + hi) / 2.0;
        if coverage_at(scheme, s, mid) >= TARGET {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Some(hi)
}

fn main() -> Result<(), PlanError> {
    let s = Scenario::with_taskgen(
        &ScenarioConfig {
            nodes: 40,
            attrs: 50,
            tasks: 45,
            node_budget: 0.0, // swept below
            collector_budget: 8_000.0,
            c_over_a: 20.0,
            seed: 23,
        },
        &TaskGenConfig::small_scale(40, 50),
    );
    println!(
        "workload: {} tasks, {} node-attribute pairs on {} nodes (target {:.0}% coverage)",
        s.tasks.len(),
        s.pairs.len(),
        s.caps.len(),
        TARGET * 100.0
    );

    let mut results = Vec::new();
    for (name, scheme) in [
        ("SINGLETON-SET", PartitionScheme::SingletonSet),
        ("ONE-SET", PartitionScheme::OneSet),
        ("REMO", PartitionScheme::Remo),
    ] {
        match min_budget(scheme, &s, 1.0, 4_000.0) {
            Some(b) => {
                println!("{name:>14}: needs ≥ {b:.0} capacity units per node");
                results.push((name, b));
            }
            None => println!("{name:>14}: cannot reach the target below 4000 units"),
        }
    }

    let remo = results.iter().find(|(n, _)| *n == "REMO").map(|&(_, b)| b);
    let best_baseline = results
        .iter()
        .filter(|(n, _)| *n != "REMO")
        .map(|&(_, b)| b)
        .fold(f64::INFINITY, f64::min);
    if let Some(remo) = remo {
        if best_baseline.is_finite() {
            println!(
                "resource-aware planning saves {:.0}% of per-node monitoring budget",
                (1.0 - remo / best_baseline) * 100.0
            );
        }

        // Audit the chosen REMO plan independently before shipping it.
        let caps = CapacityMap::uniform(s.caps.len(), remo, s.caps.collector())?;
        let catalog = AttrCatalog::new();
        let plan = Planner::default().plan_with_catalog(&s.pairs, &caps, s.cost, &catalog);
        let outcome = Audit::new().run(&AuditInput::new(&plan, &s.pairs, &caps, s.cost, &catalog));
        assert!(outcome.is_clean(), "audit:\n{}", outcome.render());
        println!(
            "audit clean at {remo:.0} units: {:.1}% coverage, {} trees",
            plan.coverage() * 100.0,
            plan.trees().len()
        );
    }
    Ok(())
}
