//! Lossy-network demo: run the same monitoring plan over a perfect
//! and a fault-injected transport, watch the ARQ layer fight drops,
//! duplicates, delays, and a partition window, and verify the two
//! collectors agree once the network heals.
//!
//! ```sh
//! cargo run --example lossy_network [nodes] [drop_percent] [epochs]
//! ```

// Examples favor terse unwraps over error plumbing; a panic here is a
// broken example, not a library error path.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use remo::prelude::*;
use remo::runtime::{NetConfig, NetSpec, PartitionWindow, Sampler, TransportSpec};
use std::sync::Arc;

fn main() {
    let mut args = std::env::args().skip(1);
    let nodes: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(8);
    let drop_pct: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(15.0);
    let epochs: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(60);
    let heal_at = epochs * 2 / 3;

    let caps = CapacityMap::uniform(nodes as usize, 200.0, 50_000.0).expect("caps");
    let cost = CostModel::new(2.0, 1.0).expect("cost");
    let pairs: PairSet = (0..nodes)
        .flat_map(|n| [(NodeId(n), AttrId(0)), (NodeId(n), AttrId(1))])
        .collect();
    let catalog = AttrCatalog::new();
    let sampler: Sampler =
        Arc::new(|n: NodeId, a: AttrId, e: u64| (n.0 * 100 + a.0 * 10) as f64 + (e % 9) as f64);
    let plan = Planner::default().plan_with_catalog(&pairs, &caps, cost, &catalog);

    let spec = NetSpec {
        seed: 7,
        drop: drop_pct / 100.0,
        delay_max: 2,
        dup: 0.05,
        reorder: 0.1,
        partitions: vec![PartitionWindow {
            name: "demo-island".into(),
            members: [NodeId(1)].into_iter().collect(),
            from_epoch: heal_at / 2,
            until_epoch: Some(heal_at * 3 / 4),
        }],
        active_until: Some(heal_at),
        ..NetSpec::default()
    };
    println!(
        "net: {drop_pct}% drop, ≤2-epoch delay, 5% dup, 10% reorder, \
         node 1 islanded epochs {}..={}, healing at {heal_at}",
        heal_at / 2,
        heal_at * 3 / 4
    );

    let mut lossy = Deployment::launch_with_transport(
        &plan,
        &pairs,
        &caps,
        cost,
        &catalog,
        Arc::clone(&sampler),
        HealthConfig::default(),
        TransportSpec::Lossy(spec, NetConfig::default()),
    );
    let mut perfect =
        Deployment::launch(&plan, &pairs, &caps, cost, &catalog, Arc::clone(&sampler));

    let total = lossy.run(epochs);
    perfect.run(epochs);

    let stats = lossy.net_stats();
    println!(
        "transport: {} data + {} ack frames; dropped {} (random {}, partition {}, link {}), \
         duplicated {}, delayed {}",
        stats.data_sent,
        stats.acks_sent,
        stats.total_dropped(),
        stats.dropped_random,
        stats.dropped_partition,
        stats.dropped_link_down,
        stats.duplicated,
        stats.delayed,
    );
    println!(
        "arq: {} retransmits, {} duplicates ignored, {} frames abandoned",
        total.retransmit_messages, total.duplicate_messages_ignored, total.abandoned_messages,
    );

    let bounds = lossy.staleness_bounds();
    let worst = bounds.values().copied().max().unwrap_or(0);
    println!(
        "declared staleness bounds: {:?} (degrade factor {})",
        bounds,
        lossy.degrade_factor()
    );

    let mut agree = 0usize;
    let mut stale = 0usize;
    for (n, a) in pairs.iter() {
        let (Some(p), Some(l)) = (perfect.observed(n, a), lossy.observed(n, a)) else {
            continue;
        };
        if (l.value, l.produced) == (p.value, p.produced) {
            agree += 1;
        }
        if epochs - l.produced > worst {
            stale += 1;
        }
    }
    println!(
        "after heal: {agree}/{} pairs agree exactly with the perfect collector, \
         {stale} outside the declared bound",
        pairs.len()
    );
    assert_eq!(agree, pairs.len(), "lossy collector must converge");
    assert_eq!(stale, 0, "staleness bounds must hold after heal");

    lossy.shutdown();
    perfect.shutdown();
    println!("converged: lossy == perfect despite the faults.");
}
