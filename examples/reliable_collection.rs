//! Mission-critical collection with SSDP replication under failures.
//!
//! Rewrites a task for same-source-different-paths delivery (paper
//! §6.2), plans with co-partition constraints so replicas travel
//! through disjoint trees, then injects link failures and shows the
//! replicated deployment keeps observing pairs the unreplicated one
//! loses.
//!
//! ```sh
//! cargo run --example reliable_collection
//! ```

// Examples favor terse unwraps over error plumbing; a panic here is a
// broken example, not a library error path.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use remo::prelude::*;
use remo_core::reliability::rewrite_ssdp;
use remo_core::{MonitoringTask, TaskId};

fn run(replicated: bool) -> Result<(usize, f64), PlanError> {
    let nodes = 20;
    let caps = CapacityMap::uniform(nodes, 30.0, 300.0)?;
    let cost = CostModel::new(2.0, 1.0)?;
    let mut catalog = AttrCatalog::new();
    let latency = catalog.register(AttrInfo::new("op_latency"));
    let rate = catalog.register(AttrInfo::new("tuple_rate"));

    let base = MonitoringTask::new(TaskId(0), [latency, rate], (0..nodes as u32).map(NodeId));
    let metric_pairs: PairSet = base.pairs().collect();

    let (pairs, aliases, forbidden) = if replicated {
        let rw = rewrite_ssdp(&base, 2, &mut catalog, TaskId(10))?;
        let pairs: PairSet = rw.tasks.iter().flat_map(MonitoringTask::pairs).collect();
        let alias_map = rw
            .aliases
            .iter()
            .flat_map(|(&orig, ids)| ids.iter().map(move |&id| (id, orig)))
            .collect();
        (pairs, alias_map, rw.forbidden_pairs)
    } else {
        (metric_pairs.clone(), Default::default(), Vec::new())
    };

    let planner = Planner::new(PlannerConfig {
        forbidden_pairs: forbidden,
        ..PlannerConfig::default()
    });
    let plan = planner.plan_with_catalog(&pairs, &caps, cost, &catalog);

    let mut sim = Simulator::new(SimSetup {
        plan: &plan,
        planned_pairs: &pairs,
        metric_pairs: Some(&metric_pairs),
        caps: &caps,
        cost,
        catalog: &catalog,
        aliases,
        config: SimConfig::default(),
    });

    // Warm up, then kill the links into each tree root.
    sim.run(10);
    for tree in plan.trees() {
        if let Some(t) = &tree.tree {
            let root = t.root();
            if let Some(&first_child) = t.children(root).first() {
                sim.fail_link(first_child, root);
            }
        }
    }
    sim.run(30);

    let fresh = (sim.fresh_fraction(5) * metric_pairs.len() as f64) as usize;
    Ok((fresh, sim.metrics().mean_error(10)))
}

fn main() -> Result<(), PlanError> {
    let (plain_fresh, plain_err) = run(false)?;
    let (repl_fresh, repl_err) = run(true)?;
    println!("under injected link failures (40 pairs demanded):");
    println!(
        "  unreplicated : {plain_fresh:>3} fresh pairs, mean error {:.1}%",
        plain_err * 100.0
    );
    println!(
        "  SSDP ×2      : {repl_fresh:>3} fresh pairs, mean error {:.1}%",
        repl_err * 100.0
    );
    assert!(
        repl_fresh >= plain_fresh,
        "replication must not hurt freshness"
    );
    Ok(())
}
