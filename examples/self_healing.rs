//! Self-healing runtime demo: crash a relay agent mid-run, watch the
//! coordinator suspect, confirm, and repair the plan, then heal the
//! node and watch it reintegrate.
//!
//! ```sh
//! cargo run --example self_healing [nodes] [confirm_after] [crashes]
//! ```

// Examples favor terse unwraps over error plumbing; a panic here is a
// broken example, not a library error path.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use remo::prelude::*;
use remo::runtime::Sampler;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let mut args = std::env::args().skip(1);
    let nodes: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(10);
    let confirm_after: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(2);
    let crashes: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(1);

    let caps = CapacityMap::uniform(nodes, 100.0, 10_000.0).expect("caps");
    let cost = CostModel::new(2.0, 1.0).expect("cost");
    let pairs: PairSet = (0..nodes as u32).map(|n| (NodeId(n), AttrId(0))).collect();
    let planner = AdaptivePlanner::new(
        Planner::default(),
        AdaptScheme::Adaptive,
        pairs.clone(),
        caps,
        cost,
        AttrCatalog::new(),
    );

    // Crash tree roots first: their whole subtree is orphaned, which
    // is the interesting repair case.
    let mut victims: Vec<NodeId> = Vec::new();
    for v in planner
        .plan()
        .trees()
        .iter()
        .filter_map(|t| t.tree.as_ref().map(|t| t.root()))
        .chain((0..nodes as u32).map(NodeId))
    {
        if !victims.contains(&v) {
            victims.push(v);
        }
        if victims.len() == crashes {
            break;
        }
    }

    let sampler: Sampler =
        Arc::new(|n: NodeId, a: AttrId, e: u64| (n.0 * 100 + a.0 * 10) as f64 + (e % 7) as f64);
    let health = HealthConfig {
        deadline: Duration::from_millis(80),
        confirm_after,
        ..HealthConfig::default()
    };
    let mut dep = Deployment::launch_self_healing(planner, sampler, health);

    dep.run(5);
    println!(
        "warm-up: epoch {}, {}/{} pairs observed",
        dep.epoch(),
        dep.observed_pairs(),
        pairs.len()
    );

    for &v in &victims {
        println!("crashing {v} at epoch {}", dep.epoch());
        dep.fail_node(v);
    }

    for _ in 0..u64::from(confirm_after) + 2 {
        let r = dep.tick();
        let hr = dep.health_report();
        let dead = hr.dead_nodes();
        println!(
            "epoch {:>2}: suspected {} confirmed {} repaired {} reconfigs {} lost {} dead {:?}",
            r.epoch,
            r.suspected,
            r.confirmed_dead,
            r.repaired,
            r.reconfigure_messages,
            r.values_lost,
            dead
        );
    }

    for &v in &victims {
        println!("healing {v} at epoch {}", dep.epoch());
        dep.heal_node(v);
    }
    let total = dep.run(10);
    println!(
        "after heal: recovered {} over 10 epochs, {}/{} pairs observed",
        total.recovered,
        dep.observed_pairs(),
        pairs.len()
    );

    let hr = dep.health_report();
    for &v in &victims {
        let s = &hr.stats[&v];
        println!(
            "{v}: state {:?}, detect {} epochs, mttr {} epochs, values lost {}",
            hr.states[&v], s.time_to_detect, s.mttr_epochs, s.values_lost
        );
    }
    println!(
        "totals: confirmed {} repaired {} values_lost {}",
        hr.total_confirmed(),
        hr.total_repaired(),
        hr.total_values_lost()
    );
    dep.shutdown();
}
