//! Plan → simulator integration: the error and delivery behavior the
//! paper measures on the real system must emerge from the simulated
//! substrate.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use remo::prelude::*;
use remo_core::planner::PartitionScheme;
use std::collections::BTreeMap;

fn simulate(plan: &MonitoringPlan, pairs: &PairSet, caps: &CapacityMap, cost: CostModel) -> f64 {
    let catalog = AttrCatalog::new();
    let mut sim = Simulator::new(SimSetup {
        plan,
        planned_pairs: pairs,
        metric_pairs: None,
        caps,
        cost,
        catalog: &catalog,
        aliases: BTreeMap::new(),
        config: SimConfig {
            seed: 31,
            ..SimConfig::default()
        },
    });
    sim.run(50);
    sim.metrics().mean_error(10)
}

#[test]
fn remo_error_at_most_baselines() {
    let s = Scenario::synthetic(&ScenarioConfig {
        nodes: 40,
        attrs: 30,
        tasks: 50,
        node_budget: 18.0,
        collector_budget: 250.0,
        c_over_a: 2.0,
        seed: 8,
    });
    let planner = Planner::default();
    let catalog = AttrCatalog::new();
    let err = |scheme: PartitionScheme| {
        let plan = scheme.plan(&planner, &s.pairs, &s.caps, s.cost, &catalog);
        simulate(&plan, &s.pairs, &s.caps, s.cost)
    };
    let remo = err(PartitionScheme::Remo);
    let sp = err(PartitionScheme::SingletonSet);
    let op = err(PartitionScheme::OneSet);
    assert!(
        remo <= sp.min(op) + 0.02,
        "remo error {remo:.3} vs sp {sp:.3}, op {op:.3}"
    );
}

#[test]
fn higher_coverage_means_lower_error() {
    // Within one scheme, more capacity → higher coverage → lower error.
    let planner = Planner::default();
    let catalog = AttrCatalog::new();
    let mut prev_err = f64::INFINITY;
    for budget in [8.0, 16.0, 48.0] {
        let s = Scenario::synthetic(&ScenarioConfig {
            nodes: 30,
            attrs: 24,
            tasks: 40,
            node_budget: budget,
            collector_budget: budget * 12.0,
            c_over_a: 2.0,
            seed: 8,
        });
        let plan = planner.plan_with_catalog(&s.pairs, &s.caps, s.cost, &catalog);
        let err = simulate(&plan, &s.pairs, &s.caps, s.cost);
        assert!(
            err <= prev_err + 0.05,
            "error should fall (or hold) as budget grows: {err} after {prev_err}"
        );
        prev_err = err;
    }
}

#[test]
fn deeper_trees_are_staler() {
    // Chain topology has higher depth than star; with equal delivery,
    // its snapshots lag more, so its error is at least star's.
    use remo_core::build::BuilderKind;
    use remo_core::planner::PlannerConfig;
    let pairs: PairSet = (0..12)
        .flat_map(|n| (0..1).map(move |a| (NodeId(n), AttrId(a))))
        .collect();
    let caps = CapacityMap::uniform(12, 1_000.0, 1_000.0).unwrap();
    let cost = CostModel::default();
    let catalog = AttrCatalog::new();
    let err_of = |builder| {
        let plan = Planner::new(PlannerConfig {
            builder,
            ..PlannerConfig::default()
        })
        .evaluate_partition(
            &remo_core::Partition::one_set(pairs.attr_universe()),
            &pairs,
            &caps,
            cost,
            &catalog,
        )
        .into_plan();
        simulate(&plan, &pairs, &caps, cost)
    };
    let star = err_of(BuilderKind::Star);
    let chain = err_of(BuilderKind::Chain);
    assert!(
        chain >= star,
        "chain staleness {chain:.4} must be at least star's {star:.4}"
    );
}

#[test]
fn adaptation_experiment_tracks_churn() {
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use remo_core::adapt::AdaptScheme;
    use remo_sim::run_adaptation_experiment;
    use remo_workloads::churn::churn_schedule;

    let s = Scenario::synthetic(&ScenarioConfig {
        nodes: 25,
        attrs: 20,
        tasks: 30,
        node_budget: 20.0,
        collector_budget: 250.0,
        c_over_a: 2.0,
        seed: 12,
    });
    let mut rng = SmallRng::seed_from_u64(3);
    let schedule = churn_schedule(
        &s.pairs,
        &ChurnConfig {
            attr_universe: 20,
            ..ChurnConfig::default()
        },
        4,
        10,
        10,
        &mut rng,
    );
    let updates: std::collections::BTreeMap<u64, PairSet> = schedule.into_iter().collect();
    let (stats, metrics) = run_adaptation_experiment(
        Planner::default(),
        AdaptScheme::Adaptive,
        s.pairs.clone(),
        updates,
        s.caps.clone(),
        s.cost,
        AttrCatalog::new(),
        SimConfig::default(),
        60,
    );
    assert_eq!(stats.updates_applied, 4);
    assert!(stats.delivered_values > 0);
    assert!(metrics.len() == 60);
    // Control traffic exists but does not dominate.
    assert!(stats.control_volume > 0.0);
    assert!(stats.control_fraction() < 0.5);
}

#[test]
fn failure_handling_reroutes_around_dead_node() {
    use remo_core::adapt::{AdaptScheme, AdaptivePlanner};
    // A node dies mid-run; the management core re-plans around it and
    // the collector's error recovers without the node's own pairs.
    let pairs: PairSet = (0..12)
        .flat_map(|n| (0..2).map(move |a| (NodeId(n), AttrId(a))))
        .collect();
    let caps = CapacityMap::uniform(12, 40.0, 400.0).unwrap();
    let cost = CostModel::new(4.0, 1.0).unwrap();
    let catalog = AttrCatalog::new();
    let mut ap = AdaptivePlanner::new(
        Planner::default(),
        AdaptScheme::Adaptive,
        pairs.clone(),
        caps.clone(),
        cost,
        catalog.clone(),
    );
    let mut sim = Simulator::new(SimSetup {
        plan: ap.plan(),
        planned_pairs: &pairs,
        metric_pairs: None,
        caps: &caps,
        cost,
        catalog: &catalog,
        aliases: std::collections::BTreeMap::new(),
        config: SimConfig::default(),
    });
    sim.run(10);

    // Kill a relay (any non-root node with children).
    let victim = ap
        .plan()
        .trees()
        .iter()
        .filter_map(|t| t.tree.as_ref())
        .flat_map(|t| t.nodes().collect::<Vec<_>>())
        .find(|&n| {
            ap.plan().trees().iter().any(|t| {
                t.tree
                    .as_ref()
                    .is_some_and(|tr| tr.root() != n && !tr.children(n).is_empty())
            })
        })
        .expect("a relay exists");
    sim.fail_node(victim);
    sim.run(10);
    let degraded = sim.metrics().epochs().last().unwrap().avg_error;

    // Management reaction: re-plan without the victim, redeploy.
    ap.handle_node_failure(victim, sim.epoch());
    sim.apply_plan(ap.plan(), &pairs);
    sim.run(20);
    let recovered = sim.metrics().epochs().last().unwrap().avg_error;
    assert!(
        recovered < degraded,
        "re-planning must recover error: {recovered:.3} vs {degraded:.3}"
    );
}

#[test]
fn failures_degrade_then_heal() {
    let pairs: PairSet = (0..10).map(|n| (NodeId(n), AttrId(0))).collect();
    let caps = CapacityMap::uniform(10, 50.0, 500.0).unwrap();
    let cost = CostModel::default();
    let catalog = AttrCatalog::new();
    let plan = Planner::default().plan_with_catalog(&pairs, &caps, cost, &catalog);
    let mut sim = Simulator::new(SimSetup {
        plan: &plan,
        planned_pairs: &pairs,
        metric_pairs: None,
        caps: &caps,
        cost,
        catalog: &catalog,
        aliases: BTreeMap::new(),
        config: SimConfig::default(),
    });
    sim.run(15);
    let healthy = sim.metrics().mean_error(10);
    let root = plan.trees()[0].tree.as_ref().unwrap().root();
    sim.fail_node(root);
    sim.run(20);
    let failed = sim.metrics().epochs().last().unwrap().avg_error;
    assert!(failed > healthy, "root failure must raise error");
    sim.heal_node(root);
    sim.run(20);
    let healed = sim.metrics().epochs().last().unwrap().avg_error;
    assert!(healed < failed, "healing must recover");
}
