//! Runtime-adaptation integration: long churn sequences across all
//! four schemes must preserve plan validity and the paper's relative
//! ordering of costs.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use rand::rngs::SmallRng;
use rand::SeedableRng;
use remo::prelude::*;
use remo_core::adapt::{AdaptScheme, AdaptivePlanner};
use remo_workloads::churn::churn_pairs;

fn scenario() -> Scenario {
    Scenario::synthetic(&ScenarioConfig {
        nodes: 30,
        attrs: 25,
        tasks: 35,
        node_budget: 18.0,
        collector_budget: 220.0,
        c_over_a: 2.0,
        seed: 21,
    })
}

fn run_churn(scheme: AdaptScheme, batches: usize) -> (AdaptivePlanner, usize, usize) {
    let s = scenario();
    let mut ap = AdaptivePlanner::new(
        Planner::default(),
        scheme,
        s.pairs.clone(),
        s.caps.clone(),
        s.cost,
        AttrCatalog::new(),
    );
    let cfg = ChurnConfig {
        attr_universe: 25,
        ..ChurnConfig::default()
    };
    let mut rng = SmallRng::seed_from_u64(77);
    let mut pairs = s.pairs.clone();
    let mut total_adapt = 0;
    let mut total_ops = 0;
    for b in 1..=batches {
        pairs = churn_pairs(&pairs, &cfg, &mut rng);
        let report = ap.update(pairs.clone(), b as u64 * 10);
        total_adapt += report.adaptation_messages;
        total_ops += report.ops_applied;
        // Invariants after every batch.
        let plan = ap.plan();
        assert!(plan.partition().is_valid(), "{scheme:?} broke partition");
        assert_eq!(
            plan.demanded_pairs(),
            pairs.len(),
            "{scheme:?} lost track of demand"
        );
        for (n, u) in plan.node_usage() {
            assert!(
                u <= s.caps.node(n).unwrap() + 1e-6,
                "{scheme:?} violated capacity at {n}"
            );
        }
        for t in plan.trees() {
            if let Some(tree) = &t.tree {
                assert!(tree.is_valid());
            }
        }
    }
    (ap, total_adapt, total_ops)
}

#[test]
fn all_schemes_maintain_invariants_under_churn() {
    for scheme in [
        AdaptScheme::DirectApply,
        AdaptScheme::Rebuild,
        AdaptScheme::NoThrottle,
        AdaptScheme::Adaptive,
    ] {
        let _ = run_churn(scheme, 6);
    }
}

#[test]
fn rebuild_adapts_hardest_direct_apply_least() {
    let (_, da_adapt, _) = run_churn(AdaptScheme::DirectApply, 6);
    let (_, rb_adapt, _) = run_churn(AdaptScheme::Rebuild, 6);
    assert!(
        rb_adapt >= da_adapt,
        "rebuild messages {rb_adapt} must be at least d-a's {da_adapt}"
    );
}

#[test]
fn throttling_bounds_ops() {
    let (_, _, nothrottle_ops) = run_churn(AdaptScheme::NoThrottle, 6);
    let (_, _, adaptive_ops) = run_churn(AdaptScheme::Adaptive, 6);
    assert!(
        adaptive_ops <= nothrottle_ops,
        "throttling must never apply more ops ({adaptive_ops} vs {nothrottle_ops})"
    );
}

#[test]
fn optimizing_schemes_collect_at_least_direct_apply() {
    let (da, ..) = run_churn(AdaptScheme::DirectApply, 6);
    let (nt, ..) = run_churn(AdaptScheme::NoThrottle, 6);
    let (ad, ..) = run_churn(AdaptScheme::Adaptive, 6);
    assert!(nt.plan().collected_pairs() >= da.plan().collected_pairs());
    assert!(ad.plan().collected_pairs() >= da.plan().collected_pairs());
}

#[test]
fn task_level_changes_flow_through_task_manager() {
    use remo_core::{TaskChange, TaskId};
    let s = scenario();
    let mut tm = TaskManager::new();
    for t in &s.tasks {
        tm.add(t.clone()).unwrap();
    }
    let mut ap = AdaptivePlanner::new(
        Planner::default(),
        AdaptScheme::Adaptive,
        tm.pairs(),
        s.caps.clone(),
        s.cost,
        AttrCatalog::new(),
    );
    // Add a brand-new task over a brand-new attribute.
    tm.add(MonitoringTask::new(
        TaskId(900),
        [AttrId(999)],
        (0..10).map(NodeId),
    ))
    .unwrap();
    ap.update(tm.pairs(), 10);
    assert!(ap.plan().tree_of_attr(AttrId(999)).is_some());

    // Withdraw it again.
    tm.apply(TaskChange::Remove(TaskId(900))).unwrap();
    ap.update(tm.pairs(), 20);
    assert!(ap.plan().tree_of_attr(AttrId(999)).is_none());
}

#[test]
fn adaptation_is_deterministic() {
    let run = || {
        let (ap, adapt, ops) = run_churn(AdaptScheme::Adaptive, 4);
        (
            ap.plan().collected_pairs(),
            ap.plan().partition().clone(),
            adapt,
            ops,
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a.0, b.0);
    assert_eq!(a.1, b.1);
    assert_eq!(a.2, b.2);
    assert_eq!(a.3, b.3);
}
