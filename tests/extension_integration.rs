//! Extensions end to end (paper §6): in-network aggregation,
//! reliability rewriting, and heterogeneous update frequencies.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use remo::prelude::*;
use remo_core::frequency::plan_frequency_groups;
use remo_core::reliability::{rewrite_dsdp, rewrite_ssdp};
use remo_core::{MonitoringTask, TaskId};
use std::collections::{BTreeMap, BTreeSet};

#[test]
fn aggregation_aware_plan_collects_more_under_tight_collector() {
    let mut catalog = AttrCatalog::new();
    let maxes: Vec<AttrId> = (0..3)
        .map(|i| {
            catalog.register(AttrInfo::new(format!("max{i}")).with_aggregation(Aggregation::Max))
        })
        .collect();
    let pairs: PairSet = (0..20)
        .flat_map(|n| maxes.iter().map(move |&a| (NodeId(n), a)))
        .collect();
    let caps = CapacityMap::uniform(20, 12.0, 30.0).unwrap();
    let cost = CostModel::new(2.0, 1.0).unwrap();

    let naive = Planner::default()
        .plan_with_catalog(&pairs, &caps, cost, &catalog)
        .collected_pairs();
    let aware = Planner::new(PlannerConfig {
        aggregation_aware: true,
        ..PlannerConfig::default()
    })
    .plan_with_catalog(&pairs, &caps, cost, &catalog)
    .collected_pairs();
    assert!(
        aware > naive,
        "aggregation awareness must pay off: {aware} vs {naive}"
    );
}

#[test]
fn aggregated_values_are_correct_in_simulation() {
    let mut catalog = AttrCatalog::new();
    let m = catalog.register(AttrInfo::new("m").with_aggregation(Aggregation::Max));
    let pairs: PairSet = (0..6).map(|n| (NodeId(n), m)).collect();
    let caps = CapacityMap::uniform(6, 50.0, 500.0).unwrap();
    let cost = CostModel::default();
    let plan = Planner::new(PlannerConfig {
        aggregation_aware: true,
        ..PlannerConfig::default()
    })
    .plan_with_catalog(&pairs, &caps, cost, &catalog);

    let mut sim = Simulator::new(SimSetup {
        plan: &plan,
        planned_pairs: &pairs,
        metric_pairs: None,
        caps: &caps,
        cost,
        catalog: &catalog,
        aliases: BTreeMap::new(),
        config: SimConfig {
            default_model: ValueModel::Constant(0.0),
            ..SimConfig::default()
        },
    });
    // Give each node a distinct constant; the MAX must win.
    for n in 0..6 {
        sim.set_model(NodeId(n), m, ValueModel::Constant(10.0 + n as f64));
    }
    sim.run(12);
    let agg = sim.collector().aggregate(m).expect("aggregate recorded");
    assert_eq!(agg.value, 15.0, "MAX over 10..=15");
}

#[test]
fn ssdp_replication_survives_single_link_failure() {
    let mut catalog = AttrCatalog::new();
    let attr = catalog.register(AttrInfo::new("critical"));
    let task = MonitoringTask::new(TaskId(0), [attr], (0..12).map(NodeId));
    let metric_pairs: PairSet = task.pairs().collect();
    let rw = rewrite_ssdp(&task, 2, &mut catalog, TaskId(1)).unwrap();
    let pairs: PairSet = rw.tasks.iter().flat_map(MonitoringTask::pairs).collect();
    let aliases: BTreeMap<AttrId, AttrId> = rw
        .aliases
        .iter()
        .flat_map(|(&orig, ids)| ids.iter().map(move |&id| (id, orig)))
        .collect();

    let caps = CapacityMap::uniform(12, 40.0, 400.0).unwrap();
    let cost = CostModel::default();
    let plan = Planner::new(PlannerConfig {
        forbidden_pairs: rw.forbidden_pairs.clone(),
        ..PlannerConfig::default()
    })
    .plan_with_catalog(&pairs, &caps, cost, &catalog);

    // Replicas in different trees.
    for (a, b) in &rw.forbidden_pairs {
        assert_ne!(plan.tree_of_attr(*a), plan.tree_of_attr(*b));
    }

    let mut sim = Simulator::new(SimSetup {
        plan: &plan,
        planned_pairs: &pairs,
        metric_pairs: Some(&metric_pairs),
        caps: &caps,
        cost,
        catalog: &catalog,
        aliases,
        config: SimConfig::default(),
    });
    sim.run(10);
    // Sever one tree's root link entirely.
    let t0 = plan.trees()[0].tree.as_ref().unwrap();
    for child in t0.children(t0.root()) {
        sim.fail_link(*child, t0.root());
    }
    sim.run(20);
    // The other replica keeps the snapshot fresh for most pairs.
    assert!(
        sim.fresh_fraction(4) > 0.5,
        "replication should keep most pairs fresh, got {}",
        sim.fresh_fraction(4)
    );
}

#[test]
fn ssdp_delivers_every_attribute_with_replica_tree_root_down() {
    // Same rewrite as above, but the failure is a whole NODE — the
    // root of the tree carrying the original attribute — scripted as
    // a FailureSchedule instead of imperative fail_link calls. Every
    // original attribute must keep flowing through the surviving
    // replica tree; only pairs sourced at the dead node itself can go
    // stale.
    let mut catalog = AttrCatalog::new();
    let attr = catalog.register(AttrInfo::new("critical"));
    let task = MonitoringTask::new(TaskId(0), [attr], (0..12).map(NodeId));
    let metric_pairs: PairSet = task.pairs().collect();
    let rw = rewrite_ssdp(&task, 2, &mut catalog, TaskId(1)).unwrap();
    let pairs: PairSet = rw.tasks.iter().flat_map(MonitoringTask::pairs).collect();
    let aliases: BTreeMap<AttrId, AttrId> = rw
        .aliases
        .iter()
        .flat_map(|(&orig, ids)| ids.iter().map(move |&id| (id, orig)))
        .collect();

    let caps = CapacityMap::uniform(12, 40.0, 400.0).unwrap();
    let cost = CostModel::default();
    let plan = Planner::new(PlannerConfig {
        forbidden_pairs: rw.forbidden_pairs.clone(),
        ..PlannerConfig::default()
    })
    .plan_with_catalog(&pairs, &caps, cost, &catalog);

    let mut sim = Simulator::new(SimSetup {
        plan: &plan,
        planned_pairs: &pairs,
        metric_pairs: Some(&metric_pairs),
        caps: &caps,
        cost,
        catalog: &catalog,
        aliases,
        config: SimConfig::default(),
    });
    sim.run(10);

    // Crash the root of the original attribute's tree, permanently,
    // from epoch 11 on.
    let k = plan.tree_of_attr(attr).expect("original attr planned");
    let victim = plan.trees()[k].tree.as_ref().unwrap().root();
    let mut sched = FailureSchedule::new();
    sched.add(Outage::node(victim, 11, None));
    sched.run(&mut sim, 20);

    let now = sim.epoch();
    // Every original pair not sourced at the dead node is still being
    // delivered through the surviving replica's tree.
    for (n, a) in metric_pairs.iter().filter(|(n, _)| *n != victim) {
        let stored = sim.collector().get(n, a).expect("pair delivered");
        assert!(
            now - stored.produced <= 12,
            "pair {n}/{a} went stale with one replica root down: produced {} at epoch {now}",
            stored.produced
        );
    }
    // Attribute-level SLO: the schedule killed one of twelve sources,
    // so at least 11/12 of the task's pairs stay fresh.
    let fraction = sim.fresh_fraction(12);
    assert!(
        fraction >= 11.0 / 12.0 - 1e-9,
        "replication should hold all surviving pairs fresh, got {fraction}"
    );
}

#[test]
fn dsdp_uses_disjoint_sources() {
    let mut catalog = AttrCatalog::new();
    let attr = catalog.register(AttrInfo::new("shared_storage_iops"));
    let groups: Vec<BTreeSet<NodeId>> = (0..4)
        .map(|g| (0..3).map(|i| NodeId(g * 3 + i)).collect())
        .collect();
    let rw = rewrite_dsdp(attr, &groups, 2, &mut catalog, TaskId(0)).unwrap();
    let all_nodes: BTreeSet<NodeId> = rw
        .tasks
        .iter()
        .flat_map(|t| t.nodes().iter().copied())
        .collect();
    assert_eq!(all_nodes.len(), 8, "2 representatives × 4 groups");
    let pairs: PairSet = rw.tasks.iter().flat_map(MonitoringTask::pairs).collect();
    let caps = CapacityMap::uniform(12, 40.0, 400.0).unwrap();
    let plan = Planner::new(PlannerConfig {
        forbidden_pairs: rw.forbidden_pairs.clone(),
        ..PlannerConfig::default()
    })
    .plan_with_catalog(&pairs, &caps, CostModel::default(), &catalog);
    for (a, b) in &rw.forbidden_pairs {
        assert_ne!(plan.tree_of_attr(*a), plan.tree_of_attr(*b));
    }
}

#[test]
fn frequency_groups_collect_slow_attrs_cheaply() {
    let mut catalog = AttrCatalog::new();
    let fast = catalog.register(AttrInfo::new("fast"));
    let slow = catalog.register(AttrInfo::new("slow").with_frequency(0.25).unwrap());
    let mut pairs = PairSet::new();
    for n in 0..15 {
        pairs.insert(NodeId(n), fast);
        pairs.insert(NodeId(n), slow);
    }
    let caps = CapacityMap::uniform(15, 20.0, 200.0).unwrap();
    let grouped = plan_frequency_groups(
        &Planner::default(),
        &pairs,
        &caps,
        CostModel::default(),
        &catalog,
    );
    assert_eq!(grouped.groups.len(), 2);
    // The slow group's per-unit-time volume is a fraction of the fast
    // group's despite identical pair counts.
    let fast_vol = grouped.groups[0].plan.message_volume();
    let slow_vol = grouped.groups[1].plan.message_volume();
    assert!(
        slow_vol < fast_vol * 0.5,
        "slow {slow_vol} vs fast {fast_vol}"
    );
}

#[test]
fn frequency_aware_piggyback_collects_at_least_naive() {
    let mut catalog = AttrCatalog::new();
    let mut pairs = PairSet::new();
    for i in 0..4 {
        let a = catalog.register(
            AttrInfo::new(format!("a{i}"))
                .with_frequency(if i % 2 == 0 { 1.0 } else { 0.5 })
                .unwrap(),
        );
        for n in 0..15 {
            pairs.insert(NodeId(n), a);
        }
    }
    let caps = CapacityMap::uniform(15, 14.0, 80.0).unwrap();
    let cost = CostModel::new(2.0, 1.0).unwrap();
    let naive = Planner::default()
        .plan_with_catalog(&pairs, &caps, cost, &catalog)
        .collected_pairs();
    let aware = Planner::new(PlannerConfig {
        frequency_aware: true,
        ..PlannerConfig::default()
    })
    .plan_with_catalog(&pairs, &caps, cost, &catalog)
    .collected_pairs();
    assert!(
        aware >= naive,
        "frequency awareness regressed: {aware} < {naive}"
    );
}
