//! Property-based tests over the core data structures and invariants.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use proptest::prelude::*;
use remo::prelude::*;
use remo_core::build::{build_tree, BuildRequest, BuilderKind, LocalLoad, NodeDemand};
use remo_core::{AttrSet, Partition};

fn arb_universe(max: u32) -> impl Strategy<Value = Vec<AttrId>> {
    prop::collection::btree_set(0..max, 1..(max as usize))
        .prop_map(|s| s.into_iter().map(AttrId).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any sequence of valid merge/split operations keeps the partition
    /// a partition: disjoint, non-empty sets covering the universe.
    #[test]
    fn partition_ops_preserve_invariants(
        universe in arb_universe(24),
        ops in prop::collection::vec((0usize..64, 0usize..64, 0u32..24), 0..40),
    ) {
        let total: AttrSet = universe.iter().copied().collect();
        let mut p = Partition::singleton(universe);
        for (i, j, attr) in ops {
            if i % 2 == 0 && p.len() >= 2 {
                let a = i % p.len();
                let b = j % p.len();
                if a != b {
                    p.merge(a, b).unwrap();
                }
            } else if !p.is_empty() {
                let s = i % p.len();
                let _ = p.split(s, AttrId(attr)); // may legitimately fail
            }
            prop_assert!(p.is_valid());
            prop_assert_eq!(&p.universe(), &total);
        }
    }

    /// Every tree builder respects node budgets, includes each node at
    /// most once, and produces a structurally valid tree.
    #[test]
    fn builders_respect_budgets(
        n in 2usize..24,
        budget in 4.0f64..60.0,
        collector in 10.0f64..300.0,
        c in 0.5f64..8.0,
        loads in prop::collection::vec(1usize..6, 24),
    ) {
        let req = BuildRequest {
            attrs: [AttrId(0)].into_iter().collect(),
            demand: (0..n)
                .map(|i| NodeDemand {
                    node: NodeId(i as u32),
                    load: LocalLoad::holistic(loads[i] as f64),
                    budget,
                    pairs: loads[i],
                })
                .collect(),
            collector_budget: collector,
            cost: CostModel::new(c, 1.0).unwrap(),
            funnels: Vec::new(),
        };
        for kind in [
            BuilderKind::Star,
            BuilderKind::Chain,
            BuilderKind::MaxAvb,
            BuilderKind::default(),
        ] {
            let out = build_tree(kind, &req);
            for u in out.usage.values() {
                prop_assert!(*u <= budget + 1e-6, "{kind:?} violated a budget");
            }
            prop_assert!(out.collector_usage <= collector + 1e-6);
            if let Some(tree) = &out.tree {
                prop_assert!(tree.is_valid());
                prop_assert_eq!(tree.len() + out.excluded.len(), n);
            } else {
                prop_assert_eq!(out.excluded.len(), n);
            }
            // Collected pairs must equal the load of included nodes.
            let included: usize = out
                .tree
                .as_ref()
                .map(|t| t.nodes().map(|nd| loads[nd.0 as usize]).sum())
                .unwrap_or(0);
            prop_assert_eq!(out.collected_pairs, included);
        }
    }

    /// Every (partition scheme × tree builder) combination produces a
    /// plan that passes the full audit rule registry with no
    /// error-severity finding, regardless of workload shape. This is
    /// the audit engine's soundness property: it never cries wolf on a
    /// planner-constructed plan.
    #[test]
    fn every_scheme_and_builder_audits_clean(
        nodes in 3usize..14,
        attrs in 1u32..6,
        budget in 5.0f64..45.0,
        density in 0.3f64..1.0,
        seed in 0u64..500,
        scheme_ix in 0usize..3,
        builder_ix in 0usize..4,
    ) {
        use rand::{Rng, SeedableRng, rngs::SmallRng};
        use remo_audit::{Audit, AuditInput};
        use remo_core::build::AdjustConfig;
        use remo_core::planner::{PartitionScheme, PlannerConfig};

        let mut rng = SmallRng::seed_from_u64(seed);
        let mut pairs = PairSet::new();
        for n in 0..nodes {
            for a in 0..attrs {
                if rng.gen_bool(density) {
                    pairs.insert(NodeId(n as u32), AttrId(a));
                }
            }
        }
        pairs.insert(NodeId(0), AttrId(0)); // never empty
        let schemes = [
            PartitionScheme::SingletonSet,
            PartitionScheme::OneSet,
            PartitionScheme::Remo,
        ];
        let builders = [
            BuilderKind::Star,
            BuilderKind::Chain,
            BuilderKind::MaxAvb,
            BuilderKind::Adaptive(AdjustConfig::default()),
        ];
        let caps = CapacityMap::uniform(nodes, budget, budget * nodes as f64).unwrap();
        let cost = CostModel::default();
        let catalog = AttrCatalog::new();
        let planner = Planner::new(PlannerConfig {
            builder: builders[builder_ix],
            ..PlannerConfig::default()
        });
        let plan = schemes[scheme_ix].plan(&planner, &pairs, &caps, cost, &catalog);
        let outcome = Audit::new().run(&AuditInput::new(&plan, &pairs, &caps, cost, &catalog));
        prop_assert!(
            outcome.is_clean(),
            "{:?} × {:?} failed its audit:\n{}",
            schemes[scheme_ix],
            builders[builder_ix],
            outcome.render()
        );
    }

    /// The planner never violates capacity and never collects more
    /// than demanded, regardless of workload shape.
    #[test]
    fn planner_is_always_feasible(
        nodes in 3usize..16,
        attrs in 1u32..8,
        budget in 5.0f64..50.0,
        density in 0.2f64..1.0,
        seed in 0u64..1000,
    ) {
        use rand::{Rng, SeedableRng, rngs::SmallRng};
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut pairs = PairSet::new();
        for n in 0..nodes {
            for a in 0..attrs {
                if rng.gen_bool(density) {
                    pairs.insert(NodeId(n as u32), AttrId(a));
                }
            }
        }
        let caps = CapacityMap::uniform(nodes, budget, budget * nodes as f64).unwrap();
        let plan = Planner::default().plan(&pairs, &caps, CostModel::default());
        prop_assert!(plan.collected_pairs() <= plan.demanded_pairs());
        prop_assert_eq!(plan.demanded_pairs(), pairs.len());
        for (n, u) in plan.node_usage() {
            prop_assert!(u <= budget + 1e-6, "node {} over budget: {}", n, u);
        }
        prop_assert!(plan.partition().is_valid());
    }

    /// Wire protocol round-trips arbitrary messages.
    #[test]
    fn wire_roundtrip(
        tree in 0u32..100,
        from in 0u32..1000,
        seq in 0u64..u64::MAX,
        readings in prop::collection::vec(
            (0u32..1000, 0u32..1000, -1e12f64..1e12, 0u64..1_000_000, 1u32..100),
            0..50,
        ),
    ) {
        use remo_runtime::proto::{WireMessage, WireReading};
        let msg = WireMessage::data(
            tree,
            NodeId(from),
            seq,
            readings
                .into_iter()
                .map(|(n, a, v, p, c)| WireReading {
                    node: NodeId(n),
                    attr: AttrId(a),
                    value: v,
                    produced: p,
                    contributors: c,
                })
                .collect(),
        );
        let back = WireMessage::decode(msg.encode()).unwrap();
        prop_assert_eq!(back, msg);
    }

    /// Task-manager deduplication equals the set-union semantics.
    #[test]
    fn dedup_matches_union(
        tasks in prop::collection::vec(
            (
                prop::collection::btree_set(0u32..10, 1..5),
                prop::collection::btree_set(0u32..10, 1..5),
            ),
            1..8,
        ),
    ) {
        use std::collections::BTreeSet;
        let mut tm = TaskManager::new();
        let mut expected: BTreeSet<(u32, u32)> = BTreeSet::new();
        for (i, (attrs, nodes)) in tasks.iter().enumerate() {
            for &n in nodes {
                for &a in attrs {
                    expected.insert((n, a));
                }
            }
            tm.add(MonitoringTask::new(
                remo_core::TaskId(i as u32),
                attrs.iter().copied().map(AttrId),
                nodes.iter().copied().map(NodeId),
            ))
            .unwrap();
        }
        let pairs = tm.pairs();
        prop_assert_eq!(pairs.len(), expected.len());
        for (n, a) in expected {
            prop_assert!(pairs.contains(NodeId(n), AttrId(a)));
        }
    }

    /// Plan edge-diff is symmetric and zero iff identical.
    #[test]
    fn edge_diff_symmetry(
        nodes in 3usize..12,
        attrs in 1u32..4,
        budget_a in 8.0f64..40.0,
        budget_b in 8.0f64..40.0,
    ) {
        let pairs: PairSet = (0..nodes as u32)
            .flat_map(|n| (0..attrs).map(move |a| (NodeId(n), AttrId(a))))
            .collect();
        let caps_a = CapacityMap::uniform(nodes, budget_a, 500.0).unwrap();
        let caps_b = CapacityMap::uniform(nodes, budget_b, 500.0).unwrap();
        let pa = Planner::default().plan(&pairs, &caps_a, CostModel::default());
        let pb = Planner::default().plan(&pairs, &caps_b, CostModel::default());
        prop_assert_eq!(pa.edge_diff(&pb), pb.edge_diff(&pa));
        prop_assert_eq!(pa.edge_diff(&pa), 0);
    }

    /// Random attach/detach/reattach sequences keep the load tracker's
    /// incremental accounting consistent with a from-scratch
    /// recomputation.
    #[test]
    fn load_tracker_incremental_accounting_is_consistent(
        ops in prop::collection::vec((0u8..3, 0u32..12, 0u32..12, 1u32..4), 1..60),
        c in 0.0f64..10.0,
        budget in 20.0f64..200.0,
    ) {
        use remo_core::build::{LoadTracker, LocalLoad};
        let cost = CostModel::new(c, 1.0).unwrap();
        let mut lt = LoadTracker::new(cost, Vec::new(), 1e9);
        lt.init_root(NodeId(100), LocalLoad::holistic(1.0), budget).unwrap();
        for (kind, a, b, load) in ops {
            match kind {
                0 => {
                    // Attach a fresh leaf under some present node.
                    let members: Vec<NodeId> = lt.nodes().collect();
                    let parent = members[a as usize % members.len()];
                    let _ = lt.try_attach(
                        NodeId(b),
                        LocalLoad::holistic(load as f64),
                        budget,
                        parent,
                    );
                }
                1 => {
                    // Detach a non-root subtree and reattach it
                    // somewhere (or back where it came from).
                    let members: Vec<NodeId> = lt.nodes().collect();
                    let victim = members[a as usize % members.len()];
                    if Some(victim) == lt.root() {
                        continue;
                    }
                    let old_parent = lt.parent(victim).unwrap();
                    let branch = lt.detach_subtree(victim);
                    let remaining: Vec<NodeId> = lt.nodes().collect();
                    let target = remaining[b as usize % remaining.len()];
                    match lt.try_attach_branch(branch, target) {
                        Ok(()) => {}
                        Err((back, _)) => {
                            lt.try_attach_branch(back, old_parent)
                                .expect("restore cannot fail");
                        }
                    }
                }
                _ => {
                    // Pure detach + guaranteed restore.
                    let members: Vec<NodeId> = lt.nodes().collect();
                    let victim = members[a as usize % members.len()];
                    if Some(victim) == lt.root() {
                        continue;
                    }
                    let parent = lt.parent(victim).unwrap();
                    let branch = lt.detach_subtree(victim);
                    lt.try_attach_branch(branch, parent)
                        .expect("restore cannot fail");
                }
            }
            prop_assert!(lt.check_consistency(), "incremental state diverged");
            for n in lt.nodes().collect::<Vec<_>>() {
                prop_assert!(
                    lt.usage(n).unwrap() <= budget + 1e-6,
                    "budget violated at {}",
                    n
                );
            }
        }
    }

    /// The incremental accounting also holds with funnel metrics in
    /// play (SUM collapses, TOP-k caps) across attach/detach churn.
    #[test]
    fn load_tracker_consistent_with_funnels(
        ops in prop::collection::vec((0u8..2, 0u32..10, 0u32..10), 1..40),
        k in 1u32..5,
    ) {
        use remo_core::build::{LoadTracker, LocalLoad};
        let cost = CostModel::new(3.0, 1.0).unwrap();
        let funnels = vec![Aggregation::Sum, Aggregation::Top(k)];
        let mut lt = LoadTracker::new(cost, funnels, 1e9);
        let load = |h: f64| LocalLoad { holistic: h, funnel: vec![1.0, 1.0] };
        lt.init_root(NodeId(50), load(1.0), 1e9).unwrap();
        for (kind, a, b) in ops {
            let members: Vec<NodeId> = lt.nodes().collect();
            match kind {
                0 => {
                    let parent = members[a as usize % members.len()];
                    let _ = lt.try_attach(NodeId(b), load((b % 3) as f64), 1e9, parent);
                }
                _ => {
                    let victim = members[a as usize % members.len()];
                    if Some(victim) == lt.root() {
                        continue;
                    }
                    let parent = lt.parent(victim).unwrap();
                    let branch = lt.detach_subtree(victim);
                    lt.try_attach_branch(branch, parent).expect("restore");
                }
            }
            prop_assert!(lt.check_consistency(), "funnel accounting diverged");
            // TOP-k funnel: no node emits more than k values of the
            // capped metric plus its holistic + 1 (SUM) load bound.
            let n = lt.len() as f64;
            for node in lt.nodes().collect::<Vec<_>>() {
                let out = lt.outgoing_values(node).unwrap();
                prop_assert!(
                    out <= 3.0 * n + 1.0 + k as f64,
                    "outgoing {} too large at {}",
                    out,
                    node
                );
            }
        }
    }

    /// Funnel functions never increase traffic and are monotone.
    #[test]
    fn funnels_are_contractive_and_monotone(
        x in 0.0f64..1000.0,
        y in 0.0f64..1000.0,
        k in 1u32..50,
    ) {
        for agg in [
            Aggregation::Holistic,
            Aggregation::Sum,
            Aggregation::Max,
            Aggregation::Top(k),
            Aggregation::Distinct,
        ] {
            prop_assert!(agg.funnel(x) <= x + 1e-12);
            let (lo, hi) = if x <= y { (x, y) } else { (y, x) };
            prop_assert!(agg.funnel(lo) <= agg.funnel(hi) + 1e-12);
        }
    }
}
