//! End-to-end tests of the `remo-plan` CLI binary.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::process::Command;

fn remo_plan() -> Command {
    Command::new(env!("CARGO_BIN_EXE_remo-plan"))
}

#[test]
fn example_spec_round_trips_through_planning() {
    let out = remo_plan().arg("--example").output().expect("run");
    assert!(out.status.success());
    let spec_json = String::from_utf8(out.stdout).expect("utf8");
    assert!(spec_json.contains("\"nodes\""));

    let dir = std::env::temp_dir().join("remo-plan-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("spec.json");
    std::fs::write(&path, &spec_json).unwrap();

    // Summary mode.
    let out = remo_plan().arg(&path).output().expect("run");
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("monitoring plan:"), "summary output: {text}");
    assert!(text.contains("coverage"));

    // DOT mode.
    let out = remo_plan().arg(&path).arg("--dot").output().expect("run");
    assert!(out.status.success());
    let dot = String::from_utf8(out.stdout).unwrap();
    assert!(dot.starts_with("digraph monitoring"));
    assert!(dot.contains("collector"));

    // Audit mode.
    let out = remo_plan().arg(&path).arg("--audit").output().expect("run");
    assert!(out.status.success());
    let audit = String::from_utf8(out.stdout).unwrap();
    assert!(audit.contains("audit clean"), "audit output: {audit}");
}

#[test]
fn trace_and_metrics_flags_write_parseable_exports() {
    let out = remo_plan().arg("--example").output().expect("run");
    assert!(out.status.success());
    let dir = std::env::temp_dir().join("remo-plan-test-obs");
    std::fs::create_dir_all(&dir).unwrap();
    let spec = dir.join("spec.json");
    std::fs::write(&spec, &out.stdout).unwrap();
    let trace = dir.join("out.jsonl");
    let metrics = dir.join("out.prom");

    // Flag order must not matter: values before the spec path.
    let out = remo_plan()
        .arg("--trace")
        .arg(&trace)
        .arg("--metrics")
        .arg(&metrics)
        .arg(&spec)
        .output()
        .expect("run");
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("monitoring plan:"), "summary still prints");

    let jsonl = std::fs::read_to_string(&trace).unwrap();
    let summary = remo_obs::summary::parse_trace(&jsonl).expect("trace parses");
    for phase in ["planner.seed", "planner.local"] {
        assert!(summary.spans.contains_key(phase), "missing span {phase}");
    }
    let prom = std::fs::read_to_string(&metrics).unwrap();
    let samples = remo_obs::summary::parse_prometheus(&prom).expect("metrics parse");
    assert_eq!(samples["remo_planner_plans_total"], 1.0);

    // A value-less flag is a usage error, not a mis-parsed spec path.
    let out = remo_plan().arg(&spec).arg("--trace").output().expect("run");
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("--trace requires"), "stderr: {err}");
}

#[test]
fn missing_file_fails_cleanly() {
    let out = remo_plan()
        .arg("/nonexistent/spec.json")
        .output()
        .expect("run");
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("cannot read"));
}

#[test]
fn malformed_spec_fails_cleanly() {
    let dir = std::env::temp_dir().join("remo-plan-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bad.json");
    std::fs::write(&path, "{\"nodes\": }").unwrap();
    let out = remo_plan().arg(&path).output().expect("run");
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("bad spec"));
}

#[test]
fn no_arguments_prints_usage() {
    let out = remo_plan().output().expect("run");
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("usage:"));
}
