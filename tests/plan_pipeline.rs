//! End-to-end planning pipeline tests: task generation → deduplication
//! → planning, across partition schemes, builders, and allocation
//! schemes.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use rand::rngs::SmallRng;
use rand::SeedableRng;
use remo::prelude::*;
use remo_audit::{Audit, AuditInput};
use remo_core::alloc::AllocationScheme;
use remo_core::build::{AdjustConfig, BuilderKind};
use remo_core::planner::{PartitionScheme, PlannerConfig};
use remo_core::TaskId;

fn scenario(nodes: usize, attrs: usize, tasks: usize, budget: f64) -> Scenario {
    Scenario::with_taskgen(
        &ScenarioConfig {
            nodes,
            attrs,
            tasks,
            node_budget: budget,
            collector_budget: budget * nodes as f64 / 4.0,
            c_over_a: 2.0,
            seed: 99,
        },
        &TaskGenConfig::small_scale(nodes, attrs),
    )
}

#[test]
fn all_schemes_respect_capacity_invariants() {
    let s = scenario(40, 30, 40, 20.0);
    let planner = Planner::default();
    let catalog = AttrCatalog::new();
    for scheme in [
        PartitionScheme::SingletonSet,
        PartitionScheme::OneSet,
        PartitionScheme::Remo,
    ] {
        let plan = scheme.plan(&planner, &s.pairs, &s.caps, s.cost, &catalog);
        // The audit engine re-proves every paper invariant from the
        // plan alone: budgets, disjointness, coverage accounting, tree
        // structure, allocation conservation, and the cost model.
        let outcome =
            Audit::new().run(&AuditInput::new(&plan, &s.pairs, &s.caps, s.cost, &catalog));
        assert!(
            outcome.is_clean(),
            "{scheme:?} failed its audit:\n{}",
            outcome.render()
        );
        // Spot-check a few invariants directly so this test does not
        // depend solely on the audit engine agreeing with itself.
        for (n, u) in plan.node_usage() {
            assert!(
                u <= s.caps.node(n).unwrap() + 1e-6,
                "{scheme:?}: node {n} over budget"
            );
        }
        assert!(plan.collector_usage() <= s.caps.collector() + 1e-6);
        assert!(plan.partition().is_valid());
        assert_eq!(plan.demanded_pairs(), s.pairs.len());
    }
}

#[test]
fn remo_dominates_baselines_across_loads() {
    let planner = Planner::default();
    let catalog = AttrCatalog::new();
    for budget in [10.0, 20.0, 40.0] {
        let s = scenario(30, 24, 30, budget);
        let score = |scheme: PartitionScheme| {
            scheme
                .plan(&planner, &s.pairs, &s.caps, s.cost, &catalog)
                .collected_pairs()
        };
        let remo = score(PartitionScheme::Remo);
        let sp = score(PartitionScheme::SingletonSet);
        let op = score(PartitionScheme::OneSet);
        assert!(
            remo >= sp.max(op),
            "budget {budget}: remo {remo} below baselines (sp {sp}, op {op})"
        );
    }
}

#[test]
fn every_collected_pair_is_actually_routed() {
    // Cross-check the plan's collected count against the tree
    // structures: summing per-node local loads over included nodes must
    // reproduce collected_pairs.
    let s = scenario(25, 20, 25, 25.0);
    let plan = Planner::default().plan(&s.pairs, &s.caps, s.cost);
    for (set, planned) in plan.partition().sets().iter().zip(plan.trees()) {
        let from_tree: usize = planned
            .tree
            .as_ref()
            .map(|t| {
                t.nodes()
                    .map(|n| s.pairs.node_load_in(n, set))
                    .sum::<usize>()
            })
            .unwrap_or(0);
        assert_eq!(from_tree, planned.collected_pairs);
    }
}

#[test]
fn builders_form_expected_shapes_at_scale() {
    let s = scenario(30, 6, 10, 1_000.0);
    let catalog = AttrCatalog::new();
    let shape = |kind: BuilderKind| {
        let cfg = PlannerConfig {
            builder: kind,
            ..PlannerConfig::default()
        };
        let plan = Planner::new(cfg)
            .evaluate_partition(
                &remo_core::Partition::one_set(s.pairs.attr_universe()),
                &s.pairs,
                &s.caps,
                s.cost,
                &catalog,
            )
            .into_plan();
        plan.trees()[0]
            .tree
            .as_ref()
            .map(|t| t.height())
            .unwrap_or(0)
    };
    let star = shape(BuilderKind::Star);
    let chain = shape(BuilderKind::Chain);
    assert!(
        star < chain,
        "star {star} should be shallower than chain {chain}"
    );
}

#[test]
fn adaptive_builder_beats_simple_builders_under_pressure() {
    let s = scenario(40, 10, 40, 14.0);
    let catalog = AttrCatalog::new();
    let collect = |kind: BuilderKind| {
        let cfg = PlannerConfig {
            builder: kind,
            ..PlannerConfig::default()
        };
        Planner::new(cfg)
            .evaluate_partition(
                &remo_core::Partition::singleton(s.pairs.attr_universe()),
                &s.pairs,
                &s.caps,
                s.cost,
                &catalog,
            )
            .into_plan()
            .collected_pairs()
    };
    let adaptive = collect(BuilderKind::Adaptive(AdjustConfig::default()));
    for kind in [BuilderKind::Star, BuilderKind::Chain, BuilderKind::MaxAvb] {
        let other = collect(kind);
        assert!(
            adaptive >= other,
            "{kind:?} collected {other} > adaptive {adaptive}"
        );
    }
}

#[test]
fn allocation_schemes_ranked_as_paper_reports() {
    // Fig. 11 ordering: ORDERED ≥ ON-DEMAND ≥ max(UNIFORM, PROPORTIONAL)
    // on mixed-size trees. We assert the ends of the ordering.
    let mut rng = SmallRng::seed_from_u64(4);
    let gen = TaskGenConfig::small_scale(35, 25);
    let tasks = gen.generate(45, TaskId(0), &mut rng);
    let pairs: PairSet = tasks.iter().flat_map(|t| t.pairs()).collect();
    let caps = CapacityMap::uniform(35, 15.0, 200.0).unwrap();
    let cost = CostModel::new(2.0, 1.0).unwrap();
    let catalog = AttrCatalog::new();
    let collect = |alloc: AllocationScheme| {
        let cfg = PlannerConfig {
            allocation: alloc,
            ..PlannerConfig::default()
        };
        Planner::new(cfg)
            .evaluate_partition(
                &remo_core::Partition::singleton(pairs.attr_universe()),
                &pairs,
                &caps,
                cost,
                &catalog,
            )
            .into_plan()
            .collected_pairs()
    };
    let ordered = collect(AllocationScheme::Ordered);
    let uniform = collect(AllocationScheme::Uniform);
    assert!(
        ordered >= uniform,
        "ordered {ordered} must match or beat uniform {uniform}"
    );
}

#[test]
fn task_manager_round_trips_through_planner() {
    let mut tm = TaskManager::new();
    tm.add(MonitoringTask::new(
        TaskId(0),
        (0..3).map(AttrId),
        (0..10).map(NodeId),
    ))
    .unwrap();
    tm.add(MonitoringTask::new(
        TaskId(1),
        (1..4).map(AttrId),
        (5..15).map(NodeId),
    ))
    .unwrap();
    let caps = CapacityMap::uniform(15, 100.0, 1_000.0).unwrap();
    let plan = Planner::default().plan(&tm.pairs(), &caps, CostModel::default());
    assert_eq!(plan.coverage(), 1.0, "ample capacity collects everything");
    // Remove a task: fewer pairs demanded.
    tm.apply(TaskChange::Remove(TaskId(1))).unwrap();
    let plan2 = Planner::default().plan(&tm.pairs(), &caps, CostModel::default());
    assert!(plan2.demanded_pairs() < plan.demanded_pairs());
}
