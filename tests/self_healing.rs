//! Chaos-harness integration tests: crash and heal agents mid-run and
//! assert the self-healing coordinator's recovery SLOs — confirmation
//! within K epochs of a silent crash, automatic plan repair, and
//! ≥ 95% of the surviving (node, attribute) pairs delivered within 10
//! epochs of confirmation — with time-to-detect, MTTR, and lost-value
//! telemetry present in the [`HealthReport`].

#![allow(clippy::unwrap_used, clippy::expect_used)]

use remo::prelude::*;
use remo::runtime::Sampler;
use std::sync::Arc;
use std::time::Duration;

const CONFIRM_AFTER: u32 = 2;

fn sampler() -> Sampler {
    Arc::new(|n: NodeId, a: AttrId, e: u64| (n.0 * 100 + a.0 * 10) as f64 + (e % 5) as f64)
}

fn dense_pairs(nodes: u32, attrs: u32) -> PairSet {
    (0..nodes)
        .flat_map(|n| (0..attrs).map(move |a| (NodeId(n), AttrId(a))))
        .collect()
}

fn fast_health() -> HealthConfig {
    HealthConfig {
        deadline: Duration::from_millis(80),
        confirm_after: CONFIRM_AFTER,
        ..HealthConfig::default()
    }
}

/// A self-healing deployment over `nodes` nodes plus the planned pair
/// set and the root of the first monitoring tree (a relay whose crash
/// orphans a whole subtree).
fn launch(nodes: usize, attrs: u32) -> (Deployment, PairSet, NodeId) {
    let caps = CapacityMap::uniform(nodes, 100.0, 10_000.0).unwrap();
    let cost = CostModel::new(2.0, 1.0).unwrap();
    let pairs = dense_pairs(nodes as u32, attrs);
    let planner = AdaptivePlanner::new(
        Planner::default(),
        AdaptScheme::Adaptive,
        pairs.clone(),
        caps,
        cost,
        AttrCatalog::new(),
    );
    let root = planner.plan().trees()[0]
        .tree
        .as_ref()
        .expect("first tree planned")
        .root();
    let dep = Deployment::launch_self_healing(planner, sampler(), fast_health());
    (dep, pairs, root)
}

/// Fraction of `pairs` whose collector snapshot was produced at or
/// after `since`.
fn fresh_fraction(
    dep: &Deployment,
    pairs: impl IntoIterator<Item = (NodeId, AttrId)>,
    since: u64,
) -> f64 {
    let mut total = 0u64;
    let mut fresh = 0u64;
    for (n, a) in pairs {
        total += 1;
        if dep.observed(n, a).is_some_and(|obs| obs.produced >= since) {
            fresh += 1;
        }
    }
    fresh as f64 / total.max(1) as f64
}

#[test]
fn crashed_relay_confirmed_repaired_and_survivors_recover() {
    let (mut dep, pairs, victim) = launch(12, 2);
    dep.run(6);
    assert_eq!(
        dep.observed_pairs(),
        pairs.len(),
        "healthy warm-up collects everything"
    );

    // Crash the first tree's root: its entire subtree is orphaned.
    let crash_epoch = dep.epoch();
    dep.fail_node(victim);

    // The coordinator must confirm within K epochs of the first miss
    // (plus the epoch where the crash takes effect).
    let mut confirm_epoch = None;
    for _ in 0..CONFIRM_AFTER as u64 + 1 {
        dep.tick();
        if dep.health_report().states[&victim] == HealthState::Dead {
            confirm_epoch = Some(dep.epoch());
            break;
        }
    }
    let confirm_epoch = confirm_epoch.expect("confirmed within K epochs of the crash");
    assert!(confirm_epoch <= crash_epoch + CONFIRM_AFTER as u64 + 1);

    // Confirmation triggered handle_node_failure + targeted repair.
    let hr = dep.health_report();
    assert_eq!(hr.stats[&victim].confirmed, 1);
    assert_eq!(
        hr.stats[&victim].repaired, 1,
        "plan repaired on confirmation"
    );
    assert!(hr.stats[&victim].values_lost > 0, "lost readings accounted");
    assert!(hr.stats[&victim].mttr_epochs >= hr.stats[&victim].time_to_detect);

    // SLO: within 10 epochs of confirmation, ≥95% of the remaining
    // pairs deliver values produced after confirmation.
    dep.run(10);
    let remaining = pairs.iter().filter(|(n, _)| *n != victim);
    let fraction = fresh_fraction(&dep, remaining, confirm_epoch);
    assert!(
        fraction >= 0.95,
        "only {:.0}% of surviving pairs recovered within 10 epochs",
        fraction * 100.0
    );
    dep.shutdown();
}

#[test]
fn chaos_schedule_crashes_and_heals_agents_mid_run() {
    let (mut dep, pairs, victim) = launch(10, 1);

    // Two overlapping windows on the victim: the union is [4, 14].
    let mut sched = FailureSchedule::new();
    sched.add(Outage::node(victim, 4, Some(14)));
    sched.add(Outage::node(victim, 6, Some(10)));
    let mut chaos = ChaosDriver::new(sched);

    let reports = chaos.run(&mut dep, 30);
    let confirmed: u64 = reports.iter().map(|r| r.confirmed_dead).sum();
    let repaired: u64 = reports.iter().map(|r| r.repaired).sum();
    let recovered: u64 = reports.iter().map(|r| r.recovered).sum();
    assert_eq!(
        confirmed, 1,
        "one crash confirmed despite overlapping windows"
    );
    assert_eq!(repaired, 1, "confirmation repaired the plan once");
    assert_eq!(
        recovered, 1,
        "healing at the end of the union window reintegrates"
    );

    let hr = dep.health_report();
    assert_eq!(hr.states[&victim], HealthState::Healthy);
    assert_eq!(hr.stats[&victim].recovered, 1);
    assert!(hr.stats[&victim].values_lost > 0);

    // After reintegration every pair — including the victim's — is
    // delivered again.
    let fraction = fresh_fraction(&dep, pairs.iter(), dep.epoch().saturating_sub(10));
    assert!(
        fraction >= 0.95,
        "only {:.0}% of all pairs fresh after reintegration",
        fraction * 100.0
    );
    dep.shutdown();
}

#[test]
fn epoch_reports_aggregate_health_counters() {
    let (mut dep, _pairs, victim) = launch(8, 1);
    dep.run(3);
    dep.fail_node(victim);
    let total = dep.run(6);
    assert_eq!(total.suspected, 1);
    assert_eq!(total.confirmed_dead, 1);
    assert_eq!(total.repaired, 1);
    assert!(total.reconfigure_messages >= 1, "survivors re-routed");
    assert!(total.values_lost > 0);
    dep.shutdown();
}
