//! Delivery semantics under arbitrary network faults.
//!
//! The ARQ layer's contract: at-least-once delivery plus idempotent
//! receiver-side dedup means that once the network heals, the
//! collector on a lossy transport agrees exactly with the collector on
//! the perfect transport — whatever drops, delays, duplicates,
//! reorders, and partitions happened along the way — and the stored
//! `received` epoch never precedes `produced`.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use proptest::prelude::*;
use remo::prelude::*;
use remo_runtime::{Deployment, NetConfig, NetSpec, PartitionWindow, Sampler, TransportSpec};
use remo_sim::CollectorStore;
use std::collections::BTreeSet;
use std::sync::Arc;

fn sampler() -> Sampler {
    Arc::new(|n: NodeId, a: AttrId, e: u64| {
        (n.0 as f64) * 100.0 + (a.0 as f64) * 10.0 + (e % 9) as f64
    })
}

/// Roomy budgets: these tests isolate transport faults, so capacity
/// pressure (a different, already-tested shedding path) must not
/// engage.
const NODE_BUDGET: f64 = 10_000.0;
const COLLECTOR_BUDGET: f64 = 1_000_000.0;

fn launch_lossy(nodes: u32, attrs: u32, spec: NetSpec) -> (Deployment, Deployment, PairSet) {
    let caps = CapacityMap::uniform(nodes as usize, NODE_BUDGET, COLLECTOR_BUDGET).unwrap();
    let cost = CostModel::new(2.0, 1.0).unwrap();
    let pairs: PairSet = (0..nodes)
        .flat_map(|n| (0..attrs).map(move |a| (NodeId(n), AttrId(a))))
        .collect();
    let catalog = AttrCatalog::new();
    let plan = Planner::default().plan_with_catalog(&pairs, &caps, cost, &catalog);
    let net = NetConfig {
        // Never engage collector backpressure: degradation changes
        // sampling schedules and would (correctly) diverge the stores.
        ingress_capacity: 1_000_000,
        record_deliveries: true,
        ..NetConfig::default()
    };
    let lossy = Deployment::launch_with_transport(
        &plan,
        &pairs,
        &caps,
        cost,
        &catalog,
        sampler(),
        HealthConfig::default(),
        TransportSpec::Lossy(spec, net),
    );
    let perfect = Deployment::launch(&plan, &pairs, &caps, cost, &catalog, sampler());
    (lossy, perfect, pairs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Under arbitrary drop/delay/dup/reorder (and an optional
    /// partition window), the lossy collector's final snapshot equals
    /// the perfect one once the network heals, every stored value is
    /// bit-exact against the sampler, and `received >= produced`
    /// always holds — including in the raw delivery log replayed into
    /// a fresh `CollectorStore`.
    #[test]
    fn lossy_store_converges_to_perfect(
        seed in 0u64..u64::MAX,
        nodes in 3u32..8,
        attrs in 1u32..3,
        drop in 0.0f64..0.35,
        delay_max in 0u64..3,
        dup in 0.0f64..0.25,
        reorder in 0.0f64..0.25,
        part_from in 5u64..15,
        part_len in 3u64..12,
        part_members in prop::collection::btree_set(0u32..8, 0..4),
    ) {
        const HEAL_AT: u64 = 30;
        const TOTAL: u64 = 55;
        let members: BTreeSet<NodeId> = part_members
            .into_iter()
            .filter(|&m| m < nodes)
            .map(NodeId)
            .collect();
        let partitions = if members.is_empty() {
            Vec::new()
        } else {
            vec![PartitionWindow {
                name: "prop-window".into(),
                members,
                from_epoch: part_from,
                until_epoch: Some(part_from + part_len),
            }]
        };
        let spec = NetSpec {
            seed,
            drop,
            delay_max,
            dup,
            reorder,
            partitions,
            active_until: Some(HEAL_AT),
            ..NetSpec::default()
        };
        let (mut lossy, mut perfect, pairs) = launch_lossy(nodes, attrs, spec);
        lossy.run(TOTAL);
        perfect.run(TOTAL);

        let s = sampler();
        for (n, a) in pairs.iter() {
            let p = perfect.observed(n, a);
            let l = lossy.observed(n, a);
            match (p, l) {
                (Some(p), Some(l)) => {
                    prop_assert_eq!(
                        (l.value, l.produced),
                        (p.value, p.produced),
                        "stores diverge for {}/{} after heal", n, a
                    );
                    prop_assert_eq!(l.value, s(n, a, l.produced), "corrupt value");
                    prop_assert!(l.received >= l.produced, "time travel at {}/{}", n, a);
                }
                (None, None) => {}
                (p, l) => prop_assert!(
                    false,
                    "coverage diverges for {}/{}: perfect={:?} lossy={:?}", n, a, p, l
                ),
            }
        }

        // Replay the raw delivery log into the simulator's collector
        // store: same final snapshot, and received >= produced on
        // every single accepted reading, not just the survivors.
        let mut replay = CollectorStore::new();
        for d in lossy.delivery_log() {
            prop_assert!(d.received >= d.produced, "log time travel");
            replay.record(
                &remo_sim::Reading {
                    node: d.node,
                    attr: d.attr,
                    value: d.value,
                    produced: d.produced,
                    contributors: d.contributors,
                },
                d.received,
            );
        }
        for (n, a) in pairs.iter() {
            let p = perfect.observed(n, a);
            let r = replay.get(n, a);
            match (p, r) {
                (Some(p), Some(r)) => {
                    prop_assert_eq!((r.value, r.produced), (p.value, p.produced));
                }
                (None, None) => {}
                (p, r) => prop_assert!(
                    false,
                    "replayed store diverges for {}/{}: perfect={:?} replay={:?}", n, a, p, r
                ),
            }
        }
        lossy.shutdown();
        perfect.shutdown();
    }
}

/// Fault accounting sanity on a known-seeded network: injected faults
/// show up in the transport stats, and the ARQ layer retransmits.
#[test]
fn faults_are_injected_and_survived() {
    let spec = NetSpec {
        seed: 42,
        drop: 0.25,
        delay_max: 2,
        dup: 0.1,
        reorder: 0.2,
        active_until: Some(40),
        ..NetSpec::default()
    };
    let (mut lossy, mut perfect, pairs) = launch_lossy(6, 2, spec);
    let total = lossy.run(60);
    perfect.run(60);
    let stats = lossy.net_stats();
    assert!(stats.dropped_random > 0, "25% drop must drop something");
    assert!(stats.duplicated > 0, "10% dup must duplicate something");
    assert!(stats.delayed > 0, "delays must queue something");
    assert!(
        total.retransmit_messages > 0,
        "dropped frames must be retransmitted"
    );
    assert!(
        total.duplicate_messages_ignored > 0,
        "dup/retransmit replays must be deduped"
    );
    // And despite all of it: full agreement with the perfect store.
    for (n, a) in pairs.iter() {
        let p = perfect.observed(n, a).expect("perfect covers pair");
        let l = lossy.observed(n, a).expect("lossy covers pair");
        assert_eq!((l.value, l.produced), (p.value, p.produced));
    }
    lossy.shutdown();
    perfect.shutdown();
}

/// A permanent partition keeps members' readings out; healing it lets
/// fresh samples through again (graceful degradation, then recovery).
#[test]
fn partition_window_isolates_then_heals() {
    let spec = NetSpec {
        seed: 7,
        partitions: vec![PartitionWindow {
            name: "island".into(),
            members: [NodeId(0)].into_iter().collect(),
            from_epoch: 10,
            until_epoch: Some(25),
        }],
        ..NetSpec::default()
    };
    let (mut lossy, _perfect, _pairs) = launch_lossy(4, 1, spec);
    lossy.run(9);
    let before = lossy
        .observed(NodeId(0), AttrId(0))
        .expect("observed before window");
    lossy.run(11); // epochs 10..=20, inside the window
    let during = lossy
        .observed(NodeId(0), AttrId(0))
        .expect("stale snapshot survives");
    assert!(
        during.produced <= before.produced + 5,
        "island data must stop flowing (got produced {})",
        during.produced
    );
    assert!(lossy.net_stats().dropped_partition > 0);
    lossy.run(20); // window over: fresh data again
    let after = lossy
        .observed(NodeId(0), AttrId(0))
        .expect("observed after heal");
    assert!(after.produced > during.produced, "partition must heal");
    lossy.shutdown();
}
