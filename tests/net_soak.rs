//! Perfect-path regression pinning and the combined chaos soak.
//!
//! Two guarantees ride here:
//!
//! 1. The transport refactor must not change the perfect path at all:
//!    a seeded deployment's per-epoch `EpochReport`s are pinned
//!    against values captured from the pre-transport runtime.
//! 2. Under hundreds of epochs of combined node failures and network
//!    faults (drop + delay + dup + reorder + a partition window), the
//!    self-healing collector converges with bounded staleness, zero
//!    store corruption, and fault telemetry that reconciles with the
//!    injected faults.
//!
//! Every test here takes `remo_obs::test_guard()`: the soak asserts
//! process-global metric counters, so tests in this binary must not
//! interleave their deployments.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use remo::prelude::*;
use remo_runtime::{Deployment, NetConfig, NetSpec, PartitionWindow, Sampler, TransportSpec};
use std::collections::BTreeSet;
use std::sync::Arc;

fn sampler() -> Sampler {
    Arc::new(|n: NodeId, a: AttrId, e: u64| (n.0 * 1000 + a.0 * 10) as f64 + (e % 7) as f64)
}

fn dense_pairs(nodes: u32, attrs: u32) -> PairSet {
    (0..nodes)
        .flat_map(|n| (0..attrs).map(move |a| (NodeId(n), AttrId(a))))
        .collect()
}

/// The exact per-epoch reports the pre-transport runtime produced for
/// this scenario (captured from the seed revision): the perfect
/// transport must reproduce them bit for bit.
#[test]
fn perfect_path_reports_are_byte_identical_to_pre_transport_runtime() {
    let _guard = remo_obs::test_guard();
    let caps = CapacityMap::uniform(6, 100.0, 10_000.0).unwrap();
    let cost = CostModel::new(2.0, 1.0).unwrap();
    let pairs = dense_pairs(6, 2);
    let catalog = AttrCatalog::new();
    let plan = Planner::default().plan_with_catalog(&pairs, &caps, cost, &catalog);
    let mut dep = Deployment::launch(&plan, &pairs, &caps, cost, &catalog, sampler());
    for epoch in 1..=12u64 {
        let r = dep.tick();
        let expected = if epoch == 1 {
            (2, 0, 0, 24.0)
        } else {
            (12, 0, 0, 34.0)
        };
        assert_eq!(
            (
                r.delivered_values,
                r.dropped_messages,
                r.dropped_readings,
                r.volume
            ),
            expected,
            "perfect path diverged from pre-transport runtime at epoch {epoch}"
        );
        // The robustness machinery must stay entirely dormant.
        assert_eq!(r.retransmit_messages, 0);
        assert_eq!(r.duplicate_messages_ignored, 0);
        assert_eq!(r.abandoned_messages, 0);
        assert_eq!(r.shed_readings, 0);
        assert_eq!(r.backpressure_signals, 0);
        assert_eq!(r.ingress_depth, 0);
    }
    assert_eq!(dep.net_stats(), Default::default());
    assert!(
        !dep.set_link_down(NodeId(0), NodeId(1), true),
        "perfect transport cannot model link faults"
    );
    dep.shutdown();
}

fn fast_health(confirm_after: u32) -> HealthConfig {
    HealthConfig {
        deadline: std::time::Duration::from_millis(60),
        confirm_after,
        ..HealthConfig::default()
    }
}

fn lossy_self_healing(
    nodes: u32,
    attrs: u32,
    spec: NetSpec,
    net: NetConfig,
) -> (Deployment, PairSet) {
    let caps = CapacityMap::uniform(nodes as usize, 200.0, 50_000.0).unwrap();
    let cost = CostModel::new(2.0, 1.0).unwrap();
    let pairs = dense_pairs(nodes, attrs);
    let planner = AdaptivePlanner::new(
        Planner::default(),
        AdaptScheme::Adaptive,
        pairs.clone(),
        caps,
        cost,
        AttrCatalog::new(),
    );
    let dep = Deployment::launch_self_healing_with_transport(
        planner,
        sampler(),
        fast_health(2),
        TransportSpec::Lossy(spec, net),
    );
    (dep, pairs)
}

/// The headline acceptance test: ≥300 epochs of node failures, ≥5%
/// drop, delivery delay, duplication, reordering, a partition window,
/// and a chaos-driven link outage — the collector must converge within
/// the declared staleness bound with zero corruption, and the metrics
/// must account for every injected fault.
#[test]
fn chaos_soak_converges_with_bounded_staleness() {
    let _obs_guard = remo_obs::test_guard();
    remo_obs::registry::registry().reset();
    remo_obs::enable();

    const EPOCHS: u64 = 300;
    let members: BTreeSet<NodeId> = [NodeId(1), NodeId(2), NodeId(3)].into_iter().collect();
    let spec = NetSpec {
        seed: 2026,
        drop: 0.06,
        delay_max: 2,
        dup: 0.03,
        reorder: 0.1,
        partitions: vec![PartitionWindow {
            name: "west-wing".into(),
            members,
            from_epoch: 120,
            until_epoch: Some(150),
        }],
        active_until: Some(270),
        ..NetSpec::default()
    };
    let (mut dep, pairs) = lossy_self_healing(10, 2, spec, NetConfig::default());

    // Cut a relay edge that really carries tree traffic: pick a
    // child → parent route from the launched assignments. The window
    // sits before the first node failure, while the launch topology
    // is still live.
    let (child, parent) = dep
        .assignments()
        .iter()
        .find_map(|(&node, assigns)| {
            assigns.iter().find_map(|a| match a.parent {
                remo_runtime::Route::Node(p) => Some((node, p)),
                remo_runtime::Route::Collector => None,
            })
        })
        .expect("10-node forest must contain at least one relay edge");

    let mut schedule = FailureSchedule::new();
    schedule.add(Outage::link(child, parent, 20, Some(50)));
    schedule.add(Outage::node(NodeId(5), 60, Some(90)));
    schedule.add(Outage::node(NodeId(7), 180, Some(210)));
    let mut chaos = ChaosDriver::new(schedule);

    let reports = chaos.run(&mut dep, EPOCHS);
    remo_obs::disable();
    assert_eq!(reports.len(), EPOCHS as usize);

    // Fold the epoch reports the way Deployment::run does.
    let retransmits: u64 = reports.iter().map(|r| r.retransmit_messages).sum();
    let abandoned: u64 = reports.iter().map(|r| r.abandoned_messages).sum();
    let dups_ignored: u64 = reports.iter().map(|r| r.duplicate_messages_ignored).sum();
    let confirmed: u64 = reports.iter().map(|r| r.confirmed_dead).sum();
    let repaired: u64 = reports.iter().map(|r| r.repaired).sum();
    let recovered: u64 = reports.iter().map(|r| r.recovered).sum();

    // The scripted failures were detected, repaired, and recovered.
    assert_eq!(confirmed, 2, "both node outages confirmed");
    assert_eq!(repaired, 2, "both failures repaired");
    assert_eq!(recovered, 2, "both nodes reintegrated");

    // The network actually hurt, and ARQ actually fought back.
    let stats = dep.net_stats();
    assert!(stats.dropped_random > 0, "6% drop must bite");
    assert!(stats.dropped_partition > 0, "partition must cut traffic");
    assert!(stats.dropped_link_down > 0, "chaos link outage must bite");
    assert!(stats.duplicated > 0 && stats.delayed > 0);
    assert!(retransmits > 0, "losses must trigger retransmissions");
    assert!(dups_ignored > 0, "replays must be deduped");

    // Random drops reconcile with the NetSpec's drop probability:
    // every attempt (data + ack) faced p = 0.06 while faults were
    // active (90% of the run), so the observed rate must sit near it.
    let attempts = stats.data_sent + stats.acks_sent;
    let rate = stats.dropped_random as f64 / attempts as f64;
    assert!(
        (0.02..=0.12).contains(&rate),
        "drop rate {rate:.4} unreasonably far from spec 0.06"
    );

    // Zero store corruption: every stored value is bit-exact against
    // the sampler at its claimed produce epoch, and never from the
    // future.
    let s = sampler();
    for (n, a) in pairs.iter() {
        let obs = dep.observed(n, a).expect("pair observed by soak end");
        assert_eq!(obs.value, s(n, a, obs.produced), "corrupt store at {n}/{a}");
        assert!(obs.received >= obs.produced, "time travel at {n}/{a}");
    }

    // Convergence: the network healed at 270 — by 300 every pair's
    // snapshot is within the declared per-attribute staleness bound.
    let bounds = dep.staleness_bounds();
    for (n, a) in pairs.iter() {
        let obs = dep.observed(n, a).expect("pair observed");
        let staleness = dep.epoch() - obs.produced;
        let bound = bounds[&a];
        assert!(
            staleness <= bound,
            "{n}/{a} staleness {staleness} exceeds declared bound {bound}"
        );
    }

    // Metric reconciliation: the obs layer accounts for every injected
    // fault. Transport-side counters are incremented under the same
    // lock as the stats and must match exactly; agent-side counters
    // are folded through tick reports, where a straggling report after
    // the final tick can escape the fold — allow only that slack.
    let c = |name: &str| remo_obs::counter(name).get() as u64;
    assert_eq!(c("remo_net_dropped_frames_total"), stats.total_dropped());
    assert_eq!(c("remo_net_duplicated_frames_total"), stats.duplicated);
    assert_eq!(c("remo_net_delayed_frames_total"), stats.delayed);
    let retx_metric = c("remo_net_retransmits_total");
    assert!(
        retx_metric >= retransmits && retx_metric - retransmits <= 50,
        "retransmit counter {retx_metric} vs folded {retransmits}"
    );
    let abandoned_metric = c("remo_net_abandoned_frames_total");
    assert!(
        abandoned_metric >= abandoned && abandoned_metric - abandoned <= 50,
        "abandoned counter {abandoned_metric} vs folded {abandoned}"
    );

    dep.shutdown();
}

/// Collector overload sheds gracefully: with a starved collector and a
/// tiny ingress queue, the deployment must degrade (widen reporting
/// intervals, shed lowest-value readings) instead of corrupting state
/// or growing without bound — and must surface the degradation.
#[test]
fn overload_degrades_gracefully_and_recovers() {
    let _guard = remo_obs::test_guard();
    const EPOCHS: u64 = 120;
    let spec = NetSpec {
        seed: 9,
        ..NetSpec::default() // loss-free: isolate the overload path
    };
    let net = NetConfig {
        ingress_capacity: 16,
        ..NetConfig::default()
    };
    // Provisioning mismatch: the plan assumed a well-provisioned
    // collector, but the deployed one has a fraction of that budget —
    // the runtime must absorb the overload the planner never saw.
    let planned_caps = CapacityMap::uniform(10, 200.0, 10_000.0).unwrap();
    let caps = CapacityMap::uniform(10, 200.0, 30.0).unwrap(); // starved collector
    let cost = CostModel::new(2.0, 1.0).unwrap();
    let pairs = dense_pairs(10, 3);
    let catalog = AttrCatalog::new();
    let plan = Planner::default().plan_with_catalog(&pairs, &planned_caps, cost, &catalog);
    let mut dep = Deployment::launch_with_transport(
        &plan,
        &pairs,
        &caps,
        cost,
        &catalog,
        sampler(),
        HealthConfig::default(),
        TransportSpec::Lossy(spec, net),
    );

    let total = dep.run(EPOCHS);
    assert!(
        total.backpressure_signals > 0,
        "saturated collector must signal backpressure"
    );
    assert!(
        total.degrade_factor > 1,
        "reporting intervals must widen under overload"
    );
    assert!(
        total.shed_readings > 0,
        "bounded ingress must shed under overload"
    );
    assert!(
        total.ingress_depth <= 16,
        "ingress queue must stay bounded, got {}",
        total.ingress_depth
    );
    // Degradation is graceful: whatever was kept is uncorrupted, and
    // the staleness bounds honestly reflect the widened intervals.
    let s = sampler();
    for (n, a) in pairs.iter() {
        if let Some(obs) = dep.observed(n, a) {
            assert_eq!(obs.value, s(n, a, obs.produced), "corrupt store at {n}/{a}");
        }
    }
    let bounds = dep.staleness_bounds();
    let base = 1 + 1 + NetConfig::default().base_rto + 1; // period + depth(root) + rto + 1
    assert!(
        bounds
            .values()
            .all(|&b| b >= base + dep.degrade_factor() - 1),
        "declared bounds must reflect the degrade factor"
    );
    dep.shutdown();
}

/// Walks a node's parent chain the way the runtime does, so the tests
/// below can reproduce the declared closed form independently.
fn route_depth_of(dep: &Deployment, node: NodeId, tree: u32) -> u64 {
    let assignments = dep.assignments();
    let mut depth = 1u64;
    let mut cur = node;
    loop {
        let a = assignments[&cur]
            .iter()
            .find(|a| a.tree == tree)
            .expect("route stays inside the tree");
        match a.parent {
            remo_runtime::Route::Collector => return depth,
            remo_runtime::Route::Node(p) => {
                depth += 1;
                cur = p;
            }
        }
    }
}

/// `staleness_bounds()` under a nonzero degrade factor: the declared
/// per-attribute bound is exactly
/// `period·factor + depth + base_rto + 1` maximized over owning
/// nodes, so when backpressure widens the reporting interval every
/// bound moves by `period·(factor − 1)` — per attribute, scaled by
/// that attribute's own period.
#[test]
fn staleness_bounds_scale_with_the_degrade_factor() {
    let _guard = remo_obs::test_guard();
    let spec = NetSpec {
        seed: 11,
        ..NetSpec::default() // loss-free: isolate the overload path
    };
    let net = NetConfig {
        ingress_capacity: 16,
        ..NetConfig::default()
    };
    // A half-rate attribute (period 2) alongside full-rate ones, so the
    // factor multiplies different periods in the same deployment.
    let mut catalog = AttrCatalog::new();
    catalog.register(AttrInfo::new("fast"));
    catalog.register(AttrInfo::new("slow").with_frequency(0.5).unwrap());
    catalog.register(AttrInfo::new("fast2"));
    // Same provisioning mismatch as the overload soak: planned against
    // a healthy collector, deployed against a starved one.
    let planned_caps = CapacityMap::uniform(10, 200.0, 10_000.0).unwrap();
    let caps = CapacityMap::uniform(10, 200.0, 30.0).unwrap();
    let cost = CostModel::new(2.0, 1.0).unwrap();
    let pairs = dense_pairs(10, 3);
    let plan = Planner::default().plan_with_catalog(&pairs, &planned_caps, cost, &catalog);
    let mut dep = Deployment::launch_with_transport(
        &plan,
        &pairs,
        &caps,
        cost,
        &catalog,
        sampler(),
        HealthConfig::default(),
        TransportSpec::Lossy(spec, net),
    );

    // Before any backpressure the bounds are the undegraded closed
    // form, reproduced here from the launched assignments.
    assert_eq!(dep.degrade_factor(), 1);
    let before = dep.staleness_bounds();
    let base_rto = NetConfig::default().base_rto;
    let period_of = |a: AttrId| {
        (1.0 / catalog.get_or_default(a).frequency())
            .round()
            .max(1.0) as u64
    };
    let mut expected = std::collections::BTreeMap::new();
    for (&node, assigns) in dep.assignments() {
        for a in assigns {
            let depth = route_depth_of(&dep, node, a.tree);
            for la in &a.local {
                let b = period_of(la.attr) + depth + base_rto + 1;
                let slot = expected.entry(la.attr).or_insert(0);
                *slot = (*slot).max(b);
            }
        }
    }
    assert_eq!(
        before, expected,
        "undegraded bounds diverge from closed form"
    );

    // Saturate the collector until the degrade ladder engages, then
    // the declared bounds must have widened by exactly
    // `period·(factor − 1)` each.
    dep.run(120);
    let factor = dep.degrade_factor();
    assert!(factor > 1, "starved collector must widen intervals");
    let after = dep.staleness_bounds();
    for (&a, &b) in &after {
        assert_eq!(
            b - before[&a],
            period_of(a) * (factor - 1),
            "attr {a}: degraded bound must grow by period·(factor − 1)"
        );
    }
    dep.shutdown();
}

/// `staleness_bounds()` is a convergence bound, not an outage bound:
/// while a partition window holds a member incommunicado its pairs
/// run arbitrarily stale (the documented exception), and once the
/// window closes every pair settles back under the declared bound.
#[test]
fn staleness_bounds_hold_after_a_partition_window_closes() {
    let _guard = remo_obs::test_guard();
    let victim = NodeId(1);
    let spec = NetSpec {
        seed: 21,
        partitions: vec![PartitionWindow {
            name: "quarantine".into(),
            members: [victim].into_iter().collect(),
            from_epoch: 10,
            until_epoch: Some(40),
        }],
        active_until: Some(60),
        ..NetSpec::default()
    };
    let caps = CapacityMap::uniform(6, 100.0, 10_000.0).unwrap();
    let cost = CostModel::new(2.0, 1.0).unwrap();
    let pairs = dense_pairs(6, 2);
    let catalog = AttrCatalog::new();
    let plan = Planner::default().plan_with_catalog(&pairs, &caps, cost, &catalog);
    let mut dep = Deployment::launch_with_transport(
        &plan,
        &pairs,
        &caps,
        cost,
        &catalog,
        sampler(),
        HealthConfig::default(),
        TransportSpec::Lossy(spec, NetConfig::default()),
    );
    let bounds = dep.staleness_bounds();
    let worst = *bounds.values().max().unwrap();
    assert!(worst < 25, "bound {worst} too loose for this topology");

    // Mid-window: the victim's snapshots have been frozen since epoch
    // 9, far beyond anything the bound promises for healthy traffic.
    dep.run(35);
    for a in 0..2 {
        let obs = dep
            .observed(victim, AttrId(a))
            .expect("delivered pre-window");
        let staleness = dep.epoch() - obs.produced;
        assert!(
            staleness > bounds[&AttrId(a)],
            "victim staleness {staleness} should exceed bound {} mid-partition",
            bounds[&AttrId(a)]
        );
    }

    // The window closes at 40; by 60 (> 40 + worst bound) every pair —
    // including the quarantined node's — is back under its bound.
    dep.run(25);
    for (n, a) in pairs.iter() {
        let obs = dep.observed(n, a).expect("pair observed after healing");
        let staleness = dep.epoch() - obs.produced;
        assert!(
            staleness <= bounds[&a],
            "{n}/{a} staleness {staleness} over bound {} after window closed",
            bounds[&a]
        );
    }
    dep.shutdown();
}

/// Fast seeded lossy soak for the `--net-smoke` CI gate (<2s): node
/// failure + drops + delay + partition over 80 epochs, asserting
/// convergence and zero corruption.
#[test]
fn net_smoke_mini_soak() {
    let _guard = remo_obs::test_guard();
    const EPOCHS: u64 = 80;
    let spec = NetSpec {
        seed: 77,
        drop: 0.08,
        delay_max: 1,
        dup: 0.05,
        reorder: 0.1,
        partitions: vec![PartitionWindow {
            name: "blip".into(),
            members: [NodeId(2)].into_iter().collect(),
            from_epoch: 30,
            until_epoch: Some(40),
        }],
        active_until: Some(60),
        ..NetSpec::default()
    };
    let (mut dep, pairs) = lossy_self_healing(6, 2, spec, NetConfig::default());
    let mut schedule = FailureSchedule::new();
    schedule.add(Outage::node(NodeId(4), 20, Some(35)));
    let mut chaos = ChaosDriver::new(schedule);
    let reports = chaos.run(&mut dep, EPOCHS);

    assert!(reports.iter().map(|r| r.retransmit_messages).sum::<u64>() > 0);
    let s = sampler();
    let bounds = dep.staleness_bounds();
    for (n, a) in pairs.iter() {
        let obs = dep.observed(n, a).expect("pair observed");
        assert_eq!(obs.value, s(n, a, obs.produced), "corrupt store at {n}/{a}");
        let staleness = dep.epoch() - obs.produced;
        assert!(
            staleness <= bounds[&a],
            "{n}/{a} staleness {staleness} over bound {}",
            bounds[&a]
        );
    }
    dep.shutdown();
}
