//! Threaded-runtime integration: plans must carry real traffic end to
//! end, and the deployment's behavior must mirror the simulator's
//! semantics (latency = depth, capacity enforcement, reconfiguration).

#![allow(clippy::unwrap_used, clippy::expect_used)]

use remo::prelude::*;
use remo_runtime::{Deployment, Sampler};
use std::sync::Arc;

fn sampler() -> Sampler {
    Arc::new(|n: NodeId, a: AttrId, e: u64| {
        (n.0 as f64) * 100.0 + (a.0 as f64) * 10.0 + (e % 5) as f64
    })
}

fn plan_for(
    pairs: &PairSet,
    caps: &CapacityMap,
    cost: CostModel,
    catalog: &AttrCatalog,
) -> MonitoringPlan {
    Planner::default().plan_with_catalog(pairs, caps, cost, catalog)
}

#[test]
fn deployment_collects_every_planned_pair() {
    let caps = CapacityMap::uniform(12, 60.0, 2_000.0).unwrap();
    let cost = CostModel::new(2.0, 1.0).unwrap();
    let pairs: PairSet = (0..12)
        .flat_map(|n| (0..3).map(move |a| (NodeId(n), AttrId(a))))
        .collect();
    let catalog = AttrCatalog::new();
    let plan = plan_for(&pairs, &caps, cost, &catalog);
    let planned: usize = plan.collected_pairs();

    let mut dep = Deployment::launch(&plan, &pairs, &caps, cost, &catalog, sampler());
    dep.run(20);
    assert_eq!(dep.observed_pairs(), planned);
    dep.shutdown();
}

#[test]
fn values_arrive_untampered() {
    let caps = CapacityMap::uniform(8, 80.0, 2_000.0).unwrap();
    let cost = CostModel::new(2.0, 1.0).unwrap();
    let pairs: PairSet = (0..8)
        .flat_map(|n| (0..2).map(move |a| (NodeId(n), AttrId(a))))
        .collect();
    let catalog = AttrCatalog::new();
    let plan = plan_for(&pairs, &caps, cost, &catalog);
    let mut dep = Deployment::launch(&plan, &pairs, &caps, cost, &catalog, sampler());
    dep.run(15);
    let s = sampler();
    for (n, a) in pairs.iter() {
        let obs = dep.observed(n, a).expect("pair observed");
        assert_eq!(obs.value, s(n, a, obs.produced));
        assert!(obs.received > obs.produced, "one hop costs one epoch");
    }
    dep.shutdown();
}

#[test]
fn runtime_and_sim_agree_on_steady_state_delivery() {
    // Same plan, same budgets: the threaded runtime and the simulator
    // should deliver the same pairs per epoch in steady state.
    let caps = CapacityMap::uniform(10, 40.0, 1_000.0).unwrap();
    let cost = CostModel::new(2.0, 1.0).unwrap();
    let pairs: PairSet = (0..10)
        .flat_map(|n| (0..2).map(move |a| (NodeId(n), AttrId(a))))
        .collect();
    let catalog = AttrCatalog::new();
    let plan = plan_for(&pairs, &caps, cost, &catalog);

    let mut dep = Deployment::launch(&plan, &pairs, &caps, cost, &catalog, sampler());
    let warm = 10;
    dep.run(warm);
    let r = dep.tick();
    let runtime_rate = r.delivered_values;
    dep.shutdown();

    let mut sim = Simulator::new(SimSetup {
        plan: &plan,
        planned_pairs: &pairs,
        metric_pairs: None,
        caps: &caps,
        cost,
        catalog: &catalog,
        aliases: Default::default(),
        config: SimConfig::default(),
    });
    sim.run(warm);
    let sim_rate = sim.step().delivered_values;
    assert_eq!(
        runtime_rate, sim_rate,
        "substrates disagree on steady-state delivery"
    );
}

#[test]
fn reconfiguration_mid_flight_loses_nothing_permanently() {
    let caps = CapacityMap::uniform(9, 60.0, 2_000.0).unwrap();
    let cost = CostModel::new(2.0, 1.0).unwrap();
    let pairs: PairSet = (0..9).map(|n| (NodeId(n), AttrId(0))).collect();
    let catalog = AttrCatalog::new();
    let plan = plan_for(&pairs, &caps, cost, &catalog);
    let mut dep = Deployment::launch(&plan, &pairs, &caps, cost, &catalog, sampler());
    dep.run(5);

    // Grow the demand and push the new plan.
    let mut pairs2 = pairs.clone();
    for n in 0..9 {
        pairs2.insert(NodeId(n), AttrId(1));
    }
    let plan2 = plan_for(&pairs2, &caps, cost, &catalog);
    dep.apply_plan(&plan2, &pairs2, &catalog);
    dep.run(15);
    assert_eq!(dep.observed_pairs(), plan2.collected_pairs());
    dep.shutdown();
}

#[test]
fn wire_protocol_overhead_is_the_header() {
    use remo_runtime::proto::{WireMessage, WireReading, HEADER_LEN, READING_LEN};
    let msg = WireMessage::data(
        0,
        NodeId(0),
        1,
        (0..10)
            .map(|i| WireReading {
                node: NodeId(i),
                attr: AttrId(0),
                value: 1.0,
                produced: 0,
                contributors: 1,
            })
            .collect(),
    );
    // The C + a·x cost model made concrete: fixed header (C) plus
    // per-reading payload (a·x).
    assert_eq!(msg.encoded_len(), HEADER_LEN + 10 * READING_LEN);
}

#[test]
fn shutdown_is_idempotent_and_clean() {
    let caps = CapacityMap::uniform(4, 50.0, 500.0).unwrap();
    let cost = CostModel::default();
    let pairs: PairSet = (0..4).map(|n| (NodeId(n), AttrId(0))).collect();
    let catalog = AttrCatalog::new();
    let plan = plan_for(&pairs, &caps, cost, &catalog);
    let mut dep = Deployment::launch(&plan, &pairs, &caps, cost, &catalog, sampler());
    dep.run(3);
    dep.shutdown(); // explicit
                    // Drop of a second deployment exercises the Drop path.
    let plan2 = plan_for(&pairs, &caps, cost, &catalog);
    let mut dep2 = Deployment::launch(&plan2, &pairs, &caps, cost, &catalog, sampler());
    dep2.run(2);
    drop(dep2);
}
