//! Socket plumbing shared by the node client and the collector
//! service: the TCP-backed [`Transport`] the agent state machine runs
//! on, per-connection writer threads, and the framed read loop.
//!
//! Topology is hub-and-spoke: every node holds exactly one TCP
//! connection to the collector, and the collector forwards node→node
//! tree traffic by the envelope's `dest` tag. That keeps connection
//! count linear in nodes and puts reconnection logic in one place.

use bytes::Bytes;
use crossbeam::channel::{Receiver, Sender};
use remo_core::NodeId;
use remo_runtime::framing::{Envelope, FrameDecoder, CHAN_CTRL, CHAN_DATA, DEST_COLLECTOR};
use remo_runtime::proto::WireMessage;
use remo_runtime::transport::{Endpoint, Transport};
use remo_runtime::CtrlMsg;
use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::{Mutex, MutexGuard};
use std::thread::JoinHandle;

/// Locks a mutex, recovering from poisoning: a panicked holder must
/// not take the monitoring plane down with it.
pub fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The [`Transport`] a node agent runs on: frames are queued to the
/// current connection's writer thread, or dropped when disconnected —
/// loss the agent's ARQ layer already handles, exactly as it handles
/// a lossy in-memory network.
pub struct TcpTransport {
    node: NodeId,
    out: Mutex<Option<Sender<Bytes>>>,
}

impl std::fmt::Debug for TcpTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpTransport")
            .field("node", &self.node)
            .finish()
    }
}

impl TcpTransport {
    /// A transport for `node`, initially disconnected.
    pub fn new(node: NodeId) -> Self {
        TcpTransport {
            node,
            out: Mutex::new(None),
        }
    }

    /// Routes outgoing frames through `tx` (a fresh connection's
    /// writer queue).
    pub fn attach(&self, tx: Sender<Bytes>) {
        *lock(&self.out) = Some(tx);
    }

    /// Drops the current writer queue; subsequent sends are lost until
    /// the next [`TcpTransport::attach`] (ARQ retries cover the gap).
    pub fn detach(&self) {
        *lock(&self.out) = None;
    }

    fn enqueue(&self, bytes: Bytes) {
        if let Some(tx) = lock(&self.out).as_ref() {
            let _ = tx.send(bytes);
        }
    }

    /// Queues a control-plane message for the collector.
    pub fn send_ctrl(&self, msg: &CtrlMsg, epoch: u64) {
        self.enqueue(
            Envelope {
                dest: DEST_COLLECTOR,
                chan: CHAN_CTRL,
                sent_epoch: epoch,
                payload: msg.encode(),
            }
            .encode(),
        );
    }
}

impl Transport for TcpTransport {
    fn send_data(&self, _from: NodeId, to: Endpoint, _seq: u64, epoch: u64, frame: Bytes) {
        let dest = match to {
            Endpoint::Collector => DEST_COLLECTOR,
            Endpoint::Node(n) => n.0,
        };
        self.enqueue(
            Envelope {
                dest,
                chan: CHAN_DATA,
                sent_epoch: epoch,
                payload: frame,
            }
            .encode(),
        );
    }

    fn send_ack(&self, _from: Endpoint, to: NodeId, incarnation: u32, seq: u64, epoch: u64) {
        let ack = WireMessage::ack(0, self.node, seq)
            .with_incarnation(incarnation)
            .encode();
        self.enqueue(
            Envelope {
                dest: to.0,
                chan: CHAN_DATA,
                sent_epoch: epoch,
                payload: ack,
            }
            .encode(),
        );
    }

    /// TCP delivers bytes reliably, but the *deployment* does not:
    /// processes restart, connections drop mid-epoch, and the hub may
    /// shed. Running the ARQ layer gives end-to-end acknowledgement
    /// and incarnation-scoped dedup across reconnects.
    fn reliable(&self) -> bool {
        false
    }
}

/// Spawns the writer thread for one connection: drains `rx` into the
/// stream until the channel closes or a write fails, then shuts the
/// socket down.
pub fn spawn_writer(mut stream: TcpStream, rx: Receiver<Bytes>) -> JoinHandle<()> {
    std::thread::spawn(move || {
        for bytes in rx {
            if stream.write_all(&bytes).is_err() {
                break;
            }
        }
        let _ = stream.shutdown(Shutdown::Both);
    })
}

/// Reads framed envelopes off `stream` until EOF, a read error, a
/// framing error (hostile length — the connection is unrecoverable),
/// or `on_env` returns `false`.
pub fn read_envelopes(
    stream: &mut TcpStream,
    mut on_env: impl FnMut(Envelope) -> bool,
) -> std::io::Result<()> {
    let mut dec = FrameDecoder::new();
    let mut buf = [0u8; 8192];
    loop {
        let n = stream.read(&mut buf)?;
        if n == 0 {
            return Ok(());
        }
        dec.push(&buf[..n]);
        loop {
            match dec.try_next() {
                Ok(Some(env)) => {
                    if !on_env(env) {
                        return Ok(());
                    }
                }
                Ok(None) => break,
                Err(e) => {
                    return Err(std::io::Error::new(std::io::ErrorKind::InvalidData, e));
                }
            }
        }
    }
}
