//! The `remo-node` process: one monitoring node of the distributed
//! deployment.
//!
//! A node runs the unmodified [`Agent`] state machine from
//! `remo-runtime` — the same code the in-process deployment and the
//! chaos soaks exercise — on a [`TcpTransport`]. This module supplies
//! the process scaffolding around it:
//!
//! * a supervisor loop that connects to the collector, registers with
//!   [`CtrlMsg::Hello`], and reconnects with exponential backoff when
//!   the connection drops;
//! * a reader that turns incoming envelopes into [`AgentMsg`]s
//!   (control frames drive ticks/assignments, data frames carry tree
//!   traffic and acks);
//! * a forwarder that turns the agent's per-epoch
//!   [`TickReport`](remo_runtime::agent::TickReport)s into
//!   [`CtrlMsg::Report`] frames.
//!
//! Every transition the supervisor takes is driven through the shared
//! protocol specification (`remo-proto`): a [`ClientMachine`] is
//! stepped for each connection edge and each decoded control frame,
//! and the action it returns is what the handler executes. A frame the
//! spec leaves undefined in the current state (a Hello or Report
//! arriving at a node, say) is dropped and counted as a protocol
//! reject instead of being improvised around.
//!
//! Incarnation: a *fresh* process greets with incarnation 0 and adopts
//! whatever the collector assigns (each restart gets a higher one, so
//! receivers reset their seq watermarks instead of swallowing the
//! restarted sender's frames). A *reconnecting* process — same life,
//! new socket — re-greets with the incarnation it already holds.

use crate::config;
use crate::net::{lock, read_envelopes, spawn_writer, TcpTransport};
use crossbeam::channel::unbounded;
use remo_core::{CostModel, NodeId};
use remo_proto::{ClientAction, ClientEvent, ClientMachine};
use remo_runtime::agent::{run_agent, Agent, AgentMsg};
use remo_runtime::framing::{CHAN_CTRL, CHAN_DATA};
use remo_runtime::proto::{FrameKind, WireMessage};
use remo_runtime::{CtrlMsg, Sampler};
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Connection settings for one node process.
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// Collector address, e.g. `127.0.0.1:7701`.
    pub addr: String,
    /// This node's identity.
    pub node: NodeId,
    /// Initial reconnect backoff (doubles per failure, capped 32×).
    pub reconnect_base: Duration,
    /// Consecutive failed reconnects after a successful registration
    /// before the process gives up (the collector is gone).
    pub max_reconnect_failures: u32,
}

impl NodeConfig {
    /// Defaults for `node` against `addr`, honoring `REMO_DIST_*`.
    pub fn new(addr: impl Into<String>, node: NodeId) -> Self {
        NodeConfig {
            addr: addr.into(),
            node,
            reconnect_base: config::reconnect_base(),
            max_reconnect_failures: 40,
        }
    }
}

/// Handle to a spawned node (test and supervisor aid).
#[derive(Debug)]
pub struct NodeHandle {
    abort: Arc<AtomicBool>,
    stream: Arc<Mutex<Option<TcpStream>>>,
    thread: JoinHandle<()>,
}

impl NodeHandle {
    /// Kills the node abruptly: the socket is torn down without any
    /// goodbye, exactly like a SIGKILL'd process as seen from the
    /// collector. Joins the supervisor thread.
    pub fn abort(self) {
        self.abort.store(true, Ordering::SeqCst);
        if let Some(s) = lock(&self.stream).as_ref() {
            let _ = s.shutdown(Shutdown::Both);
        }
        let _ = self.thread.join();
    }

    /// Waits for the node to exit on its own (collector shutdown).
    pub fn join(self) {
        let _ = self.thread.join();
    }
}

/// Spawns a node process' supervisor loop on a background thread.
pub fn spawn_node(cfg: NodeConfig, sampler: Sampler) -> NodeHandle {
    let abort = Arc::new(AtomicBool::new(false));
    let stream_slot: Arc<Mutex<Option<TcpStream>>> = Arc::new(Mutex::new(None));
    let thread = {
        let abort = Arc::clone(&abort);
        let stream_slot = Arc::clone(&stream_slot);
        std::thread::spawn(move || run_supervisor(&cfg, sampler, &abort, &stream_slot))
    };
    NodeHandle {
        abort,
        stream: stream_slot,
        thread,
    }
}

/// One node life: connect → register → pump frames until the
/// connection dies or the collector says shutdown.
struct NodeState {
    transport: Arc<TcpTransport>,
    /// Assigned by the collector's `Welcome`; `None` until first
    /// registration (the agent is created at that moment).
    agent_tx: Option<crossbeam::channel::Sender<AgentMsg>>,
    agent_thread: Option<JoinHandle<()>>,
    incarnation: Option<u32>,
    sampler: Sampler,
    node: NodeId,
}

impl NodeState {
    /// Handles the collector's `Welcome`: the first one creates and
    /// starts the agent; later ones (reconnects) are consistency
    /// checks only.
    fn on_welcome(
        &mut self,
        capacity: f64,
        per_message: f64,
        per_value: f64,
        net: remo_runtime::transport::NetConfig,
        incarnation: u32,
    ) {
        if self.agent_tx.is_some() {
            return;
        }
        let Ok(cost) = CostModel::new(per_message, per_value) else {
            return;
        };
        let (tx, rx) = unbounded();
        let (report_tx, report_rx) = unbounded();
        let agent = Agent::new(
            self.node,
            rx,
            Arc::clone(&self.transport) as Arc<dyn remo_runtime::transport::Transport>,
            report_tx,
            capacity,
            cost,
            net,
            Arc::clone(&self.sampler),
            Vec::new(),
        )
        .with_incarnation(incarnation);
        self.agent_thread = Some(run_agent(agent));
        self.agent_tx = Some(tx);
        self.incarnation = Some(incarnation);
        // Forwarder: every agent tick report becomes a control frame.
        let transport = Arc::clone(&self.transport);
        std::thread::spawn(move || {
            for tr in report_rx {
                transport.send_ctrl(&CtrlMsg::Report { report: tr }, tr.epoch);
            }
        });
    }

    fn send_agent(&self, msg: AgentMsg) {
        if let Some(tx) = self.agent_tx.as_ref() {
            let _ = tx.send(msg);
        }
    }
}

fn run_supervisor(
    cfg: &NodeConfig,
    sampler: Sampler,
    abort: &AtomicBool,
    stream_slot: &Mutex<Option<TcpStream>>,
) {
    let transport = Arc::new(TcpTransport::new(cfg.node));
    let mut state = NodeState {
        transport: Arc::clone(&transport),
        agent_tx: None,
        agent_thread: None,
        incarnation: None,
        sampler,
        node: cfg.node,
    };
    let mut backoff = cfg.reconnect_base;
    let max_backoff = cfg.reconnect_base.saturating_mul(32);
    let mut failures: u32 = 0;
    let mut done = false;
    // The executable spec: every connection edge and every decoded
    // control frame steps this machine, and the action it returns is
    // what gets executed. One machine per process life.
    let mut machine = ClientMachine::new();

    while !abort.load(Ordering::SeqCst) && !done {
        let mut stream = match TcpStream::connect(&cfg.addr) {
            Ok(s) => s,
            Err(_) => {
                failures += 1;
                // Registered once and the collector has been gone for
                // a while: the run is over, exit instead of spinning.
                if state.incarnation.is_some() && failures > cfg.max_reconnect_failures {
                    machine.step(ClientEvent::GiveUp);
                    break;
                }
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(max_backoff);
                continue;
            }
        };
        failures = 0;
        backoff = cfg.reconnect_base;
        let _ = stream.set_nodelay(true);
        *lock(stream_slot) = stream.try_clone().ok();

        // Register (a reconnect re-greets with the held incarnation).
        let (wtx, wrx) = unbounded();
        let writer = match stream.try_clone() {
            Ok(s) => spawn_writer(s, wrx),
            Err(_) => continue,
        };
        transport.attach(wtx);
        let action = machine.step(ClientEvent::Connected);
        debug_assert_eq!(
            action,
            Some(ClientAction::SendHello),
            "the spec must define Connected in {:?}",
            machine.state()
        );
        if action == Some(ClientAction::SendHello) {
            transport.send_ctrl(
                &CtrlMsg::Hello {
                    node: cfg.node,
                    incarnation: state.incarnation.unwrap_or(0),
                },
                0,
            );
        }

        let result = read_envelopes(&mut stream, |env| {
            match env.chan {
                CHAN_CTRL => {
                    if let Ok(msg) = CtrlMsg::decode(env.payload) {
                        // The spec decides; the handler executes. An
                        // undefined (state, frame) pair returns None:
                        // the frame is dropped and the reject counted.
                        match (machine.step(ClientEvent::recv(msg.kind())), msg) {
                            (
                                Some(ClientAction::AdoptWelcome),
                                CtrlMsg::Welcome {
                                    capacity,
                                    per_message,
                                    per_value,
                                    net,
                                    incarnation,
                                    epoch: _,
                                },
                            ) => {
                                // Adoption refuses a regressed
                                // incarnation (RA024's client half).
                                if machine.adopt_incarnation(incarnation) {
                                    state.on_welcome(
                                        capacity,
                                        per_message,
                                        per_value,
                                        net,
                                        incarnation,
                                    );
                                }
                            }
                            (Some(ClientAction::DropDuplicate), _) => {}
                            (Some(ClientAction::ApplyAssign), CtrlMsg::Assign { assignments }) => {
                                state.send_agent(AgentMsg::Reconfigure { assignments });
                            }
                            (Some(ClientAction::RunTick), CtrlMsg::Tick { epoch }) => {
                                state.send_agent(AgentMsg::Tick { epoch });
                            }
                            (Some(ClientAction::ApplyDegrade), CtrlMsg::Degrade { factor }) => {
                                state.send_agent(AgentMsg::SetDegrade { factor });
                            }
                            (Some(ClientAction::Stop), _) => {
                                done = true;
                                return false;
                            }
                            (Some(_) | None, _) => {}
                        }
                    }
                }
                CHAN_DATA => {
                    if let Ok(msg) = WireMessage::decode(env.payload.clone()) {
                        match msg.kind {
                            FrameKind::Ack => state.send_agent(AgentMsg::Ack {
                                incarnation: msg.incarnation,
                                seq: msg.seq,
                            }),
                            FrameKind::Data => state.send_agent(AgentMsg::Data {
                                sent_epoch: env.sent_epoch,
                                frame: env.payload,
                            }),
                        }
                    }
                }
                _ => {}
            }
            true
        });
        let _ = result;

        transport.detach();
        let _ = stream.shutdown(Shutdown::Both);
        *lock(stream_slot) = None;
        let _ = writer.join();
        if !done {
            machine.step(ClientEvent::ConnLost);
        }
    }

    state.send_agent(AgentMsg::Shutdown);
    if let Some(h) = state.agent_thread.take() {
        let _ = h.join();
    }
}
