//! # remo-node
//!
//! The distributed REMO runtime: real processes, real sockets.
//!
//! Where [`remo-runtime`](../remo_runtime/index.html) deploys a
//! monitoring plan as threads exchanging frames over channels, this
//! crate deploys the *same* engine across OS processes connected by
//! TCP:
//!
//! * [`service`] — the `remo-collector` process: accepts node
//!   connections, routes node→node tree traffic (hub topology), drives
//!   lockstep epochs, detects failures via the epoch-report barrier,
//!   repairs the plan through the shared
//!   [`RepairEngine`](remo_runtime::RepairEngine), and enforces
//!   collector capacity through the shared
//!   [`CollectorCore`](remo_runtime::CollectorCore) — the exact
//!   arithmetic the in-memory runtime pins in its equivalence tests.
//! * [`client`] — the `remo-node` process: registers with the
//!   collector, then runs the unmodified
//!   [`Agent`](remo_runtime::agent::Agent) state machine over a
//!   [`net::TcpTransport`], reconnecting with backoff when the
//!   connection drops.
//! * [`net`] — the socket plumbing both sides share: framed envelopes
//!   ([`remo_runtime::framing`]) carrying data-plane
//!   ([`remo_runtime::proto`]) and control-plane
//!   ([`remo_runtime::ctrl`]) payloads.
//!
//! The transport here is intentionally *not* async: the workspace
//! vendors no async runtime, and one thread per connection at
//! monitoring fan-ins (tens to hundreds of nodes) is well within what
//! the paper's collector-capacity model assumes. The `Transport` seam
//! means an async implementation could replace [`net::TcpTransport`]
//! without touching the agent or collector logic.
//!
//! ## Configuration knobs
//!
//! The binaries read `REMO_DIST_*` environment variables (all
//! optional; see [`config`]): `REMO_DIST_EPOCH_MS`,
//! `REMO_DIST_DEADLINE_MS`, `REMO_DIST_CONFIRM_AFTER`,
//! `REMO_DIST_NODE_CAPACITY`, `REMO_DIST_COLLECTOR_CAPACITY`,
//! `REMO_DIST_STARTUP_WAIT_MS`, `REMO_DIST_RECONNECT_BASE_MS`.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod client;
pub mod config;
pub mod net;
pub mod service;
pub mod summary;

use remo_runtime::Sampler;
use std::sync::Arc;

pub use client::{spawn_node, NodeConfig, NodeHandle};
pub use service::{CollectorService, ServiceConfig};
pub use summary::RunSummary;

/// The deterministic sampler both `remo-node` and `remo-collector`
/// agree on, so the collector can verify end-to-end value integrity
/// without any side channel: `value = node·1000 + attr·10 + epoch%10`.
pub fn dist_sampler() -> Sampler {
    Arc::new(|n, a, e| f64::from(n.0) * 1000.0 + f64::from(a.0) * 10.0 + (e % 10) as f64)
}
