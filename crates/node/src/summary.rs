//! End-of-run reconciliation report emitted by the collector service.

use std::fmt::Write as _;

/// What a distributed run delivered, reconciled against what the plan
/// promised. Serialized as JSON by hand — the report is flat and the
/// workspace keeps binary dependencies minimal.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RunSummary {
    /// Epochs completed.
    pub epochs: u64,
    /// (node, attribute) pairs the plan was built over.
    pub planned_pairs: u64,
    /// Distinct pairs the collector actually observed.
    pub observed_pairs: u64,
    /// Values recorded at the collector across the run.
    pub delivered_values: u64,
    /// Nodes confirmed dead by the failure detector.
    pub confirmed_dead: u64,
    /// Confirmed failures the plan was repaired around.
    pub repaired: u64,
    /// Dead nodes that reported again and were reintegrated.
    pub recovered: u64,
    /// Targeted `Assign` reconfigurations sent by plan repair.
    pub reconfigure_messages: u64,
    /// Duplicate data frames discarded by incarnation-scoped dedup.
    pub duplicate_messages_ignored: u64,
    /// Readings shed by the bounded ingress queue.
    pub shed_readings: u64,
    /// Degrade factor in force at the end of the run.
    pub degrade_factor: u64,
    /// Observed values checked against the deterministic sampler.
    pub integrity_checked: u64,
    /// Checked values that did not match the sampler (must be 0).
    pub integrity_violations: u64,
    /// Control frames the protocol spec left undefined in the state
    /// they arrived in, dropped by the session machines.
    pub protocol_rejects: u64,
}

impl RunSummary {
    /// Flat JSON encoding.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(512);
        s.push('{');
        let mut first = true;
        let mut field = |s: &mut String, k: &str, v: u64| {
            if !first {
                s.push(',');
            }
            first = false;
            let _ = write!(s, "\"{k}\":{v}");
        };
        field(&mut s, "epochs", self.epochs);
        field(&mut s, "planned_pairs", self.planned_pairs);
        field(&mut s, "observed_pairs", self.observed_pairs);
        field(&mut s, "delivered_values", self.delivered_values);
        field(&mut s, "confirmed_dead", self.confirmed_dead);
        field(&mut s, "repaired", self.repaired);
        field(&mut s, "recovered", self.recovered);
        field(&mut s, "reconfigure_messages", self.reconfigure_messages);
        field(
            &mut s,
            "duplicate_messages_ignored",
            self.duplicate_messages_ignored,
        );
        field(&mut s, "shed_readings", self.shed_readings);
        field(&mut s, "degrade_factor", self.degrade_factor);
        field(&mut s, "integrity_checked", self.integrity_checked);
        field(&mut s, "integrity_violations", self.integrity_violations);
        field(&mut s, "protocol_rejects", self.protocol_rejects);
        s.push('}');
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_flat_and_complete() {
        let s = RunSummary {
            epochs: 40,
            planned_pairs: 18,
            observed_pairs: 18,
            ..RunSummary::default()
        };
        let j = s.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"planned_pairs\":18"));
        assert!(j.contains("\"integrity_violations\":0"));
        assert!(!j.contains(",,"));
    }
}
