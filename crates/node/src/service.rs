//! The `remo-collector` process: registration, hub routing, lockstep
//! epochs, failure repair, and capacity-enforced intake.
//!
//! The service composes the pieces the in-process runtime already
//! tests hard: [`CollectorCore`] for ingest (token bucket, dedup,
//! bounded ingress + shedding, degrade ladder), [`HealthMonitor`] fed
//! through the epoch-report barrier, and [`RepairEngine`] for plan
//! repair around confirmed failures — the distributed deployment adds
//! only sockets around them.
//!
//! Session lifecycle is driven through the shared protocol
//! specification (`remo-proto`): one [`SessionMachine`] per expected
//! node owns that node's incarnation slot and is stepped for every
//! Hello, report, barrier verdict, and fan-out the collector performs.
//! Frames the spec leaves undefined in the session's current state are
//! dropped and counted (surfaced as `protocol_rejects` in the run
//! summary); the collector's own sends `debug_assert!` on spec
//! definedness, because an undefined internal transition is a bug in
//! collector logic, not hostile input.

use crate::config;
use crate::net::{lock, read_envelopes, spawn_writer};
use crate::summary::RunSummary;
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use remo_core::adapt::{AdaptScheme, AdaptivePlanner};
use remo_core::planner::Planner;
use remo_core::{AttrCatalog, CapacityMap, CostModel, NodeId, PairSet};
use remo_proto::{HelloOutcome, SessionEvent, SessionMachine};
use remo_runtime::agent::{TickReport, TreeAssignment};
use remo_runtime::deployment::plan_assignments;
use remo_runtime::framing::{Envelope, CHAN_CTRL, CHAN_DATA, DEST_COLLECTOR};
use remo_runtime::health::{HealthConfig, HealthMonitor};
use remo_runtime::proto::WireMessage;
use remo_runtime::transport::{Endpoint, NetConfig, Transport};
use remo_runtime::{CollectorCore, CtrlMsg, EpochReport, RepairEngine, Sampler};
use std::collections::BTreeMap;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Everything a collector run needs.
#[derive(Clone)]
pub struct ServiceConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// The monitoring task.
    pub pairs: PairSet,
    /// Node and collector budgets.
    pub caps: CapacityMap,
    /// Cost model shared with every node.
    pub cost: CostModel,
    /// Attribute catalog (frequencies, aggregations).
    pub catalog: AttrCatalog,
    /// ARQ + backpressure tuning pushed to nodes at registration.
    pub net: NetConfig,
    /// Failure-detector tuning (`deadline` bounds the report barrier).
    pub health: HealthConfig,
    /// Epochs to run.
    pub epochs: u64,
    /// Wall-clock epoch length.
    pub epoch_interval: Duration,
    /// How long to wait for expected nodes before ticking anyway.
    pub startup_wait: Duration,
    /// Deterministic sampler for end-of-run integrity checking
    /// (`None` skips the check).
    pub integrity_sampler: Option<Sampler>,
}

impl std::fmt::Debug for ServiceConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceConfig")
            .field("addr", &self.addr)
            .field("epochs", &self.epochs)
            .finish_non_exhaustive()
    }
}

impl ServiceConfig {
    /// Defaults for `pairs`/`caps` on `addr`, honoring `REMO_DIST_*`.
    pub fn new(addr: impl Into<String>, pairs: PairSet, caps: CapacityMap) -> Self {
        let health = HealthConfig {
            deadline: config::barrier_deadline(),
            confirm_after: config::confirm_after(),
            ..HealthConfig::default()
        };
        ServiceConfig {
            addr: addr.into(),
            pairs,
            caps,
            cost: CostModel::default(),
            catalog: AttrCatalog::new(),
            net: NetConfig::default(),
            health,
            epochs: 40,
            epoch_interval: config::epoch_interval(),
            startup_wait: config::startup_wait(),
            integrity_sampler: Some(crate::dist_sampler()),
        }
    }
}

/// Connection registry: node id → (connection generation, that
/// connection's writer queue). The generation lets a dying reader
/// deregister only *its own* entry — a reconnect may already have
/// replaced it.
type Registry = Arc<Mutex<BTreeMap<u32, (u64, Sender<Bytes>)>>>;

/// Monotonic connection-generation source (shared by all services in
/// a process; uniqueness is all that matters).
static CONN_GEN: AtomicU64 = AtomicU64::new(1);

/// State shared between the accept/reader threads and the epoch loop.
struct Shared {
    /// Current per-node assignments (updated by plan repair; sent to a
    /// node at registration).
    assignments: BTreeMap<NodeId, Vec<TreeAssignment>>,
    /// Current epoch (stamped into `Welcome`).
    epoch: u64,
    /// Per-node protocol session machines. Each owns its node's
    /// incarnation slot and lives for the collector's whole run,
    /// across that node's connections, restarts, and deaths.
    machines: BTreeMap<u32, SessionMachine>,
}

impl Shared {
    /// Steps `node`'s session machine for a collector-initiated event.
    /// The collector's own sends must always be spec-defined; an
    /// undefined one is a collector bug, so debug builds assert.
    fn step_send(&mut self, node: u32, event: SessionEvent) {
        let m = self.machines.entry(node).or_default();
        let before = m.state();
        let action = m.step(event);
        debug_assert!(
            action.is_some(),
            "collector stepped undefined ({before:?}, {event:?}) for node {node}"
        );
    }
}

/// Collector-side [`Transport`]: routes acks back out through the hub
/// registry. The collector originates no data frames.
struct RouterTransport {
    registry: Registry,
}

impl std::fmt::Debug for RouterTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("RouterTransport")
    }
}

impl Transport for RouterTransport {
    fn send_data(&self, _from: NodeId, _to: Endpoint, _seq: u64, _epoch: u64, _frame: Bytes) {}

    fn send_ack(&self, _from: Endpoint, to: NodeId, incarnation: u32, seq: u64, epoch: u64) {
        let ack = WireMessage::ack(0, NodeId(DEST_COLLECTOR), seq)
            .with_incarnation(incarnation)
            .encode();
        if let Some((_, tx)) = lock(&self.registry).get(&to.0) {
            let _ = tx.send(
                Envelope {
                    dest: to.0,
                    chan: CHAN_DATA,
                    sent_epoch: epoch,
                    payload: ack,
                }
                .encode(),
            );
        }
    }

    fn reliable(&self) -> bool {
        false
    }
}

/// A listening collector service. Create with
/// [`CollectorService::start`], then call [`CollectorService::run`] to
/// drive the epochs.
pub struct CollectorService {
    cfg: ServiceConfig,
    addr: std::net::SocketAddr,
    running: Arc<AtomicBool>,
    registry: Registry,
    shared: Arc<Mutex<Shared>>,
    data_rx: Receiver<(u64, Bytes)>,
    reports_rx: Receiver<TickReport>,
    engine: RepairEngine,
}

impl std::fmt::Debug for CollectorService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CollectorService")
            .field("addr", &self.addr)
            .finish()
    }
}

impl CollectorService {
    /// Binds the listener, computes the initial plan, and starts
    /// accepting registrations. Epochs do not tick until
    /// [`CollectorService::run`].
    pub fn start(cfg: ServiceConfig) -> std::io::Result<Self> {
        let planner = AdaptivePlanner::new(
            Planner::default(),
            AdaptScheme::Adaptive,
            cfg.pairs.clone(),
            cfg.caps.clone(),
            cfg.cost,
            cfg.catalog.clone(),
        );
        let assignments = plan_assignments(planner.plan(), planner.pairs(), &cfg.catalog);
        let engine = RepairEngine::new(planner);

        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let running = Arc::new(AtomicBool::new(true));
        let registry: Registry = Arc::new(Mutex::new(BTreeMap::new()));
        let shared = Arc::new(Mutex::new(Shared {
            assignments,
            epoch: 0,
            machines: BTreeMap::new(),
        }));
        let (data_tx, data_rx) = unbounded();
        let (reports_tx, reports_rx) = unbounded();

        {
            let running = Arc::clone(&running);
            let registry = Arc::clone(&registry);
            let shared = Arc::clone(&shared);
            let cfg = cfg.clone();
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if !running.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let registry = Arc::clone(&registry);
                    let shared = Arc::clone(&shared);
                    let data_tx = data_tx.clone();
                    let reports_tx = reports_tx.clone();
                    let cfg = cfg.clone();
                    std::thread::spawn(move || {
                        serve_connection(stream, &cfg, &registry, &shared, &data_tx, &reports_tx);
                    });
                }
            });
        }

        Ok(CollectorService {
            cfg,
            addr,
            running,
            registry,
            shared,
            data_rx,
            reports_rx,
            engine,
        })
    }

    /// The bound address (useful with an ephemeral-port bind).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Nodes currently registered.
    pub fn connected_nodes(&self) -> usize {
        lock(&self.registry).len()
    }

    /// Waits until `expected` nodes registered or the startup window
    /// elapsed; returns how many are connected.
    pub fn wait_for_nodes(&self, expected: usize) -> usize {
        let deadline = Instant::now() + self.cfg.startup_wait;
        while Instant::now() < deadline {
            let n = self.connected_nodes();
            if n >= expected {
                return n;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        self.connected_nodes()
    }

    /// Drives the configured number of lockstep epochs, then shuts the
    /// deployment down and returns the reconciliation summary.
    /// `on_epoch` observes every epoch's report (progress logging).
    pub fn run(mut self, mut on_epoch: impl FnMut(&EpochReport)) -> RunSummary {
        let expected: Vec<NodeId> = self.cfg.caps.node_ids().collect();
        let mut health =
            HealthMonitor::new(expected.iter().copied(), self.cfg.health.confirm_after);
        let mut core = CollectorCore::new(
            self.cfg.caps.collector(),
            self.cfg.cost,
            self.cfg.net,
            self.cfg.catalog.clone(),
        );
        let router = RouterTransport {
            registry: Arc::clone(&self.registry),
        };
        let mut summary = RunSummary {
            planned_pairs: self.cfg.pairs.len() as u64,
            ..RunSummary::default()
        };

        for epoch in 1..=self.cfg.epochs {
            let started = Instant::now();
            lock(&self.shared).epoch = epoch;
            let mut report = EpochReport {
                epoch,
                ..EpochReport::default()
            };

            // Tick fan-out to every live connection, each send stepped
            // through that node's session machine first.
            let tick = Envelope {
                dest: DEST_COLLECTOR,
                chan: CHAN_CTRL,
                sent_epoch: epoch,
                payload: CtrlMsg::Tick { epoch }.encode(),
            }
            .encode();
            {
                let reg = lock(&self.registry);
                let mut sh = lock(&self.shared);
                for (&node, (_, tx)) in reg.iter() {
                    sh.step_send(node, SessionEvent::SendTick);
                    let _ = tx.send(tick.clone());
                }
            }

            // Deadline-bounded report barrier, crediting each reporter
            // with the freshest epoch it claimed (a stale report is a
            // liveness hint, not attendance — see
            // `HealthMonitor::observe_reports`).
            let mut missing = health.expected_reporters();
            let mut reporters: BTreeMap<NodeId, u64> = BTreeMap::new();
            let deadline = started + self.cfg.health.deadline;
            // Every received report steps the reporter's session
            // machine: current-epoch reports credit the barrier, stale
            // ones are observed as liveness hints only.
            let shared = Arc::clone(&self.shared);
            let credit = move |tr: &TickReport| {
                let event = if tr.epoch >= epoch {
                    SessionEvent::RecvReportFresh
                } else {
                    SessionEvent::RecvReportStale
                };
                lock(&shared)
                    .machines
                    .entry(tr.node.0)
                    .or_default()
                    .step(event);
            };
            loop {
                if missing.is_empty() {
                    while let Ok(tr) = self.reports_rx.try_recv() {
                        credit(&tr);
                        missing.remove(&tr.node);
                        let e = reporters.entry(tr.node).or_insert(tr.epoch);
                        *e = (*e).max(tr.epoch);
                        fold_report(&tr, &mut report);
                    }
                    break;
                }
                let wait = deadline.saturating_duration_since(Instant::now());
                match self.reports_rx.recv_timeout(wait) {
                    Ok(tr) => {
                        credit(&tr);
                        missing.remove(&tr.node);
                        let e = reporters.entry(tr.node).or_insert(tr.epoch);
                        *e = (*e).max(tr.epoch);
                        fold_report(&tr, &mut report);
                    }
                    Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => break,
                }
            }

            // Barrier verdicts, through the spec: every still-missing
            // node takes a MissDeadline step.
            {
                let mut sh = lock(&self.shared);
                for node in &missing {
                    sh.step_send(node.0, SessionEvent::MissDeadline);
                }
            }

            let events = health.observe_reports(epoch, &reporters);
            report.suspected = events.suspected.len() as u64;
            report.confirmed_dead = events.confirmed.len() as u64;
            report.recovered = events.recovered.len() as u64;
            {
                let mut sh = lock(&self.shared);
                for &node in &events.confirmed {
                    sh.step_send(node.0, SessionEvent::ConfirmDead);
                }
                for &node in &events.recovered {
                    sh.step_send(node.0, SessionEvent::MarkRecovered);
                }
            }

            // Plan repair around confirmed failures; targeted Assign
            // fan-out to the survivors whose routes changed.
            if !events.confirmed.is_empty() || !events.recovered.is_empty() {
                let current = lock(&self.shared).assignments.clone();
                let (fresh, changed) =
                    self.engine
                        .repair(&events.confirmed, &events.recovered, &current, epoch);
                for node in changed {
                    let next = fresh.get(&node).cloned().unwrap_or_default();
                    let assign = Envelope {
                        dest: node.0,
                        chan: CHAN_CTRL,
                        sent_epoch: epoch,
                        payload: CtrlMsg::Assign { assignments: next }.encode(),
                    }
                    .encode();
                    if let Some((_, tx)) = lock(&self.registry).get(&node.0) {
                        let _ = tx.send(assign);
                        report.reconfigure_messages += 1;
                    }
                }
                lock(&self.shared).assignments = fresh;
                let mut sh = lock(&self.shared);
                for &node in &events.confirmed {
                    health.mark_repaired(node, epoch);
                    report.repaired += 1;
                    sh.step_send(node.0, SessionEvent::Repair);
                }
            }

            // Capacity-enforced intake, identical to the in-process
            // ARQ path: refill, ack+dedup+stage every frame, then
            // shed/process/backpressure.
            core.refill();
            while let Ok((sent_epoch, frame)) = self.data_rx.try_recv() {
                core.accept_arq(epoch, sent_epoch, frame, &router, &mut report);
            }
            if let Some(factor) = core.drain_arq(epoch, &mut report) {
                let degrade = Envelope {
                    dest: DEST_COLLECTOR,
                    chan: CHAN_CTRL,
                    sent_epoch: epoch,
                    payload: CtrlMsg::Degrade { factor }.encode(),
                }
                .encode();
                // Factor 1 is the restore broadcast; anything wider is
                // a degrade. The spec distinguishes the two edges.
                let event = if factor > 1 {
                    SessionEvent::SendDegrade
                } else {
                    SessionEvent::SendRecover
                };
                let reg = lock(&self.registry);
                let mut sh = lock(&self.shared);
                for (&node, (_, tx)) in reg.iter() {
                    sh.step_send(node, event);
                    let _ = tx.send(degrade.clone());
                }
            }

            summary.epochs = epoch;
            summary.delivered_values += report.delivered_values;
            summary.confirmed_dead += report.confirmed_dead;
            summary.repaired += report.repaired;
            summary.recovered += report.recovered;
            summary.reconfigure_messages += report.reconfigure_messages;
            summary.duplicate_messages_ignored += report.duplicate_messages_ignored;
            summary.shed_readings += report.shed_readings;
            summary.degrade_factor = report.degrade_factor;
            on_epoch(&report);

            let elapsed = started.elapsed();
            if elapsed < self.cfg.epoch_interval {
                std::thread::sleep(self.cfg.epoch_interval - elapsed);
            }
        }

        // Goodbye to every node, then unblock the accept loop.
        let bye = Envelope {
            dest: DEST_COLLECTOR,
            chan: CHAN_CTRL,
            sent_epoch: self.cfg.epochs,
            payload: CtrlMsg::Shutdown.encode(),
        }
        .encode();
        {
            let reg = lock(&self.registry);
            let mut sh = lock(&self.shared);
            for (&node, (_, tx)) in reg.iter() {
                sh.step_send(node, SessionEvent::SendShutdown);
                let _ = tx.send(bye.clone());
            }
        }
        self.running.store(false, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);

        summary.observed_pairs = core.observed_pairs() as u64;
        summary.protocol_rejects = lock(&self.shared)
            .machines
            .values()
            .map(SessionMachine::rejects)
            .sum();
        if let Some(sampler) = self.cfg.integrity_sampler.as_ref() {
            for (&(node, attr), obs) in core.store() {
                summary.integrity_checked += 1;
                if obs.value != sampler(node, attr, obs.produced) {
                    summary.integrity_violations += 1;
                }
            }
        }
        summary
    }
}

fn fold_report(tr: &TickReport, report: &mut EpochReport) {
    report.dropped_messages += tr.dropped_messages as u64;
    report.dropped_readings += tr.dropped_readings as u64;
    report.volume += tr.volume;
    report.retransmit_messages += tr.retransmits as u64;
    report.duplicate_messages_ignored += tr.dup_ignored as u64;
    report.abandoned_messages += tr.abandoned as u64;
}

/// One node connection: registration handshake, then pump frames until
/// the socket dies.
fn serve_connection(
    mut stream: TcpStream,
    cfg: &ServiceConfig,
    registry: &Registry,
    shared: &Arc<Mutex<Shared>>,
    data_tx: &Sender<(u64, Bytes)>,
    reports_tx: &Sender<TickReport>,
) {
    let _ = stream.set_nodelay(true);
    // Writer half, cloned up front: the reader loop below holds the
    // original mutably.
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut write_half = Some(write_half);
    let gen = CONN_GEN.fetch_add(1, Ordering::Relaxed);
    let mut who: Option<u32> = None;
    let mut writer: Option<std::thread::JoinHandle<()>> = None;

    let result = read_envelopes(&mut stream, |env| {
        match env.chan {
            CHAN_CTRL => match CtrlMsg::decode(env.payload) {
                Ok(CtrlMsg::Hello { node, incarnation }) => {
                    if who.is_some() {
                        return true; // duplicate Hello: ignore
                    }
                    let Some(capacity) = cfg.caps.node(node) else {
                        return false; // unknown node: refuse
                    };
                    let (assigned, assignments, epoch) = {
                        let mut sh = lock(shared);
                        // The session machine owns the incarnation
                        // slot: a fresh life (incarnation 0) mints a
                        // strictly greater one so receivers reset
                        // their seq watermarks, a reconnect keeps the
                        // life it already holds. A Hello the spec
                        // refuses (e.g. while draining) or leaves
                        // undefined closes the connection.
                        let outcome = sh.machines.entry(node.0).or_default().on_hello(incarnation);
                        let assigned = match outcome {
                            HelloOutcome::Admitted(assigned) => assigned,
                            HelloOutcome::Refused | HelloOutcome::Rejected => return false,
                        };
                        (
                            assigned,
                            sh.assignments.get(&node).cloned().unwrap_or_default(),
                            sh.epoch,
                        )
                    };
                    let (wtx, wrx) = unbounded();
                    let Some(ws) = write_half.take() else {
                        return false;
                    };
                    writer = Some(spawn_writer(ws, wrx));
                    let welcome = Envelope {
                        dest: node.0,
                        chan: CHAN_CTRL,
                        sent_epoch: epoch,
                        payload: CtrlMsg::Welcome {
                            capacity,
                            per_message: cfg.cost.per_message(),
                            per_value: cfg.cost.per_value(),
                            net: cfg.net,
                            incarnation: assigned,
                            epoch,
                        }
                        .encode(),
                    }
                    .encode();
                    let assign = Envelope {
                        dest: node.0,
                        chan: CHAN_CTRL,
                        sent_epoch: epoch,
                        payload: CtrlMsg::Assign { assignments }.encode(),
                    }
                    .encode();
                    let _ = wtx.send(welcome);
                    let _ = wtx.send(assign);
                    lock(registry).insert(node.0, (gen, wtx));
                    who = Some(node.0);
                }
                Ok(CtrlMsg::Report { report }) => {
                    let _ = reports_tx.send(report);
                }
                Ok(_) | Err(_) => {}
            },
            CHAN_DATA => {
                if env.dest == DEST_COLLECTOR {
                    let _ = data_tx.send((env.sent_epoch, env.payload));
                } else if let Some((_, tx)) = lock(registry).get(&env.dest) {
                    // Hub routing: node→node tree traffic (data frames
                    // and peer acks) forwarded by destination tag.
                    let _ = tx.send(env.encode());
                }
            }
            _ => {}
        }
        true
    });
    let _ = result;

    // Connection gone: deregister — but only our own generation. A
    // reconnect may already have replaced the entry, and removing the
    // fresh one would orphan the live connection (whose session must
    // not observe our ConnLost either).
    if let Some(node) = who {
        let mut reg = lock(registry);
        if reg.get(&node).is_some_and(|(g, _)| *g == gen) {
            reg.remove(&node);
            drop(reg);
            lock(shared)
                .machines
                .entry(node)
                .or_default()
                .step(SessionEvent::ConnLost);
        }
    }
    if let Some(w) = writer {
        let _ = w.join();
    }
}
