//! `REMO_DIST_*` environment knobs shared by the two binaries.
//!
//! Every knob is optional; unparseable values fall back to the default
//! (a monitoring process must come up even with a typo'd environment).
//!
//! | Variable | Meaning | Default |
//! |---|---|---|
//! | `REMO_DIST_EPOCH_MS` | wall-clock epoch length | 150 |
//! | `REMO_DIST_DEADLINE_MS` | report-barrier deadline within an epoch | 100 |
//! | `REMO_DIST_CONFIRM_AFTER` | consecutive misses before a node is confirmed dead | 2 |
//! | `REMO_DIST_NODE_CAPACITY` | per-node budget (cost units/epoch) | 1000 |
//! | `REMO_DIST_COLLECTOR_CAPACITY` | collector budget (cost units/epoch) | 100000 |
//! | `REMO_DIST_STARTUP_WAIT_MS` | how long the collector waits for nodes to register before ticking | 10000 |
//! | `REMO_DIST_RECONNECT_BASE_MS` | node's initial reconnect backoff (doubles, capped at 32×) | 50 |

use std::time::Duration;

/// Reads `name` as a `u64`, falling back to `default` when unset or
/// unparseable.
pub fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}

/// Reads `name` as an `f64`, falling back to `default` when unset,
/// unparseable, or not a finite positive number.
pub fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse::<f64>().ok())
        .filter(|v| v.is_finite() && *v > 0.0)
        .unwrap_or(default)
}

/// Reads `name` as a millisecond duration.
pub fn env_ms(name: &str, default_ms: u64) -> Duration {
    Duration::from_millis(env_u64(name, default_ms))
}

/// Wall-clock epoch length.
pub fn epoch_interval() -> Duration {
    env_ms("REMO_DIST_EPOCH_MS", 150)
}

/// Report-barrier deadline within an epoch.
pub fn barrier_deadline() -> Duration {
    env_ms("REMO_DIST_DEADLINE_MS", 100)
}

/// Consecutive misses before a node is confirmed dead.
pub fn confirm_after() -> u32 {
    env_u64("REMO_DIST_CONFIRM_AFTER", 2) as u32
}

/// Per-node budget in cost units per epoch.
pub fn node_capacity() -> f64 {
    env_f64("REMO_DIST_NODE_CAPACITY", 1000.0)
}

/// Collector budget in cost units per epoch.
pub fn collector_capacity() -> f64 {
    env_f64("REMO_DIST_COLLECTOR_CAPACITY", 100_000.0)
}

/// How long the collector waits for expected nodes to register before
/// starting epochs anyway.
pub fn startup_wait() -> Duration {
    env_ms("REMO_DIST_STARTUP_WAIT_MS", 10_000)
}

/// Node's initial reconnect backoff.
pub fn reconnect_base() -> Duration {
    env_ms("REMO_DIST_RECONNECT_BASE_MS", 50)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unparseable_falls_back() {
        // Unset names fall back.
        assert_eq!(env_u64("REMO_DIST_TEST_UNSET_KNOB", 7), 7);
        assert_eq!(env_f64("REMO_DIST_TEST_UNSET_KNOB", 2.5), 2.5);
        assert_eq!(
            env_ms("REMO_DIST_TEST_UNSET_KNOB", 40),
            Duration::from_millis(40)
        );
    }
}
