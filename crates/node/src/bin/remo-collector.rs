//! The collector process: binds, waits for nodes, runs epochs, prints
//! a reconciliation summary (optionally to a JSON report file).
//!
//! ```text
//! remo-collector --addr 127.0.0.1:7701 --nodes 8 --attrs 2 --epochs 40 \
//!     --report /tmp/remo-report.json
//! ```
//!
//! Stdout markers (stable, scripted against by `check.sh`):
//! `listening on ADDR`, `epochs started`, `run complete`.

use remo_core::{AttrId, CapacityMap, NodeId, PairSet};
use remo_node::{config, CollectorService, ServiceConfig};
use std::io::Write as _;
use std::time::Duration;

struct Args {
    addr: String,
    nodes: u32,
    attrs: u32,
    epochs: u64,
    report: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:7701".to_string(),
        nodes: 8,
        attrs: 2,
        epochs: 40,
        report: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut take = || it.next().ok_or_else(|| format!("{flag} needs a value"));
        match flag.as_str() {
            "--addr" => args.addr = take()?,
            "--nodes" => args.nodes = take()?.parse().map_err(|e| format!("--nodes: {e}"))?,
            "--attrs" => args.attrs = take()?.parse().map_err(|e| format!("--attrs: {e}"))?,
            "--epochs" => args.epochs = take()?.parse().map_err(|e| format!("--epochs: {e}"))?,
            "--report" => args.report = Some(take()?),
            "--help" | "-h" => {
                return Err(
                    "usage: remo-collector [--addr A] [--nodes N] [--attrs K] [--epochs E] \
                     [--report FILE]"
                        .to_string(),
                )
            }
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    if args.nodes == 0 || args.attrs == 0 || args.epochs == 0 {
        return Err("--nodes, --attrs, and --epochs must be positive".to_string());
    }
    Ok(args)
}

fn run() -> Result<(), String> {
    let args = parse_args()?;

    let pairs: PairSet = (0..args.nodes)
        .flat_map(|n| (0..args.attrs).map(move |a| (NodeId(n), AttrId(a))))
        .collect();
    let caps = CapacityMap::uniform(
        args.nodes as usize,
        config::node_capacity(),
        config::collector_capacity(),
    )
    .map_err(|e| format!("capacity map: {e:?}"))?;

    let mut cfg = ServiceConfig::new(args.addr, pairs, caps);
    cfg.epochs = args.epochs;

    let service = CollectorService::start(cfg).map_err(|e| format!("bind: {e}"))?;
    println!("remo-collector listening on {}", service.addr());
    let connected = service.wait_for_nodes(args.nodes as usize);
    println!(
        "remo-collector {} of {} nodes registered, epochs started",
        connected, args.nodes
    );
    let interval = config::epoch_interval();
    let summary = service.run(|report| {
        if report.confirmed_dead > 0 || report.repaired > 0 || report.recovered > 0 {
            println!(
                "remo-collector epoch {}: confirmed_dead={} repaired={} recovered={}",
                report.epoch, report.confirmed_dead, report.repaired, report.recovered
            );
        }
    });
    // Give node-side shutdowns a beat to land before the process exits
    // (purely cosmetic: avoids "connection reset" noise in node logs).
    std::thread::sleep(interval.min(Duration::from_millis(200)));

    let json = summary.to_json();
    println!("remo-collector run complete: {json}");
    if let Some(path) = args.report {
        let mut f = std::fs::File::create(&path).map_err(|e| format!("{path}: {e}"))?;
        f.write_all(json.as_bytes())
            .and_then(|()| f.write_all(b"\n"))
            .map_err(|e| format!("{path}: {e}"))?;
    }
    Ok(())
}

fn main() {
    if let Err(e) = run() {
        eprintln!("remo-collector: {e}");
        std::process::exit(1);
    }
}
