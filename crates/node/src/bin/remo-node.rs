//! One monitoring-node process.
//!
//! ```text
//! remo-node --addr 127.0.0.1:7701 --id 3
//! ```
//!
//! Connects to the collector, registers, and runs the agent state
//! machine until the collector says shutdown (or the collector stays
//! gone past the reconnect budget). Samples come from the
//! deterministic distributed sampler so the collector can verify
//! end-to-end integrity; a real deployment would plug in a probe here.

use remo_core::NodeId;
use remo_node::{dist_sampler, spawn_node, NodeConfig};

fn parse_args() -> Result<(String, u32), String> {
    let mut addr = "127.0.0.1:7701".to_string();
    let mut id: Option<u32> = None;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut take = || it.next().ok_or_else(|| format!("{flag} needs a value"));
        match flag.as_str() {
            "--addr" => addr = take()?,
            "--id" => id = Some(take()?.parse().map_err(|e| format!("--id: {e}"))?),
            "--help" | "-h" => return Err("usage: remo-node --id N [--addr A]".to_string()),
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    let id = id.ok_or_else(|| "--id is required".to_string())?;
    Ok((addr, id))
}

fn main() {
    let (addr, id) = match parse_args() {
        Ok(v) => v,
        Err(e) => {
            eprintln!("remo-node: {e}");
            std::process::exit(1);
        }
    };
    println!("remo-node {id} connecting to {addr}");
    let handle = spawn_node(NodeConfig::new(addr, NodeId(id)), dist_sampler());
    handle.join();
    println!("remo-node {id} done");
}
