//! Protocol conformance: random valid + hostile control-frame
//! interleavings are driven through the *real* collector and node
//! handlers over real TCP sockets, with the `remo-proto` machines as
//! the oracle.
//!
//! Collector side: every Hello the collector answers must carry
//! exactly the incarnation the spec's [`SessionMachine`] assigns for
//! that history, across fresh lives, held-incarnation reconnects, and
//! hostile preamble frames. Node side: the supervisor must survive
//! arbitrary hostile interleavings without panicking and must exit
//! exactly when the spec's [`ClientMachine`] says Stop.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use proptest::prelude::*;
use remo_core::{AttrId, CapacityMap, NodeId, PairSet};
use remo_node::{dist_sampler, spawn_node, CollectorService, NodeConfig, ServiceConfig};
use remo_proto::{ClientAction, ClientEvent, ClientMachine, HelloOutcome, SessionMachine};
use remo_runtime::framing::{Envelope, FrameDecoder, CHAN_CTRL, DEST_COLLECTOR};
use remo_runtime::transport::NetConfig;
use remo_runtime::CtrlMsg;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::time::Duration;

fn ctrl_env(msg: &CtrlMsg) -> Vec<u8> {
    Envelope {
        dest: DEST_COLLECTOR,
        chan: CHAN_CTRL,
        sent_epoch: 0,
        payload: msg.encode(),
    }
    .encode()
    .to_vec()
}

/// A control envelope whose payload is not a decodable `CtrlMsg`
/// (unknown kind tag). The framing layer passes it through; the
/// control decoder rejects it with a structured error.
fn junk_env() -> Vec<u8> {
    Envelope {
        dest: DEST_COLLECTOR,
        chan: CHAN_CTRL,
        sent_epoch: 0,
        payload: bytes::Bytes::from(vec![0x52, 0x43, 1, 200, 9, 9, 9, 9]),
    }
    .encode()
    .to_vec()
}

/// Reads control envelopes off `stream` until `want` have arrived.
fn read_ctrl(stream: &mut TcpStream, want: usize) -> Vec<CtrlMsg> {
    let mut dec = FrameDecoder::new();
    let mut got = Vec::new();
    let mut buf = [0u8; 4096];
    while got.len() < want {
        let n = stream.read(&mut buf).expect("collector closed early");
        assert!(n > 0, "collector closed early");
        dec.push(&buf[..n]);
        while let Some(env) = dec.try_next().expect("bad frame from collector") {
            if env.chan == CHAN_CTRL {
                got.push(CtrlMsg::decode(env.payload).expect("bad ctrl from collector"));
            }
        }
    }
    got
}

/// One scripted connection from the fake node's point of view.
#[derive(Debug, Clone)]
struct Conn {
    /// Hostile frames sent before the Hello (ignored by the spec).
    preamble: Vec<u8>,
    /// `Some(h)` greets with held incarnation `h`; `None` greets with
    /// whatever the previous connection was assigned (a reconnect).
    held: Option<u32>,
}

fn conn_strategy() -> impl Strategy<Value = Conn> {
    (
        prop::collection::vec(0u16..4, 0..3),
        // (0, _) reconnects with the previously assigned incarnation;
        // (1, h) greets with an arbitrary held value (0 = fresh life).
        (0u16..2, 0u16..4),
    )
        .prop_map(|(pre, (fresh, h))| Conn {
            preamble: pre
                .into_iter()
                .flat_map(|k| match k {
                    0 => junk_env(),
                    1 => ctrl_env(&CtrlMsg::Tick { epoch: 9 }),
                    2 => ctrl_env(&CtrlMsg::Degrade { factor: 3 }),
                    _ => ctrl_env(&CtrlMsg::Shutdown),
                })
                .collect(),
            held: (fresh == 1).then_some(u32::from(h)),
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Collector conformance: for any sequence of connections — fresh
    /// lives, reconnects with the held incarnation, arbitrary held
    /// values, hostile preambles — the Welcome's incarnation is
    /// exactly what the spec's session machine assigns, and the
    /// Welcome is always chased by the paired Assign.
    #[test]
    fn collector_assigns_incarnations_exactly_as_the_spec(
        conns in prop::collection::vec(conn_strategy(), 1..5),
    ) {
        let caps = CapacityMap::uniform(1, 1000.0, 100_000.0).unwrap();
        let pairs: PairSet = [(NodeId(0), AttrId(0))].into_iter().collect();
        let service =
            CollectorService::start(ServiceConfig::new("127.0.0.1:0", pairs, caps)).unwrap();
        let addr = service.addr();

        let mut oracle = SessionMachine::new();
        let mut last_assigned = 0u32;
        let mut max_assigned = 0u32;
        for conn in &conns {
            let held = conn.held.unwrap_or(last_assigned);
            let expected = match oracle.on_hello(held) {
                HelloOutcome::Admitted(a) => a,
                other => panic!("spec refused a pre-shutdown Hello: {other:?}"),
            };

            let mut stream = TcpStream::connect(addr).unwrap();
            stream.set_nodelay(true).unwrap();
            stream
                .set_read_timeout(Some(Duration::from_secs(10)))
                .unwrap();
            stream.write_all(&conn.preamble).unwrap();
            stream
                .write_all(&ctrl_env(&CtrlMsg::Hello {
                    node: NodeId(0),
                    incarnation: held,
                }))
                .unwrap();

            let msgs = read_ctrl(&mut stream, 2);
            match &msgs[0] {
                CtrlMsg::Welcome { incarnation, .. } => {
                    prop_assert_eq!(
                        *incarnation, expected,
                        "Welcome incarnation diverged from the session machine"
                    );
                    // A held-incarnation reconnect is *echoed* (a
                    // stale life stays on its own incarnation); only
                    // fresh lives must mint strictly above everything
                    // ever assigned (RA024).
                    if held == 0 {
                        prop_assert!(
                            *incarnation > max_assigned,
                            "fresh incarnation did not grow (RA024)"
                        );
                    }
                    max_assigned = max_assigned.max(*incarnation);
                    last_assigned = *incarnation;
                }
                other => panic!("expected Welcome first, got {other:?}"),
            }
            prop_assert!(
                matches!(msgs[1], CtrlMsg::Assign { .. }),
                "Welcome must be chased by Assign"
            );
        }
    }
}

/// One scripted frame from the fake collector's point of view.
#[derive(Debug, Clone, Copy)]
enum Script {
    Welcome {
        incarnation: u32,
    },
    Assign,
    Tick {
        epoch: u64,
    },
    Degrade {
        factor: u64,
    },
    /// A Hello sent *to* a node — never legal, must be dropped.
    HostileHello,
    /// An undecodable control payload in a well-framed envelope.
    Junk,
}

impl Script {
    fn encode(self) -> Vec<u8> {
        match self {
            Script::Welcome { incarnation } => ctrl_env(&CtrlMsg::Welcome {
                capacity: 1000.0,
                per_message: 1.0,
                per_value: 0.1,
                net: NetConfig::default(),
                incarnation,
                epoch: 0,
            }),
            Script::Assign => ctrl_env(&CtrlMsg::Assign {
                assignments: Vec::new(),
            }),
            Script::Tick { epoch } => ctrl_env(&CtrlMsg::Tick { epoch }),
            Script::Degrade { factor } => ctrl_env(&CtrlMsg::Degrade { factor }),
            Script::HostileHello => ctrl_env(&CtrlMsg::Hello {
                node: NodeId(9),
                incarnation: 0,
            }),
            Script::Junk => junk_env(),
        }
    }

    /// The client-machine event this frame delivers, if it decodes.
    fn event(self) -> Option<ClientEvent> {
        match self {
            Script::Welcome { .. } => Some(ClientEvent::RecvWelcome),
            Script::Assign => Some(ClientEvent::RecvAssign),
            Script::Tick { .. } => Some(ClientEvent::RecvTick),
            Script::Degrade { .. } => Some(ClientEvent::RecvDegrade),
            Script::HostileHello => Some(ClientEvent::RecvHello),
            Script::Junk => None,
        }
    }
}

fn script_strategy() -> impl Strategy<Value = Script> {
    (0u16..6, 0u16..4).prop_map(|(k, v)| match k {
        0 => Script::Welcome {
            incarnation: u32::from(v),
        },
        1 => Script::Assign,
        2 => Script::Tick {
            epoch: u64::from(v) + 1,
        },
        3 => Script::Degrade {
            factor: u64::from(v) + 1,
        },
        4 => Script::HostileHello,
        _ => Script::Junk,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Node conformance: a real `spawn_node` supervisor fed an
    /// arbitrary interleaving of valid and hostile control frames
    /// (duplicate and regressed Welcomes, ticks before registration,
    /// Hellos aimed at a node, undecodable payloads) never panics,
    /// and exits exactly when the spec's client machine reaches Stop
    /// on the closing Shutdown.
    #[test]
    fn node_survives_hostile_interleavings_and_stops_on_shutdown(
        script in prop::collection::vec(script_strategy(), 0..8),
    ) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();

        let handle = spawn_node(
            NodeConfig::new(addr.to_string(), NodeId(0)),
            dist_sampler(),
        );

        let (mut conn, _) = listener.accept().unwrap();
        conn.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        // The node greets first; drain its Hello before scripting.
        let hello = read_ctrl(&mut conn, 1);
        assert!(matches!(hello[0], CtrlMsg::Hello { .. }));

        // Oracle: replay the connection edges and the script through
        // the client machine; the closing Shutdown must reach Stop.
        let mut oracle = ClientMachine::new();
        oracle.step(ClientEvent::Connected);
        for s in &script {
            if let Some(ev) = s.event() {
                oracle.step(ev);
            }
        }
        let stop = oracle.step(ClientEvent::RecvShutdown);
        prop_assert_eq!(stop, Some(ClientAction::Stop));

        // Later frames may race the node's exit; broken pipes are the
        // expected outcome then, not a failure.
        for s in &script {
            let _ = conn.write_all(&s.encode());
        }
        let _ = conn.write_all(&ctrl_env(&CtrlMsg::Shutdown));

        // The node must drain and exit on its own.
        let (tx, rx) = std::sync::mpsc::channel();
        std::thread::spawn(move || {
            handle.join();
            let _ = tx.send(());
        });
        rx.recv_timeout(Duration::from_secs(30))
            .expect("node did not exit after Shutdown");
    }
}
