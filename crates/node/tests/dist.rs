//! End-to-end tests of the distributed runtime over real TCP sockets
//! on localhost: full-coverage collection, the SIGKILL →
//! detect → repair → restart cycle (the seq-restart regression), and
//! adversarial segmentation on a live connection.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use remo_core::{AttrId, CapacityMap, NodeId, PairSet};
use remo_node::{
    dist_sampler, spawn_node, CollectorService, NodeConfig, RunSummary, ServiceConfig,
};
use remo_runtime::framing::{Envelope, CHAN_DATA};
use std::time::Duration;

fn dense_pairs(nodes: u32, attrs: u32) -> PairSet {
    (0..nodes)
        .flat_map(|n| (0..attrs).map(move |a| (NodeId(n), AttrId(a))))
        .collect()
}

fn test_config(nodes: u32, attrs: u32, epochs: u64) -> ServiceConfig {
    let caps = CapacityMap::uniform(nodes as usize, 1000.0, 100_000.0).unwrap();
    let mut cfg = ServiceConfig::new("127.0.0.1:0", dense_pairs(nodes, attrs), caps);
    cfg.epochs = epochs;
    // Generous wall-clock budgets: CI runs this on one core with
    // dozens of threads.
    cfg.epoch_interval = Duration::from_millis(120);
    cfg.health.deadline = Duration::from_millis(100);
    cfg.health.confirm_after = 2;
    cfg.startup_wait = Duration::from_secs(10);
    cfg
}

/// 8 nodes over real sockets: every planned pair is observed, every
/// observed value matches the deterministic sampler exactly, and
/// nothing is falsely detected as dead.
#[test]
fn eight_nodes_collect_and_reconcile_over_tcp() {
    const NODES: u32 = 8;
    let service = CollectorService::start(test_config(NODES, 2, 25)).unwrap();
    let addr = service.addr().to_string();

    let handles: Vec<_> = (0..NODES)
        .map(|id| spawn_node(NodeConfig::new(addr.clone(), NodeId(id)), dist_sampler()))
        .collect();
    assert_eq!(service.wait_for_nodes(NODES as usize), NODES as usize);

    let summary: RunSummary = service.run(|_| {});
    for h in handles {
        h.join();
    }

    assert_eq!(summary.epochs, 25);
    assert_eq!(
        summary.observed_pairs, summary.planned_pairs,
        "every planned (node, attribute) pair must reach the collector"
    );
    assert_eq!(summary.confirmed_dead, 0, "no false positives");
    assert!(summary.integrity_checked > 0);
    assert_eq!(
        summary.integrity_violations, 0,
        "observed values must match the sampler end-to-end"
    );
}

/// The SIGKILL cycle: an aborted node is confirmed dead and repaired
/// around; a restarted process (greeting with incarnation 0) gets a
/// fresh incarnation, so its restarted seq numbers are NOT swallowed
/// by the collector's dedup watermark — its values flow again and the
/// detector reports a recovery. Pre-fix (no incarnation in the wire
/// header), the restarted node's frames deduped as replays and its
/// pairs went permanently stale.
#[test]
fn killed_node_is_detected_repaired_and_reintegrated_after_restart() {
    const NODES: u32 = 5;
    const VICTIM: u32 = 2;
    let service = CollectorService::start(test_config(NODES, 2, 60)).unwrap();
    let addr = service.addr().to_string();

    let mut handles: Vec<_> = (0..NODES)
        .map(|id| spawn_node(NodeConfig::new(addr.clone(), NodeId(id)), dist_sampler()))
        .collect();
    assert_eq!(service.wait_for_nodes(NODES as usize), NODES as usize);

    let runner = std::thread::spawn(move || service.run(|_| {}));

    // Let the deployment reach steady state, then kill the victim the
    // hard way: socket torn down mid-run, no goodbye.
    std::thread::sleep(Duration::from_millis(1200));
    handles.remove(VICTIM as usize).abort();

    // Confirmation needs `confirm_after` missed barriers; give it
    // slack, then restart the process (fresh life, greets with
    // incarnation 0).
    std::thread::sleep(Duration::from_millis(1500));
    handles.push(spawn_node(
        NodeConfig::new(addr, NodeId(VICTIM)),
        dist_sampler(),
    ));

    let summary = runner.join().unwrap();
    for h in handles {
        h.join();
    }

    assert!(summary.confirmed_dead >= 1, "kill must be detected");
    assert!(summary.repaired >= 1, "plan must be repaired around it");
    assert!(summary.recovered >= 1, "restart must be reintegrated");
    assert_eq!(
        summary.observed_pairs, summary.planned_pairs,
        "restarted node's values must flow again (seq-restart regression)"
    );
    assert!(summary.integrity_checked > 0);
    assert_eq!(summary.integrity_violations, 0);
}

/// Envelope framing survives a real socket delivering the byte stream
/// in adversarially small, ragged chunks.
#[test]
fn envelopes_reassemble_across_adversarial_segmentation_on_a_real_socket() {
    use std::io::{Read, Write};

    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();

    let envelopes: Vec<Envelope> = (0..50u32)
        .map(|i| Envelope {
            dest: i,
            chan: CHAN_DATA,
            sent_epoch: u64::from(i) * 7,
            payload: bytes::Bytes::from(vec![i as u8; (i as usize * 13) % 97]),
        })
        .collect();

    let to_send = envelopes.clone();
    let writer = std::thread::spawn(move || {
        let mut s = std::net::TcpStream::connect(addr).unwrap();
        s.set_nodelay(true).unwrap();
        let mut wire = Vec::new();
        for env in &to_send {
            wire.extend_from_slice(&env.encode());
        }
        // Ragged chunk sizes, one flush per chunk, with pauses every
        // few chunks so the reader really does observe partial frames.
        let mut off = 0;
        let mut step = 1;
        while off < wire.len() {
            let end = (off + step).min(wire.len());
            s.write_all(&wire[off..end]).unwrap();
            s.flush().unwrap();
            if step % 5 == 0 {
                std::thread::sleep(Duration::from_millis(1));
            }
            off = end;
            step = step % 7 + 1;
        }
    });

    let (mut conn, _) = listener.accept().unwrap();
    let mut dec = remo_runtime::framing::FrameDecoder::new();
    let mut got = Vec::new();
    let mut buf = [0u8; 64];
    while got.len() < envelopes.len() {
        let n = conn.read(&mut buf).unwrap();
        assert!(n > 0, "stream ended early");
        dec.push(&buf[..n]);
        while let Some(env) = dec.try_next().unwrap() {
            got.push(env);
        }
    }
    writer.join().unwrap();
    assert_eq!(got, envelopes);
    assert_eq!(dec.pending(), 0);
}
