//! `remo-audit` — audit a serialized plan bundle against the paper's
//! named invariants.
//!
//! ```text
//! remo-audit <bundle.json> [--sarif <out.json>] [--errors-only]
//!            [--disable <rule>]... [--severity <rule>=<level>]...
//! remo-audit --list-rules
//! remo-audit --example
//! ```
//!
//! Exit status: 0 when no error-severity finding fired, 1 when at
//! least one did, 2 on usage or I/O problems.

use remo_audit::{corpus, rule, sarif, Audit, AuditBundle, Severity, RULES};
use std::process::ExitCode;

const USAGE: &str = "\
usage: remo-audit <bundle.json> [options]
       remo-audit --list-rules
       remo-audit --example

options:
  --sarif <out.json>        also write a SARIF-style report
  --errors-only             run only error-severity rules
  --disable <rule>          skip a rule by name (repeatable)
  --severity <rule>=<level> override a rule's severity to
                            error|warn|info (repeatable)
  --list-rules              print the rule registry and exit
  --example                 print an example bundle (a known-bad
                            corpus entry) and exit
";

fn parse_severity(text: &str) -> Option<Severity> {
    match text {
        "error" => Some(Severity::Error),
        "warn" | "warning" => Some(Severity::Warn),
        "info" | "note" => Some(Severity::Info),
        _ => None,
    }
}

fn list_rules() {
    println!(
        "{:<7} {:<30} {:<8} {:<10} summary",
        "code", "rule", "level", "paper"
    );
    for r in RULES {
        println!(
            "{:<7} {:<30} {:<8} {:<10} {}",
            r.code,
            r.name,
            r.severity.to_string(),
            r.paper_section,
            r.summary
        );
    }
}

fn usage_error(message: &str) -> ExitCode {
    eprintln!("remo-audit: {message}");
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    if args.iter().any(|a| a == "--list-rules") {
        list_rules();
        return ExitCode::SUCCESS;
    }
    if args.iter().any(|a| a == "--example") {
        let cases = corpus::known_bad();
        let case = &cases[0];
        match case.bundle.to_json() {
            Ok(text) => {
                println!("{text}");
                return ExitCode::SUCCESS;
            }
            Err(e) => {
                eprintln!("remo-audit: cannot render example: {e}");
                return ExitCode::from(2);
            }
        }
    }

    let mut bundle_path: Option<String> = None;
    let mut sarif_path: Option<String> = None;
    let mut audit = Audit::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--errors-only" => {
                *audit.rules_mut() = remo_audit::RuleSet::errors_only();
            }
            "--sarif" => match it.next() {
                Some(path) => sarif_path = Some(path),
                None => return usage_error("--sarif needs a path"),
            },
            "--disable" => match it.next() {
                Some(name) => {
                    if rule(&name).is_none() {
                        return usage_error(&format!("unknown rule `{name}`"));
                    }
                    audit.rules_mut().disable(&name);
                }
                None => return usage_error("--disable needs a rule name"),
            },
            "--severity" => match it.next() {
                Some(spec) => {
                    let Some((name, level)) = spec.split_once('=') else {
                        return usage_error("--severity needs <rule>=<level>");
                    };
                    if rule(name).is_none() {
                        return usage_error(&format!("unknown rule `{name}`"));
                    }
                    let Some(sev) = parse_severity(level) else {
                        return usage_error(&format!("unknown severity `{level}`"));
                    };
                    audit.rules_mut().set_severity(name, sev);
                }
                None => return usage_error("--severity needs <rule>=<level>"),
            },
            other if other.starts_with("--") => {
                return usage_error(&format!("unknown option `{other}`"));
            }
            path => {
                if bundle_path.replace(path.to_string()).is_some() {
                    return usage_error("more than one bundle path given");
                }
            }
        }
    }

    let Some(path) = bundle_path else {
        return usage_error("no bundle path given");
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("remo-audit: cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let bundle = match AuditBundle::from_json(&text) {
        Ok(bundle) => bundle,
        Err(e) => {
            eprintln!("remo-audit: {path} is not a valid bundle: {e}");
            return ExitCode::from(2);
        }
    };

    let outcome = bundle.audit(&audit);
    if let Some(out) = sarif_path {
        if let Err(e) = std::fs::write(&out, sarif::sarif_json(&outcome)) {
            eprintln!("remo-audit: cannot write {out}: {e}");
            return ExitCode::from(2);
        }
    }

    if outcome.findings.is_empty() {
        println!("{path}: clean ({} rules)", RULES.len());
    } else {
        print!("{}", outcome.render());
        let errors = outcome.errors().count();
        println!(
            "{path}: {} finding(s), {errors} error(s)",
            outcome.findings.len()
        );
    }
    if outcome.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
