//! # remo-audit
//!
//! Whole-plan static analysis for REMO monitoring plans: the
//! rule-registry engine from `remo_core::validate` plus everything
//! that needs to see across crate layers — runtime tree assignments
//! checked against the plan they claim to implement
//! ([`cross::check_assignments`]), sim failure schedules checked for
//! self-consistency ([`cross::check_failure_schedule`]) — a
//! serializable [`AuditBundle`] input format, SARIF-style JSON
//! reports ([`sarif`]), a corpus of known-bad plans ([`corpus`]), and
//! the `remo-audit` CLI.
//!
//! The planner maintains the paper's invariants *by construction*;
//! this crate re-proves them on any plan that crossed a serialization
//! boundary, was repaired by the self-healing runtime, or was
//! rewritten for reliability.
//!
//! ```
//! use remo_core::{CapacityMap, CostModel, NodeId, AttrId, PairSet, AttrCatalog};
//! use remo_core::planner::Planner;
//! use remo_audit::AuditBundle;
//!
//! # fn main() -> Result<(), remo_core::PlanError> {
//! let caps = CapacityMap::uniform(6, 30.0, 200.0)?;
//! let pairs: PairSet = (0..6).map(|n| (NodeId(n), AttrId(0))).collect();
//! let catalog = AttrCatalog::new();
//! let cost = CostModel::default();
//! let plan = Planner::default().plan_with_catalog(&pairs, &caps, cost, &catalog);
//! let bundle = AuditBundle::new(plan, pairs, caps, cost);
//! let outcome = bundle.audit(&remo_audit::Audit::new());
//! assert!(outcome.is_clean());
//! // The bundle round-trips through JSON for the CLI.
//! let text = bundle.to_json().unwrap();
//! assert!(AuditBundle::from_json(&text).unwrap().audit(&remo_audit::Audit::new()).is_clean());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod corpus;
pub mod cross;

pub use remo_core::sarif;

pub use remo_core::validate::{
    rule, rules, Audit, AuditInput, AuditOutcome, Finding, RuleMeta, RuleSet, Severity, RULES,
};

use remo_core::reliability::ReliabilityRewrite;
use remo_core::{AttrCatalog, CapacityMap, CostModel, MonitoringPlan, NodeId, PairSet};
use remo_sim::failure::FailureSchedule;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Everything an offline audit needs, as one serializable document:
/// the plan, the demand and budgets it claims to satisfy, and the
/// optional cross-cutting artifacts. This is the input format of the
/// `remo-audit` CLI.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AuditBundle {
    /// The plan under audit.
    pub plan: MonitoringPlan,
    /// The (node, attribute) demand the plan was built for.
    pub pairs: PairSet,
    /// Per-node and collector capacity budgets.
    pub caps: CapacityMap,
    /// The `C + a·x` message cost model.
    pub cost: CostModel,
    /// Attribute metadata (aggregations, frequencies).
    #[serde(default)]
    pub catalog: AttrCatalog,
    /// Whether the plan was built with aggregation-aware load
    /// accounting (the audit must replicate it exactly).
    #[serde(default)]
    pub aggregation_aware: bool,
    /// Whether the plan was built with frequency-weighted loads.
    #[serde(default)]
    pub frequency_aware: bool,
    /// Reliability rewrite the demand came from, if any — enables the
    /// `reliability-alias-consistency` rule.
    #[serde(default)]
    pub rewrite: Option<ReliabilityRewrite>,
    /// The plan this one was adapted from, if any — enables the
    /// `adaptation-monotonic` rule.
    #[serde(default)]
    pub predecessor: Option<MonitoringPlan>,
    /// Nodes that failed between predecessor and plan.
    #[serde(default)]
    pub failed_nodes: Vec<NodeId>,
    /// A scripted failure schedule to check for self-consistency, if
    /// any — enables the `failure-schedule-consistent` rule.
    #[serde(default)]
    pub failure_schedule: Option<FailureSchedule>,
    /// Staleness SLO in epochs, if the deployment declares one —
    /// enables the `staleness-bound` rule.
    #[serde(default)]
    pub staleness_slo: Option<f64>,
    /// Runtime degrade factor (collector-backpressure interval
    /// multiplier) at the time the bundle was captured; 1 when
    /// healthy. Values below 1 (including a serde-defaulted 0) are
    /// treated as 1 by the rule.
    #[serde(default)]
    pub degrade_factor: f64,
}

impl AuditBundle {
    /// A bundle with no optional artifacts and a default catalog.
    ///
    /// `aggregation_aware` defaults to `true` (matching
    /// [`AuditInput::new`]): with a default catalog every funnel is
    /// the identity, so this is exact for plans built either way.
    pub fn new(plan: MonitoringPlan, pairs: PairSet, caps: CapacityMap, cost: CostModel) -> Self {
        AuditBundle {
            plan,
            pairs,
            caps,
            cost,
            catalog: AttrCatalog::new(),
            aggregation_aware: true,
            frequency_aware: false,
            rewrite: None,
            predecessor: None,
            failed_nodes: Vec::new(),
            failure_schedule: None,
            staleness_slo: None,
            degrade_factor: 1.0,
        }
    }

    /// Runs `audit` over everything in the bundle: the core rule
    /// engine on the plan plus the failure-schedule cross-layer check
    /// when a schedule is present. Findings are merged into one
    /// severity-ordered [`AuditOutcome`].
    pub fn audit(&self, audit: &Audit) -> AuditOutcome {
        let failed: BTreeSet<NodeId> = self.failed_nodes.iter().copied().collect();
        let mut input = AuditInput::new(
            &self.plan,
            &self.pairs,
            &self.caps,
            self.cost,
            &self.catalog,
        )
        .aggregation_aware(self.aggregation_aware)
        .frequency_aware(self.frequency_aware);
        if let Some(rewrite) = &self.rewrite {
            input = input.with_rewrite(rewrite);
        }
        if let Some(predecessor) = &self.predecessor {
            input = input.with_predecessor(predecessor, &failed);
        }
        if let Some(slo) = self.staleness_slo {
            input = input
                .with_staleness_slo(slo)
                .with_degrade_factor(self.degrade_factor);
        }
        let mut outcome = audit.run(&input);
        if let Some(schedule) = &self.failure_schedule {
            outcome
                .findings
                .extend(cross::check_failure_schedule(schedule, audit.rules()));
        }
        outcome
            .findings
            .sort_by(|a, b| b.severity.cmp(&a.severity).then(a.code.cmp(&b.code)));
        outcome
    }

    /// Serializes the bundle to pretty JSON.
    ///
    /// # Errors
    ///
    /// Propagates serializer errors (infallible with the vendored
    /// stub, fallible against real `serde_json`).
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }

    /// Parses a bundle from JSON text.
    ///
    /// # Errors
    ///
    /// Returns the parse or shape error verbatim.
    pub fn from_json(text: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(text)
    }
}

/// Asserts that `plan` passes every error-severity rule; panics with
/// the rendered findings otherwise. Bench binaries call this after
/// planning so every reported figure comes from an audited plan.
pub fn assert_plan_clean(
    plan: &MonitoringPlan,
    pairs: &PairSet,
    caps: &CapacityMap,
    cost: CostModel,
    catalog: &AttrCatalog,
) {
    let outcome = Audit::new().run(&AuditInput::new(plan, pairs, caps, cost, catalog));
    assert!(
        outcome.is_clean(),
        "plan failed its audit:\n{}",
        outcome.render()
    );
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use remo_core::planner::Planner;
    use remo_core::{AttrId, NodeId};
    use remo_sim::failure::Outage;

    fn bundle() -> AuditBundle {
        let pairs: PairSet = (0..6)
            .flat_map(|n| (0..2).map(move |a| (NodeId(n), AttrId(a))))
            .collect();
        let caps = CapacityMap::uniform(6, 40.0, 300.0).unwrap();
        let cost = CostModel::default();
        let catalog = AttrCatalog::new();
        let plan = Planner::default().plan_with_catalog(&pairs, &caps, cost, &catalog);
        AuditBundle::new(plan, pairs, caps, cost)
    }

    #[test]
    fn bundle_roundtrips_and_audits_clean() {
        let b = bundle();
        let text = b.to_json().unwrap();
        let back = AuditBundle::from_json(&text).unwrap();
        let outcome = back.audit(&Audit::new());
        assert!(outcome.is_clean(), "{}", outcome.render());
    }

    #[test]
    fn bundle_runs_schedule_check() {
        let mut b = bundle();
        let mut sched = FailureSchedule::new();
        sched.add(Outage::node(NodeId(0), 10, Some(5))); // empty window
        b.failure_schedule = Some(sched);
        let outcome = b.audit(&Audit::new());
        assert_eq!(
            outcome.of_rule(rules::FAILURE_SCHEDULE_CONSISTENT).count(),
            1
        );
        assert!(outcome.is_clean(), "warn severity must not fail the audit");
    }

    #[test]
    fn assert_plan_clean_accepts_planner_output() {
        let b = bundle();
        assert_plan_clean(&b.plan, &b.pairs, &b.caps, b.cost, &b.catalog);
    }

    #[test]
    #[should_panic(expected = "plan failed its audit")]
    fn assert_plan_clean_panics_on_overload() {
        let b = bundle();
        let tight = CapacityMap::uniform(6, 1.0, 300.0).unwrap();
        assert_plan_clean(&b.plan, &b.pairs, &tight, b.cost, &b.catalog);
    }
}
