//! Cross-layer checks: artifacts from the runtime and sim crates
//! audited against the plan (or against themselves). These live here
//! rather than in `remo_core::validate` because they need types from
//! crates that depend on core.

use crate::{rule, rules, Finding, RuleSet};
use remo_core::{AttrCatalog, MonitoringPlan, NodeId, PairSet};
use remo_runtime::{plan_assignments, TreeAssignment};
use remo_sim::failure::{FailureSchedule, FailureTarget};
use std::collections::BTreeMap;
use std::collections::BTreeSet;

fn finding(ruleset: &RuleSet, name: &str, message: String) -> Option<Finding> {
    if !ruleset.is_enabled(name) {
        return None;
    }
    let meta = rule(name)?;
    Some(Finding {
        rule: meta.name.to_string(),
        code: meta.code.to_string(),
        severity: ruleset.severity(meta),
        message,
        tree: None,
        node: None,
        attr: None,
        actual: None,
        limit: None,
        fix_hint: meta.fix_hint.to_string(),
    })
}

/// Checks live runtime assignments against the plan they claim to
/// implement (`deployment-route-fidelity`): every tree member must
/// hold exactly the assignment the plan derives — same route to its
/// parent, same locally sampled attributes, same relay aggregations —
/// and no agent may hold an assignment for a tree it is not in.
///
/// `assignments` is what [`remo_runtime::Deployment::assignments`]
/// reports; the expectation is re-derived through the same
/// [`plan_assignments`] function the deployment configures agents
/// from, so any drift is a real divergence between plan and overlay.
pub fn check_assignments(
    plan: &MonitoringPlan,
    pairs: &PairSet,
    catalog: &AttrCatalog,
    assignments: &BTreeMap<NodeId, Vec<TreeAssignment>>,
    ruleset: &RuleSet,
) -> Vec<Finding> {
    let expected = plan_assignments(plan, pairs, catalog);
    let mut findings = Vec::new();
    let nodes: BTreeSet<NodeId> = expected.keys().chain(assignments.keys()).copied().collect();
    for node in nodes {
        let want = expected.get(&node).cloned().unwrap_or_default();
        let have = assignments.get(&node).cloned().unwrap_or_default();
        let want_by_tree: BTreeMap<u32, &TreeAssignment> =
            want.iter().map(|a| (a.tree, a)).collect();
        let have_by_tree: BTreeMap<u32, &TreeAssignment> =
            have.iter().map(|a| (a.tree, a)).collect();
        if have.len() != have_by_tree.len() {
            if let Some(mut f) = finding(
                ruleset,
                rules::DEPLOYMENT_ROUTE_FIDELITY,
                format!("node {node} holds duplicate assignments for one tree"),
            ) {
                f.node = Some(node);
                findings.push(f);
            }
        }
        for (tree, want_a) in &want_by_tree {
            match have_by_tree.get(tree) {
                None => {
                    if let Some(mut f) = finding(
                        ruleset,
                        rules::DEPLOYMENT_ROUTE_FIDELITY,
                        format!("node {node} is a member of tree {tree} but holds no assignment"),
                    ) {
                        f.node = Some(node);
                        f.tree = Some(*tree as usize);
                        findings.push(f);
                    }
                }
                Some(have_a) if have_a != want_a => {
                    let what = if have_a.parent != want_a.parent {
                        "routes to the wrong parent"
                    } else if have_a.local != want_a.local {
                        "samples the wrong local attributes"
                    } else {
                        "applies the wrong relay aggregations"
                    };
                    if let Some(mut f) = finding(
                        ruleset,
                        rules::DEPLOYMENT_ROUTE_FIDELITY,
                        format!("node {node} in tree {tree} {what}"),
                    ) {
                        f.node = Some(node);
                        f.tree = Some(*tree as usize);
                        findings.push(f);
                    }
                }
                Some(_) => {}
            }
        }
        for tree in have_by_tree.keys() {
            if !want_by_tree.contains_key(tree) {
                if let Some(mut f) = finding(
                    ruleset,
                    rules::DEPLOYMENT_ROUTE_FIDELITY,
                    format!("node {node} holds an assignment for tree {tree} it is not in"),
                ) {
                    f.node = Some(node);
                    f.tree = Some(*tree as usize);
                    findings.push(f);
                }
            }
        }
    }
    findings
}

/// Checks a scripted failure schedule for self-consistency
/// (`failure-schedule-consistent`): empty windows that can never
/// fire, self-loop link outages, and exact duplicate outages.
pub fn check_failure_schedule(schedule: &FailureSchedule, ruleset: &RuleSet) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut seen = BTreeSet::new();
    for (i, o) in schedule.outages().iter().enumerate() {
        if o.until_epoch.is_some_and(|u| u < o.from_epoch) {
            if let Some(f) = finding(
                ruleset,
                rules::FAILURE_SCHEDULE_CONSISTENT,
                format!(
                    "outage {i} has an empty window [{}, {}] and never fires",
                    o.from_epoch,
                    o.until_epoch.unwrap_or(0)
                ),
            ) {
                findings.push(f);
            }
        }
        if let FailureTarget::Link(a, b) = o.target {
            if a == b {
                if let Some(mut f) = finding(
                    ruleset,
                    rules::FAILURE_SCHEDULE_CONSISTENT,
                    format!("outage {i} targets the self-loop link {a} → {b}"),
                ) {
                    f.node = Some(a);
                    findings.push(f);
                }
            }
        }
        let key = format!("{:?}", o);
        if !seen.insert(key) {
            if let Some(f) = finding(
                ruleset,
                rules::FAILURE_SCHEDULE_CONSISTENT,
                format!("outage {i} exactly duplicates an earlier one"),
            ) {
                findings.push(f);
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use remo_core::planner::Planner;
    use remo_core::{AttrId, CapacityMap, CostModel};
    use remo_runtime::Route;
    use remo_sim::failure::Outage;

    fn setup() -> (MonitoringPlan, PairSet, AttrCatalog) {
        let pairs: PairSet = (0..6)
            .flat_map(|n| (0..2).map(move |a| (NodeId(n), AttrId(a))))
            .collect();
        let caps = CapacityMap::uniform(6, 40.0, 300.0).unwrap();
        let catalog = AttrCatalog::new();
        let plan =
            Planner::default().plan_with_catalog(&pairs, &caps, CostModel::default(), &catalog);
        (plan, pairs, catalog)
    }

    #[test]
    fn faithful_assignments_are_clean() {
        let (plan, pairs, catalog) = setup();
        let assignments = plan_assignments(&plan, &pairs, &catalog);
        let findings = check_assignments(&plan, &pairs, &catalog, &assignments, &RuleSet::all());
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn drifted_assignments_are_flagged() {
        let (plan, pairs, catalog) = setup();
        let mut assignments = plan_assignments(&plan, &pairs, &catalog);

        // Reroute one member to the collector behind the plan's back.
        let (&victim, list) = assignments
            .iter_mut()
            .find(|(_, list)| list.iter().any(|a| a.parent != Route::Collector))
            .expect("some member routes through a parent node");
        let a = list
            .iter_mut()
            .find(|a| a.parent != Route::Collector)
            .expect("checked above");
        a.parent = Route::Collector;
        let findings = check_assignments(&plan, &pairs, &catalog, &assignments, &RuleSet::all());
        assert!(
            findings
                .iter()
                .any(|f| f.node == Some(victim) && f.message.contains("wrong parent")),
            "{findings:?}"
        );

        // Drop a node's assignments entirely.
        let mut assignments = plan_assignments(&plan, &pairs, &catalog);
        let (&victim, _) = assignments.iter().next().expect("nonempty");
        assignments.remove(&victim);
        let findings = check_assignments(&plan, &pairs, &catalog, &assignments, &RuleSet::all());
        assert!(findings.iter().any(|f| f.node == Some(victim)));
    }

    #[test]
    fn schedule_inconsistencies_are_flagged() {
        let mut sched = FailureSchedule::new();
        sched.add(Outage::node(NodeId(0), 10, Some(5)));
        sched.add(Outage::link(NodeId(1), NodeId(1), 3, None));
        sched.add(Outage::node(NodeId(2), 1, Some(2)));
        sched.add(Outage::node(NodeId(2), 1, Some(2)));
        let findings = check_failure_schedule(&sched, &RuleSet::all());
        assert_eq!(findings.len(), 3, "{findings:?}");

        let mut ok = FailureSchedule::new();
        ok.add(Outage::node(NodeId(0), 5, Some(9)));
        ok.add(Outage::link(NodeId(1), NodeId(0), 15, None));
        assert!(check_failure_schedule(&ok, &RuleSet::all()).is_empty());
    }
}
