//! A seed corpus of known-bad plans, each constructed to trip exactly
//! one named rule.
//!
//! The planner cannot be coaxed into emitting these (it maintains the
//! invariants by construction), so the corpus builds them the way
//! real corruption arrives: by tampering with the plan's public
//! bookkeeping fields, or by deserializing structures whose
//! constructors would have rejected them — exactly what a plan that
//! crossed a serialization boundary can contain.

// Corpus fixtures are built from constant inputs whose constructors
// cannot fail; a panic here is a broken fixture, not a runtime error
// path, so the workspace unwrap/expect deny is relaxed for this module.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use crate::AuditBundle;
use remo_core::planner::{PartitionScheme, Planner};
use remo_core::reliability::rewrite_ssdp;
use remo_core::{
    AttrCatalog, AttrId, AttrSet, CapacityMap, CostModel, MonitoringPlan, MonitoringTask, NodeId,
    PairSet, Partition, TaskId,
};
use remo_sim::failure::{FailureSchedule, Outage};
use serde::{Deserialize, Serialize, Value};

/// One corpus entry: a bundle that must trip `rule` and nothing else.
#[derive(Debug, Clone)]
pub struct BadCase {
    /// The rule the bundle is built to violate.
    pub rule: &'static str,
    /// What the corruption models.
    pub description: &'static str,
    /// The corrupted audit input.
    pub bundle: AuditBundle,
}

fn dense_pairs(nodes: u32, attrs: u32) -> PairSet {
    (0..nodes)
        .flat_map(|n| (0..attrs).map(move |a| (NodeId(n), AttrId(a))))
        .collect()
}

fn clean_bundle(nodes: u32, attrs: u32, per_node: f64) -> AuditBundle {
    let pairs = dense_pairs(nodes, attrs);
    let caps = CapacityMap::uniform(nodes as usize, per_node, 500.0).expect("valid caps");
    let cost = CostModel::default();
    let catalog = AttrCatalog::new();
    let plan = Planner::default().plan_with_catalog(&pairs, &caps, cost, &catalog);
    AuditBundle::new(plan, pairs, caps, cost)
}

/// Looks up a named field of a serialized [`Value`] object.
fn field_mut<'a>(v: &'a mut Value, key: &str) -> &'a mut Value {
    match v {
        Value::Object(fields) => fields
            .iter_mut()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .expect("field present in serialized form"),
        _ => panic!("expected object"),
    }
}

/// A plan whose recomputed usage exceeds the bundled budgets: models
/// auditing against capacities that shrank after planning.
fn over_budget() -> AuditBundle {
    let mut b = clean_bundle(8, 2, 100.0);
    b.caps = CapacityMap::uniform(8, 4.0, 500.0).expect("valid caps");
    b
}

/// A partition with one attribute in two sets: built through serde
/// because `Partition::from_sets` rejects overlap. The duplicated
/// attribute is demanded by nobody, so coverage and load accounting
/// are unchanged and only disjointness is violated.
fn overlapping_partition() -> AuditBundle {
    let pairs = dense_pairs(6, 2);
    let caps = CapacityMap::uniform(6, 60.0, 500.0).expect("valid caps");
    let cost = CostModel::default();
    let catalog = AttrCatalog::new();
    let planner = Planner::default();
    let plan = PartitionScheme::SingletonSet.plan(&planner, &pairs, &caps, cost, &catalog);
    assert_eq!(
        plan.partition().len(),
        2,
        "singleton scheme: one set per attr"
    );

    let mut raw = plan.partition().serialize();
    if let Value::Array(sets) = field_mut(&mut raw, "sets") {
        for set in sets.iter_mut() {
            if let Value::Array(attrs) = set {
                attrs.push(Value::U64(2)); // undemanded attr, both sets
            }
        }
    }
    let tampered = Partition::deserialize(&raw).expect("shape is valid, content is not");
    let plan = MonitoringPlan::new(tampered, plan.trees().to_vec());
    AuditBundle::new(plan, pairs, caps, cost)
}

/// A plan whose recorded collected-pair count was inflated after the
/// fact.
fn inflated_coverage() -> AuditBundle {
    let mut b = clean_bundle(6, 2, 60.0);
    let mut trees = b.plan.trees().to_vec();
    trees[0].collected_pairs += 1;
    b.plan = MonitoringPlan::new(b.plan.partition().clone(), trees);
    b
}

/// A tree with a two-node cycle detached from its root, built through
/// serde because `Tree::attach` cannot create one.
fn cyclic_tree() -> AuditBundle {
    let pairs: PairSet = (0..3).map(|n| (NodeId(n), AttrId(0))).collect();
    let caps = CapacityMap::uniform(3, 50.0, 500.0).expect("valid caps");
    let cost = CostModel::default();

    let raw = Value::Object(vec![
        ("attrs".to_string(), Value::Array(vec![Value::U64(0)])),
        ("root".to_string(), Value::U64(0)),
        (
            "parent".to_string(),
            Value::Object(vec![
                ("0".to_string(), Value::Str("Collector".to_string())),
                (
                    "1".to_string(),
                    Value::Object(vec![("Node".to_string(), Value::U64(2))]),
                ),
                (
                    "2".to_string(),
                    Value::Object(vec![("Node".to_string(), Value::U64(1))]),
                ),
            ]),
        ),
        (
            "children".to_string(),
            Value::Object(vec![
                ("0".to_string(), Value::Array(vec![])),
                ("1".to_string(), Value::Array(vec![Value::U64(2)])),
                ("2".to_string(), Value::Array(vec![Value::U64(1)])),
            ]),
        ),
    ]);
    let tree = remo_core::Tree::deserialize(&raw).expect("shape is valid, structure is not");
    assert!(!tree.is_valid(), "corpus tree must be cyclic");

    let set: AttrSet = [AttrId(0)].into_iter().collect();
    let planned = remo_core::plan::PlannedTree {
        tree: Some(tree),
        usage: Default::default(),
        collector_usage: 0.0,
        collected_pairs: 0,
        demanded_pairs: 3,
        excluded: Vec::new(),
        message_volume: 0.0,
    };
    let plan = MonitoringPlan::new(Partition::one_set(set), vec![planned]);
    AuditBundle::new(plan, pairs, caps, cost)
}

/// A plan whose recorded per-node usage was doubled for one node:
/// recomputed budgets still hold, but allocation conservation fails.
fn skewed_allocation() -> AuditBundle {
    let mut b = clean_bundle(6, 2, 60.0);
    let mut trees = b.plan.trees().to_vec();
    let (_, u) = trees[0]
        .usage
        .iter_mut()
        .next()
        .expect("built tree has members");
    *u *= 2.0;
    b.plan = MonitoringPlan::new(b.plan.partition().clone(), trees);
    b
}

/// A plan whose recorded message volume disagrees with the `C + a·x`
/// recomputation.
fn wrong_volume() -> AuditBundle {
    let mut b = clean_bundle(6, 2, 60.0);
    let mut trees = b.plan.trees().to_vec();
    trees[0].message_volume += 5.0;
    b.plan = MonitoringPlan::new(b.plan.partition().clone(), trees);
    b
}

/// An SSDP-replicated demand planned *without* its forbidden pairs:
/// the replicas land in one tree, defeating the replication.
fn colocated_replicas() -> AuditBundle {
    let mut catalog = AttrCatalog::new();
    let task = MonitoringTask::new(TaskId(0), [AttrId(0)], (0..5).map(NodeId));
    let rewrite = rewrite_ssdp(&task, 2, &mut catalog, TaskId(1)).expect("valid replication");
    let pairs: PairSet = rewrite.tasks.iter().flat_map(|t| t.pairs()).collect();
    let caps = CapacityMap::uniform(5, 80.0, 500.0).expect("valid caps");
    let cost = CostModel::default();
    let planner = Planner::default(); // forbidden_pairs NOT configured
    let plan = PartitionScheme::OneSet.plan(&planner, &pairs, &caps, cost, &catalog);
    let mut b = AuditBundle::new(plan, pairs, caps, cost);
    b.catalog = catalog;
    b.rewrite = Some(rewrite);
    b
}

/// An adaptation that silently lost coverage with no failures to
/// justify it: the successor was planned against shrunken capacity.
fn lossy_adaptation() -> AuditBundle {
    let pairs = dense_pairs(8, 2);
    let roomy = CapacityMap::uniform(8, 100.0, 500.0).expect("valid caps");
    let tight = CapacityMap::uniform(8, 9.0, 500.0).expect("valid caps");
    let cost = CostModel::new(2.0, 1.0).expect("valid cost");
    let catalog = AttrCatalog::new();
    let full = Planner::default().plan_with_catalog(&pairs, &roomy, cost, &catalog);
    let partial = Planner::default().plan_with_catalog(&pairs, &tight, cost, &catalog);
    assert!(
        partial.collected_pairs() < full.collected_pairs(),
        "corpus premise: tight caps lose coverage"
    );
    let mut b = AuditBundle::new(partial, pairs, tight, cost);
    b.predecessor = Some(full);
    b
}

/// A clean plan bundled with a failure schedule whose outages can
/// never fire.
fn bad_schedule() -> AuditBundle {
    let mut b = clean_bundle(6, 2, 60.0);
    let mut sched = FailureSchedule::new();
    sched.add(Outage::node(NodeId(0), 10, Some(5)));
    b.failure_schedule = Some(sched);
    b
}

/// A deployment declaring a staleness SLO that one slow attribute can
/// never meet: its refresh period alone exceeds the SLO, even with no
/// backpressure degradation in play.
fn unmeetable_staleness_slo() -> AuditBundle {
    let pairs = dense_pairs(6, 2);
    let caps = CapacityMap::uniform(6, 60.0, 500.0).expect("valid caps");
    let cost = CostModel::default();
    let mut catalog = AttrCatalog::new();
    catalog.register(remo_core::AttrInfo::new("fast"));
    catalog.register(
        remo_core::AttrInfo::new("slow")
            .with_frequency(0.125) // refreshes every 8 epochs
            .expect("valid frequency"),
    );
    let plan = Planner::default().plan_with_catalog(&pairs, &caps, cost, &catalog);
    let mut b = AuditBundle::new(plan, pairs, caps, cost);
    b.catalog = catalog;
    b.staleness_slo = Some(5.0);
    b
}

/// The full corpus: every entry trips exactly its named rule.
pub fn known_bad() -> Vec<BadCase> {
    use crate::rules;
    vec![
        BadCase {
            rule: rules::CAPACITY_BUDGET,
            description: "capacities shrank after planning",
            bundle: over_budget(),
        },
        BadCase {
            rule: rules::PARTITION_DISJOINT,
            description: "one attribute deserialized into two sets",
            bundle: overlapping_partition(),
        },
        BadCase {
            rule: rules::PAIR_COVERAGE,
            description: "recorded collected pairs inflated",
            bundle: inflated_coverage(),
        },
        BadCase {
            rule: rules::TREE_ACYCLIC,
            description: "deserialized tree with a detached cycle",
            bundle: cyclic_tree(),
        },
        BadCase {
            rule: rules::ALLOC_CONSERVATION,
            description: "recorded usage doubled for one node",
            bundle: skewed_allocation(),
        },
        BadCase {
            rule: rules::COST_MODEL_ACCOUNTING,
            description: "recorded message volume drifted",
            bundle: wrong_volume(),
        },
        BadCase {
            rule: rules::RELIABILITY_ALIAS_CONSISTENCY,
            description: "SSDP replicas planned into one tree",
            bundle: colocated_replicas(),
        },
        BadCase {
            rule: rules::ADAPTATION_MONOTONIC,
            description: "coverage lost with no failures",
            bundle: lossy_adaptation(),
        },
        BadCase {
            rule: rules::FAILURE_SCHEDULE_CONSISTENT,
            description: "outage window that never fires",
            bundle: bad_schedule(),
        },
        BadCase {
            rule: rules::STALENESS_BOUND,
            description: "slow attribute can never meet the declared SLO",
            bundle: unmeetable_staleness_slo(),
        },
    ]
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use crate::Audit;
    use std::collections::BTreeSet;

    /// The acceptance criterion: every corpus bundle trips its named
    /// rule and *only* its named rule.
    #[test]
    fn every_case_trips_exactly_its_rule() {
        for case in known_bad() {
            let outcome = case.bundle.audit(&Audit::new());
            let fired: BTreeSet<&str> = outcome.findings.iter().map(|f| f.rule.as_str()).collect();
            assert_eq!(
                fired,
                [case.rule].into_iter().collect::<BTreeSet<_>>(),
                "case `{}` ({}): fired {fired:?}\n{}",
                case.rule,
                case.description,
                outcome.render()
            );
        }
    }

    /// Corpus bundles survive the CLI's JSON round-trip without the
    /// corruption being repaired or worsened.
    #[test]
    fn corpus_roundtrips_through_json() {
        for case in known_bad() {
            let text = case.bundle.to_json().expect("serializes");
            let back = AuditBundle::from_json(&text).expect("parses");
            let outcome = back.audit(&Audit::new());
            assert!(
                outcome.findings.iter().any(|f| f.rule == case.rule),
                "case `{}` lost its violation across JSON",
                case.rule
            );
        }
    }
}
