//! End-to-end checks of the `remo-audit` binary: exit codes, SARIF
//! output, and rule toggling through the command line.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use remo_audit::{corpus, rules, AuditBundle};
use remo_core::planner::Planner;
use remo_core::{AttrCatalog, AttrId, CapacityMap, CostModel, NodeId, PairSet};
use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_remo-audit"))
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("remo-audit-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn clean_bundle() -> AuditBundle {
    let pairs: PairSet = (0..6)
        .flat_map(|n| (0..2).map(move |a| (NodeId(n), AttrId(a))))
        .collect();
    let caps = CapacityMap::uniform(6, 40.0, 300.0).unwrap();
    let cost = CostModel::default();
    let catalog = AttrCatalog::new();
    let plan = Planner::default().plan_with_catalog(&pairs, &caps, cost, &catalog);
    AuditBundle::new(plan, pairs, caps, cost)
}

#[test]
fn clean_bundle_exits_zero() {
    let path = scratch("clean.json");
    std::fs::write(&path, clean_bundle().to_json().unwrap()).unwrap();
    let out = bin().arg(&path).output().unwrap();
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("clean"), "{stdout}");
}

#[test]
fn error_finding_exits_one_and_writes_sarif() {
    let case = corpus::known_bad()
        .into_iter()
        .find(|c| c.rule == rules::CAPACITY_BUDGET)
        .expect("corpus has a capacity case");
    let path = scratch("overload.json");
    let report = scratch("overload.sarif.json");
    std::fs::write(&path, case.bundle.to_json().unwrap()).unwrap();

    let out = bin()
        .arg(&path)
        .arg("--sarif")
        .arg(&report)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("error[RA001] capacity-budget"), "{stdout}");

    let sarif = std::fs::read_to_string(&report).unwrap();
    assert!(sarif.contains("\"version\": \"2.1.0\""), "{sarif}");
    assert!(sarif.contains("\"ruleId\": \"RA001\""), "{sarif}");
}

#[test]
fn disabling_the_rule_silences_the_finding() {
    let case = corpus::known_bad()
        .into_iter()
        .find(|c| c.rule == rules::CAPACITY_BUDGET)
        .expect("corpus has a capacity case");
    let path = scratch("overload-disabled.json");
    std::fs::write(&path, case.bundle.to_json().unwrap()).unwrap();
    let out = bin()
        .arg(&path)
        .arg("--disable")
        .arg(rules::CAPACITY_BUDGET)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "{out:?}");
}

#[test]
fn severity_override_demotes_to_warning() {
    let case = corpus::known_bad()
        .into_iter()
        .find(|c| c.rule == rules::CAPACITY_BUDGET)
        .expect("corpus has a capacity case");
    let path = scratch("overload-demoted.json");
    std::fs::write(&path, case.bundle.to_json().unwrap()).unwrap();
    let out = bin()
        .arg(&path)
        .arg("--severity")
        .arg(format!("{}=warn", rules::CAPACITY_BUDGET))
        .output()
        .unwrap();
    // Still reported, but no longer fails the audit.
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("warning[RA001]"), "{stdout}");
}

#[test]
fn list_rules_covers_the_registry() {
    let out = bin().arg("--list-rules").output().unwrap();
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8(out.stdout).unwrap();
    for r in remo_audit::RULES {
        assert!(stdout.contains(r.code), "missing {}", r.code);
        assert!(stdout.contains(r.name), "missing {}", r.name);
    }
}

#[test]
fn example_bundle_feeds_back_into_the_cli() {
    let out = bin().arg("--example").output().unwrap();
    assert_eq!(out.status.code(), Some(0));
    let text = String::from_utf8(out.stdout).unwrap();
    let path = scratch("example.json");
    std::fs::write(&path, &text).unwrap();
    // The example is a known-bad corpus entry, so auditing it fails.
    let out = bin().arg(&path).output().unwrap();
    assert_eq!(out.status.code(), Some(1), "{out:?}");
}

#[test]
fn usage_problems_exit_two() {
    let out = bin().output().unwrap();
    assert_eq!(out.status.code(), Some(2), "no args");

    let out = bin().arg("/nonexistent/bundle.json").output().unwrap();
    assert_eq!(out.status.code(), Some(2), "missing file");

    let out = bin()
        .arg("x.json")
        .arg("--disable")
        .arg("not-a-rule")
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "unknown rule");

    let garbage = scratch("garbage.json");
    std::fs::write(&garbage, "{ not json").unwrap();
    let out = bin().arg(&garbage).output().unwrap();
    assert_eq!(out.status.code(), Some(2), "unparseable bundle");
}
