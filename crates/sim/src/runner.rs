//! Experiment driver: couples an [`AdaptivePlanner`] to a [`Simulator`]
//! under a churn schedule — the setup of the paper's runtime-adaptation
//! experiments (Fig. 9).

use crate::engine::{SimConfig, SimSetup, Simulator};
use crate::metrics::SimMetrics;
use remo_core::adapt::{AdaptScheme, AdaptivePlanner};
use remo_core::planner::Planner;
use remo_core::{AttrCatalog, CapacityMap, CostModel, PairSet};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::time::Duration;

/// Aggregate outcome of one adaptation experiment run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdaptationRunStats {
    /// Total wall-clock planning time across all updates (Fig. 9a).
    pub planning_time: Duration,
    /// Total adaptation (control) messages (Fig. 9b numerator).
    pub adaptation_messages: usize,
    /// Total monitoring traffic volume in cost units.
    pub monitoring_volume: f64,
    /// Total control traffic volume in cost units.
    pub control_volume: f64,
    /// Values delivered to the collector (Fig. 9d).
    pub delivered_values: u64,
    /// Mean percentage error after warmup.
    pub mean_error: f64,
    /// Task-update batches applied.
    pub updates_applied: usize,
}

impl AdaptationRunStats {
    /// Control volume as a fraction of total traffic (Fig. 9b).
    pub fn control_fraction(&self) -> f64 {
        let total = self.control_volume + self.monitoring_volume;
        if total == 0.0 {
            0.0
        } else {
            self.control_volume / total
        }
    }

    /// Total traffic volume (Fig. 9c).
    pub fn total_volume(&self) -> f64 {
        self.control_volume + self.monitoring_volume
    }
}

/// Runs a churn experiment: simulate `epochs` epochs, applying each
/// pair-set update from `updates` at its scheduled epoch through the
/// chosen adaptation scheme.
///
/// `updates` maps epoch → the *full* new pair set effective from that
/// epoch (as produced by the task manager after a batch of task
/// changes).
#[allow(clippy::too_many_arguments)]
pub fn run_adaptation_experiment(
    planner: Planner,
    scheme: AdaptScheme,
    initial_pairs: PairSet,
    updates: BTreeMap<u64, PairSet>,
    caps: CapacityMap,
    cost: CostModel,
    catalog: AttrCatalog,
    sim_config: SimConfig,
    epochs: u64,
) -> (AdaptationRunStats, SimMetrics) {
    let mut adaptive = AdaptivePlanner::new(
        planner,
        scheme,
        initial_pairs.clone(),
        caps.clone(),
        cost,
        catalog.clone(),
    );
    let mut sim = Simulator::new(SimSetup {
        plan: adaptive.plan(),
        planned_pairs: &initial_pairs,
        metric_pairs: None,
        caps: &caps,
        cost,
        catalog: &catalog,
        aliases: BTreeMap::new(),
        config: sim_config,
    });

    let mut planning_time = Duration::ZERO;
    let mut adaptation_messages = 0usize;
    let mut updates_applied = 0usize;

    for epoch in 1..=epochs {
        if let Some(new_pairs) = updates.get(&epoch) {
            let report = adaptive.update(new_pairs.clone(), epoch);
            planning_time += report.planning_time;
            adaptation_messages += report.adaptation_messages;
            updates_applied += 1;
            sim.apply_plan(adaptive.plan(), new_pairs);
        }
        sim.step();
    }

    let metrics = sim.metrics().clone();
    let warmup = (epochs / 5) as usize;
    let stats = AdaptationRunStats {
        planning_time,
        adaptation_messages,
        monitoring_volume: metrics.total_monitoring_volume(),
        control_volume: metrics.total_control_volume(),
        delivered_values: metrics.total_delivered(),
        mean_error: metrics.mean_error(warmup),
        updates_applied,
    };
    (stats, metrics)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use remo_core::{AttrId, NodeId};

    fn dense_pairs(nodes: u32, attrs: u32) -> PairSet {
        (0..nodes)
            .flat_map(|n| (0..attrs).map(move |a| (NodeId(n), AttrId(a))))
            .collect()
    }

    fn churned(base: &PairSet, round: u32) -> PairSet {
        let mut p = base.clone();
        let node = NodeId(round % 8);
        p.remove(node, AttrId(round % 3));
        p.insert(node, AttrId(50 + round));
        p
    }

    #[test]
    fn experiment_runs_and_applies_updates() {
        let pairs = dense_pairs(8, 3);
        let mut updates = BTreeMap::new();
        let mut cur = pairs.clone();
        for (i, epoch) in [10u64, 20, 30].into_iter().enumerate() {
            cur = churned(&cur, i as u32);
            updates.insert(epoch, cur.clone());
        }
        let caps = CapacityMap::uniform(8, 30.0, 300.0).unwrap();
        let (stats, metrics) = run_adaptation_experiment(
            Planner::default(),
            AdaptScheme::Adaptive,
            pairs,
            updates,
            caps,
            CostModel::new(2.0, 1.0).unwrap(),
            AttrCatalog::new(),
            SimConfig::default(),
            40,
        );
        assert_eq!(stats.updates_applied, 3);
        assert!(stats.delivered_values > 0);
        assert_eq!(metrics.len(), 40);
        assert!(stats.planning_time > Duration::ZERO);
    }

    #[test]
    fn rebuild_costs_more_adaptation_than_direct_apply() {
        let pairs = dense_pairs(10, 4);
        let make_updates = || {
            let mut updates = BTreeMap::new();
            let mut cur = pairs.clone();
            for i in 0..4u32 {
                cur = churned(&cur, i);
                updates.insert(5 + 5 * i as u64, cur.clone());
            }
            updates
        };
        let caps = CapacityMap::uniform(10, 20.0, 200.0).unwrap();
        let run = |scheme| {
            run_adaptation_experiment(
                Planner::default(),
                scheme,
                pairs.clone(),
                make_updates(),
                caps.clone(),
                CostModel::new(2.0, 1.0).unwrap(),
                AttrCatalog::new(),
                SimConfig::default(),
                30,
            )
            .0
        };
        let da = run(AdaptScheme::DirectApply);
        let rebuild = run(AdaptScheme::Rebuild);
        assert!(
            rebuild.adaptation_messages >= da.adaptation_messages,
            "rebuild {} vs d-a {}",
            rebuild.adaptation_messages,
            da.adaptation_messages
        );
    }
}
