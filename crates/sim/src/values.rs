//! True-value processes for monitored attributes.
//!
//! The BlueGene/System S testbed exposed real, continuously changing
//! metrics (rates, buffer occupancies, OS counters). The simulator
//! substitutes seeded stochastic processes with the same character:
//! bounded drifting walks with optional bursty regimes (stream
//! workloads are "highly bursty", paper §1).

use rand::rngs::SmallRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Shape of one attribute's true-value evolution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ValueModel {
    /// Bounded random walk: `v ← clamp(v + U(−step, step), lo, hi)`.
    Walk {
        /// Lower bound.
        lo: f64,
        /// Upper bound.
        hi: f64,
        /// Maximum per-epoch increment magnitude.
        step: f64,
    },
    /// Bursty walk: like `Walk`, but with probability `burst_p` the
    /// epoch's step is multiplied by `burst_gain` — the load spikes of
    /// a stream processing system.
    Bursty {
        /// Lower bound.
        lo: f64,
        /// Upper bound.
        hi: f64,
        /// Base per-epoch increment magnitude.
        step: f64,
        /// Probability of a burst epoch.
        burst_p: f64,
        /// Step multiplier during a burst.
        burst_gain: f64,
    },
    /// Constant value (useful in tests: any error is purely a delivery
    /// artifact).
    Constant(f64),
}

impl Default for ValueModel {
    fn default() -> Self {
        ValueModel::Walk {
            lo: 10.0,
            hi: 100.0,
            step: 2.0,
        }
    }
}

/// A live value following a [`ValueModel`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ValueProcess {
    model: ValueModel,
    current: f64,
}

impl ValueProcess {
    /// Starts a process at the model's midpoint (or the constant).
    pub fn new(model: ValueModel) -> Self {
        let current = match model {
            ValueModel::Walk { lo, hi, .. } | ValueModel::Bursty { lo, hi, .. } => (lo + hi) / 2.0,
            ValueModel::Constant(v) => v,
        };
        ValueProcess { model, current }
    }

    /// Starts a process at an explicit initial value.
    pub fn with_initial(model: ValueModel, initial: f64) -> Self {
        ValueProcess {
            model,
            current: initial,
        }
    }

    /// The current true value.
    #[inline]
    pub fn value(&self) -> f64 {
        self.current
    }

    /// Advances one epoch.
    pub fn step(&mut self, rng: &mut SmallRng) {
        match self.model {
            ValueModel::Constant(_) => {}
            ValueModel::Walk { lo, hi, step } => {
                let d = rng.gen_range(-step..=step);
                self.current = (self.current + d).clamp(lo, hi);
            }
            ValueModel::Bursty {
                lo,
                hi,
                step,
                burst_p,
                burst_gain,
            } => {
                let gain = if rng.gen_bool(burst_p.clamp(0.0, 1.0)) {
                    burst_gain
                } else {
                    1.0
                };
                let d = rng.gen_range(-step..=step) * gain;
                self.current = (self.current + d).clamp(lo, hi);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(42)
    }

    #[test]
    fn walk_stays_bounded() {
        let mut p = ValueProcess::new(ValueModel::Walk {
            lo: 0.0,
            hi: 10.0,
            step: 3.0,
        });
        let mut r = rng();
        for _ in 0..1000 {
            p.step(&mut r);
            assert!((0.0..=10.0).contains(&p.value()));
        }
    }

    #[test]
    fn constant_never_moves() {
        let mut p = ValueProcess::new(ValueModel::Constant(7.5));
        let mut r = rng();
        for _ in 0..10 {
            p.step(&mut r);
        }
        assert_eq!(p.value(), 7.5);
    }

    #[test]
    fn bursty_moves_more_than_walk() {
        let walk = ValueModel::Walk {
            lo: -1e9,
            hi: 1e9,
            step: 1.0,
        };
        let burst = ValueModel::Bursty {
            lo: -1e9,
            hi: 1e9,
            step: 1.0,
            burst_p: 0.5,
            burst_gain: 20.0,
        };
        let travel = |model| {
            let mut p = ValueProcess::with_initial(model, 0.0);
            let mut r = rng();
            let mut sum = 0.0;
            let mut prev = 0.0;
            for _ in 0..500 {
                p.step(&mut r);
                sum += (p.value() - prev).abs();
                prev = p.value();
            }
            sum
        };
        assert!(travel(burst) > travel(walk) * 2.0);
    }

    #[test]
    fn initial_value_is_midpoint() {
        let p = ValueProcess::new(ValueModel::Walk {
            lo: 10.0,
            hi: 30.0,
            step: 1.0,
        });
        assert_eq!(p.value(), 20.0);
    }
}
