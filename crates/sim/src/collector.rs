//! The central data collector's snapshot store.
//!
//! Keeps, for every node-attribute pair, the freshest value that has
//! reached the collector, and computes the percentage-error metric the
//! paper's real-system experiments report (Fig. 8): the relative
//! difference between the collector's snapshot and the true values.

use crate::reading::Reading;
use remo_core::{AttrId, NodeId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One stored observation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StoredValue {
    /// The reported value.
    pub value: f64,
    /// Epoch the sample was produced at the source.
    pub produced: u64,
    /// Epoch it reached the collector.
    pub received: u64,
}

/// The collector's snapshot store with SSDP/DSDP alias resolution.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CollectorStore {
    latest: BTreeMap<(NodeId, AttrId), StoredValue>,
    /// alias attribute → original attribute (reliability rewrites).
    aliases: BTreeMap<AttrId, AttrId>,
    /// Latest partial-aggregate values per (aggregated) attribute.
    aggregates: BTreeMap<AttrId, StoredValue>,
}

impl CollectorStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs the alias map from a reliability rewrite; readings for
    /// alias attributes are recorded under the original id.
    pub fn set_aliases(&mut self, aliases: BTreeMap<AttrId, AttrId>) {
        self.aliases = aliases;
    }

    /// Resolves an attribute through the alias map.
    pub fn resolve(&self, attr: AttrId) -> AttrId {
        self.aliases.get(&attr).copied().unwrap_or(attr)
    }

    /// Records an arrived reading at epoch `now`. A reading only
    /// replaces the stored one if it was produced no earlier (a replica
    /// arriving late never regresses the snapshot). Aggregate readings
    /// (`contributors > 1`) are stored per attribute.
    pub fn record(&mut self, reading: &Reading, now: u64) {
        let attr = self.resolve(reading.attr);
        let stored = StoredValue {
            value: reading.value,
            produced: reading.produced,
            received: now,
        };
        if reading.contributors > 1 {
            let slot = self.aggregates.entry(attr).or_insert(stored);
            if reading.produced >= slot.produced {
                *slot = stored;
            }
            return;
        }
        let slot = self.latest.entry((reading.node, attr)).or_insert(stored);
        if reading.produced >= slot.produced {
            *slot = stored;
        }
    }

    /// The stored snapshot for a pair, if any value ever arrived.
    pub fn get(&self, node: NodeId, attr: AttrId) -> Option<StoredValue> {
        self.latest.get(&(node, self.resolve(attr))).copied()
    }

    /// The stored aggregate for an attribute, if any.
    pub fn aggregate(&self, attr: AttrId) -> Option<StoredValue> {
        self.aggregates.get(&self.resolve(attr)).copied()
    }

    /// Number of distinct pairs ever observed.
    pub fn len(&self) -> usize {
        self.latest.len()
    }

    /// Returns `true` if nothing has ever been recorded.
    pub fn is_empty(&self) -> bool {
        self.latest.is_empty() && self.aggregates.is_empty()
    }

    /// Mean relative error of the snapshot against `truth`
    /// (`(node, attr) → true value`), each pair's error capped at
    /// `cap`. Pairs never observed score the full cap — a dropped pair
    /// is as wrong as it gets.
    pub fn mean_error(&self, truth: &BTreeMap<(NodeId, AttrId), f64>, cap: f64) -> f64 {
        if truth.is_empty() {
            return 0.0;
        }
        let mut total = 0.0;
        for (&(node, attr), &actual) in truth {
            let err = match self.get(node, attr) {
                None => cap,
                Some(s) => {
                    let denom = actual.abs().max(1e-9);
                    ((s.value - actual).abs() / denom).min(cap)
                }
            };
            total += err;
        }
        total / truth.len() as f64
    }

    /// Fraction of `truth`'s pairs with a snapshot received within the
    /// last `window` epochs of `now`.
    pub fn fresh_fraction(
        &self,
        truth: &BTreeMap<(NodeId, AttrId), f64>,
        now: u64,
        window: u64,
    ) -> f64 {
        if truth.is_empty() {
            return 1.0;
        }
        let fresh = truth
            .keys()
            .filter(|&&(n, a)| {
                self.get(n, a)
                    .is_some_and(|s| now.saturating_sub(s.received) <= window)
            })
            .count();
        fresh as f64 / truth.len() as f64
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    fn truth(entries: &[(u32, u32, f64)]) -> BTreeMap<(NodeId, AttrId), f64> {
        entries
            .iter()
            .map(|&(n, a, v)| ((NodeId(n), AttrId(a)), v))
            .collect()
    }

    #[test]
    fn record_and_get() {
        let mut c = CollectorStore::new();
        c.record(&Reading::sample(NodeId(0), AttrId(1), 5.0, 3), 4);
        let s = c.get(NodeId(0), AttrId(1)).unwrap();
        assert_eq!(s.value, 5.0);
        assert_eq!(s.produced, 3);
        assert_eq!(s.received, 4);
    }

    #[test]
    fn stale_replica_does_not_regress() {
        let mut c = CollectorStore::new();
        c.record(&Reading::sample(NodeId(0), AttrId(0), 9.0, 10), 11);
        c.record(&Reading::sample(NodeId(0), AttrId(0), 1.0, 5), 12);
        assert_eq!(c.get(NodeId(0), AttrId(0)).unwrap().value, 9.0);
    }

    #[test]
    fn aliases_fold_to_original() {
        let mut c = CollectorStore::new();
        c.set_aliases([(AttrId(100), AttrId(0))].into_iter().collect());
        c.record(&Reading::sample(NodeId(2), AttrId(100), 7.0, 1), 2);
        assert_eq!(c.get(NodeId(2), AttrId(0)).unwrap().value, 7.0);
    }

    #[test]
    fn mean_error_counts_missing_as_cap() {
        let mut c = CollectorStore::new();
        c.record(&Reading::sample(NodeId(0), AttrId(0), 50.0, 1), 1);
        let t = truth(&[(0, 0, 100.0), (1, 0, 100.0)]);
        // Observed pair: 50% error; missing pair: capped 100%.
        assert!((c.mean_error(&t, 1.0) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn error_cap_applies() {
        let mut c = CollectorStore::new();
        c.record(&Reading::sample(NodeId(0), AttrId(0), 1000.0, 1), 1);
        let t = truth(&[(0, 0, 1.0)]);
        assert_eq!(c.mean_error(&t, 1.0), 1.0);
    }

    #[test]
    fn fresh_fraction_windows() {
        let mut c = CollectorStore::new();
        c.record(&Reading::sample(NodeId(0), AttrId(0), 1.0, 1), 2);
        c.record(&Reading::sample(NodeId(1), AttrId(0), 1.0, 9), 10);
        let t = truth(&[(0, 0, 1.0), (1, 0, 1.0)]);
        assert_eq!(c.fresh_fraction(&t, 10, 1), 0.5);
        assert_eq!(c.fresh_fraction(&t, 10, 100), 1.0);
    }

    #[test]
    fn aggregates_stored_per_attr() {
        let mut c = CollectorStore::new();
        let agg = Reading {
            node: NodeId(3),
            attr: AttrId(7),
            value: 42.0,
            produced: 5,
            contributors: 4,
        };
        c.record(&agg, 6);
        assert_eq!(c.aggregate(AttrId(7)).unwrap().value, 42.0);
        assert!(c.get(NodeId(3), AttrId(7)).is_none());
    }
}
