//! Post-hoc analysis of collector snapshots: where does staleness come
//! from?
//!
//! The paper's Fig. 8 observation — bushier trees produce fresher
//! snapshots — is a structural claim: a value produced at depth `d`
//! arrives `d + 1` epochs later. This module decomposes a snapshot's
//! staleness by each pair's depth in the deployed forest, turning the
//! claim into a measurable distribution.

use crate::collector::CollectorStore;
use remo_core::{AttrId, MonitoringPlan, NodeId, PairSet};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Staleness statistics for one tree depth.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct DepthStats {
    /// Number of observed pairs at this depth.
    pub pairs: usize,
    /// Mean staleness (epochs between production and `now`).
    pub mean_staleness: f64,
    /// Maximum staleness.
    pub max_staleness: u64,
}

/// A staleness-by-depth decomposition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct StalenessProfile {
    /// Per-depth statistics (depth 0 = tree roots).
    pub by_depth: BTreeMap<usize, DepthStats>,
    /// Pairs demanded but never observed.
    pub unobserved: usize,
    /// Pairs observed but not locatable in the plan (e.g. collected
    /// under an older topology).
    pub orphaned: usize,
}

impl StalenessProfile {
    /// Overall mean staleness across observed, locatable pairs.
    pub fn mean_staleness(&self) -> f64 {
        let (sum, count) = self.by_depth.values().fold((0.0, 0usize), |(s, c), d| {
            (s + d.mean_staleness * d.pairs as f64, c + d.pairs)
        });
        if count == 0 {
            0.0
        } else {
            sum / count as f64
        }
    }

    /// The deepest populated depth.
    pub fn max_depth(&self) -> Option<usize> {
        self.by_depth.keys().next_back().copied()
    }
}

/// Builds the staleness-by-depth profile of `store` at epoch `now`
/// against the deployed `plan`.
///
/// # Examples
///
/// ```
/// use remo_core::{CapacityMap, CostModel, NodeId, AttrId, PairSet, AttrCatalog};
/// use remo_core::planner::Planner;
/// use remo_sim::{Simulator, SimSetup, SimConfig};
/// use remo_sim::analysis::staleness_profile;
///
/// # fn main() -> Result<(), remo_core::PlanError> {
/// let caps = CapacityMap::uniform(6, 50.0, 500.0)?;
/// let cost = CostModel::default();
/// let pairs: PairSet = (0..6).map(|n| (NodeId(n), AttrId(0))).collect();
/// let catalog = AttrCatalog::new();
/// let plan = Planner::default().plan_with_catalog(&pairs, &caps, cost, &catalog);
/// let mut sim = Simulator::new(SimSetup {
///     plan: &plan, planned_pairs: &pairs, metric_pairs: None,
///     caps: &caps, cost, catalog: &catalog,
///     aliases: Default::default(), config: SimConfig::default(),
/// });
/// sim.run(10);
/// let profile = staleness_profile(sim.collector(), &plan, &pairs, sim.epoch());
/// assert_eq!(profile.unobserved, 0);
/// // Depth-d pairs are exactly d+1 epochs stale in steady state.
/// for (&depth, stats) in &profile.by_depth {
///     assert_eq!(stats.mean_staleness, (depth + 1) as f64);
/// }
/// # Ok(())
/// # }
/// ```
pub fn staleness_profile(
    store: &CollectorStore,
    plan: &MonitoringPlan,
    pairs: &PairSet,
    now: u64,
) -> StalenessProfile {
    // Locate every pair's depth: the depth of its node in the tree
    // whose attribute set contains its attribute.
    let mut depth_of: BTreeMap<(NodeId, AttrId), usize> = BTreeMap::new();
    for (set, planned) in plan.partition().sets().iter().zip(plan.trees()) {
        if let Some(tree) = planned.tree.as_ref() {
            for n in tree.nodes() {
                if let Some(d) = tree.depth(n) {
                    for &a in set {
                        depth_of.insert((n, a), d);
                    }
                }
            }
        }
    }

    let mut sums: BTreeMap<usize, (f64, usize, u64)> = BTreeMap::new();
    let mut profile = StalenessProfile::default();
    for (n, a) in pairs.iter() {
        let Some(s) = store.get(n, a) else {
            profile.unobserved += 1;
            continue;
        };
        let staleness = now.saturating_sub(s.produced);
        match depth_of.get(&(n, a)) {
            None => profile.orphaned += 1,
            Some(&d) => {
                let e = sums.entry(d).or_insert((0.0, 0, 0));
                e.0 += staleness as f64;
                e.1 += 1;
                e.2 = e.2.max(staleness);
            }
        }
    }
    for (d, (sum, count, max)) in sums {
        profile.by_depth.insert(
            d,
            DepthStats {
                pairs: count,
                mean_staleness: sum / count as f64,
                max_staleness: max,
            },
        );
    }
    profile
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use crate::engine::{SimConfig, SimSetup, Simulator};
    use remo_core::build::BuilderKind;
    use remo_core::planner::{Planner, PlannerConfig};
    use remo_core::{AttrCatalog, CapacityMap, CostModel, Partition};

    fn run_profile(builder: BuilderKind) -> StalenessProfile {
        let pairs: PairSet = (0..10).map(|n| (NodeId(n), AttrId(0))).collect();
        let caps = CapacityMap::uniform(10, 1_000.0, 1_000.0).unwrap();
        let cost = CostModel::default();
        let catalog = AttrCatalog::new();
        let plan = Planner::new(PlannerConfig {
            builder,
            ..PlannerConfig::default()
        })
        .evaluate_partition(
            &Partition::one_set(pairs.attr_universe()),
            &pairs,
            &caps,
            cost,
            &catalog,
        )
        .into_plan();
        let mut sim = Simulator::new(SimSetup {
            plan: &plan,
            planned_pairs: &pairs,
            metric_pairs: None,
            caps: &caps,
            cost,
            catalog: &catalog,
            aliases: Default::default(),
            config: SimConfig::default(),
        });
        sim.run(15);
        staleness_profile(sim.collector(), &plan, &pairs, sim.epoch())
    }

    #[test]
    fn staleness_equals_depth_plus_one_in_steady_state() {
        let p = run_profile(BuilderKind::Star);
        assert_eq!(p.unobserved, 0);
        assert_eq!(p.orphaned, 0);
        for (&d, stats) in &p.by_depth {
            assert_eq!(
                stats.mean_staleness,
                (d + 1) as f64,
                "depth {d} staleness mismatch"
            );
            assert_eq!(stats.max_staleness, (d + 1) as u64);
        }
    }

    #[test]
    fn chains_are_staler_than_stars() {
        let star = run_profile(BuilderKind::Star);
        let chain = run_profile(BuilderKind::Chain);
        assert!(chain.mean_staleness() > star.mean_staleness());
        assert!(chain.max_depth().unwrap() > star.max_depth().unwrap());
    }

    #[test]
    fn unobserved_pairs_are_counted() {
        let pairs: PairSet = (0..3).map(|n| (NodeId(n), AttrId(0))).collect();
        let plan = Planner::default().plan(
            &pairs,
            &CapacityMap::uniform(3, 50.0, 100.0).unwrap(),
            CostModel::default(),
        );
        let store = CollectorStore::new();
        let p = staleness_profile(&store, &plan, &pairs, 5);
        assert_eq!(p.unobserved, 3);
        assert_eq!(p.mean_staleness(), 0.0);
        assert!(p.max_depth().is_none());
    }
}
