//! # remo-sim
//!
//! Epoch-driven simulator of REMO monitoring overlays.
//!
//! The paper evaluates REMO on a BlueGene/P rack running IBM System S;
//! this crate substitutes a deterministic, seeded simulation of the
//! same environment (see DESIGN.md for the substitution argument):
//! per-node CPU budgets, the `C + a·x` message cost model charged at
//! both endpoints, store-and-forward hop latency, overload-induced
//! drops, failure injection, and the collector-side percentage-error
//! metric of the paper's real-system experiments.
//!
//! Entry points:
//! - [`Simulator`] — deploy a [`MonitoringPlan`](remo_core::MonitoringPlan)
//!   and step it through epochs;
//! - [`run_adaptation_experiment`] — drive a plan through task churn
//!   under one of the adaptation schemes (Fig. 9);
//! - [`ValueModel`] — the true-value processes.
//!
//! ```
//! use remo_core::{CapacityMap, CostModel, NodeId, AttrId, PairSet, AttrCatalog};
//! use remo_core::planner::Planner;
//! use remo_sim::{Simulator, SimSetup, SimConfig};
//!
//! # fn main() -> Result<(), remo_core::PlanError> {
//! let caps = CapacityMap::uniform(6, 30.0, 300.0)?;
//! let cost = CostModel::default();
//! let pairs: PairSet = (0..6)
//!     .flat_map(|n| (0..2).map(move |a| (NodeId(n), AttrId(a))))
//!     .collect();
//! let catalog = AttrCatalog::new();
//! let plan = Planner::default().plan_with_catalog(&pairs, &caps, cost, &catalog);
//!
//! let mut sim = Simulator::new(SimSetup {
//!     plan: &plan,
//!     planned_pairs: &pairs,
//!     metric_pairs: None,
//!     caps: &caps,
//!     cost,
//!     catalog: &catalog,
//!     aliases: Default::default(),
//!     config: SimConfig::default(),
//! });
//! sim.run(20);
//! assert!(sim.metrics().total_delivered() > 0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod alerts;
pub mod analysis;
pub mod collector;
pub mod engine;
pub mod failure;
pub mod metrics;
pub mod query;
pub mod reading;
pub mod runner;
pub mod values;

pub use alerts::{Alert, AlertRule, ResultProcessor};
pub use analysis::{staleness_profile, StalenessProfile};
pub use collector::{CollectorStore, StoredValue};
pub use engine::{SimConfig, SimSetup, Simulator};
pub use failure::{FailureSchedule, FailureTarget, Outage};
pub use metrics::{EpochStats, SimMetrics};
pub use reading::Reading;
pub use runner::{run_adaptation_experiment, AdaptationRunStats};
pub use values::{ValueModel, ValueProcess};
