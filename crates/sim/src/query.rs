//! The data collector's user-facing query library (paper §2.2: the
//! data collector "serves as the repository of monitoring data and
//! provides monitoring data access to users and high-level
//! applications").

use crate::collector::{CollectorStore, StoredValue};
use remo_core::{AttrId, MonitoringTask, NodeId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A task-scoped snapshot: the collector's latest view of every pair a
/// task requested.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskSnapshot {
    /// Values present at the collector, keyed by pair.
    pub values: BTreeMap<(NodeId, AttrId), StoredValue>,
    /// Requested pairs with no observation yet.
    pub missing: Vec<(NodeId, AttrId)>,
    /// Epoch the snapshot was taken.
    pub taken_at: u64,
}

impl TaskSnapshot {
    /// Fraction of the task's pairs that have ever been observed.
    pub fn completeness(&self) -> f64 {
        let total = self.values.len() + self.missing.len();
        if total == 0 {
            1.0
        } else {
            self.values.len() as f64 / total as f64
        }
    }

    /// Maximum staleness (epochs since production) across observed
    /// pairs; `None` when nothing has been observed.
    pub fn max_staleness(&self) -> Option<u64> {
        self.values
            .values()
            .map(|s| self.taken_at.saturating_sub(s.produced))
            .max()
    }

    /// Mean of the observed values (a quick dashboard aggregate).
    pub fn mean(&self) -> Option<f64> {
        if self.values.is_empty() {
            return None;
        }
        Some(self.values.values().map(|s| s.value).sum::<f64>() / self.values.len() as f64)
    }

    /// The pair with the largest observed value.
    pub fn max_pair(&self) -> Option<((NodeId, AttrId), StoredValue)> {
        self.values
            .iter()
            .max_by(|a, b| {
                a.1.value
                    .partial_cmp(&b.1.value)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .map(|(&k, &v)| (k, v))
    }
}

/// Takes a task-scoped snapshot from the collector at epoch `now`.
///
/// # Examples
///
/// ```
/// use remo_sim::query::snapshot_for_task;
/// use remo_sim::{CollectorStore, Reading};
/// use remo_core::{MonitoringTask, TaskId, NodeId, AttrId};
///
/// let mut store = CollectorStore::new();
/// store.record(&Reading::sample(NodeId(0), AttrId(0), 42.0, 5), 6);
/// let task = MonitoringTask::new(TaskId(0), [AttrId(0)], [NodeId(0), NodeId(1)]);
/// let snap = snapshot_for_task(&store, &task, 7);
/// assert_eq!(snap.values.len(), 1);
/// assert_eq!(snap.missing.len(), 1);
/// assert_eq!(snap.completeness(), 0.5);
/// ```
pub fn snapshot_for_task(store: &CollectorStore, task: &MonitoringTask, now: u64) -> TaskSnapshot {
    snapshot_for_pairs(store, task.pairs(), now)
}

/// Takes a snapshot over an explicit pair list — the variant to use
/// when a task's node-attribute cross product includes pairs the
/// application cannot observe (pass the observable subset instead).
pub fn snapshot_for_pairs(
    store: &CollectorStore,
    pairs: impl IntoIterator<Item = (NodeId, AttrId)>,
    now: u64,
) -> TaskSnapshot {
    let mut values = BTreeMap::new();
    let mut missing = Vec::new();
    for (node, attr) in pairs {
        match store.get(node, attr) {
            Some(s) => {
                values.insert((node, attr), s);
            }
            None => missing.push((node, attr)),
        }
    }
    TaskSnapshot {
        values,
        missing,
        taken_at: now,
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use crate::reading::Reading;
    use remo_core::TaskId;

    fn store() -> CollectorStore {
        let mut s = CollectorStore::new();
        s.record(&Reading::sample(NodeId(0), AttrId(0), 10.0, 4), 5);
        s.record(&Reading::sample(NodeId(1), AttrId(0), 30.0, 8), 9);
        s
    }

    fn task() -> MonitoringTask {
        MonitoringTask::new(TaskId(0), [AttrId(0)], (0..3).map(NodeId))
    }

    #[test]
    fn snapshot_partitions_observed_and_missing() {
        let snap = snapshot_for_task(&store(), &task(), 10);
        assert_eq!(snap.values.len(), 2);
        assert_eq!(snap.missing, vec![(NodeId(2), AttrId(0))]);
        assert!((snap.completeness() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn staleness_and_aggregates() {
        let snap = snapshot_for_task(&store(), &task(), 10);
        assert_eq!(snap.max_staleness(), Some(6)); // produced 4 at now 10
        assert_eq!(snap.mean(), Some(20.0));
        let (pair, v) = snap.max_pair().unwrap();
        assert_eq!(pair, (NodeId(1), AttrId(0)));
        assert_eq!(v.value, 30.0);
    }

    #[test]
    fn empty_task_snapshot() {
        let t = MonitoringTask::new(TaskId(1), [AttrId(9)], [NodeId(9)]);
        let snap = snapshot_for_task(&store(), &t, 1);
        assert!(snap.values.is_empty());
        assert_eq!(snap.completeness(), 0.0);
        assert_eq!(snap.max_staleness(), None);
        assert_eq!(snap.mean(), None);
        assert!(snap.max_pair().is_none());
    }
}
