//! Simulation metrics: delivery, drops, error, and traffic volumes.

use serde::{Deserialize, Serialize};

/// Per-epoch observation of the simulated system.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct EpochStats {
    /// Epoch index.
    pub epoch: u64,
    /// Attribute values delivered to the collector this epoch
    /// (aggregates count their contributors).
    pub delivered_values: u64,
    /// Messages dropped (receiver over budget, or failure).
    pub dropped_messages: u64,
    /// Readings lost to drops and send-side trimming.
    pub dropped_readings: u64,
    /// Mean relative error over all demanded pairs. Each pair's error
    /// is capped at the run's configured cap — [`error_cap`]
    /// (`SimConfig::error_cap`, default 1.0), **not** a fixed 1.0 —
    /// and pairs with no observation yet count as the cap.
    ///
    /// [`error_cap`]: EpochStats::error_cap
    pub avg_error: f64,
    /// The per-pair error cap `avg_error` was computed under. 0.0
    /// means the cap was not recorded (data serialized before this
    /// field existed).
    #[serde(default)]
    pub error_cap: f64,
    /// Monitoring traffic volume in cost units (sends + receives paid).
    pub monitoring_volume: f64,
    /// Topology-control traffic volume in cost units.
    pub control_volume: f64,
}

impl EpochStats {
    /// Re-emits this epoch through the process-wide metrics registry
    /// (no-op while observability is disabled), so simulation runs,
    /// fig binaries, and `bench_planner` share one export pipeline.
    pub fn export_metrics(&self) {
        if !remo_obs::enabled() {
            return;
        }
        remo_obs::counter("remo_sim_epochs_total").inc();
        remo_obs::counter("remo_sim_delivered_values_total").inc_by(self.delivered_values as f64);
        remo_obs::counter("remo_sim_dropped_messages_total").inc_by(self.dropped_messages as f64);
        remo_obs::counter("remo_sim_dropped_readings_total").inc_by(self.dropped_readings as f64);
        remo_obs::counter("remo_sim_monitoring_volume_total").inc_by(self.monitoring_volume);
        remo_obs::counter("remo_sim_control_volume_total").inc_by(self.control_volume);
        remo_obs::gauge("remo_sim_avg_error").set(self.avg_error);
    }
}

/// Accumulated metrics over a simulation run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SimMetrics {
    epochs: Vec<EpochStats>,
}

impl SimMetrics {
    /// Creates an empty metric store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one epoch's stats.
    pub fn push(&mut self, stats: EpochStats) {
        self.epochs.push(stats);
    }

    /// All per-epoch stats in order.
    pub fn epochs(&self) -> &[EpochStats] {
        &self.epochs
    }

    /// Number of recorded epochs.
    pub fn len(&self) -> usize {
        self.epochs.len()
    }

    /// Returns `true` if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.epochs.is_empty()
    }

    /// Mean of `avg_error` over the recorded epochs (skipping the
    /// first `warmup` epochs, which are dominated by pipeline fill).
    ///
    /// Each epoch's value is already capped at *that epoch's*
    /// [`EpochStats::error_cap`]; this method averages them as
    /// recorded. When the series mixes caps (e.g. epochs recorded
    /// under different `SimConfig::error_cap` settings, or merged from
    /// several runs), the summands are on different scales — use
    /// [`mean_error_recapped`](Self::mean_error_recapped) to bring
    /// them onto one scale first.
    pub fn mean_error(&self, warmup: usize) -> f64 {
        let slice = self.epochs.get(warmup..).unwrap_or(&[]);
        if slice.is_empty() {
            return 0.0;
        }
        slice.iter().map(|e| e.avg_error).sum::<f64>() / slice.len() as f64
    }

    /// Like [`mean_error`](Self::mean_error), but re-caps every
    /// epoch's `avg_error` at `cap` before averaging, so run-level
    /// summaries never silently mix per-epoch values recorded under
    /// different caps. `cap` must be at or below every recorded
    /// epoch's cap for the result to be exact (re-capping cannot
    /// reconstruct error mass a lower original cap already discarded).
    pub fn mean_error_recapped(&self, warmup: usize, cap: f64) -> f64 {
        let slice = self.epochs.get(warmup..).unwrap_or(&[]);
        if slice.is_empty() {
            return 0.0;
        }
        slice.iter().map(|e| e.avg_error.min(cap)).sum::<f64>() / slice.len() as f64
    }

    /// Total values delivered to the collector.
    pub fn total_delivered(&self) -> u64 {
        self.epochs.iter().map(|e| e.delivered_values).sum()
    }

    /// Total readings lost.
    pub fn total_dropped_readings(&self) -> u64 {
        self.epochs.iter().map(|e| e.dropped_readings).sum()
    }

    /// Total messages dropped.
    pub fn total_dropped_messages(&self) -> u64 {
        self.epochs.iter().map(|e| e.dropped_messages).sum()
    }

    /// Total monitoring traffic volume in cost units.
    pub fn total_monitoring_volume(&self) -> f64 {
        self.epochs.iter().map(|e| e.monitoring_volume).sum()
    }

    /// Total control traffic volume in cost units.
    pub fn total_control_volume(&self) -> f64 {
        self.epochs.iter().map(|e| e.control_volume).sum()
    }

    /// Writes the per-epoch series as CSV (header + one row per
    /// epoch) to `w`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn write_csv<W: std::io::Write>(&self, mut w: W) -> std::io::Result<()> {
        writeln!(
            w,
            "epoch,delivered_values,dropped_messages,dropped_readings,avg_error,monitoring_volume,control_volume"
        )?;
        for e in &self.epochs {
            writeln!(
                w,
                "{},{},{},{},{:.6},{:.3},{:.3}",
                e.epoch,
                e.delivered_values,
                e.dropped_messages,
                e.dropped_readings,
                e.avg_error,
                e.monitoring_volume,
                e.control_volume
            )?;
        }
        Ok(())
    }

    /// Control volume as a fraction of all traffic (Fig. 9b).
    pub fn control_fraction(&self) -> f64 {
        let c = self.total_control_volume();
        let m = self.total_monitoring_volume();
        if c + m == 0.0 {
            0.0
        } else {
            c / (c + m)
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    fn stats(epoch: u64, err: f64, delivered: u64) -> EpochStats {
        EpochStats {
            epoch,
            delivered_values: delivered,
            avg_error: err,
            monitoring_volume: 10.0,
            control_volume: if epoch == 0 { 5.0 } else { 0.0 },
            ..EpochStats::default()
        }
    }

    #[test]
    fn mean_error_skips_warmup() {
        let mut m = SimMetrics::new();
        m.push(stats(0, 1.0, 0));
        m.push(stats(1, 0.2, 5));
        m.push(stats(2, 0.4, 5));
        assert!((m.mean_error(1) - 0.3).abs() < 1e-12);
        assert!((m.mean_error(0) - (1.6 / 3.0)).abs() < 1e-12);
        assert_eq!(m.mean_error(10), 0.0, "warmup beyond data");
    }

    #[test]
    fn totals_accumulate() {
        let mut m = SimMetrics::new();
        m.push(stats(0, 0.0, 3));
        m.push(stats(1, 0.0, 4));
        assert_eq!(m.total_delivered(), 7);
        assert_eq!(m.total_monitoring_volume(), 20.0);
        assert_eq!(m.total_control_volume(), 5.0);
        assert!((m.control_fraction() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn csv_export_has_header_and_rows() {
        let mut m = SimMetrics::new();
        m.push(stats(0, 0.5, 3));
        m.push(stats(1, 0.25, 4));
        let mut buf = Vec::new();
        m.write_csv(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("epoch,delivered_values"));
        assert!(lines[1].starts_with("0,3,"));
        assert!(lines[2].starts_with("1,4,"));
    }

    #[test]
    fn mean_error_recapped_puts_mixed_caps_on_one_scale() {
        // Known profile: two epochs recorded under cap 4.0 (errors may
        // exceed 1.0) and one under cap 1.0. The plain mean silently
        // mixes scales; the recapped mean is the cap-1.0 summary.
        let mut m = SimMetrics::new();
        m.push(EpochStats {
            epoch: 0,
            avg_error: 3.0,
            error_cap: 4.0,
            ..EpochStats::default()
        });
        m.push(EpochStats {
            epoch: 1,
            avg_error: 0.5,
            error_cap: 4.0,
            ..EpochStats::default()
        });
        m.push(EpochStats {
            epoch: 2,
            avg_error: 1.0,
            error_cap: 1.0,
            ..EpochStats::default()
        });
        assert!((m.mean_error(0) - 1.5).abs() < 1e-12, "as-recorded mean");
        // Recapped at 1.0: (1.0 + 0.5 + 1.0) / 3.
        assert!((m.mean_error_recapped(0, 1.0) - 2.5 / 3.0).abs() < 1e-12);
        // Recapping at a cap at or above every recorded cap changes
        // nothing.
        assert!((m.mean_error_recapped(0, 4.0) - m.mean_error(0)).abs() < 1e-12);
        assert_eq!(m.mean_error_recapped(10, 1.0), 0.0, "warmup beyond data");
    }

    #[test]
    fn epoch_stats_record_their_cap() {
        let s = EpochStats {
            avg_error: 2.5,
            error_cap: 4.0,
            ..EpochStats::default()
        };
        let v = serde::Serialize::serialize(&s);
        let back: EpochStats = serde::Deserialize::deserialize(&v).unwrap();
        assert_eq!(back, s);
        // Legacy data without the field deserializes with cap 0.0
        // ("not recorded"), not an error.
        let legacy = serde_json::parse(
            r#"{"epoch":1,"delivered_values":0,"dropped_messages":0,
                "dropped_readings":0,"avg_error":0.5,
                "monitoring_volume":0.0,"control_volume":0.0}"#,
        )
        .unwrap();
        let back: EpochStats = serde::Deserialize::deserialize(&legacy).unwrap();
        assert_eq!(back.error_cap, 0.0);
        assert_eq!(back.avg_error, 0.5);
    }

    #[test]
    fn empty_metrics_are_sane() {
        let m = SimMetrics::new();
        assert!(m.is_empty());
        assert_eq!(m.mean_error(0), 0.0);
        assert_eq!(m.control_fraction(), 0.0);
    }
}
