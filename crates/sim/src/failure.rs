//! Declarative failure scenarios: scripted node and link outages
//! applied to a [`Simulator`] as it steps.
//!
//! Reliability experiments (Fig. 12b and the SSDP/DSDP tests) need
//! repeatable outage patterns; this module expresses them as data
//! instead of imperative `fail_node`/`heal_node` call sites.

use crate::engine::Simulator;
use remo_core::NodeId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// What fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FailureTarget {
    /// A whole node crashes (drops all traffic).
    Node(NodeId),
    /// A directed link `from → to` drops messages.
    Link(NodeId, NodeId),
}

/// One scripted outage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Outage {
    /// What fails.
    pub target: FailureTarget,
    /// First epoch (inclusive) the failure is in effect.
    pub from_epoch: u64,
    /// Last epoch (inclusive), or `None` for permanent.
    pub until_epoch: Option<u64>,
}

impl Outage {
    /// A node outage over `[from, until]`.
    pub fn node(node: NodeId, from_epoch: u64, until_epoch: Option<u64>) -> Self {
        Outage {
            target: FailureTarget::Node(node),
            from_epoch,
            until_epoch,
        }
    }

    /// A link outage over `[from, until]`.
    pub fn link(from: NodeId, to: NodeId, from_epoch: u64, until_epoch: Option<u64>) -> Self {
        Outage {
            target: FailureTarget::Link(from, to),
            from_epoch,
            until_epoch,
        }
    }

    fn active_at(&self, epoch: u64) -> bool {
        epoch >= self.from_epoch && self.until_epoch.is_none_or(|u| epoch <= u)
    }
}

/// A schedule of outages driven alongside the simulator.
///
/// # Examples
///
/// ```
/// use remo_sim::failure::{FailureSchedule, Outage};
/// use remo_core::NodeId;
/// let mut sched = FailureSchedule::new();
/// sched.add(Outage::node(NodeId(3), 10, Some(20)));
/// sched.add(Outage::link(NodeId(1), NodeId(0), 15, None));
/// assert_eq!(sched.len(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FailureSchedule {
    outages: Vec<Outage>,
}

impl FailureSchedule {
    /// Creates an empty schedule.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an outage.
    pub fn add(&mut self, outage: Outage) -> &mut Self {
        self.outages.push(outage);
        self
    }

    /// The scripted outages, in insertion order.
    pub fn outages(&self) -> &[Outage] {
        &self.outages
    }

    /// Number of scripted outages.
    pub fn len(&self) -> usize {
        self.outages.len()
    }

    /// Returns `true` if nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.outages.is_empty()
    }

    /// Net per-node failure state at `epoch`: a node is failed iff
    /// *any* outage targeting it is active, regardless of the order
    /// outages were added in.
    pub fn node_states_at(&self, epoch: u64) -> BTreeMap<NodeId, bool> {
        let mut states: BTreeMap<NodeId, bool> = BTreeMap::new();
        for o in &self.outages {
            if let FailureTarget::Node(n) = o.target {
                *states.entry(n).or_insert(false) |= o.active_at(epoch);
            }
        }
        states
    }

    /// Net per-link failure state at `epoch` (keyed by the directed
    /// edge `from → to`), ORed across overlapping outages like
    /// [`FailureSchedule::node_states_at`].
    pub fn link_states_at(&self, epoch: u64) -> BTreeMap<(NodeId, NodeId), bool> {
        let mut states: BTreeMap<(NodeId, NodeId), bool> = BTreeMap::new();
        for o in &self.outages {
            if let FailureTarget::Link(a, b) = o.target {
                *states.entry((a, b)).or_insert(false) |= o.active_at(epoch);
            }
        }
        states
    }

    /// Applies the schedule's state for the *upcoming* epoch to the
    /// simulator (call immediately before each `step()`).
    ///
    /// Each target's state is the OR over all outages covering it, so
    /// overlapping windows on the same target compose correctly: an
    /// outage that has ended cannot heal a target another outage still
    /// holds down.
    pub fn apply(&self, sim: &mut Simulator) {
        let epoch = sim.epoch() + 1;
        for (n, failed) in self.node_states_at(epoch) {
            if failed {
                sim.fail_node(n);
            } else {
                sim.heal_node(n);
            }
        }
        for ((a, b), failed) in self.link_states_at(epoch) {
            if failed {
                sim.fail_link(a, b);
            } else {
                sim.heal_link(a, b);
            }
        }
    }

    /// Steps the simulator `epochs` times under this schedule.
    pub fn run(&self, sim: &mut Simulator, epochs: u64) {
        for _ in 0..epochs {
            self.apply(sim);
            sim.step();
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use crate::engine::{SimConfig, SimSetup};
    use remo_core::planner::Planner;
    use remo_core::{AttrCatalog, AttrId, CapacityMap, CostModel, PairSet};
    use std::collections::BTreeMap;

    fn sim() -> Simulator {
        let pairs: PairSet = (0..6).map(|n| (NodeId(n), AttrId(0))).collect();
        let caps = CapacityMap::uniform(6, 50.0, 500.0).unwrap();
        let cost = CostModel::default();
        let catalog = AttrCatalog::new();
        let plan = Planner::default().plan_with_catalog(&pairs, &caps, cost, &catalog);
        // Leak-free owned setup: build inside and clone what we need.
        Simulator::new(SimSetup {
            plan: &plan,
            planned_pairs: &pairs,
            metric_pairs: None,
            caps: &caps,
            cost,
            catalog: &catalog,
            aliases: BTreeMap::new(),
            config: SimConfig::default(),
        })
    }

    #[test]
    fn outage_window_arithmetic() {
        let o = Outage::node(NodeId(0), 5, Some(9));
        assert!(!o.active_at(4));
        assert!(o.active_at(5));
        assert!(o.active_at(9));
        assert!(!o.active_at(10));
        let forever = Outage::node(NodeId(0), 3, None);
        assert!(forever.active_at(1_000_000));
    }

    #[test]
    fn windowed_node_outage_degrades_then_recovers() {
        let mut s = sim();
        let mut sched = FailureSchedule::new();
        // All nodes down for epochs 11..=20.
        for n in 0..6 {
            sched.add(Outage::node(NodeId(n), 11, Some(20)));
        }
        sched.run(&mut s, 10);
        let before = s.metrics().total_delivered();
        assert!(before > 0);
        sched.run(&mut s, 10); // outage window
        let during = s.metrics().total_delivered() - before;
        assert!(during <= 6, "at most the pipeline tail leaks through");
        sched.run(&mut s, 10); // healed
        let after = s.metrics().total_delivered() - before - during;
        assert!(after > 0, "flow resumes after the window");
    }

    #[test]
    fn link_outage_blocks_one_edge_only() {
        let mut s = sim();
        s.run(5);
        let delivered_before = s.metrics().total_delivered();
        // Fail a single leaf-to-parent edge forever; the rest flows.
        let mut sched = FailureSchedule::new();
        sched.add(Outage::link(NodeId(5), NodeId(0), 6, None));
        sched.run(&mut s, 10);
        assert!(s.metrics().total_delivered() > delivered_before);
    }

    #[test]
    fn overlapping_outages_on_one_target_compose() {
        // Regression: a short outage ending mid-way through a longer
        // one must not heal the target — the net state is the OR over
        // all covering windows, independent of insertion order.
        let mut sched = FailureSchedule::new();
        sched.add(Outage::node(NodeId(2), 5, Some(20)));
        sched.add(Outage::node(NodeId(2), 1, Some(10)));
        for epoch in [1, 5, 10, 11, 15, 20] {
            assert!(
                sched.node_states_at(epoch)[&NodeId(2)],
                "node 2 covered at epoch {epoch}"
            );
        }
        assert!(!sched.node_states_at(21)[&NodeId(2)]);

        // End-to-end: the node stays dark for the whole union window.
        let mut s = sim();
        let victim = NodeId(5);
        let mut sched = FailureSchedule::new();
        sched.add(Outage::node(victim, 10, Some(25)));
        sched.add(Outage::node(victim, 5, Some(12))); // ends inside the first
        sched.run(&mut s, 25);
        // Between epoch 13 (where the buggy per-outage loop healed the
        // victim) and 25, nothing fresh from the victim arrives.
        let stored = s.collector().get(victim, AttrId(0)).expect("seen early");
        assert!(
            stored.produced < 13,
            "victim healed mid-outage: fresh value produced at {}",
            stored.produced
        );
        sched.run(&mut s, 10);
        let healed = s.collector().get(victim, AttrId(0)).expect("resumes");
        assert!(
            healed.produced > 25,
            "victim flows again after the union window"
        );

        // Links compose the same way.
        let mut sched = FailureSchedule::new();
        sched.add(Outage::link(NodeId(0), NodeId(1), 3, None));
        sched.add(Outage::link(NodeId(0), NodeId(1), 1, Some(4)));
        assert!(sched.link_states_at(100)[&(NodeId(0), NodeId(1))]);
    }

    #[test]
    fn empty_schedule_is_a_noop() {
        let mut a = sim();
        let mut b = sim();
        FailureSchedule::new().run(&mut a, 8);
        b.run(8);
        assert_eq!(a.metrics().total_delivered(), b.metrics().total_delivered());
    }
}
