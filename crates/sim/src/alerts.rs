//! The result processor: threshold rules evaluated against the
//! collector's snapshots (paper §2.2 — "executes the concrete
//! monitoring operations including collecting and aggregating
//! attribute values, triggering warnings").

use crate::collector::CollectorStore;
use remo_core::{AttrId, NodeId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Comparison direction of a threshold rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Condition {
    /// Fire when the observed value exceeds the threshold.
    Above,
    /// Fire when the observed value falls below the threshold.
    Below,
}

/// A threshold rule over one attribute type.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AlertRule {
    /// Rule name (shown in firings).
    pub name: String,
    /// Attribute the rule watches.
    pub attr: AttrId,
    /// Threshold value.
    pub threshold: f64,
    /// Fire above or below.
    pub condition: Condition,
    /// Snapshots older than this many epochs do not fire (stale data
    /// should page nobody); `None` disables the staleness guard.
    pub max_staleness: Option<u64>,
}

impl AlertRule {
    /// Creates a rule firing when `attr` goes above `threshold`.
    pub fn above(name: impl Into<String>, attr: AttrId, threshold: f64) -> Self {
        AlertRule {
            name: name.into(),
            attr,
            threshold,
            condition: Condition::Above,
            max_staleness: None,
        }
    }

    /// Creates a rule firing when `attr` drops below `threshold`.
    pub fn below(name: impl Into<String>, attr: AttrId, threshold: f64) -> Self {
        AlertRule {
            name: name.into(),
            attr,
            threshold,
            condition: Condition::Below,
            max_staleness: None,
        }
    }

    /// Adds a staleness guard.
    #[must_use]
    pub fn with_max_staleness(mut self, epochs: u64) -> Self {
        self.max_staleness = Some(epochs);
        self
    }

    fn matches(&self, value: f64) -> bool {
        match self.condition {
            Condition::Above => value > self.threshold,
            Condition::Below => value < self.threshold,
        }
    }
}

/// One rule firing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Alert {
    /// The firing rule's name.
    pub rule: String,
    /// Node whose snapshot fired (the aggregate's carrier node for
    /// aggregated attributes).
    pub node: NodeId,
    /// Attribute watched.
    pub attr: AttrId,
    /// The offending value.
    pub value: f64,
    /// Epoch the value was produced.
    pub produced: u64,
    /// Epoch the alert was evaluated.
    pub evaluated: u64,
}

/// Evaluates rules against collector snapshots, with edge-triggered
/// deduplication: a rule re-fires for a pair only after the condition
/// clears.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ResultProcessor {
    rules: Vec<AlertRule>,
    /// Pairs currently in violation per rule index (edge triggering).
    active: BTreeMap<(usize, NodeId, AttrId), ()>,
    fired: Vec<Alert>,
}

impl ResultProcessor {
    /// Creates a processor with no rules.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a rule; returns its index.
    pub fn add_rule(&mut self, rule: AlertRule) -> usize {
        self.rules.push(rule);
        self.rules.len() - 1
    }

    /// Registered rules.
    pub fn rules(&self) -> &[AlertRule] {
        &self.rules
    }

    /// All firings so far, in order.
    pub fn alerts(&self) -> &[Alert] {
        &self.fired
    }

    /// Drains and returns the firings recorded so far.
    pub fn take_alerts(&mut self) -> Vec<Alert> {
        std::mem::take(&mut self.fired)
    }

    /// Evaluates every rule against `store`'s snapshots of `pairs` at
    /// epoch `now`; returns how many alerts fired this round.
    pub fn evaluate(
        &mut self,
        store: &CollectorStore,
        pairs: impl IntoIterator<Item = (NodeId, AttrId)>,
        now: u64,
    ) -> usize {
        let pairs: Vec<(NodeId, AttrId)> = pairs.into_iter().collect();
        let mut fired = 0;
        for (idx, rule) in self.rules.iter().enumerate() {
            for &(node, attr) in pairs.iter().filter(|&&(_, a)| a == rule.attr) {
                let Some(s) = store.get(node, attr) else {
                    continue;
                };
                if let Some(max) = rule.max_staleness {
                    if now.saturating_sub(s.produced) > max {
                        continue;
                    }
                }
                let key = (idx, node, attr);
                if rule.matches(s.value) {
                    if let std::collections::btree_map::Entry::Vacant(e) = self.active.entry(key) {
                        e.insert(());
                        self.fired.push(Alert {
                            rule: rule.name.clone(),
                            node,
                            attr,
                            value: s.value,
                            produced: s.produced,
                            evaluated: now,
                        });
                        fired += 1;
                    }
                } else {
                    self.active.remove(&key);
                }
            }
            // Aggregated attributes: one snapshot per attr.
            if let Some(s) = store.aggregate(rule.attr) {
                let within = rule
                    .max_staleness
                    .is_none_or(|max| now.saturating_sub(s.produced) <= max);
                let key = (idx, NodeId(u32::MAX), rule.attr);
                if within && rule.matches(s.value) {
                    if let std::collections::btree_map::Entry::Vacant(e) = self.active.entry(key) {
                        e.insert(());
                        self.fired.push(Alert {
                            rule: rule.name.clone(),
                            node: NodeId(u32::MAX),
                            attr: rule.attr,
                            value: s.value,
                            produced: s.produced,
                            evaluated: now,
                        });
                        fired += 1;
                    }
                } else if !rule.matches(s.value) {
                    self.active.remove(&key);
                }
            }
        }
        fired
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use crate::reading::Reading;

    fn store_with(node: u32, attr: u32, value: f64, produced: u64) -> CollectorStore {
        let mut s = CollectorStore::new();
        s.record(
            &Reading::sample(NodeId(node), AttrId(attr), value, produced),
            produced + 1,
        );
        s
    }

    #[test]
    fn above_rule_fires_once_until_cleared() {
        let mut rp = ResultProcessor::new();
        rp.add_rule(AlertRule::above("hot", AttrId(0), 90.0));
        let pairs = [(NodeId(1), AttrId(0))];

        let mut s = store_with(1, 0, 95.0, 10);
        assert_eq!(rp.evaluate(&s, pairs, 11), 1);
        // Still violating: edge-triggered, no re-fire.
        assert_eq!(rp.evaluate(&s, pairs, 12), 0);
        // Clears...
        s.record(&Reading::sample(NodeId(1), AttrId(0), 50.0, 13), 14);
        assert_eq!(rp.evaluate(&s, pairs, 14), 0);
        // ...then violates again: re-fires.
        s.record(&Reading::sample(NodeId(1), AttrId(0), 99.0, 15), 16);
        assert_eq!(rp.evaluate(&s, pairs, 16), 1);
        assert_eq!(rp.alerts().len(), 2);
    }

    #[test]
    fn below_rule() {
        let mut rp = ResultProcessor::new();
        rp.add_rule(AlertRule::below("starved", AttrId(2), 5.0));
        let s = store_with(0, 2, 1.0, 1);
        assert_eq!(rp.evaluate(&s, [(NodeId(0), AttrId(2))], 2), 1);
        assert_eq!(rp.alerts()[0].rule, "starved");
        assert_eq!(rp.alerts()[0].value, 1.0);
    }

    #[test]
    fn staleness_guard_suppresses_old_data() {
        let mut rp = ResultProcessor::new();
        rp.add_rule(AlertRule::above("hot", AttrId(0), 90.0).with_max_staleness(3));
        let s = store_with(1, 0, 95.0, 10);
        assert_eq!(
            rp.evaluate(&s, [(NodeId(1), AttrId(0))], 20),
            0,
            "too stale"
        );
        assert_eq!(
            rp.evaluate(&s, [(NodeId(1), AttrId(0))], 12),
            1,
            "fresh enough"
        );
    }

    #[test]
    fn missing_snapshot_is_silent() {
        let mut rp = ResultProcessor::new();
        rp.add_rule(AlertRule::above("hot", AttrId(0), 1.0));
        let s = CollectorStore::new();
        assert_eq!(rp.evaluate(&s, [(NodeId(0), AttrId(0))], 1), 0);
    }

    #[test]
    fn aggregate_snapshots_fire_rules() {
        let mut rp = ResultProcessor::new();
        rp.add_rule(AlertRule::above("agg", AttrId(7), 40.0));
        let mut s = CollectorStore::new();
        s.record(
            &Reading {
                node: NodeId(3),
                attr: AttrId(7),
                value: 42.0,
                produced: 5,
                contributors: 4,
            },
            6,
        );
        assert_eq!(rp.evaluate(&s, [], 6), 1);
    }

    #[test]
    fn take_alerts_drains() {
        let mut rp = ResultProcessor::new();
        rp.add_rule(AlertRule::above("hot", AttrId(0), 90.0));
        let s = store_with(1, 0, 95.0, 10);
        rp.evaluate(&s, [(NodeId(1), AttrId(0))], 11);
        assert_eq!(rp.take_alerts().len(), 1);
        assert!(rp.alerts().is_empty());
    }
}
