//! Readings: the payload units traveling through monitoring trees.

use remo_core::{Aggregation, AttrId, NodeId};
use serde::{Deserialize, Serialize};

/// One attribute observation in flight.
///
/// For holistic attributes a reading represents a single
/// `(node, attr)` sample. Aggregating nodes merge readings of the same
/// funnel attribute into a partial aggregate whose `contributors`
/// counts the samples folded in; `produced` keeps the *oldest*
/// contributing epoch so staleness is conservative.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Reading {
    /// Source node (for aggregates: the node that produced the
    /// partial).
    pub node: NodeId,
    /// Attribute type.
    pub attr: AttrId,
    /// Observed or aggregated value.
    pub value: f64,
    /// Epoch the (oldest contributing) sample was produced.
    pub produced: u64,
    /// Samples folded into this reading (1 for holistic).
    pub contributors: u32,
}

impl Reading {
    /// A fresh single-sample reading.
    pub fn sample(node: NodeId, attr: AttrId, value: f64, produced: u64) -> Self {
        Reading {
            node,
            attr,
            value,
            produced,
            contributors: 1,
        }
    }
}

/// Folds `readings` of one attribute according to its aggregation,
/// returning the outgoing readings (in place of the inputs).
///
/// Holistic/DISTINCT pass everything through; SUM and MAX emit one
/// partial; TOP-k keeps the k largest values.
///
/// # Examples
///
/// ```
/// use remo_sim::reading::{aggregate, Reading};
/// use remo_core::{Aggregation, AttrId, NodeId};
/// let rs = vec![
///     Reading::sample(NodeId(0), AttrId(0), 5.0, 10),
///     Reading::sample(NodeId(1), AttrId(0), 9.0, 8),
/// ];
/// let out = aggregate(Aggregation::Max, NodeId(2), rs);
/// assert_eq!(out.len(), 1);
/// assert_eq!(out[0].value, 9.0);
/// assert_eq!(out[0].contributors, 2);
/// assert_eq!(out[0].produced, 8, "oldest contributor's epoch");
/// ```
pub fn aggregate(kind: Aggregation, at: NodeId, readings: Vec<Reading>) -> Vec<Reading> {
    if readings.is_empty() {
        return readings;
    }
    match kind {
        Aggregation::Holistic | Aggregation::Distinct => readings,
        Aggregation::Sum => {
            let attr = readings[0].attr;
            let value = readings.iter().map(|r| r.value).sum();
            vec![fold(at, attr, value, &readings)]
        }
        Aggregation::Max => {
            let attr = readings[0].attr;
            let value = readings
                .iter()
                .map(|r| r.value)
                .fold(f64::NEG_INFINITY, f64::max);
            vec![fold(at, attr, value, &readings)]
        }
        Aggregation::Top(k) => {
            let mut sorted = readings;
            sorted.sort_by(|a, b| {
                b.value
                    .partial_cmp(&a.value)
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            sorted.truncate(k as usize);
            sorted
        }
    }
}

fn fold(at: NodeId, attr: AttrId, value: f64, inputs: &[Reading]) -> Reading {
    Reading {
        node: at,
        attr,
        value,
        produced: inputs.iter().map(|r| r.produced).min().unwrap_or(0),
        contributors: inputs.iter().map(|r| r.contributors).sum(),
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    fn rs(values: &[f64]) -> Vec<Reading> {
        values
            .iter()
            .enumerate()
            .map(|(i, &v)| Reading::sample(NodeId(i as u32), AttrId(0), v, 100 + i as u64))
            .collect()
    }

    #[test]
    fn sum_folds_to_one() {
        let out = aggregate(Aggregation::Sum, NodeId(9), rs(&[1.0, 2.0, 3.0]));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].value, 6.0);
        assert_eq!(out[0].contributors, 3);
        assert_eq!(out[0].node, NodeId(9));
    }

    #[test]
    fn topk_keeps_largest() {
        let out = aggregate(Aggregation::Top(2), NodeId(9), rs(&[5.0, 1.0, 9.0, 3.0]));
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].value, 9.0);
        assert_eq!(out[1].value, 5.0);
    }

    #[test]
    fn holistic_passthrough() {
        let input = rs(&[4.0, 2.0]);
        let out = aggregate(Aggregation::Holistic, NodeId(9), input.clone());
        assert_eq!(out, input);
    }

    #[test]
    fn empty_is_empty() {
        assert!(aggregate(Aggregation::Sum, NodeId(0), Vec::new()).is_empty());
    }

    #[test]
    fn nested_sum_preserves_contributor_count() {
        let first = aggregate(Aggregation::Sum, NodeId(5), rs(&[1.0, 1.0]));
        let mut next = rs(&[1.0]);
        next.extend(first);
        let out = aggregate(Aggregation::Sum, NodeId(6), next);
        assert_eq!(out[0].contributors, 3);
        assert_eq!(out[0].value, 3.0);
    }
}
