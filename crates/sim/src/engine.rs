//! The epoch-driven monitoring-network simulator.
//!
//! Replaces the paper's BlueGene/P + System S testbed with a
//! deterministic, seeded simulation that exercises the identical
//! planner outputs. The model (paper §2.3, §3.3):
//!
//! - datacenter-like network: any two endpoints communicate at equal
//!   cost; only endpoint CPU matters;
//! - a message with `x` values costs `C + a·x` at the sender *and* at
//!   the receiver, charged against each node's per-epoch budget;
//! - store-and-forward with one hop per epoch: a value produced at
//!   depth `d` reaches the collector `d + 1` epochs later — the
//!   latency-staleness that drives the Fig. 8 percentage-error metric;
//! - a node over budget drops traffic (receive side: whole messages;
//!   send side: oldest readings first), which is how overload turns
//!   into observation error.

use crate::collector::CollectorStore;
use crate::metrics::{EpochStats, SimMetrics};
use crate::reading::{aggregate, Reading};
use crate::values::{ValueModel, ValueProcess};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use remo_core::{
    AttrCatalog, AttrId, AttrSet, CapacityMap, CostModel, MonitoringPlan, NodeId, PairSet, Parent,
};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Simulator tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// RNG seed (all stochasticity is seeded and reproducible).
    pub seed: u64,
    /// Value process assigned to every pair unless overridden.
    pub default_model: ValueModel,
    /// Per-pair relative error cap (default 1.0 = 100%).
    pub error_cap: f64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 7,
            default_model: ValueModel::default(),
            error_cap: 1.0,
        }
    }
}

/// Everything needed to instantiate a [`Simulator`].
#[derive(Debug, Clone)]
pub struct SimSetup<'a> {
    /// The monitoring plan to deploy.
    pub plan: &'a MonitoringPlan,
    /// The pair set the plan was built from (after any reliability
    /// rewriting).
    pub planned_pairs: &'a PairSet,
    /// The pairs error metrics are computed over (pre-rewrite
    /// originals); `None` uses `planned_pairs`.
    pub metric_pairs: Option<&'a PairSet>,
    /// Node and collector budgets.
    pub caps: &'a CapacityMap,
    /// Message cost model.
    pub cost: CostModel,
    /// Attribute metadata (aggregation, frequency).
    pub catalog: &'a AttrCatalog,
    /// Alias → original map from reliability rewriting (empty when
    /// unused).
    pub aliases: BTreeMap<AttrId, AttrId>,
    /// Tuning knobs.
    pub config: SimConfig,
}

#[derive(Debug, Clone)]
struct TreeRoute {
    attrs: AttrSet,
    parent: BTreeMap<NodeId, Parent>,
    members: Vec<NodeId>,
    /// Per member: the attrs it locally samples for this tree.
    local: BTreeMap<NodeId, Vec<AttrId>>,
}

#[derive(Debug, Clone)]
struct Message {
    tree: usize,
    from: NodeId,
    to: Parent,
    readings: Vec<Reading>,
}

/// The epoch-driven simulator.
#[derive(Debug)]
pub struct Simulator {
    caps: CapacityMap,
    cost: CostModel,
    catalog: AttrCatalog,
    config: SimConfig,
    rng: SmallRng,
    epoch: u64,
    routes: Vec<TreeRoute>,
    values: BTreeMap<(NodeId, AttrId), ValueProcess>,
    metric_pairs: PairSet,
    aliases: BTreeMap<AttrId, AttrId>,
    inbox: BTreeMap<(usize, NodeId), Vec<Reading>>,
    in_transit: Vec<Message>,
    collector: CollectorStore,
    metrics: SimMetrics,
    failed_nodes: BTreeSet<NodeId>,
    failed_links: BTreeSet<(NodeId, NodeId)>,
    control_charges: BTreeMap<NodeId, f64>,
    pending_control_volume: f64,
}

impl Simulator {
    /// Builds a simulator for a deployed plan.
    pub fn new(setup: SimSetup<'_>) -> Self {
        let metric_pairs = setup.metric_pairs.unwrap_or(setup.planned_pairs).clone();
        let mut collector = CollectorStore::new();
        collector.set_aliases(setup.aliases.clone());

        let mut sim = Simulator {
            caps: setup.caps.clone(),
            cost: setup.cost,
            catalog: setup.catalog.clone(),
            config: setup.config,
            rng: SmallRng::seed_from_u64(setup.config.seed),
            epoch: 0,
            routes: Vec::new(),
            values: BTreeMap::new(),
            metric_pairs,
            aliases: setup.aliases,
            inbox: BTreeMap::new(),
            in_transit: Vec::new(),
            collector,
            metrics: SimMetrics::new(),
            failed_nodes: BTreeSet::new(),
            failed_links: BTreeSet::new(),
            control_charges: BTreeMap::new(),
            pending_control_volume: 0.0,
        };
        sim.routes = sim.routes_of(setup.plan, setup.planned_pairs);
        sim.ensure_values(setup.planned_pairs);
        let metric_pairs = sim.metric_pairs.clone();
        sim.ensure_values(&metric_pairs);
        sim
    }

    fn resolve(&self, attr: AttrId) -> AttrId {
        self.aliases.get(&attr).copied().unwrap_or(attr)
    }

    fn ensure_values(&mut self, pairs: &PairSet) {
        for (node, attr) in pairs.iter() {
            let key = (node, self.resolve(attr));
            let model = self.config.default_model;
            self.values
                .entry(key)
                .or_insert_with(|| ValueProcess::new(model));
        }
    }

    fn routes_of(&self, plan: &MonitoringPlan, pairs: &PairSet) -> Vec<TreeRoute> {
        plan.partition()
            .sets()
            .iter()
            .zip(plan.trees())
            .filter_map(|(set, planned)| {
                let tree = planned.tree.as_ref()?;
                let members: Vec<NodeId> = tree.nodes().collect();
                let parent = members
                    .iter()
                    .map(|&n| {
                        (
                            n,
                            tree.parent(n)
                                .unwrap_or_else(|| unreachable!("member has parent")),
                        )
                    })
                    .collect();
                let local = members
                    .iter()
                    .map(|&n| {
                        let attrs: Vec<AttrId> = pairs
                            .attrs_of(n)
                            .map(|owned| owned.intersection(set).copied().collect())
                            .unwrap_or_default();
                        (n, attrs)
                    })
                    .collect();
                Some(TreeRoute {
                    attrs: set.clone(),
                    parent,
                    members,
                    local,
                })
            })
            .collect()
    }

    /// Current epoch (number of completed steps).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Recorded metrics so far.
    pub fn metrics(&self) -> &SimMetrics {
        &self.metrics
    }

    /// The collector's snapshot store.
    pub fn collector(&self) -> &CollectorStore {
        &self.collector
    }

    /// The true value of a pair right now (aliases resolve to their
    /// original's process).
    pub fn true_value(&self, node: NodeId, attr: AttrId) -> Option<f64> {
        self.values
            .get(&(node, self.resolve(attr)))
            .map(ValueProcess::value)
    }

    /// Overrides the value process of one pair.
    pub fn set_model(&mut self, node: NodeId, attr: AttrId, model: ValueModel) {
        let key = (node, self.resolve(attr));
        self.values.insert(key, ValueProcess::new(model));
    }

    /// Marks a node crashed: it neither sends nor receives.
    pub fn fail_node(&mut self, node: NodeId) {
        self.failed_nodes.insert(node);
    }

    /// Heals a crashed node.
    pub fn heal_node(&mut self, node: NodeId) {
        self.failed_nodes.remove(&node);
    }

    /// Fails the directed link `from → to`.
    pub fn fail_link(&mut self, from: NodeId, to: NodeId) {
        self.failed_links.insert((from, to));
    }

    /// Heals a failed link.
    pub fn heal_link(&mut self, from: NodeId, to: NodeId) {
        self.failed_links.remove(&(from, to));
    }

    /// Deploys a new plan (runtime adaptation). Topology changes cost
    /// one control message per changed edge, charged to the re-parented
    /// node's budget next epoch; buffered traffic of restructured trees
    /// is lost. Returns the number of control messages.
    pub fn apply_plan(&mut self, plan: &MonitoringPlan, pairs: &PairSet) -> usize {
        let new_routes = self.routes_of(plan, pairs);
        self.ensure_values(pairs);

        // Edge changes: per attribute set, compare parent assignments.
        let old_by_set: BTreeMap<Vec<AttrId>, &TreeRoute> = self
            .routes
            .iter()
            .map(|r| (r.attrs.iter().copied().collect(), r))
            .collect();
        let mut control = 0usize;
        let mut changed_sets: BTreeSet<Vec<AttrId>> = BTreeSet::new();
        for route in &new_routes {
            let key: Vec<AttrId> = route.attrs.iter().copied().collect();
            match old_by_set.get(&key) {
                None => {
                    changed_sets.insert(key);
                    for &n in &route.members {
                        control += 1;
                        *self.control_charges.entry(n).or_insert(0.0) +=
                            self.cost.message_cost(1.0);
                    }
                }
                Some(old) => {
                    let mut any = false;
                    for &n in &route.members {
                        if old.parent.get(&n) != route.parent.get(&n) {
                            any = true;
                            control += 1;
                            *self.control_charges.entry(n).or_insert(0.0) +=
                                self.cost.message_cost(1.0);
                        }
                    }
                    for &n in old.members.iter() {
                        if !route.parent.contains_key(&n) {
                            any = true;
                            control += 1;
                            *self.control_charges.entry(n).or_insert(0.0) +=
                                self.cost.message_cost(1.0);
                        }
                    }
                    if any {
                        changed_sets.insert(key);
                    }
                }
            }
        }
        for route in &self.routes {
            let key: Vec<AttrId> = route.attrs.iter().copied().collect();
            if !new_routes.iter().any(|r| r.attrs == route.attrs) {
                changed_sets.insert(key);
                for &n in &route.members {
                    control += 1;
                    *self.control_charges.entry(n).or_insert(0.0) += self.cost.message_cost(1.0);
                }
            }
        }

        // Migrate buffers of unchanged trees to their new index; drop
        // the rest (reconfiguration disruption).
        let mut new_inbox: BTreeMap<(usize, NodeId), Vec<Reading>> = BTreeMap::new();
        let mut new_transit: Vec<Message> = Vec::new();
        for (new_idx, route) in new_routes.iter().enumerate() {
            let key: Vec<AttrId> = route.attrs.iter().copied().collect();
            if changed_sets.contains(&key) {
                continue;
            }
            if let Some(old_idx) = self.routes.iter().position(|r| r.attrs == route.attrs) {
                for &n in &route.members {
                    if let Some(buf) = self.inbox.remove(&(old_idx, n)) {
                        new_inbox.insert((new_idx, n), buf);
                    }
                }
                for msg in self.in_transit.iter().filter(|m| m.tree == old_idx) {
                    let mut m = msg.clone();
                    m.tree = new_idx;
                    new_transit.push(m);
                }
            }
        }
        self.inbox = new_inbox;
        self.in_transit = new_transit;
        self.routes = new_routes;
        self.pending_control_volume += control as f64 * self.cost.message_cost(1.0);
        control
    }

    /// Advances one epoch; returns that epoch's stats (also recorded in
    /// [`metrics`](Self::metrics)).
    pub fn step(&mut self) -> EpochStats {
        self.epoch += 1;
        let now = self.epoch;
        let mut stats = EpochStats {
            epoch: now,
            control_volume: std::mem::take(&mut self.pending_control_volume),
            ..EpochStats::default()
        };

        // 1. True values advance.
        for process in self.values.values_mut() {
            process.step(&mut self.rng);
        }

        // 2. Per-epoch budgets, minus pending control charges.
        let mut budget: BTreeMap<NodeId, f64> = self.caps.iter().collect();
        for (n, charge) in std::mem::take(&mut self.control_charges) {
            if let Some(b) = budget.get_mut(&n) {
                *b -= charge;
            }
        }
        let mut collector_budget = self.caps.collector();

        // 3. Delivery of last epoch's messages.
        let transit = std::mem::take(&mut self.in_transit);
        for msg in transit {
            let cost = self.cost.message_cost(msg.readings.len() as f64);
            if self.failed_nodes.contains(&msg.from) {
                stats.dropped_messages += 1;
                stats.dropped_readings += msg.readings.len() as u64;
                continue;
            }
            match msg.to {
                Parent::Collector => {
                    if collector_budget >= cost {
                        collector_budget -= cost;
                        for r in &msg.readings {
                            self.collector.record(r, now);
                            stats.delivered_values += r.contributors as u64;
                        }
                    } else {
                        stats.dropped_messages += 1;
                        stats.dropped_readings += msg.readings.len() as u64;
                    }
                }
                Parent::Node(p) => {
                    let link_down = self.failed_links.contains(&(msg.from, p));
                    if self.failed_nodes.contains(&p) || link_down {
                        stats.dropped_messages += 1;
                        stats.dropped_readings += msg.readings.len() as u64;
                        continue;
                    }
                    let b = budget
                        .get_mut(&p)
                        .unwrap_or_else(|| unreachable!("member node has a budget"));
                    if *b >= cost {
                        *b -= cost;
                        self.inbox
                            .entry((msg.tree, p))
                            .or_default()
                            .extend(msg.readings);
                    } else {
                        stats.dropped_messages += 1;
                        stats.dropped_readings += msg.readings.len() as u64;
                    }
                }
            }
        }

        // 4. Send phase.
        for k in 0..self.routes.len() {
            let members = self.routes[k].members.clone();
            for node in members {
                if self.failed_nodes.contains(&node) {
                    continue;
                }
                let mut readings: Vec<Reading> = Vec::new();
                // Fresh local samples, gated by update frequency.
                for &attr in &self.routes[k].local[&node] {
                    let freq = self.catalog.get_or_default(attr).frequency();
                    let period = (1.0 / freq).round().max(1.0) as u64;
                    if !now.is_multiple_of(period) {
                        continue;
                    }
                    let value = self.values[&(node, self.resolve(attr))].value();
                    readings.push(Reading::sample(node, attr, value, now));
                }
                // Relayed traffic buffered since last epoch.
                if let Some(buf) = self.inbox.remove(&(k, node)) {
                    readings.extend(buf);
                }
                if readings.is_empty() {
                    continue;
                }
                // In-network aggregation per funnel attribute.
                readings = self.aggregate_at(node, readings);

                // Send-side budget enforcement: trim oldest first.
                let b = budget
                    .get_mut(&node)
                    .unwrap_or_else(|| unreachable!("member node has a budget"));
                let full_cost = self.cost.message_cost(readings.len() as f64);
                let kept = if *b >= full_cost {
                    readings
                } else {
                    let affordable =
                        ((*b - self.cost.per_message()) / self.cost.per_value()).floor();
                    if affordable < 1.0 {
                        stats.dropped_readings += readings.len() as u64;
                        continue;
                    }
                    readings.sort_by_key(|r| std::cmp::Reverse(r.produced));
                    let keep = (affordable as usize).min(readings.len());
                    stats.dropped_readings += (readings.len() - keep) as u64;
                    readings.truncate(keep);
                    readings
                };
                let cost = self.cost.message_cost(kept.len() as f64);
                *budget
                    .get_mut(&node)
                    .unwrap_or_else(|| unreachable!("member")) -= cost;
                stats.monitoring_volume += cost;
                let to = self.routes[k].parent[&node];
                self.in_transit.push(Message {
                    tree: k,
                    from: node,
                    to,
                    readings: kept,
                });
            }
        }

        // 5. Error metric against true values.
        let truth: BTreeMap<(NodeId, AttrId), f64> = self
            .metric_pairs
            .iter()
            .map(|(n, a)| ((n, a), self.values[&(n, self.resolve(a))].value()))
            .collect();
        stats.avg_error = self.collector.mean_error(&truth, self.config.error_cap);
        stats.error_cap = self.config.error_cap;

        stats.export_metrics();
        self.metrics.push(stats);
        stats
    }

    /// Applies in-network aggregation at `node`: readings of each
    /// funnel attribute fold into partial aggregates.
    fn aggregate_at(&self, node: NodeId, readings: Vec<Reading>) -> Vec<Reading> {
        let mut by_attr: BTreeMap<AttrId, Vec<Reading>> = BTreeMap::new();
        for r in readings {
            by_attr.entry(r.attr).or_default().push(r);
        }
        let mut out = Vec::new();
        for (attr, group) in by_attr {
            let kind = self.catalog.get_or_default(attr).aggregation();
            out.extend(aggregate(kind, node, group));
        }
        out
    }

    /// Runs `epochs` steps.
    pub fn run(&mut self, epochs: u64) {
        for _ in 0..epochs {
            self.step();
        }
    }

    /// Fraction of metric pairs with a snapshot received within
    /// `window` epochs of now.
    pub fn fresh_fraction(&self, window: u64) -> f64 {
        let truth: BTreeMap<(NodeId, AttrId), f64> = self
            .metric_pairs
            .iter()
            .map(|(n, a)| ((n, a), 0.0))
            .collect();
        self.collector.fresh_fraction(&truth, self.epoch, window)
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use remo_core::planner::Planner;

    fn dense_pairs(nodes: u32, attrs: u32) -> PairSet {
        (0..nodes)
            .flat_map(|n| (0..attrs).map(move |a| (NodeId(n), AttrId(a))))
            .collect()
    }

    fn setup_sim(nodes: usize, attrs: u32, budget: f64) -> (Simulator, PairSet) {
        let caps = CapacityMap::uniform(nodes, budget, 1_000.0).unwrap();
        let cost = CostModel::new(2.0, 1.0).unwrap();
        let pairs = dense_pairs(nodes as u32, attrs);
        let catalog = AttrCatalog::new();
        let plan = Planner::default().plan_with_catalog(&pairs, &caps, cost, &catalog);
        let sim = Simulator::new(SimSetup {
            plan: &plan,
            planned_pairs: &pairs,
            metric_pairs: None,
            caps: &caps,
            cost,
            catalog: &catalog,
            aliases: BTreeMap::new(),
            config: SimConfig::default(),
        });
        (sim, pairs)
    }

    #[test]
    fn values_flow_to_collector() {
        let (mut sim, pairs) = setup_sim(8, 2, 50.0);
        sim.run(10);
        assert!(sim.metrics().total_delivered() > 0);
        // Every pair should eventually land.
        assert_eq!(sim.collector().len(), pairs.len());
    }

    #[test]
    fn error_decreases_after_warmup() {
        let (mut sim, _) = setup_sim(8, 2, 50.0);
        let first = sim.step().avg_error;
        sim.run(15);
        let late = sim.metrics().epochs().last().unwrap().avg_error;
        assert!(late < first, "late {late} vs first {first}");
    }

    #[test]
    fn constant_values_reach_zero_error() {
        let caps = CapacityMap::uniform(5, 50.0, 500.0).unwrap();
        let cost = CostModel::new(2.0, 1.0).unwrap();
        let pairs = dense_pairs(5, 1);
        let catalog = AttrCatalog::new();
        let plan = Planner::default().plan_with_catalog(&pairs, &caps, cost, &catalog);
        let mut sim = Simulator::new(SimSetup {
            plan: &plan,
            planned_pairs: &pairs,
            metric_pairs: None,
            caps: &caps,
            cost,
            catalog: &catalog,
            aliases: BTreeMap::new(),
            config: SimConfig {
                default_model: ValueModel::Constant(42.0),
                ..SimConfig::default()
            },
        });
        sim.run(10);
        assert_eq!(sim.metrics().epochs().last().unwrap().avg_error, 0.0);
    }

    #[test]
    fn failed_node_blocks_its_subtree() {
        let (mut sim, _) = setup_sim(8, 1, 50.0);
        sim.run(5);
        let baseline = sim.metrics().epochs().last().unwrap().avg_error;
        // Fail the tree root: nothing reaches the collector anymore.
        let root_delivery_before = sim.metrics().total_delivered();
        for n in 0..8 {
            sim.fail_node(NodeId(n));
        }
        sim.run(10);
        assert_eq!(
            sim.metrics().total_delivered(),
            root_delivery_before,
            "no deliveries while everything is failed"
        );
        let degraded = sim.metrics().epochs().last().unwrap().avg_error;
        assert!(degraded >= baseline);
    }

    #[test]
    fn heal_restores_flow() {
        let (mut sim, _) = setup_sim(6, 1, 50.0);
        for n in 0..6 {
            sim.fail_node(NodeId(n));
        }
        sim.run(3);
        assert_eq!(sim.metrics().total_delivered(), 0);
        for n in 0..6 {
            sim.heal_node(NodeId(n));
        }
        sim.run(5);
        assert!(sim.metrics().total_delivered() > 0);
    }

    #[test]
    fn tight_budgets_cause_drops() {
        // Plan against generous budgets, then simulate on starved nodes
        // (the planner itself never over-commits a node, so drops only
        // appear when reality falls short of the plan's assumptions).
        let plan_caps = CapacityMap::uniform(12, 1_000.0, 10_000.0).unwrap();
        let run_caps = CapacityMap::uniform(12, 7.0, 10_000.0).unwrap();
        let cost = CostModel::new(2.0, 1.0).unwrap();
        let pairs = dense_pairs(12, 3);
        let catalog = AttrCatalog::new();
        let plan = Planner::default().plan_with_catalog(&pairs, &plan_caps, cost, &catalog);
        let mut sim = Simulator::new(SimSetup {
            plan: &plan,
            planned_pairs: &pairs,
            metric_pairs: None,
            caps: &run_caps,
            cost,
            catalog: &catalog,
            aliases: BTreeMap::new(),
            config: SimConfig::default(),
        });
        sim.run(12);
        assert!(
            sim.metrics().total_dropped_readings() > 0
                || sim.metrics().total_dropped_messages() > 0,
            "overload must manifest as drops"
        );
    }

    #[test]
    fn apply_plan_counts_control_messages() {
        let (mut sim, pairs) = setup_sim(8, 2, 50.0);
        sim.run(3);
        // Re-plan with a different builder to force topology changes.
        let caps = CapacityMap::uniform(8, 50.0, 1_000.0).unwrap();
        let cost = CostModel::new(2.0, 1.0).unwrap();
        let catalog = AttrCatalog::new();
        let chain_planner = Planner::new(remo_core::planner::PlannerConfig {
            builder: remo_core::build::BuilderKind::Chain,
            ..Default::default()
        });
        let plan2 = chain_planner.plan_with_catalog(&pairs, &caps, cost, &catalog);
        let control = sim.apply_plan(&plan2, &pairs);
        assert!(control > 0, "different topology must cost control messages");
        let stats = sim.step();
        assert!(stats.control_volume > 0.0);
        sim.run(5);
        assert!(sim.metrics().total_delivered() > 0, "flow continues");
    }

    #[test]
    fn identical_plan_is_free() {
        let caps = CapacityMap::uniform(8, 50.0, 1_000.0).unwrap();
        let cost = CostModel::new(2.0, 1.0).unwrap();
        let pairs = dense_pairs(8, 2);
        let catalog = AttrCatalog::new();
        let plan = Planner::default().plan_with_catalog(&pairs, &caps, cost, &catalog);
        let mut sim = Simulator::new(SimSetup {
            plan: &plan,
            planned_pairs: &pairs,
            metric_pairs: None,
            caps: &caps,
            cost,
            catalog: &catalog,
            aliases: BTreeMap::new(),
            config: SimConfig::default(),
        });
        sim.run(2);
        assert_eq!(sim.apply_plan(&plan, &pairs), 0);
    }

    #[test]
    fn frequency_gates_sampling() {
        use remo_core::AttrInfo;
        let mut catalog = AttrCatalog::new();
        let slow = catalog.register(AttrInfo::new("slow").with_frequency(0.25).unwrap());
        let caps = CapacityMap::uniform(3, 50.0, 500.0).unwrap();
        let cost = CostModel::new(2.0, 1.0).unwrap();
        let pairs: PairSet = (0..3).map(|n| (NodeId(n), slow)).collect();
        let plan = Planner::default().plan_with_catalog(&pairs, &caps, cost, &catalog);
        let mut sim = Simulator::new(SimSetup {
            plan: &plan,
            planned_pairs: &pairs,
            metric_pairs: None,
            caps: &caps,
            cost,
            catalog: &catalog,
            aliases: BTreeMap::new(),
            config: SimConfig::default(),
        });
        sim.run(16);
        // At freq 1/4 over 16 epochs, each node samples 4 times; all
        // three nodes' samples arrive (minus pipeline tail).
        let delivered = sim.metrics().total_delivered();
        assert!(
            delivered <= 12,
            "delivered {delivered} exceeds sample budget"
        );
        assert!(delivered >= 6, "delivered {delivered} too low");
    }

    #[test]
    fn aggregation_reduces_traffic() {
        use remo_core::AttrInfo;
        let build = |agg: bool| {
            let mut catalog = AttrCatalog::new();
            let attr = if agg {
                catalog.register(AttrInfo::new("m").with_aggregation(remo_core::Aggregation::Max))
            } else {
                catalog.register(AttrInfo::new("m"))
            };
            let caps = CapacityMap::uniform(8, 50.0, 500.0).unwrap();
            let cost = CostModel::new(2.0, 1.0).unwrap();
            let pairs: PairSet = (0..8).map(|n| (NodeId(n), attr)).collect();
            let planner = Planner::new(remo_core::planner::PlannerConfig {
                aggregation_aware: agg,
                ..Default::default()
            });
            let plan = planner.plan_with_catalog(&pairs, &caps, cost, &catalog);
            let mut sim = Simulator::new(SimSetup {
                plan: &plan,
                planned_pairs: &pairs,
                metric_pairs: None,
                caps: &caps,
                cost,
                catalog: &catalog,
                aliases: BTreeMap::new(),
                config: SimConfig::default(),
            });
            sim.run(10);
            sim.metrics().total_monitoring_volume()
        };
        assert!(build(true) < build(false));
    }
}
