//! The serializable replay format: a minimized counterexample (or a
//! known-clean trace) as a self-contained regression test.
//!
//! A replay file pins the topology spec, the invariant tolerances the
//! trace was found under, the event sequence, and the expected
//! verdict. `remo-mc replay <file>` re-runs it through the same
//! harness and compares; the committed `corpus/` directory is a suite
//! of these.

use crate::harness::{Event, InvariantConfig};
use crate::minimize::{replay_events, ReplayOutcome};
use crate::topology::TopologySpec;
use serde::{Deserialize, Serialize};

/// Expected verdict of a replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Verdict {
    /// Every event applies and no invariant fires.
    Clean,
    /// An error-severity invariant fires at some step.
    Violation,
}

/// What a replay file asserts about its trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Expectation {
    /// The expected verdict.
    pub verdict: Verdict,
    /// For violations: the rule that must be among the findings.
    #[serde(default)]
    pub rule: Option<String>,
}

/// A self-contained replayable trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplayFile {
    /// The topology the trace runs on.
    pub spec: TopologySpec,
    /// Invariant tolerances in force.
    pub invariants: InvariantConfig,
    /// The event sequence.
    pub events: Vec<Event>,
    /// The asserted outcome.
    pub expect: Expectation,
}

impl ReplayFile {
    /// Wraps a trace with the verdict it currently produces.
    pub fn capture(spec: TopologySpec, invariants: InvariantConfig, events: Vec<Event>) -> Self {
        let expect = match replay_events(&spec, &invariants, &events) {
            ReplayOutcome::Violation { findings, .. } => Expectation {
                verdict: Verdict::Violation,
                rule: findings.first().map(|f| f.rule.clone()),
            },
            _ => Expectation {
                verdict: Verdict::Clean,
                rule: None,
            },
        };
        ReplayFile {
            spec,
            invariants,
            events,
            expect,
        }
    }

    /// Re-runs the trace and checks it against the expectation.
    ///
    /// # Errors
    ///
    /// Returns a human-readable mismatch description: wrong verdict,
    /// missing expected rule, or a non-applicable event.
    pub fn verify(&self) -> Result<ReplayOutcome, String> {
        let outcome = replay_events(&self.spec, &self.invariants, &self.events);
        match (&outcome, self.expect.verdict) {
            (ReplayOutcome::Invalid { at_step }, _) => Err(format!(
                "event {} (`{}`) is not enabled at step {at_step}",
                at_step, self.events[*at_step]
            )),
            (ReplayOutcome::Clean, Verdict::Clean) => Ok(outcome),
            (ReplayOutcome::Violation { findings, at_step }, Verdict::Violation) => {
                if let Some(rule) = &self.expect.rule {
                    if !findings.iter().any(|f| &f.rule == rule) {
                        return Err(format!(
                            "violation at step {at_step} fired {:?}, expected rule `{rule}`",
                            findings.iter().map(|f| f.rule.as_str()).collect::<Vec<_>>()
                        ));
                    }
                }
                Ok(outcome)
            }
            (ReplayOutcome::Clean, Verdict::Violation) => {
                Err("trace replayed clean but a violation was expected".to_string())
            }
            (ReplayOutcome::Violation { findings, at_step }, Verdict::Clean) => Err(format!(
                "trace was expected clean but violated {:?} at step {at_step}",
                findings.iter().map(|f| f.rule.as_str()).collect::<Vec<_>>()
            )),
        }
    }

    /// Serializes to pretty JSON.
    ///
    /// # Errors
    ///
    /// Propagates serializer errors.
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }

    /// Parses a replay file from JSON text.
    ///
    /// # Errors
    ///
    /// Returns the parse or shape error verbatim.
    pub fn from_json(text: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(text)
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use remo_core::NodeId;

    #[test]
    fn capture_and_verify_roundtrip() {
        let spec = TopologySpec::small(1);
        let events = vec![
            Event::Fail(NodeId(0)),
            Event::Tick,
            Event::Repair(NodeId(0)),
        ];
        let file = ReplayFile::capture(spec, InvariantConfig::default(), events);
        assert_eq!(file.expect.verdict, Verdict::Clean);
        file.verify().unwrap();
        let text = file.to_json().unwrap();
        let back = ReplayFile::from_json(&text).unwrap();
        assert_eq!(back, file);
        back.verify().unwrap();
    }

    #[test]
    fn verdict_mismatch_is_reported() {
        let spec = TopologySpec::small(1);
        let mut file = ReplayFile::capture(
            spec,
            InvariantConfig::default(),
            vec![Event::Tick, Event::Tick],
        );
        file.expect.verdict = Verdict::Violation;
        let err = file.verify().unwrap_err();
        assert!(err.contains("expected"), "{err}");
    }

    #[test]
    fn violation_capture_records_the_rule() {
        let spec = TopologySpec::small(1);
        let tight = InvariantConfig {
            pair_slack: 1,
            volume_tolerance: 0.1,
        };
        let events = vec![
            Event::Fail(NodeId(0)),
            Event::Tick,
            Event::Recover(NodeId(0)),
            Event::Tick,
        ];
        let file = ReplayFile::capture(spec, tight, events);
        assert_eq!(file.expect.verdict, Verdict::Violation);
        assert_eq!(
            file.expect.rule.as_deref(),
            Some(remo_audit::rules::RECOVERY_CONVERGENCE)
        );
        file.verify().unwrap();
    }
}
