//! Counterexample minimization: delta debugging (ddmin) over event
//! sequences.
//!
//! A candidate subsequence reproduces the violation only if every one
//! of its events is enabled when applied in order from the initial
//! state *and* an error-severity finding fires — dropping an event
//! that a later one depends on (a `repair` whose `fail` was removed)
//! simply makes the candidate invalid, never a spurious reproduction.

use crate::harness::{Event, Harness, InvariantConfig};
use crate::topology::TopologySpec;
use remo_audit::{Finding, Severity};

/// Outcome of replaying an event sequence from the initial state.
#[derive(Debug, Clone)]
pub enum ReplayOutcome {
    /// Every event applied, no invariant violated.
    Clean,
    /// An invariant fired; the error-severity findings of the first
    /// violating step, and how many events had been applied.
    Violation {
        /// Error-severity findings at the violating step.
        findings: Vec<Finding>,
        /// Events applied up to and including the violating one.
        at_step: usize,
    },
    /// An event was not enabled in the state it was applied to.
    Invalid {
        /// Index of the non-applicable event.
        at_step: usize,
    },
}

impl ReplayOutcome {
    /// Whether this outcome is a reproduced violation.
    pub fn is_violation(&self) -> bool {
        matches!(self, ReplayOutcome::Violation { .. })
    }
}

/// Replays `events` in order from the spec's initial state.
///
/// The run stops at the first violation or the first non-enabled
/// event; a sequence that survives to the end is [`ReplayOutcome::Clean`].
pub fn replay_events(
    spec: &TopologySpec,
    cfg: &InvariantConfig,
    events: &[Event],
) -> ReplayOutcome {
    let Ok(mut h) = Harness::new(spec.clone(), *cfg) else {
        return ReplayOutcome::Invalid { at_step: 0 };
    };
    for (i, &ev) in events.iter().enumerate() {
        if !h.is_enabled(ev) {
            return ReplayOutcome::Invalid { at_step: i };
        }
        let findings: Vec<Finding> = h
            .apply(ev)
            .into_iter()
            .filter(|f| f.severity == Severity::Error)
            .collect();
        if !findings.is_empty() {
            return ReplayOutcome::Violation {
                findings,
                at_step: i + 1,
            };
        }
    }
    ReplayOutcome::Clean
}

/// Shrinks `events` to a locally minimal subsequence that still
/// violates an invariant (classic ddmin). Returns the input unchanged
/// if it does not reproduce in the first place.
pub fn minimize(spec: &TopologySpec, cfg: &InvariantConfig, events: &[Event]) -> Vec<Event> {
    if !replay_events(spec, cfg, events).is_violation() {
        return events.to_vec();
    }
    let mut current: Vec<Event> = events.to_vec();
    let mut chunks = 2usize;
    while current.len() >= 2 {
        let chunk_len = current.len().div_ceil(chunks);
        let mut reduced = false;
        let mut start = 0;
        while start < current.len() {
            let end = (start + chunk_len).min(current.len());
            let mut candidate = Vec::with_capacity(current.len() - (end - start));
            candidate.extend_from_slice(&current[..start]);
            candidate.extend_from_slice(&current[end..]);
            if !candidate.is_empty() && replay_events(spec, cfg, &candidate).is_violation() {
                current = candidate;
                chunks = chunks.saturating_sub(1).max(2);
                reduced = true;
                break;
            }
            start = end;
        }
        if !reduced {
            if chunks >= current.len() {
                break;
            }
            chunks = (chunks * 2).min(current.len());
        }
    }
    current
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use remo_core::NodeId;

    fn tight() -> InvariantConfig {
        InvariantConfig {
            pair_slack: 1,
            volume_tolerance: 0.1,
        }
    }

    #[test]
    fn clean_sequence_replays_clean() {
        let spec = TopologySpec::small(1);
        let outcome = replay_events(
            &spec,
            &InvariantConfig::default(),
            &[Event::Tick, Event::Fail(NodeId(0)), Event::Tick],
        );
        assert!(matches!(outcome, ReplayOutcome::Clean), "{outcome:?}");
    }

    #[test]
    fn disabled_event_is_invalid_not_violating() {
        let spec = TopologySpec::small(1);
        let outcome = replay_events(
            &spec,
            &InvariantConfig::default(),
            &[Event::Repair(NodeId(0))],
        );
        assert!(
            matches!(outcome, ReplayOutcome::Invalid { at_step: 0 }),
            "{outcome:?}"
        );
    }

    #[test]
    fn minimize_strips_padding_from_a_failing_trace() {
        let spec = TopologySpec::small(1);
        let cfg = tight();
        // A padded trace: leading and trailing no-op ticks around the
        // fail → confirm → recover → reintegrate core.
        let padded = vec![
            Event::Tick,
            Event::Tick,
            Event::Fail(NodeId(0)),
            Event::Tick,
            Event::Recover(NodeId(0)),
            Event::Tick,
        ];
        assert!(replay_events(&spec, &cfg, &padded).is_violation());
        let min = minimize(&spec, &cfg, &padded);
        assert!(replay_events(&spec, &cfg, &min).is_violation());
        assert!(
            min.len() < padded.len(),
            "padding must be stripped: {min:?}"
        );
        // 1-minimality: removing any single event breaks reproduction.
        for skip in 0..min.len() {
            let mut cand = min.clone();
            cand.remove(skip);
            assert!(
                cand.is_empty() || !replay_events(&spec, &cfg, &cand).is_violation(),
                "removing event {skip} from {min:?} still reproduces"
            );
        }
    }
}
