//! Seeded small-topology generation for bounded exploration.
//!
//! A [`TopologySpec`] pins everything the model checker needs to
//! rebuild an initial protocol state deterministically: node/attribute
//! counts, capacity budgets, the adaptation scheme, the failure
//! detector's `confirm_after`, and a seed for the pair-set generator.
//! Specs serialize into replay files, so a minimized counterexample
//! carries its topology with it.

use remo_core::adapt::{AdaptScheme, AdaptivePlanner};
use remo_core::planner::Planner;
use remo_core::{AttrCatalog, AttrId, CapacityMap, CostModel, NodeId, PairSet};
use serde::{Deserialize, Serialize};

/// A deterministic small topology the checker explores from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TopologySpec {
    /// Monitored nodes (the checker targets n ≤ 8).
    pub nodes: u32,
    /// Distinct attributes demanded across the system.
    pub attrs: u32,
    /// Per-node capacity budget.
    pub node_budget: f64,
    /// Collector capacity budget.
    pub collector_budget: f64,
    /// Seed for the pair-set generator.
    pub seed: u64,
    /// Adaptation scheme the self-healing planner runs.
    pub scheme: AdaptScheme,
    /// Consecutive missed epochs before a silent node is confirmed
    /// dead (the detector's `K`).
    pub confirm_after: u32,
    /// Most nodes allowed to be physically down at once (bounds the
    /// branching factor, and keeps residual capacity plannable).
    pub max_down: u32,
}

impl TopologySpec {
    /// A compact default: 4 nodes, 2 attributes, fast confirmation.
    pub fn small(seed: u64) -> Self {
        TopologySpec {
            nodes: 4,
            attrs: 2,
            node_budget: 60.0,
            collector_budget: 600.0,
            seed,
            scheme: AdaptScheme::Adaptive,
            confirm_after: 1,
            max_down: 1,
        }
    }

    /// The seeded pair set: every node owns attribute `node % attrs`
    /// (so demand touches all nodes), plus seeded extra pairs at
    /// roughly 50% density.
    pub fn pairs(&self) -> PairSet {
        let mut rng = XorShift::new(self.seed);
        let mut pairs = PairSet::new();
        for n in 0..self.nodes {
            pairs.insert(NodeId(n), AttrId(n % self.attrs.max(1)));
            for a in 0..self.attrs {
                if rng.next_u64().is_multiple_of(2) {
                    pairs.insert(NodeId(n), AttrId(a));
                }
            }
        }
        pairs
    }

    /// The capacity map as launched.
    ///
    /// # Errors
    ///
    /// Propagates [`remo_core::PlanError`] on negative budgets in the
    /// spec.
    pub fn caps(&self) -> Result<CapacityMap, remo_core::PlanError> {
        CapacityMap::uniform(self.nodes as usize, self.node_budget, self.collector_budget)
    }

    /// Builds the self-healing planner this spec deploys.
    ///
    /// # Errors
    ///
    /// Propagates [`remo_core::PlanError`] from capacity construction.
    pub fn planner(&self) -> Result<AdaptivePlanner, remo_core::PlanError> {
        Ok(AdaptivePlanner::new(
            Planner::default(),
            self.scheme,
            self.pairs(),
            self.caps()?,
            CostModel::default(),
            AttrCatalog::new(),
        ))
    }

    /// All node ids of the topology.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes).map(NodeId)
    }
}

/// The default seeded topology set `remo-mc explore` sweeps: a spread
/// of sizes, schemes, and detector settings, all within n ≤ 8.
pub fn seeded_specs() -> Vec<TopologySpec> {
    vec![
        TopologySpec::small(1),
        TopologySpec {
            nodes: 5,
            attrs: 2,
            seed: 7,
            confirm_after: 2,
            ..TopologySpec::small(0)
        },
        TopologySpec {
            nodes: 6,
            attrs: 3,
            seed: 11,
            scheme: AdaptScheme::NoThrottle,
            max_down: 2,
            ..TopologySpec::small(0)
        },
        TopologySpec {
            nodes: 8,
            attrs: 2,
            node_budget: 80.0,
            collector_budget: 900.0,
            seed: 23,
            scheme: AdaptScheme::Rebuild,
            ..TopologySpec::small(0)
        },
    ]
}

/// Deterministic xorshift64* generator: the checker must not depend
/// on ambient randomness, only on the spec's seed.
#[derive(Debug, Clone)]
pub struct XorShift(u64);

impl XorShift {
    /// A generator over `seed` (zero is remapped to a fixed odd seed).
    pub fn new(seed: u64) -> Self {
        XorShift(seed.max(1).wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }

    /// Next pseudo-random value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;

    #[test]
    fn pairs_are_deterministic_and_cover_all_nodes() {
        let spec = TopologySpec::small(42);
        let a = spec.pairs();
        let b = spec.pairs();
        assert_eq!(
            a.iter().collect::<Vec<_>>(),
            b.iter().collect::<Vec<_>>(),
            "same seed, same pairs"
        );
        for n in spec.node_ids() {
            assert!(a.attrs_of(n).is_some(), "node {n} owns at least one pair");
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = TopologySpec::small(1).pairs();
        let b = TopologySpec::small(2).pairs();
        assert_ne!(a.iter().collect::<Vec<_>>(), b.iter().collect::<Vec<_>>());
    }

    #[test]
    fn seeded_specs_stay_small() {
        for spec in seeded_specs() {
            assert!(spec.nodes <= 8, "bounded exploration targets n ≤ 8");
            assert!(spec.planner().is_ok());
        }
    }

    #[test]
    fn spec_roundtrips_through_json() {
        let spec = TopologySpec::small(9);
        let text = serde_json::to_string_pretty(&spec).unwrap();
        let back: TopologySpec = serde_json::from_str(&text).unwrap();
        assert_eq!(back, spec);
    }
}
