//! # remo-mc
//!
//! Bounded model checking of REMO's self-healing reconfiguration
//! protocol. The per-plan invariants (remo-audit rules RA001–RA012)
//! prove every plan the planner *happened* to build is sound; this
//! crate closes the gap to every plan *reachable* under the protocol:
//! it exhaustively enumerates interleavings of failure, recovery,
//! epoch-tick, and repair-completion events on small seeded
//! topologies, driving the real `AdaptivePlanner` and the
//! deployment's real assignment/loss arithmetic, and re-checks named
//! invariants after every transition:
//!
//! - **audit-clean** — the full RA registry plus the cross-layer
//!   assignment check hold in every reachable state;
//! - **RA013 repair-capacity** — a repaired node carries no load;
//! - **RA014 repair-idempotent** — re-applying a repair is a no-op;
//! - **RA015 recovery-convergence** — full recovery returns the plan
//!   near the original's coverage and cost;
//! - **RA016 value-loss-accounting** — loss telemetry is monotone and
//!   matches an independent recount.
//!
//! The explorer deduplicates states by fingerprint, delta-debugs any
//! violating trace to a minimal counterexample, and emits it in a
//! serializable replay format (see the committed `corpus/`). The
//! `remo-mc` CLI drives exploration and replay and reports violations
//! through the SARIF pipeline.
//!
//! ```
//! use remo_mc::{explore, InvariantConfig, TopologySpec};
//!
//! let spec = TopologySpec::small(1);
//! let result = explore::explore(&spec, &InvariantConfig::default(), 3).unwrap();
//! assert!(result.violations.is_empty());
//! assert!(result.stats.states_visited > 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod explore;
pub mod harness;
pub mod minimize;
pub mod replay;
pub mod topology;

pub use explore::{ExploreResult, ExploreStats, Violation};
pub use harness::{Event, Harness, InvariantConfig};
pub use minimize::{minimize, replay_events, ReplayOutcome};
pub use replay::{Expectation, ReplayFile, Verdict};
pub use topology::{seeded_specs, TopologySpec};
