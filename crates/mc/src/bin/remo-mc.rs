//! `remo-mc` — bounded model checking of the self-healing
//! reconfiguration protocol.
//!
//! ```text
//! remo-mc explore [--depth <k>] [--spec <spec.json>] [--sarif <out.json>]
//!                 [--replay-dir <dir>] [--pair-slack <n>] [--volume-tol <f>]
//! remo-mc replay <trace.json> [--sarif <out.json>]
//! ```
//!
//! `explore` sweeps the seeded topology set (or one explicit spec)
//! exhaustively up to the depth bound, deduplicating states and
//! reporting visited-vs-expanded counts. Any invariant violation is
//! delta-debugged to a minimal trace, written as a replay file, and
//! reported through the SARIF pipeline under its RA013+ rule code.
//!
//! Exit status: 0 when no invariant was violated, 1 when at least one
//! was, 2 on usage or I/O problems.

use remo_audit::{sarif, AuditOutcome, Finding};
use remo_mc::{explore, seeded_specs, InvariantConfig, ReplayFile, ReplayOutcome, TopologySpec};
use std::process::ExitCode;
use std::time::Instant;

const USAGE: &str = "\
usage: remo-mc explore [options]
       remo-mc replay <trace.json> [--sarif <out.json>]

explore options:
  --depth <k>          event-interleaving depth bound (default 4)
  --spec <spec.json>   explore one topology spec instead of the
                       seeded set
  --max-nodes <n>      drop seeded topologies larger than n nodes
                       (smoke runs bound exploration cost this way)
  --pair-slack <n>     RA015 allowed pair loss after full recovery
                       (default 1)
  --volume-tol <f>     RA015 allowed volume growth factor (default 1.5)
  --replay-dir <dir>   where minimized counterexamples are written
                       (default current directory)
  --sarif <out.json>   also write a SARIF-style report of violations
";

fn usage_error(message: &str) -> ExitCode {
    eprintln!("remo-mc: {message}");
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

/// Wraps model-checker findings in the shared SARIF envelope.
fn write_sarif(path: &str, findings: Vec<Finding>) -> Result<(), String> {
    let outcome = AuditOutcome {
        findings,
        node_usage: Default::default(),
        collector_usage: 0.0,
    };
    std::fs::write(path, sarif::sarif_json(&outcome))
        .map_err(|e| format!("cannot write {path}: {e}"))
}

struct ExploreArgs {
    depth: usize,
    spec: Option<String>,
    max_nodes: Option<u32>,
    pair_slack: u32,
    volume_tol: f64,
    replay_dir: String,
    sarif: Option<String>,
}

fn parse_explore_args(args: &[String]) -> Result<ExploreArgs, String> {
    let mut out = ExploreArgs {
        depth: 4,
        spec: None,
        max_nodes: None,
        pair_slack: 1,
        volume_tol: 1.5,
        replay_dir: ".".to_string(),
        sarif: None,
    };
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let value = |i: usize| -> Result<&String, String> {
            args.get(i + 1).ok_or(format!("{flag} needs a value"))
        };
        match flag {
            "--depth" => {
                out.depth = value(i)?.parse().map_err(|_| "bad --depth".to_string())?;
                i += 2;
            }
            "--spec" => {
                out.spec = Some(value(i)?.clone());
                i += 2;
            }
            "--max-nodes" => {
                out.max_nodes = Some(
                    value(i)?
                        .parse()
                        .map_err(|_| "bad --max-nodes".to_string())?,
                );
                i += 2;
            }
            "--pair-slack" => {
                out.pair_slack = value(i)?
                    .parse()
                    .map_err(|_| "bad --pair-slack".to_string())?;
                i += 2;
            }
            "--volume-tol" => {
                out.volume_tol = value(i)?
                    .parse()
                    .map_err(|_| "bad --volume-tol".to_string())?;
                i += 2;
            }
            "--replay-dir" => {
                out.replay_dir = value(i)?.clone();
                i += 2;
            }
            "--sarif" => {
                out.sarif = Some(value(i)?.clone());
                i += 2;
            }
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(out)
}

fn run_explore(args: &[String]) -> ExitCode {
    let args = match parse_explore_args(args) {
        Ok(a) => a,
        Err(e) => return usage_error(&e),
    };
    let cfg = InvariantConfig {
        pair_slack: args.pair_slack,
        volume_tolerance: args.volume_tol,
    };
    let mut specs: Vec<TopologySpec> = match &args.spec {
        None => seeded_specs(),
        Some(path) => match std::fs::read_to_string(path) {
            Ok(text) => match serde_json::from_str(&text) {
                Ok(spec) => vec![spec],
                Err(e) => return usage_error(&format!("cannot parse {path}: {e}")),
            },
            Err(e) => return usage_error(&format!("cannot read {path}: {e}")),
        },
    };
    if let Some(cap) = args.max_nodes {
        specs.retain(|s| s.nodes <= cap);
        if specs.is_empty() {
            return usage_error(&format!("--max-nodes {cap} leaves no topology to explore"));
        }
    }

    let mut all_findings = Vec::new();
    let mut counterexamples = 0usize;
    for spec in &specs {
        let t0 = Instant::now();
        let result = match explore::explore(spec, &cfg, args.depth) {
            Ok(r) => r,
            Err(e) => return usage_error(&format!("cannot plan spec: {e:?}")),
        };
        println!(
            "==> n={} attrs={} seed={} scheme={:?} depth={}",
            spec.nodes, spec.attrs, spec.seed, spec.scheme, args.depth
        );
        println!(
            "    states: {} visited, {} expanded, {} deduplicated; violations: {} ({:.2?})",
            result.stats.states_visited,
            result.stats.states_expanded,
            result.stats.deduped,
            result.violations.len(),
            t0.elapsed()
        );
        for v in result.violations {
            let file = ReplayFile::capture(spec.clone(), cfg, v.minimized.clone());
            let path = format!(
                "{}/remo-mc-counterexample-{counterexamples}.json",
                args.replay_dir
            );
            match file.to_json().map_err(|e| e.to_string()).and_then(|text| {
                std::fs::write(&path, text).map_err(|e| format!("cannot write {path}: {e}"))
            }) {
                Ok(()) => {}
                Err(e) => {
                    eprintln!("remo-mc: {e}");
                    return ExitCode::from(2);
                }
            }
            counterexamples += 1;
            for f in &v.findings {
                println!("    {}[{}] {}: {}", f.severity, f.code, f.rule, f.message);
            }
            println!(
                "    minimized to {} events → {path} (replay with `remo-mc replay {path}`)",
                v.minimized.len()
            );
            all_findings.extend(v.findings);
        }
    }

    if let Some(path) = &args.sarif {
        if let Err(e) = write_sarif(path, all_findings.clone()) {
            eprintln!("remo-mc: {e}");
            return ExitCode::from(2);
        }
        println!("SARIF report written to {path}");
    }
    if all_findings.is_empty() {
        println!("model check clean: every reachable state satisfies the invariants.");
        ExitCode::SUCCESS
    } else {
        println!(
            "model check FAILED: {counterexamples} counterexample(s), {} finding(s).",
            all_findings.len()
        );
        ExitCode::from(1)
    }
}

fn run_replay(args: &[String]) -> ExitCode {
    let mut path = None;
    let mut sarif_path = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--sarif" => {
                let Some(v) = args.get(i + 1) else {
                    return usage_error("--sarif needs a value");
                };
                sarif_path = Some(v.clone());
                i += 2;
            }
            other if path.is_none() => {
                path = Some(other.to_string());
                i += 1;
            }
            other => return usage_error(&format!("unexpected argument `{other}`")),
        }
    }
    let Some(path) = path else {
        return usage_error("replay needs a trace file");
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => return usage_error(&format!("cannot read {path}: {e}")),
    };
    let file = match ReplayFile::from_json(&text) {
        Ok(f) => f,
        Err(e) => return usage_error(&format!("cannot parse {path}: {e}")),
    };
    match file.verify() {
        Ok(ReplayOutcome::Clean) => {
            println!("{path}: replayed clean, as expected.");
            ExitCode::SUCCESS
        }
        Ok(ReplayOutcome::Violation { findings, at_step }) => {
            println!("{path}: reproduced the expected violation at step {at_step}:");
            for f in &findings {
                println!("  {}[{}] {}: {}", f.severity, f.code, f.rule, f.message);
            }
            if let Some(out) = &sarif_path {
                if let Err(e) = write_sarif(out, findings) {
                    eprintln!("remo-mc: {e}");
                    return ExitCode::from(2);
                }
                println!("SARIF report written to {out}");
            }
            // Reproducing an expected violation is the replay's job:
            // the regression is *absent* only if verify() errors.
            ExitCode::SUCCESS
        }
        Ok(ReplayOutcome::Invalid { at_step }) => {
            eprintln!("remo-mc: {path}: event at step {at_step} is not enabled");
            ExitCode::from(2)
        }
        Err(e) => {
            eprintln!("remo-mc: {path}: {e}");
            ExitCode::from(1)
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") || args.is_empty() {
        print!("{USAGE}");
        return if args.is_empty() {
            ExitCode::from(2)
        } else {
            ExitCode::SUCCESS
        };
    }
    match args[0].as_str() {
        "explore" => run_explore(&args[1..]),
        "replay" => run_replay(&args[1..]),
        other => usage_error(&format!("unknown command `{other}`")),
    }
}
