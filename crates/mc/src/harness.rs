//! The protocol harness: one explorable state of the self-healing
//! reconfiguration protocol, driving the *real* production code.
//!
//! A [`Harness`] owns a live [`AdaptivePlanner`] and [`HealthMonitor`]
//! and mirrors `Deployment::tick`/`Deployment::repair` step for step —
//! the same `plan_assignments` derivation, the same
//! `changed_assignments` diff, the same `due_readings` loss
//! arithmetic — so every invariant the checker proves holds of the
//! deployed code path, not of a re-model. The one deliberate
//! difference: repair completion is its own schedulable event
//! ([`Event::Repair`]) instead of running synchronously inside the
//! tick, which exposes the confirmation-to-repair window where values
//! are lost and capacity must not be oversubscribed.
//!
//! After every transition [`Harness::apply`] re-checks the named
//! invariants: the full RA001–RA012 registry via
//! [`AdaptivePlanner::audit`] plus the cross-layer assignment check,
//! and the protocol-sequence rules RA013–RA016.
//!
//! The harness also carries one `remo-proto` [`SessionMachine`] per
//! node and replays every explored collector step (tick fan-out,
//! report credit, missed barriers, death confirmation, repair,
//! reintegration) through the shared protocol spec: an explored
//! transition the spec's session table leaves undefined is reported
//! as RA023, so the model checker and the protocol verifier can never
//! silently disagree about what the control plane is allowed to do.

use crate::topology::TopologySpec;
use remo_audit::{cross, rule, Finding, RuleSet, Severity};
use remo_core::adapt::AdaptivePlanner;
use remo_core::{CapacityMap, NodeId};
use remo_proto::{HelloOutcome, SessionEvent, SessionMachine};
use remo_runtime::health::HealthState;
use remo_runtime::{
    changed_assignments, due_readings, plan_assignments, HealthMonitor, TreeAssignment,
};
use remo_static::{cost_bounds, CostBounds, CostFlags};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// One schedulable protocol event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Event {
    /// A node crashes (goes silent from the next tick on).
    Fail(NodeId),
    /// A crashed node comes back (reports again from the next tick).
    Recover(NodeId),
    /// One lockstep epoch: observe reporters, account losses, and
    /// reintegrate nodes the detector saw recover.
    Tick,
    /// The queued plan repair around a confirmed-dead node completes.
    Repair(NodeId),
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Event::Fail(n) => write!(f, "fail:{}", n.0),
            Event::Recover(n) => write!(f, "recover:{}", n.0),
            Event::Tick => write!(f, "tick"),
            Event::Repair(n) => write!(f, "repair:{}", n.0),
        }
    }
}

impl Event {
    /// Parses the compact `tick` / `fail:<n>` / `recover:<n>` /
    /// `repair:<n>` form used in replay files.
    ///
    /// # Errors
    ///
    /// Returns a description of the malformed token.
    pub fn parse(text: &str) -> Result<Self, String> {
        if text == "tick" {
            return Ok(Event::Tick);
        }
        let (kind, id) = text
            .split_once(':')
            .ok_or_else(|| format!("malformed event `{text}`"))?;
        let n: u32 = id
            .parse()
            .map_err(|_| format!("malformed node id in event `{text}`"))?;
        match kind {
            "fail" => Ok(Event::Fail(NodeId(n))),
            "recover" => Ok(Event::Recover(NodeId(n))),
            "repair" => Ok(Event::Repair(NodeId(n))),
            _ => Err(format!("unknown event kind `{kind}`")),
        }
    }
}

impl Serialize for Event {
    fn serialize(&self) -> serde::Value {
        serde::Value::Str(self.to_string())
    }
}

impl Deserialize for Event {
    fn deserialize(v: &serde::Value) -> Result<Self, serde::Error> {
        match v {
            serde::Value::Str(s) => Event::parse(s),
            other => Err(format!("expected event string, found {}", other.kind())),
        }
    }
}

/// Tunable tolerances of the sequence invariants (serialized into
/// replay files so a counterexample pins the exact thresholds it was
/// found under).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InvariantConfig {
    /// Collected pairs the plan may be short of the original after
    /// every failed node has recovered (RA015). The restricted search
    /// is a heuristic; one pair of slack matches the runtime's own
    /// recovery expectations.
    pub pair_slack: u32,
    /// Factor the post-recovery message volume may exceed the
    /// original by (RA015).
    pub volume_tolerance: f64,
}

impl Default for InvariantConfig {
    fn default() -> Self {
        InvariantConfig {
            pair_slack: 1,
            volume_tolerance: 1.5,
        }
    }
}

/// Builds a finding for an `remo-mc` sequence rule at its registry
/// severity.
fn mc_finding(name: &str, message: String) -> Option<Finding> {
    let meta = rule(name)?;
    Some(Finding {
        rule: meta.name.to_string(),
        code: meta.code.to_string(),
        severity: meta.severity,
        message,
        tree: None,
        node: None,
        attr: None,
        actual: None,
        limit: None,
        fix_hint: meta.fix_hint.to_string(),
    })
}

/// One explorable protocol state (clonable, so the DFS can fork it).
#[derive(Debug, Clone)]
pub struct Harness {
    spec: TopologySpec,
    cfg: InvariantConfig,
    planner: AdaptivePlanner,
    health: HealthMonitor,
    assignments: BTreeMap<NodeId, Vec<TreeAssignment>>,
    original_caps: CapacityMap,
    epoch: u64,
    /// Physically crashed (silent) nodes.
    down: BTreeSet<NodeId>,
    /// Confirmed-dead nodes whose plan repair has not completed yet.
    pending_repair: BTreeSet<NodeId>,
    /// Recoveries reintegrated so far (arms the convergence check).
    recoveries: u64,
    /// The harness's own running loss total, kept independently of
    /// the monitor's telemetry so RA016 cross-checks the two.
    values_lost: u64,
    /// Telemetry total at the previous check (monotonicity witness).
    last_reported_lost: u64,
    /// Targeted reconfigurations implied by plan repairs so far.
    reconfigures: u64,
    baseline_pairs: usize,
    baseline_volume: f64,
    /// Shape-independent usage intervals from the static analyzer,
    /// computed once from the original demand. Demand only shrinks as
    /// nodes fail (and every funnel is monotone), so the upper ends
    /// stay sound bounds for every explored plan state.
    static_bounds: CostBounds,
    /// Static-bound comparisons performed so far (soundness witness
    /// for the sweep: checked everywhere, violated nowhere).
    bound_checks: u64,
    /// Per-node `remo-proto` session machines the explored collector
    /// steps are replayed through (RA023 conformance cross-check).
    sessions: BTreeMap<NodeId, SessionMachine>,
    /// Session-machine steps replayed so far (conformance witness).
    conformance_checks: u64,
}

impl Harness {
    /// Plans the spec's initial topology and wraps it in a fresh
    /// protocol state.
    ///
    /// # Errors
    ///
    /// Propagates [`remo_core::PlanError`] from spec construction.
    pub fn new(spec: TopologySpec, cfg: InvariantConfig) -> Result<Self, remo_core::PlanError> {
        let planner = spec.planner()?;
        let original_caps = planner.caps().clone();
        let health = HealthMonitor::new(spec.node_ids(), spec.confirm_after);
        let assignments = plan_assignments(planner.plan(), planner.pairs(), planner.catalog());
        let baseline_pairs = planner.plan().collected_pairs();
        let baseline_volume = planner.plan().message_volume();
        let static_bounds = cost_bounds(
            planner.pairs(),
            planner.catalog(),
            planner.cost(),
            CostFlags::default(),
        );
        // Every node starts registered: the explored system begins in
        // the post-handshake steady state, so each session machine is
        // walked through its fresh Hello + Assign once up front.
        let mut sessions = BTreeMap::new();
        for n in spec.node_ids() {
            let mut m = SessionMachine::new();
            debug_assert!(matches!(m.on_hello(0), HelloOutcome::Admitted(_)));
            sessions.insert(n, m);
        }
        Ok(Harness {
            spec,
            cfg,
            planner,
            health,
            assignments,
            original_caps,
            epoch: 0,
            down: BTreeSet::new(),
            pending_repair: BTreeSet::new(),
            recoveries: 0,
            values_lost: 0,
            last_reported_lost: 0,
            reconfigures: 0,
            baseline_pairs,
            baseline_volume,
            static_bounds,
            bound_checks: 0,
            sessions,
            conformance_checks: 0,
        })
    }

    /// Static-bound comparisons performed so far.
    pub fn bound_checks(&self) -> u64 {
        self.bound_checks
    }

    /// Session-machine steps replayed through the protocol spec so
    /// far (the RA023 conformance witness).
    pub fn conformance_checks(&self) -> u64 {
        self.conformance_checks
    }

    /// Replays one explored collector step through `n`'s session
    /// machine; an undefined transition is an RA023 finding — the
    /// model checker reached a control-plane step the protocol spec
    /// does not allow.
    fn step_session(&mut self, n: NodeId, event: SessionEvent, findings: &mut Vec<Finding>) {
        self.conformance_checks += 1;
        let m = self.sessions.entry(n).or_default();
        let state = m.state();
        if m.step(event).is_none() {
            if let Some(mut f) = mc_finding(
                remo_audit::rules::UNEXPECTED_MESSAGE,
                format!(
                    "explored collector step ({state:?}, {event:?}) for node {n} is undefined \
                     in the protocol spec"
                ),
            ) {
                f.node = Some(n);
                findings.push(f);
            }
        }
    }

    /// The spec this state was built from.
    pub fn spec(&self) -> &TopologySpec {
        &self.spec
    }

    /// Completed epochs.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The harness's independent running loss total.
    pub fn values_lost(&self) -> u64 {
        self.values_lost
    }

    /// Targeted reconfigurations implied by plan repairs so far.
    pub fn reconfigures(&self) -> u64 {
        self.reconfigures
    }

    /// The live planner under check.
    pub fn planner(&self) -> &AdaptivePlanner {
        &self.planner
    }

    /// Whether `event` may fire in this state.
    pub fn is_enabled(&self, event: Event) -> bool {
        match event {
            Event::Tick => true,
            Event::Fail(n) => {
                n.0 < self.spec.nodes
                    && !self.down.contains(&n)
                    && (self.down.len() as u32) < self.spec.max_down
            }
            Event::Recover(n) => self.down.contains(&n),
            Event::Repair(n) => self.pending_repair.contains(&n),
        }
    }

    /// Every event enabled in this state, in deterministic order.
    pub fn enabled_events(&self) -> Vec<Event> {
        let mut events = vec![Event::Tick];
        for n in self.spec.node_ids() {
            for ev in [Event::Fail(n), Event::Recover(n), Event::Repair(n)] {
                if self.is_enabled(ev) {
                    events.push(ev);
                }
            }
        }
        events
    }

    /// Recomputes assignments from the current plan (the deployment's
    /// own derivation) and counts the targeted reconfigurations the
    /// diff implies.
    fn rediff(&mut self) {
        let fresh = plan_assignments(
            self.planner.plan(),
            self.planner.pairs(),
            self.planner.catalog(),
        );
        self.reconfigures += changed_assignments(&self.assignments, &fresh).len() as u64;
        self.assignments = fresh;
    }

    /// Applies one event and re-checks every invariant, returning the
    /// findings (error severity means a violated invariant).
    pub fn apply(&mut self, event: Event) -> Vec<Finding> {
        let mut findings = Vec::new();
        match event {
            Event::Fail(n) => {
                self.down.insert(n);
            }
            Event::Recover(n) => {
                self.down.remove(&n);
            }
            Event::Tick => {
                self.epoch += 1;
                let reporters: BTreeSet<NodeId> = self
                    .spec
                    .node_ids()
                    .filter(|n| !self.down.contains(n))
                    .collect();
                let events = self.health.observe(self.epoch, &reporters);
                // Conformance cross-check: replay the collector's
                // epoch through each session machine — tick fan-out
                // reaches the connected (non-crashed) nodes, reports
                // credit the barrier, silent nodes miss the deadline,
                // and the detector's verdicts confirm/reintegrate.
                let nodes: Vec<NodeId> = self.spec.node_ids().collect();
                for &n in &nodes {
                    if !self.down.contains(&n) {
                        self.step_session(n, SessionEvent::SendTick, &mut findings);
                        self.step_session(n, SessionEvent::RecvReportFresh, &mut findings);
                    } else {
                        self.step_session(n, SessionEvent::MissDeadline, &mut findings);
                    }
                }
                for &n in &events.confirmed {
                    self.step_session(n, SessionEvent::ConfirmDead, &mut findings);
                }
                for &n in &events.recovered {
                    self.step_session(n, SessionEvent::MarkRecovered, &mut findings);
                }
                // Loss accounting, verbatim from Deployment::tick:
                // unhealthy nodes are charged the readings their
                // current assignments schedule this epoch.
                for (&node, assigns) in self.assignments.iter() {
                    if self.health.state(node) == HealthState::Healthy {
                        continue;
                    }
                    let due = due_readings(assigns, self.epoch);
                    if due > 0 {
                        self.health.add_values_lost(node, due);
                        self.values_lost += due;
                    }
                }
                for n in events.confirmed {
                    self.pending_repair.insert(n);
                }
                if !events.recovered.is_empty() {
                    for &n in &events.recovered {
                        // A node that reports again cancels any
                        // still-queued repair and reintegrates at its
                        // original capacity (Deployment::repair).
                        self.pending_repair.remove(&n);
                        let cap = self.original_caps.node(n).unwrap_or(0.0);
                        self.planner.handle_node_recovery(n, cap, self.epoch);
                        self.recoveries += 1;
                    }
                    self.rediff();
                }
            }
            Event::Repair(n) => {
                self.pending_repair.remove(&n);
                self.step_session(n, SessionEvent::Repair, &mut findings);
                self.planner.handle_node_failure(n, self.epoch);
                // RA014: a completed repair is a fixpoint — applying
                // the same failure again must change nothing.
                let mut again = self.planner.clone();
                again.handle_node_failure(n, self.epoch);
                let drift = again.plan().edge_diff(self.planner.plan());
                if drift != 0
                    || again.plan().collected_pairs() != self.planner.plan().collected_pairs()
                {
                    if let Some(mut f) = mc_finding(
                        remo_audit::rules::REPAIR_IDEMPOTENT,
                        format!(
                            "re-applying the repair of node {n} moved {drift} edges and changed \
                             collected pairs {} → {}",
                            self.planner.plan().collected_pairs(),
                            again.plan().collected_pairs()
                        ),
                    ) {
                        f.node = Some(n);
                        findings.push(f);
                    }
                }
                self.rediff();
                self.health.mark_repaired(n, self.epoch);
            }
        }
        findings.extend(self.check());
        findings
    }

    /// Re-proves every state invariant, returning the findings.
    fn check(&mut self) -> Vec<Finding> {
        let mut findings = Vec::new();

        // Audit-clean: the full RA001–RA010 registry over the live
        // planner state, with the planner's own accounting flags.
        findings.extend(
            self.planner
                .audit()
                .findings
                .into_iter()
                .filter(|f| f.severity == Severity::Error),
        );

        // RA011 cross-layer: the assignments the harness would have
        // pushed to agents faithfully implement the current plan.
        findings.extend(cross::check_assignments(
            self.planner.plan(),
            self.planner.pairs(),
            self.planner.catalog(),
            &self.assignments,
            &RuleSet::all(),
        ));

        // RA018 cross-check: every explored plan state must sit inside
        // the static analyzer's shape-independent usage intervals —
        // upper ends always, lower ends whenever the plan collects the
        // full original demand (the lo bound is conditional on full
        // collection).
        let usage = self.planner.plan().node_usage();
        let full_collection = self.planner.plan().collected_pairs() == self.planner.pairs().len();
        for (&n, iv) in &self.static_bounds.per_node {
            let u = usage.get(&n).copied().unwrap_or(0.0);
            self.bound_checks += 1;
            if u > iv.hi() * (1.0 + 1e-6) {
                if let Some(mut f) = mc_finding(
                    remo_audit::rules::STATIC_INFEASIBLE_CAPACITY,
                    format!(
                        "node {n} usage {u:.2} escaped the static worst-shape bound {:.2}",
                        iv.hi()
                    ),
                ) {
                    f.node = Some(n);
                    f.actual = Some(u);
                    f.limit = Some(iv.hi());
                    findings.push(f);
                }
            }
            if full_collection && u < iv.lo() * (1.0 - 1e-6) {
                if let Some(mut f) = mc_finding(
                    remo_audit::rules::STATIC_INFEASIBLE_CAPACITY,
                    format!(
                        "node {n} usage {u:.2} undercuts the static best-shape bound {:.2} \
                         with every pair collected",
                        iv.lo()
                    ),
                ) {
                    f.node = Some(n);
                    f.actual = Some(u);
                    f.limit = Some(iv.lo());
                    findings.push(f);
                }
            }
        }
        self.bound_checks += 1;
        let collector = self.planner.plan().collector_usage();
        if collector > self.static_bounds.collector.hi() * (1.0 + 1e-6)
            || (full_collection && collector < self.static_bounds.collector.lo() * (1.0 - 1e-6))
        {
            if let Some(mut f) = mc_finding(
                remo_audit::rules::STATIC_INFEASIBLE_CAPACITY,
                format!(
                    "collector usage {collector:.2} escaped the static interval [{:.2}, {:.2}]",
                    self.static_bounds.collector.lo(),
                    self.static_bounds.collector.hi()
                ),
            ) {
                f.actual = Some(collector);
                findings.push(f);
            }
        }

        // RA013: a node whose repair completed (dead, not pending)
        // must carry no load — absent from trees, empty assignments,
        // zero capacity.
        for &n in &self.down {
            if self.health.state(n) != HealthState::Dead || self.pending_repair.contains(&n) {
                continue;
            }
            let usage = self
                .planner
                .plan()
                .node_usage()
                .get(&n)
                .copied()
                .unwrap_or(0.0);
            if usage > 0.0 {
                if let Some(mut f) = mc_finding(
                    remo_audit::rules::REPAIR_CAPACITY,
                    format!("repaired node {n} still carries {usage:.2} load in the plan"),
                ) {
                    f.node = Some(n);
                    f.actual = Some(usage);
                    f.limit = Some(0.0);
                    findings.push(f);
                }
            }
            if self.assignments.get(&n).is_some_and(|a| !a.is_empty()) {
                if let Some(mut f) = mc_finding(
                    remo_audit::rules::REPAIR_CAPACITY,
                    format!("repaired node {n} still holds tree assignments"),
                ) {
                    f.node = Some(n);
                    findings.push(f);
                }
            }
        }

        // RA015: once every failed node has recovered and no repair is
        // pending, the plan must be back near the original.
        if self.recoveries > 0 && self.down.is_empty() && self.pending_repair.is_empty() {
            let collected = self.planner.plan().collected_pairs();
            if collected + (self.cfg.pair_slack as usize) < self.baseline_pairs {
                if let Some(mut f) = mc_finding(
                    remo_audit::rules::RECOVERY_CONVERGENCE,
                    format!(
                        "recovered system collects {collected} pairs, original collected {} \
                         (slack {})",
                        self.baseline_pairs, self.cfg.pair_slack
                    ),
                ) {
                    f.actual = Some(collected as f64);
                    f.limit = Some(self.baseline_pairs as f64);
                    findings.push(f);
                }
            }
            let volume = self.planner.plan().message_volume();
            let limit = self.baseline_volume * self.cfg.volume_tolerance;
            if volume > limit + 1e-9 {
                if let Some(mut f) = mc_finding(
                    remo_audit::rules::RECOVERY_CONVERGENCE,
                    format!(
                        "recovered system's volume {volume:.2} exceeds {:.2}x the original \
                         {:.2}",
                        self.cfg.volume_tolerance, self.baseline_volume
                    ),
                ) {
                    f.actual = Some(volume);
                    f.limit = Some(limit);
                    findings.push(f);
                }
            }
        }

        // RA016: the harness's independent loss total and the health
        // telemetry must agree, and the telemetry must be monotone.
        let reported = self.health.report(self.epoch).total_values_lost();
        if reported != self.values_lost {
            if let Some(mut f) = mc_finding(
                remo_audit::rules::VALUE_LOSS_ACCOUNTING,
                format!(
                    "health telemetry reports {reported} values lost, harness accounted {}",
                    self.values_lost
                ),
            ) {
                f.actual = Some(reported as f64);
                f.limit = Some(self.values_lost as f64);
                findings.push(f);
            }
        }
        if reported < self.last_reported_lost {
            if let Some(mut f) = mc_finding(
                remo_audit::rules::VALUE_LOSS_ACCOUNTING,
                format!(
                    "value-loss telemetry went backwards: {} → {reported}",
                    self.last_reported_lost
                ),
            ) {
                f.actual = Some(reported as f64);
                f.limit = Some(self.last_reported_lost as f64);
                findings.push(f);
            }
        }
        self.last_reported_lost = reported;
        findings
    }

    /// A canonical fingerprint of the protocol state, for DFS
    /// deduplication. Epoch is included because the adaptive scheme's
    /// cost-benefit throttle keys off it; cumulative counters are
    /// excluded because they cannot influence future transitions.
    pub fn fingerprint(&self) -> u64 {
        let mut text = String::new();
        text.push_str(&format!("e{}|", self.epoch));
        for n in &self.down {
            text.push_str(&format!("d{}|", n.0));
        }
        for n in &self.pending_repair {
            text.push_str(&format!("p{}|", n.0));
        }
        for n in self.spec.node_ids() {
            text.push_str(&format!(
                "h{}:{:?}:{}|",
                n.0,
                self.health.state(n),
                self.health.consecutive_misses(n)
            ));
        }
        for (n, c) in self.planner.caps().iter() {
            text.push_str(&format!("c{}:{}|", n.0, c.to_bits()));
        }
        for (n, m) in &self.sessions {
            text.push_str(&format!("s{}:{:?}|", n.0, m.state()));
        }
        if let Ok(plan) = serde_json::to_string(self.planner.plan()) {
            text.push_str(&plan);
        }
        for (n, assigns) in &self.assignments {
            text.push_str(&format!("a{}:{:?}|", n.0, assigns));
        }
        fnv1a(text.as_bytes())
    }
}

/// 64-bit FNV-1a over `bytes`.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;

    fn harness() -> Harness {
        Harness::new(TopologySpec::small(3), InvariantConfig::default()).unwrap()
    }

    fn errors(findings: &[Finding]) -> Vec<&Finding> {
        findings
            .iter()
            .filter(|f| f.severity == Severity::Error)
            .collect()
    }

    #[test]
    fn initial_state_is_clean() {
        let mut h = harness();
        let f = h.apply(Event::Tick);
        assert!(errors(&f).is_empty(), "{f:?}");
    }

    #[test]
    fn failure_confirm_repair_recover_cycle_stays_clean() {
        let mut h = harness();
        let victim = NodeId(1);
        for ev in [
            Event::Tick,
            Event::Fail(victim),
            Event::Tick, // confirm_after=1 confirms here
            Event::Repair(victim),
            Event::Tick,
            Event::Recover(victim),
            Event::Tick, // detector sees it report → reintegrated
            Event::Tick,
        ] {
            assert!(h.is_enabled(ev), "{ev} must be enabled");
            let f = h.apply(ev);
            assert!(errors(&f).is_empty(), "after {ev}: {f:?}");
        }
        assert!(h.values_lost() > 0, "the dead window loses readings");
        assert!(h.reconfigures() > 0, "repair re-routes survivors");
        assert!(
            h.conformance_checks() > 0,
            "the cycle must replay through the protocol spec"
        );
    }

    #[test]
    fn repair_window_accrues_losses_monotonically() {
        let mut h = harness();
        h.apply(Event::Fail(NodeId(0)));
        h.apply(Event::Tick);
        let after_confirm = h.values_lost();
        h.apply(Event::Tick);
        let later = h.values_lost();
        assert!(
            later > after_confirm,
            "losses keep accruing until repair completes"
        );
        h.apply(Event::Repair(NodeId(0)));
        let at_repair = h.values_lost();
        h.apply(Event::Tick);
        assert_eq!(
            h.values_lost(),
            at_repair,
            "a repaired node's assignments are empty, so charges stop"
        );
    }

    #[test]
    fn enabledness_tracks_protocol_phase() {
        let mut h = harness();
        let n = NodeId(2);
        assert!(h.is_enabled(Event::Fail(n)));
        assert!(!h.is_enabled(Event::Recover(n)));
        assert!(!h.is_enabled(Event::Repair(n)));
        h.apply(Event::Fail(n));
        assert!(!h.is_enabled(Event::Fail(n)));
        assert!(h.is_enabled(Event::Recover(n)));
        assert!(!h.is_enabled(Event::Repair(n)), "not confirmed yet");
        h.apply(Event::Tick);
        assert!(h.is_enabled(Event::Repair(n)), "confirmed → repairable");
        // max_down=1: no second concurrent failure.
        assert!(!h.is_enabled(Event::Fail(NodeId(0))));
    }

    #[test]
    fn fingerprint_dedups_identical_states_and_splits_different_ones() {
        let a = harness();
        let b = harness();
        assert_eq!(a.fingerprint(), b.fingerprint());
        let mut c = harness();
        c.apply(Event::Fail(NodeId(0)));
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn event_text_roundtrip() {
        for ev in [
            Event::Tick,
            Event::Fail(NodeId(3)),
            Event::Recover(NodeId(0)),
            Event::Repair(NodeId(7)),
        ] {
            assert_eq!(Event::parse(&ev.to_string()).unwrap(), ev);
        }
        assert!(Event::parse("explode:1").is_err());
        assert!(Event::parse("fail").is_err());
    }
}
