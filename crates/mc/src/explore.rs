//! Bounded exhaustive exploration: DFS over all event interleavings
//! up to a depth bound, with state-fingerprint deduplication.
//!
//! Every transition clones the [`Harness`], applies one enabled event
//! through the real planner/runtime code, and re-checks the
//! invariants. A state whose fingerprint was already visited is not
//! expanded again — permutations of commuting events (two failures in
//! either order, say) collapse into one subtree. Violating traces are
//! delta-debugged down to minimal counterexamples before being
//! reported.

use crate::harness::{Event, Harness, InvariantConfig};
use crate::minimize;
use crate::topology::TopologySpec;
use remo_audit::{Finding, Severity};
use std::collections::BTreeSet;

/// Exploration counters: `expanded` counts transitions applied,
/// `visited` counts unique states (by fingerprint), and `deduped`
/// counts transitions that landed on an already-visited state.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExploreStats {
    /// Unique states reached (including the initial state).
    pub states_visited: u64,
    /// Transitions applied (states expanded from).
    pub states_expanded: u64,
    /// Transitions that reached an already-visited state.
    pub deduped: u64,
}

/// One invariant violation: the raw trace that found it, the
/// delta-debugged minimal trace, and the findings at the violating
/// step.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The full event sequence the DFS was on.
    pub trace: Vec<Event>,
    /// The ddmin-reduced sequence that still reproduces it.
    pub minimized: Vec<Event>,
    /// Error-severity findings at the violating transition.
    pub findings: Vec<Finding>,
}

/// Result of one bounded exploration.
#[derive(Debug, Clone)]
pub struct ExploreResult {
    /// Counters.
    pub stats: ExploreStats,
    /// Violations, each with a minimized counterexample.
    pub violations: Vec<Violation>,
}

/// Explores `spec` exhaustively up to `depth` events, checking every
/// invariant after every transition.
///
/// # Errors
///
/// Propagates [`remo_core::PlanError`] from initial planning.
pub fn explore(
    spec: &TopologySpec,
    cfg: &InvariantConfig,
    depth: usize,
) -> Result<ExploreResult, remo_core::PlanError> {
    let root = Harness::new(spec.clone(), *cfg)?;
    let mut seen = BTreeSet::new();
    seen.insert(root.fingerprint());
    let mut result = ExploreResult {
        stats: ExploreStats {
            states_visited: 1,
            ..ExploreStats::default()
        },
        violations: Vec::new(),
    };
    let mut trace = Vec::new();
    dfs(&root, depth, &mut trace, &mut seen, &mut result);
    for v in &mut result.violations {
        v.minimized = minimize::minimize(spec, cfg, &v.trace);
    }
    Ok(result)
}

fn dfs(
    state: &Harness,
    depth_left: usize,
    trace: &mut Vec<Event>,
    seen: &mut BTreeSet<u64>,
    result: &mut ExploreResult,
) {
    if depth_left == 0 {
        return;
    }
    for event in state.enabled_events() {
        let mut next = state.clone();
        result.stats.states_expanded += 1;
        let findings = next.apply(event);
        trace.push(event);
        let errors: Vec<Finding> = findings
            .into_iter()
            .filter(|f| f.severity == Severity::Error)
            .collect();
        if !errors.is_empty() {
            result.violations.push(Violation {
                trace: trace.clone(),
                minimized: Vec::new(),
                findings: errors,
            });
            // A violated state is reported, not expanded: deeper
            // suffixes of a broken prefix add no information.
            trace.pop();
            continue;
        }
        if seen.insert(next.fingerprint()) {
            result.stats.states_visited += 1;
            dfs(&next, depth_left - 1, trace, seen, result);
        } else {
            result.stats.deduped += 1;
        }
        trace.pop();
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;

    #[test]
    fn small_exploration_is_clean_and_dedups() {
        let spec = TopologySpec::small(1);
        let result = explore(&spec, &InvariantConfig::default(), 4).unwrap();
        assert!(
            result.violations.is_empty(),
            "seeded small topology must be violation-free: {:?}",
            result.violations.first().map(|v| &v.findings)
        );
        assert!(result.stats.states_expanded > result.stats.states_visited);
        assert!(
            result.stats.deduped > 0,
            "commuting interleavings must collapse: {:?}",
            result.stats
        );
        assert_eq!(
            result.stats.states_expanded,
            result.stats.states_visited - 1 + result.stats.deduped,
            "every transition either discovers a state or dedups"
        );
    }

    /// Depth-4 sweeps over every seeded topology cross-check the
    /// static analyzer's usage intervals on each explored plan state:
    /// the bounds must hold everywhere (a violation surfaces as an
    /// RA018 finding through the harness and would land in
    /// `violations`).
    #[test]
    fn static_bounds_hold_on_every_explored_state() {
        for spec in crate::topology::seeded_specs() {
            let result = explore(&spec, &InvariantConfig::default(), 4).unwrap();
            let bound_violations: Vec<_> = result
                .violations
                .iter()
                .flat_map(|v| &v.findings)
                .filter(|f| f.rule == remo_audit::rules::STATIC_INFEASIBLE_CAPACITY)
                .collect();
            assert!(
                bound_violations.is_empty(),
                "static usage bounds violated during exploration: {bound_violations:?}"
            );
            assert!(
                result.violations.is_empty(),
                "seeded spec must stay violation-free: {:?}",
                result.violations.first().map(|v| &v.findings)
            );
            // The sweep actually exercised the comparison: replaying a
            // single tick on a fresh harness counts per-node + collector
            // checks.
            let mut h = crate::harness::Harness::new(spec, InvariantConfig::default()).unwrap();
            h.apply(crate::harness::Event::Tick);
            assert!(h.bound_checks() > 0);
        }
    }

    #[test]
    fn impossible_tolerance_produces_minimized_counterexample() {
        // Volume tolerance below 1.0 makes the convergence invariant
        // unsatisfiable: the recovered plan's volume always exceeds
        // a fraction of itself. The checker must find it, and ddmin
        // must shrink the trace to the canonical
        // fail → confirm → recover → reintegrate skeleton.
        let spec = TopologySpec::small(1);
        let cfg = InvariantConfig {
            pair_slack: 1,
            volume_tolerance: 0.1,
        };
        let result = explore(&spec, &cfg, 5).unwrap();
        assert!(!result.violations.is_empty(), "tolerance 0.1 must trip");
        let v = &result.violations[0];
        assert!(v
            .findings
            .iter()
            .any(|f| f.rule == remo_audit::rules::RECOVERY_CONVERGENCE));
        assert!(!v.minimized.is_empty());
        assert!(v.minimized.len() <= v.trace.len());
        // The minimized trace still needs a failure and a recovery.
        assert!(v.minimized.iter().any(|e| matches!(e, Event::Fail(_))));
        assert!(v.minimized.iter().any(|e| matches!(e, Event::Recover(_))));
    }
}
