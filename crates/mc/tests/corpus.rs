//! Replays every committed trace in `corpus/` and asserts its
//! recorded verdict, mirroring remo-audit's known-bad corpus: each
//! file is a frozen regression test for the model-checking harness.
//!
//! To regenerate the corpus after an intentional semantics change:
//!
//! ```text
//! cargo test -p remo-mc --test corpus -- --ignored regenerate_corpus
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used)]

use remo_core::NodeId;
use remo_mc::{seeded_specs, Event, InvariantConfig, ReplayFile, TopologySpec, Verdict};
use std::fs;
use std::path::PathBuf;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("corpus")
}

fn corpus_files() -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = fs::read_dir(corpus_dir())
        .expect("corpus/ directory must exist")
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    files.sort();
    files
}

#[test]
fn every_corpus_trace_replays_to_its_recorded_verdict() {
    let files = corpus_files();
    assert!(!files.is_empty(), "corpus/ must contain replay files");
    for path in files {
        let file = ReplayFile::from_json(&fs::read_to_string(&path).unwrap())
            .unwrap_or_else(|e| panic!("{}: cannot parse: {e}", path.display()));
        file.verify()
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
    }
}

#[test]
fn corpus_covers_both_verdicts() {
    let verdicts: Vec<Verdict> = corpus_files()
        .iter()
        .map(|p| {
            ReplayFile::from_json(&fs::read_to_string(p).unwrap())
                .unwrap()
                .expect
                .verdict
        })
        .collect();
    assert!(verdicts.contains(&Verdict::Clean), "{verdicts:?}");
    assert!(verdicts.contains(&Verdict::Violation), "{verdicts:?}");
}

/// The canonical corpus: (file name, spec, invariants, trace).
fn canonical_corpus() -> Vec<(&'static str, TopologySpec, InvariantConfig, Vec<Event>)> {
    let specs = seeded_specs();
    vec![
        (
            "clean-single-failure-cycle.json",
            TopologySpec::small(1),
            InvariantConfig::default(),
            vec![
                Event::Fail(NodeId(0)),
                Event::Tick,
                Event::Repair(NodeId(0)),
                Event::Tick,
                Event::Recover(NodeId(0)),
                Event::Tick,
                Event::Tick,
            ],
        ),
        (
            "clean-recover-before-repair.json",
            TopologySpec::small(1),
            InvariantConfig::default(),
            vec![
                Event::Fail(NodeId(1)),
                Event::Tick,
                Event::Recover(NodeId(1)),
                Event::Tick,
            ],
        ),
        (
            "clean-double-failure-no-throttle.json",
            specs[2].clone(),
            InvariantConfig::default(),
            vec![
                Event::Fail(NodeId(0)),
                Event::Fail(NodeId(3)),
                Event::Tick,
                Event::Repair(NodeId(0)),
                Event::Repair(NodeId(3)),
                Event::Tick,
                Event::Recover(NodeId(0)),
                Event::Recover(NodeId(3)),
                Event::Tick,
            ],
        ),
        (
            "clean-rebuild-scheme.json",
            specs[3].clone(),
            InvariantConfig::default(),
            vec![
                Event::Fail(NodeId(5)),
                Event::Tick,
                Event::Repair(NodeId(5)),
                Event::Tick,
                Event::Recover(NodeId(5)),
                Event::Tick,
            ],
        ),
        (
            // An unsatisfiable volume tolerance: any recovery trips
            // RA015, giving the corpus a stable expected violation.
            "violation-recovery-convergence.json",
            TopologySpec::small(1),
            InvariantConfig {
                pair_slack: 1,
                volume_tolerance: 0.1,
            },
            vec![
                Event::Fail(NodeId(0)),
                Event::Tick,
                Event::Recover(NodeId(0)),
                Event::Tick,
            ],
        ),
    ]
}

#[test]
fn committed_corpus_matches_the_canonical_set() {
    for (name, spec, cfg, events) in canonical_corpus() {
        let path = corpus_dir().join(name);
        let committed = ReplayFile::from_json(&fs::read_to_string(&path).unwrap())
            .unwrap_or_else(|e| panic!("{}: cannot parse: {e}", path.display()));
        let fresh = ReplayFile::capture(spec, cfg, events);
        assert_eq!(
            committed,
            fresh,
            "{} is stale — rerun `cargo test -p remo-mc --test corpus -- --ignored regenerate_corpus`",
            path.display()
        );
    }
}

#[test]
#[ignore = "rewrites corpus/ in place; run explicitly after an intentional semantics change"]
fn regenerate_corpus() {
    for (name, spec, cfg, events) in canonical_corpus() {
        let file = ReplayFile::capture(spec, cfg, events);
        let expect_violation = name.starts_with("violation-");
        assert_eq!(
            file.expect.verdict,
            if expect_violation {
                Verdict::Violation
            } else {
                Verdict::Clean
            },
            "{name}: trace no longer produces the verdict its name promises"
        );
        fs::write(corpus_dir().join(name), file.to_json().unwrap()).unwrap();
    }
}
