//! Fuzz-shaped property tests: random event sequences longer than the
//! exhaustive depth bound, run through the same invariant harness. A
//! failing case is delta-debugged and written in the replay format so
//! it can be committed to `corpus/` and re-run with `remo-mc replay`.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use proptest::prelude::*;
use remo_audit::Severity;
use remo_core::NodeId;
use remo_mc::{
    minimize, replay_events, seeded_specs, Event, Harness, InvariantConfig, ReplayFile,
    TopologySpec,
};

/// Decodes a raw `(kind, node)` pair into a protocol event.
fn decode(kind: u8, node: u8, nodes: u32) -> Event {
    let node = NodeId(u32::from(node) % nodes);
    match kind % 4 {
        0 => Event::Tick,
        1 => Event::Fail(node),
        2 => Event::Recover(node),
        _ => Event::Repair(node),
    }
}

/// Walks a raw sequence, applying each event that is enabled in the
/// current state, and returns the applied trace plus whether an
/// error-severity invariant fired.
fn drive(spec: &TopologySpec, cfg: &InvariantConfig, raw: &[(u8, u8)]) -> (Vec<Event>, bool) {
    let mut h = Harness::new(spec.clone(), *cfg).unwrap();
    let mut applied = Vec::new();
    for &(kind, node) in raw {
        let ev = decode(kind, node, spec.nodes);
        if !h.is_enabled(ev) {
            continue;
        }
        applied.push(ev);
        let violated = h.apply(ev).iter().any(|f| f.severity == Severity::Error);
        if violated {
            return (applied, true);
        }
    }
    (applied, false)
}

/// On violation, shrinks the trace and freezes it as a replay file
/// before failing the test — the vendored proptest has no shrinking,
/// so the harness does its own ddmin.
fn report_violation(spec: &TopologySpec, cfg: &InvariantConfig, applied: Vec<Event>) -> ! {
    let min = minimize(spec, cfg, &applied);
    let file = ReplayFile::capture(spec.clone(), *cfg, min.clone());
    let path = std::env::temp_dir().join("remo-mc-fuzz-counterexample.json");
    std::fs::write(&path, file.to_json().unwrap()).unwrap();
    panic!(
        "invariant violated by fuzzed trace; minimized to {} events, replay written to {} \
         (verify with `remo-mc replay`)",
        min.len(),
        path.display()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Sequences well past the exhaustive depth bound stay clean on
    /// every seeded topology under the default tolerances.
    #[test]
    fn random_deep_sequences_preserve_invariants(
        spec_idx in 0usize..4,
        raw in prop::collection::vec((0u8..4, 0u8..8), 8..24),
    ) {
        let spec = seeded_specs()[spec_idx].clone();
        let cfg = InvariantConfig::default();
        let (applied, violated) = drive(&spec, &cfg, &raw);
        if violated {
            report_violation(&spec, &cfg, applied);
        }
    }

    /// Under an unsatisfiable tolerance, every violating trace the
    /// fuzzer finds must survive minimization: ddmin output still
    /// reproduces, is no longer than the input, and replays to the
    /// same verdict through the replay-file path.
    #[test]
    fn minimized_fuzz_traces_still_reproduce(
        raw in prop::collection::vec((0u8..4, 0u8..4), 4..12),
    ) {
        let spec = TopologySpec::small(1);
        let cfg = InvariantConfig { pair_slack: 1, volume_tolerance: 0.1 };
        let (applied, violated) = drive(&spec, &cfg, &raw);
        if violated {
            let min = minimize(&spec, &cfg, &applied);
            prop_assert!(min.len() <= applied.len());
            prop_assert!(replay_events(&spec, &cfg, &min).is_violation());
            let file = ReplayFile::capture(spec.clone(), cfg, min);
            prop_assert!(file.verify().is_ok());
        }
    }
}
