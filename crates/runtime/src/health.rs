//! Failure detection and health telemetry for deployments.
//!
//! The coordinator drives agents in lockstep epochs; a healthy agent
//! acknowledges every `Tick` with a [`TickReport`](crate::TickReport).
//! A crashed agent goes silent, so liveness falls out of the tick
//! barrier itself: any agent that misses the per-epoch report deadline
//! is *suspected*, and after [`HealthConfig::confirm_after`]
//! consecutive misses it is *confirmed dead*. Confirmation is the
//! signal the self-healing deployment uses to invoke
//! `AdaptivePlanner::handle_node_failure` and reconfigure the
//! survivors; an agent that reports again after confirmation is
//! *recovered* and reintegrated via `handle_node_recovery`.
//!
//! [`HealthMonitor`] holds the per-node detector state machine and
//! incident statistics; [`HealthReport`] is the serializable snapshot
//! exposed through
//! [`Deployment::health_report`](crate::Deployment::health_report).

use remo_core::NodeId;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::time::Duration;

/// Liveness state of one agent as seen by the coordinator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum HealthState {
    /// Reporting on time.
    #[default]
    Healthy,
    /// Missed at least one epoch deadline, not yet confirmed dead.
    Suspected,
    /// Missed `confirm_after` consecutive deadlines.
    Dead,
}

/// Failure-detector and repair tuning.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HealthConfig {
    /// How long the coordinator waits each epoch for outstanding tick
    /// reports before declaring the stragglers missed.
    pub deadline: Duration,
    /// Consecutive missed deadlines before a suspect is confirmed
    /// dead (the paper-style `K`).
    pub confirm_after: u32,
    /// Attempts per targeted `Reconfigure` send during plan repair.
    pub reconfigure_retries: u32,
    /// Initial backoff between reconfigure retries; doubles per
    /// attempt.
    pub backoff: Duration,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            deadline: Duration::from_millis(200),
            confirm_after: 3,
            reconfigure_retries: 3,
            backoff: Duration::from_millis(2),
        }
    }
}

/// Per-node incident statistics (cumulative over the deployment's
/// lifetime; epoch quantities refer to the most recent incident).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct NodeHealthStats {
    /// Times this node entered the suspected state.
    pub suspected: u64,
    /// Times this node was confirmed dead.
    pub confirmed: u64,
    /// Times a plan repair completed after this node's confirmation.
    pub repaired: u64,
    /// Times this node reported again after being confirmed dead.
    pub recovered: u64,
    /// Epochs from first missed deadline to confirmation (last
    /// incident): the detector's time-to-detect.
    pub time_to_detect: u64,
    /// Epochs from first missed deadline to completed plan repair
    /// (last incident): mean-time-to-repair in epochs.
    pub mttr_epochs: u64,
    /// Readings this node was scheduled to produce but could not,
    /// accumulated over its unhealthy windows.
    pub values_lost: u64,
    /// Reports that arrived carrying an older epoch than the barrier
    /// they were observed in (clock skew / slow node): each counted as
    /// a miss-then-arrival, never as current liveness.
    pub stale_reports: u64,
}

/// Serializable snapshot of deployment health.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct HealthReport {
    /// Epoch the snapshot was taken at.
    pub epoch: u64,
    /// Current liveness state per node.
    pub states: BTreeMap<NodeId, HealthState>,
    /// Cumulative incident statistics per node.
    pub stats: BTreeMap<NodeId, NodeHealthStats>,
}

impl HealthReport {
    /// Nodes currently confirmed dead.
    pub fn dead_nodes(&self) -> Vec<NodeId> {
        self.states
            .iter()
            .filter(|(_, &s)| s == HealthState::Dead)
            .map(|(&n, _)| n)
            .collect()
    }

    /// Total confirmed-dead incidents across all nodes.
    pub fn total_confirmed(&self) -> u64 {
        self.stats.values().map(|s| s.confirmed).sum()
    }

    /// Total completed repairs across all nodes.
    pub fn total_repaired(&self) -> u64 {
        self.stats.values().map(|s| s.repaired).sum()
    }

    /// Total readings lost to unhealthy windows across all nodes.
    pub fn total_values_lost(&self) -> u64 {
        self.stats.values().map(|s| s.values_lost).sum()
    }
}

/// State transitions produced by one epoch's observation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HealthEvents {
    /// Nodes that just became suspected.
    pub suspected: Vec<NodeId>,
    /// Nodes that just became confirmed dead.
    pub confirmed: Vec<NodeId>,
    /// Previously dead nodes that reported again.
    pub recovered: Vec<NodeId>,
}

impl HealthEvents {
    /// Whether nothing changed.
    pub fn is_empty(&self) -> bool {
        self.suspected.is_empty() && self.confirmed.is_empty() && self.recovered.is_empty()
    }
}

#[derive(Debug, Clone, Copy)]
struct NodeHealth {
    state: HealthState,
    misses: u32,
    first_miss: u64,
    stats: NodeHealthStats,
}

/// The per-node failure-detector state machine.
#[derive(Debug, Clone)]
pub struct HealthMonitor {
    confirm_after: u32,
    nodes: BTreeMap<NodeId, NodeHealth>,
}

impl HealthMonitor {
    /// A monitor tracking `nodes`, confirming death after
    /// `confirm_after` consecutive missed deadlines (clamped to ≥ 1).
    pub fn new(nodes: impl IntoIterator<Item = NodeId>, confirm_after: u32) -> Self {
        HealthMonitor {
            confirm_after: confirm_after.max(1),
            nodes: nodes
                .into_iter()
                .map(|n| {
                    (
                        n,
                        NodeHealth {
                            state: HealthState::Healthy,
                            misses: 0,
                            first_miss: 0,
                            stats: NodeHealthStats::default(),
                        },
                    )
                })
                .collect(),
        }
    }

    /// Current state of a node (`Dead` for untracked nodes).
    pub fn state(&self, node: NodeId) -> HealthState {
        self.nodes.get(&node).map_or(HealthState::Dead, |h| h.state)
    }

    /// Consecutive missed deadlines of a node's current incident
    /// (zero for healthy or untracked nodes). The `remo-mc` model
    /// checker folds this into its state fingerprint: two states with
    /// equal miss counts are behaviorally equivalent to the detector.
    pub fn consecutive_misses(&self, node: NodeId) -> u32 {
        self.nodes.get(&node).map_or(0, |h| h.misses)
    }

    /// Nodes the tick barrier should still wait for (everything not
    /// confirmed dead).
    pub fn expected_reporters(&self) -> BTreeSet<NodeId> {
        self.nodes
            .iter()
            .filter(|(_, h)| h.state != HealthState::Dead)
            .map(|(&n, _)| n)
            .collect()
    }

    /// Folds one epoch's reporter set into the detector and returns
    /// the transitions. Every reporter is taken to have reported *for*
    /// `epoch` — correct for in-process lockstep, where agents answer
    /// the tick they were sent. Distributed coordinators, where a
    /// slow-but-alive node's report can arrive a barrier late, must
    /// use [`HealthMonitor::observe_reports`] instead.
    pub fn observe(&mut self, epoch: u64, reporters: &BTreeSet<NodeId>) -> HealthEvents {
        let reports: BTreeMap<NodeId, u64> = reporters.iter().map(|&n| (n, epoch)).collect();
        self.observe_reports(epoch, &reports)
    }

    /// Folds one epoch's reports — `node → newest report epoch heard
    /// during this barrier` — into the detector.
    ///
    /// Liveness for `epoch` requires a report *for* `epoch` (or
    /// newer): a late frame from a previous epoch is real evidence the
    /// process was alive back then, but the node still missed this
    /// deadline, so it counts as a miss-then-arrival. Crediting stale
    /// reports as current liveness has two failure modes this method
    /// exists to close: a consistently one-epoch-behind node resets
    /// its miss counter every barrier and is never detected, and a
    /// killed node's last pre-death frame, delivered late, "recovers"
    /// it after confirmation — triggering `handle_node_recovery`
    /// followed by a second detection and a double repair.
    pub fn observe_reports(&mut self, epoch: u64, reports: &BTreeMap<NodeId, u64>) -> HealthEvents {
        let mut events = HealthEvents::default();
        for (&node, h) in self.nodes.iter_mut() {
            let report_epoch = reports.get(&node);
            if report_epoch.is_some_and(|&e| e < epoch) {
                h.stats.stale_reports += 1;
                if remo_obs::enabled() {
                    remo_obs::counter("remo_runtime_stale_reports_total").inc();
                }
            }
            if report_epoch.is_some_and(|&e| e >= epoch) {
                if h.state == HealthState::Dead {
                    h.stats.recovered += 1;
                    events.recovered.push(node);
                    if remo_obs::enabled() {
                        remo_obs::counter("remo_runtime_recovered_total").inc();
                    }
                    remo_obs::event!("health.recovered", "node" => node.0, "epoch" => epoch);
                }
                h.state = HealthState::Healthy;
                h.misses = 0;
            } else {
                h.misses += 1;
                if h.state == HealthState::Healthy {
                    h.state = HealthState::Suspected;
                    h.first_miss = epoch;
                    h.stats.suspected += 1;
                    events.suspected.push(node);
                    if remo_obs::enabled() {
                        remo_obs::counter("remo_runtime_suspected_total").inc();
                    }
                    remo_obs::event!("health.suspected", "node" => node.0, "epoch" => epoch);
                }
                if h.state == HealthState::Suspected && h.misses >= self.confirm_after {
                    h.state = HealthState::Dead;
                    h.stats.confirmed += 1;
                    h.stats.time_to_detect = epoch.saturating_sub(h.first_miss);
                    events.confirmed.push(node);
                    if remo_obs::enabled() {
                        remo_obs::counter("remo_runtime_confirmed_dead_total").inc();
                        // Detection latency in epochs, the Fig. 12-style
                        // failure-detection metric.
                        remo_obs::histogram("remo_runtime_time_to_detect_epochs")
                            .observe(h.stats.time_to_detect as f64);
                    }
                    remo_obs::event!("health.confirmed",
                        "node" => node.0,
                        "epoch" => epoch,
                        "time_to_detect" => h.stats.time_to_detect);
                }
            }
        }
        events
    }

    /// Records that the plan was repaired around `node` at `epoch`
    /// (sets the incident's MTTR).
    pub fn mark_repaired(&mut self, node: NodeId, epoch: u64) {
        if let Some(h) = self.nodes.get_mut(&node) {
            h.stats.repaired += 1;
            h.stats.mttr_epochs = epoch.saturating_sub(h.first_miss);
            if remo_obs::enabled() {
                remo_obs::counter("remo_runtime_repairs_total").inc();
                remo_obs::histogram("remo_runtime_mttr_epochs").observe(h.stats.mttr_epochs as f64);
            }
            remo_obs::event!("health.repaired",
                "node" => node.0,
                "epoch" => epoch,
                "mttr_epochs" => h.stats.mttr_epochs);
        }
    }

    /// Charges `count` lost readings to `node`'s current incident.
    pub fn add_values_lost(&mut self, node: NodeId, count: u64) {
        if let Some(h) = self.nodes.get_mut(&node) {
            h.stats.values_lost += count;
        }
    }

    /// Serializable snapshot at `epoch`.
    pub fn report(&self, epoch: u64) -> HealthReport {
        HealthReport {
            epoch,
            states: self.nodes.iter().map(|(&n, h)| (n, h.state)).collect(),
            stats: self.nodes.iter().map(|(&n, h)| (n, h.stats)).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;

    fn all(n: u32) -> BTreeSet<NodeId> {
        (0..n).map(NodeId).collect()
    }

    #[test]
    fn silent_node_is_suspected_then_confirmed() {
        let mut m = HealthMonitor::new((0..4).map(NodeId), 3);
        let mut reporters = all(4);
        reporters.remove(&NodeId(2));

        let e1 = m.observe(1, &reporters);
        assert_eq!(e1.suspected, vec![NodeId(2)]);
        assert!(e1.confirmed.is_empty());
        assert_eq!(m.state(NodeId(2)), HealthState::Suspected);

        let e2 = m.observe(2, &reporters);
        assert!(e2.is_empty(), "second miss is not yet confirmation");

        let e3 = m.observe(3, &reporters);
        assert_eq!(e3.confirmed, vec![NodeId(2)]);
        assert_eq!(m.state(NodeId(2)), HealthState::Dead);
        let r = m.report(3);
        assert_eq!(r.stats[&NodeId(2)].time_to_detect, 2);
        assert_eq!(r.dead_nodes(), vec![NodeId(2)]);
        assert_eq!(r.total_confirmed(), 1);
    }

    #[test]
    fn single_miss_recovers_without_confirmation() {
        let mut m = HealthMonitor::new((0..2).map(NodeId), 3);
        let mut some = all(2);
        some.remove(&NodeId(1));
        m.observe(1, &some);
        assert_eq!(m.state(NodeId(1)), HealthState::Suspected);
        m.observe(2, &all(2));
        assert_eq!(m.state(NodeId(1)), HealthState::Healthy);
        // Misses are consecutive: a fresh incident restarts the count.
        m.observe(3, &some);
        m.observe(4, &some);
        assert_eq!(m.state(NodeId(1)), HealthState::Suspected);
        m.observe(5, &some);
        assert_eq!(m.state(NodeId(1)), HealthState::Dead);
    }

    #[test]
    fn dead_node_reporting_again_is_recovered() {
        let mut m = HealthMonitor::new((0..3).map(NodeId), 1);
        let mut down = all(3);
        down.remove(&NodeId(0));
        let e = m.observe(1, &down);
        assert_eq!(
            e.confirmed,
            vec![NodeId(0)],
            "confirm_after=1 confirms at once"
        );
        assert_eq!(m.expected_reporters(), down);

        let e = m.observe(2, &all(3));
        assert_eq!(e.recovered, vec![NodeId(0)]);
        assert_eq!(m.state(NodeId(0)), HealthState::Healthy);
        assert_eq!(m.report(2).stats[&NodeId(0)].recovered, 1);
    }

    /// A slow-but-alive node whose report always arrives one barrier
    /// late must be detected: its stale reports are miss-then-arrival,
    /// not liveness. (Pre-fix, any report in the barrier window reset
    /// the miss counter, so a perpetually lagging node was never
    /// confirmed.)
    #[test]
    fn perpetually_late_reporter_is_confirmed_not_reset() {
        let mut m = HealthMonitor::new((0..3).map(NodeId), 3);
        for epoch in 1..=3u64 {
            // Nodes 0 and 1 report the current epoch; node 2's report
            // is delayed transport — it carries the previous epoch.
            let reports: BTreeMap<NodeId, u64> = [
                (NodeId(0), epoch),
                (NodeId(1), epoch),
                (NodeId(2), epoch - 1),
            ]
            .into_iter()
            .collect();
            let events = m.observe_reports(epoch, &reports);
            if epoch < 3 {
                assert!(events.confirmed.is_empty());
            } else {
                assert_eq!(events.confirmed, vec![NodeId(2)]);
            }
        }
        assert_eq!(m.state(NodeId(2)), HealthState::Dead);
        assert_eq!(m.report(3).stats[&NodeId(2)].stale_reports, 3);
    }

    /// A confirmed-dead node's last pre-death frame delivered late
    /// must not resurrect it: recovery (and the repair it triggers)
    /// requires a current-epoch report. Pre-fix the stale report
    /// flipped the node back to healthy, and its continued silence
    /// then drove a second suspect→confirm→repair cycle for the same
    /// crash.
    #[test]
    fn stale_report_does_not_resurrect_a_dead_node() {
        let mut m = HealthMonitor::new((0..2).map(NodeId), 1);
        let only0: BTreeMap<NodeId, u64> = [(NodeId(0), 1)].into_iter().collect();
        let e = m.observe_reports(1, &only0);
        assert_eq!(e.confirmed, vec![NodeId(1)]);

        // Epoch 2: node 1's dying report from epoch 1 straggles in.
        let late: BTreeMap<NodeId, u64> = [(NodeId(0), 2), (NodeId(1), 1)].into_iter().collect();
        let e = m.observe_reports(2, &late);
        assert!(e.recovered.is_empty(), "stale frame resurrected the dead");
        assert_eq!(m.state(NodeId(1)), HealthState::Dead);
        assert_eq!(m.report(2).stats[&NodeId(1)].confirmed, 1);

        // Epoch 3: silence again — no second confirmation fires (the
        // node never left Dead, so no double repair can be triggered).
        let only0: BTreeMap<NodeId, u64> = [(NodeId(0), 3)].into_iter().collect();
        let e = m.observe_reports(3, &only0);
        assert!(e.is_empty());
        assert_eq!(m.report(3).stats[&NodeId(1)].confirmed, 1);

        // A genuine current-epoch report does recover it.
        let both: BTreeMap<NodeId, u64> = [(NodeId(0), 4), (NodeId(1), 4)].into_iter().collect();
        let e = m.observe_reports(4, &both);
        assert_eq!(e.recovered, vec![NodeId(1)]);
    }

    /// A miss-then-arrival straggler catches up: reports for both the
    /// missed epoch and the current one arrive in the same barrier —
    /// the newest wins and the node is healthy again.
    #[test]
    fn catching_up_straggler_is_healthy() {
        let mut m = HealthMonitor::new((0..2).map(NodeId), 3);
        let miss: BTreeMap<NodeId, u64> = [(NodeId(0), 1)].into_iter().collect();
        m.observe_reports(1, &miss);
        assert_eq!(m.state(NodeId(1)), HealthState::Suspected);
        // Barrier 2 hears both the late epoch-1 report and the
        // current epoch-2 one (the caller keeps the max).
        let caught_up: BTreeMap<NodeId, u64> =
            [(NodeId(0), 2), (NodeId(1), 2)].into_iter().collect();
        m.observe_reports(2, &caught_up);
        assert_eq!(m.state(NodeId(1)), HealthState::Healthy);
        assert_eq!(m.consecutive_misses(NodeId(1)), 0);
    }

    #[test]
    fn repair_and_loss_accounting() {
        let mut m = HealthMonitor::new((0..2).map(NodeId), 2);
        let mut down = all(2);
        down.remove(&NodeId(1));
        m.observe(5, &down);
        m.observe(6, &down);
        assert_eq!(m.state(NodeId(1)), HealthState::Dead);
        m.add_values_lost(NodeId(1), 3);
        m.mark_repaired(NodeId(1), 7);
        let r = m.report(7);
        assert_eq!(r.stats[&NodeId(1)].mttr_epochs, 2);
        assert_eq!(r.stats[&NodeId(1)].values_lost, 3);
        assert_eq!(r.total_repaired(), 1);
        assert_eq!(r.total_values_lost(), 3);
    }

    #[test]
    fn report_serde_roundtrip() {
        let mut m = HealthMonitor::new((0..3).map(NodeId), 2);
        let mut down = all(3);
        down.remove(&NodeId(2));
        m.observe(1, &down);
        m.observe(2, &down);
        let report = m.report(2);
        let v = serde::Serialize::serialize(&report);
        let back: HealthReport = serde::Deserialize::deserialize(&v).unwrap();
        assert_eq!(back, report);
        let state = HealthState::Suspected;
        let v = serde::Serialize::serialize(&state);
        let back: HealthState = serde::Deserialize::deserialize(&v).unwrap();
        assert_eq!(back, state);
    }
}
