//! Token-bucket capacity emulation.
//!
//! On the BlueGene testbed the per-node monitoring budget is real CPU
//! headroom; in the threaded runtime we emulate it with a token bucket
//! refilled once per epoch with the node's capacity, from which every
//! send and receive draws its `C + a·x` cost.

use serde::{Deserialize, Serialize};

/// A per-epoch token bucket.
///
/// # Examples
///
/// ```
/// use remo_runtime::throttle::TokenBucket;
/// let mut b = TokenBucket::new(10.0);
/// assert!(b.try_consume(7.0));
/// assert!(!b.try_consume(4.0), "only 3 left");
/// b.refill();
/// assert!(b.try_consume(4.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TokenBucket {
    capacity: f64,
    available: f64,
}

impl TokenBucket {
    /// Creates a bucket holding `capacity` tokens per epoch, initially
    /// full.
    pub fn new(capacity: f64) -> Self {
        TokenBucket {
            capacity,
            available: capacity,
        }
    }

    /// Tokens remaining this epoch.
    pub fn available(&self) -> f64 {
        self.available
    }

    /// The per-epoch capacity.
    pub fn capacity(&self) -> f64 {
        self.capacity
    }

    /// Consumes `cost` tokens if available; returns whether it did.
    /// A tiny epsilon absorbs float rounding.
    pub fn try_consume(&mut self, cost: f64) -> bool {
        if cost <= self.available + 1e-9 {
            self.available -= cost;
            true
        } else {
            false
        }
    }

    /// Deducts `cost` unconditionally (used for one-shot control
    /// charges that may push the bucket negative, eating into the next
    /// epoch).
    pub fn charge(&mut self, cost: f64) {
        self.available -= cost;
    }

    /// Starts a new epoch: availability resets to capacity plus any
    /// overdraft carried from unconditional charges (never exceeding
    /// capacity).
    pub fn refill(&mut self) {
        self.available = (self.available.min(0.0) + self.capacity).min(self.capacity);
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;

    #[test]
    fn consume_within_capacity() {
        let mut b = TokenBucket::new(5.0);
        assert!(b.try_consume(5.0));
        assert!(!b.try_consume(0.1));
    }

    #[test]
    fn refill_resets() {
        let mut b = TokenBucket::new(5.0);
        b.try_consume(5.0);
        b.refill();
        assert_eq!(b.available(), 5.0);
    }

    #[test]
    fn overdraft_carries_into_next_epoch() {
        let mut b = TokenBucket::new(5.0);
        b.charge(8.0); // 3 tokens of debt
        b.refill();
        assert!((b.available() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn unused_tokens_do_not_accumulate() {
        let mut b = TokenBucket::new(5.0);
        b.refill();
        b.refill();
        assert_eq!(b.available(), 5.0);
    }
}
