//! Length-prefixed stream framing for the distributed runtime.
//!
//! TCP is a byte stream: a reader may see half an envelope, three
//! envelopes glued together, or one byte at a time. This module turns
//! that stream back into discrete frames without ever trusting the
//! peer: a declared length is bounded by [`MAX_FRAME_LEN`] *before*
//! any allocation, short envelopes are rejected, and malformed input
//! yields a structured [`FrameError`] — never a panic (the framing
//! fuzz suite in `proto_fuzz.rs` holds the decoder to that).
//!
//! Envelope layout (all integers big-endian):
//!
//! ```text
//! [len u32][dest u32][chan u8][sent_epoch u64][payload ...]
//! ```
//!
//! `len` counts everything after itself. `dest` is a node id, or
//! [`DEST_COLLECTOR`] for the collector service (the hub-router
//! forwards node→node tree traffic by this tag). `chan` selects the
//! payload codec: [`CHAN_DATA`] carries a [`crate::proto`]
//! `WireMessage`, [`CHAN_CTRL`] a [`crate::ctrl`] control message.
//! `sent_epoch` is the sender's epoch at transmission time, preserved
//! so the collector's staleness accounting matches the in-memory
//! transports.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::error::Error as StdError;
use std::fmt;

/// Envelope header bytes counted by `len`: dest (4) + chan (1) +
/// sent_epoch (8).
pub const ENVELOPE_HEADER_LEN: usize = 13;
/// Upper bound on a declared frame length — a hostile or corrupt
/// length prefix must not drive allocation. 1 MiB comfortably holds
/// the largest planned monitoring message (tens of thousands of
/// readings) while capping damage from garbage.
pub const MAX_FRAME_LEN: usize = 1 << 20;
/// `dest` tag addressing the collector service itself.
pub const DEST_COLLECTOR: u32 = u32::MAX;
/// Channel carrying `proto::WireMessage` payloads.
pub const CHAN_DATA: u8 = 0;
/// Channel carrying `ctrl::CtrlMsg` payloads.
pub const CHAN_CTRL: u8 = 1;

/// One framed message pulled off a stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope {
    /// Destination: a node id, or [`DEST_COLLECTOR`].
    pub dest: u32,
    /// Payload channel ([`CHAN_DATA`] or [`CHAN_CTRL`]).
    pub chan: u8,
    /// Sender's epoch at transmission time.
    pub sent_epoch: u64,
    /// Channel-specific payload bytes.
    pub payload: Bytes,
}

impl Envelope {
    /// Frames `payload` for the wire.
    pub fn encode(&self) -> Bytes {
        let len = ENVELOPE_HEADER_LEN + self.payload.len();
        let mut buf = BytesMut::with_capacity(4 + len);
        buf.put_u32(len as u32);
        buf.put_u32(self.dest);
        buf.put_u8(self.chan);
        buf.put_u64(self.sent_epoch);
        buf.extend_from_slice(&self.payload);
        buf.freeze()
    }
}

/// Stream decoding failure. After an error the stream is
/// unrecoverable (framing sync is lost); the connection should be
/// dropped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// Declared length exceeds [`MAX_FRAME_LEN`] — hostile or corrupt.
    TooLong(u32),
    /// Declared length cannot even hold the envelope header.
    TooShort(u32),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::TooLong(n) => {
                write!(f, "declared frame length {n} exceeds cap {MAX_FRAME_LEN}")
            }
            FrameError::TooShort(n) => {
                write!(
                    f,
                    "declared frame length {n} below envelope header {ENVELOPE_HEADER_LEN}"
                )
            }
        }
    }
}

impl StdError for FrameError {}

/// Incremental decoder: feed it arbitrary byte chunks, pull complete
/// envelopes out. Tolerates any segmentation the network produces.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: BytesMut,
}

impl FrameDecoder {
    /// An empty decoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends raw bytes read from the stream.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed as envelopes.
    pub fn pending(&self) -> usize {
        self.buf.len()
    }

    /// Pulls the next complete envelope, `Ok(None)` if more bytes are
    /// needed, or an error if the peer declared a hostile length.
    pub fn try_next(&mut self) -> Result<Option<Envelope>, FrameError> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let declared = u32::from_be_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]]);
        let len = declared as usize;
        // Validate the length *before* waiting for (or allocating) the
        // body: a hostile 4 GiB prefix must fail now, not buffer
        // forever.
        if len > MAX_FRAME_LEN {
            return Err(FrameError::TooLong(declared));
        }
        if len < ENVELOPE_HEADER_LEN {
            return Err(FrameError::TooShort(declared));
        }
        if self.buf.len() < 4 + len {
            return Ok(None);
        }
        self.buf.advance(4);
        let mut frame = self.buf.split_to(len);
        let dest = frame.get_u32();
        let chan = frame.get_u8();
        let sent_epoch = frame.get_u64();
        Ok(Some(Envelope {
            dest,
            chan,
            sent_epoch,
            payload: frame.freeze(),
        }))
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;

    fn env(dest: u32, chan: u8, epoch: u64, payload: &[u8]) -> Envelope {
        Envelope {
            dest,
            chan,
            sent_epoch: epoch,
            payload: Bytes::copy_from_slice(payload),
        }
    }

    #[test]
    fn roundtrips_through_any_segmentation() {
        let envelopes = vec![
            env(DEST_COLLECTOR, CHAN_DATA, 7, b"hello"),
            env(3, CHAN_CTRL, 8, b""),
            env(0, CHAN_DATA, 9, &[0xFF; 300]),
        ];
        let mut wire = Vec::new();
        for e in &envelopes {
            wire.extend_from_slice(&e.encode());
        }
        // Byte-at-a-time is the worst case segmentation.
        let mut dec = FrameDecoder::new();
        let mut out = Vec::new();
        for b in &wire {
            dec.push(std::slice::from_ref(b));
            while let Some(e) = dec.try_next().unwrap() {
                out.push(e);
            }
        }
        assert_eq!(out, envelopes);
        assert_eq!(dec.pending(), 0);
    }

    #[test]
    fn hostile_length_is_rejected_before_buffering() {
        let mut dec = FrameDecoder::new();
        dec.push(&u32::MAX.to_be_bytes());
        assert_eq!(dec.try_next(), Err(FrameError::TooLong(u32::MAX)));
    }

    #[test]
    fn undersized_length_is_rejected() {
        let mut dec = FrameDecoder::new();
        dec.push(&4u32.to_be_bytes());
        dec.push(&[0, 0, 0, 0]);
        assert_eq!(dec.try_next(), Err(FrameError::TooShort(4)));
    }

    #[test]
    fn partial_header_waits_for_more() {
        let mut dec = FrameDecoder::new();
        dec.push(&[0, 0]);
        assert_eq!(dec.try_next(), Ok(None));
    }
}
