//! A small library of [`Sampler`]s for deployments: the functions
//! agents call to observe local attribute values.
//!
//! In a real integration the sampler wraps the application's own
//! instrumentation (paper §2.1: "we assume values of attributes are
//! made available by application-specific tools"); these constructors
//! cover tests, demos, and experiments.

use crate::agent::Sampler;
use remo_core::{AttrId, NodeId};
use std::collections::HashMap;
use std::sync::Arc;

/// Every pair reads the same constant.
pub fn constant(value: f64) -> Sampler {
    Arc::new(move |_n, _a, _e| value)
}

/// A deterministic but pair- and epoch-dependent value, handy for
/// integrity checks (the collector can recompute what each node must
/// have sampled).
pub fn deterministic() -> Sampler {
    Arc::new(|n: NodeId, a: AttrId, e: u64| {
        (n.0 as f64) * 1_000.0 + (a.0 as f64) * 10.0 + (e % 10) as f64
    })
}

/// Linear ramp per pair: `base + slope·epoch`.
pub fn ramp(base: f64, slope: f64) -> Sampler {
    Arc::new(move |_n, _a, e| base + slope * e as f64)
}

/// A seeded pseudo-random walk per pair, bounded to `[lo, hi]` —
/// stateless (value derived from a hash of `(node, attr, epoch)`), so
/// agents on different threads agree with any replayer.
pub fn bounded_noise(lo: f64, hi: f64, seed: u64) -> Sampler {
    Arc::new(move |n: NodeId, a: AttrId, e: u64| {
        // SplitMix64 over the tuple.
        let mut z = seed
            .wrapping_add((n.0 as u64) << 40)
            .wrapping_add((a.0 as u64) << 20)
            .wrapping_add(e)
            .wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let unit = (z >> 11) as f64 / (1u64 << 53) as f64;
        lo + unit * (hi - lo)
    })
}

/// Fixed per-pair values from a table; pairs not in the table read
/// `default`. Useful for injecting exact anomalies in tests.
pub fn table(values: HashMap<(NodeId, AttrId), f64>, default: f64) -> Sampler {
    Arc::new(move |n, a, _e| values.get(&(n, a)).copied().unwrap_or(default))
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;

    #[test]
    fn constant_is_constant() {
        let s = constant(5.5);
        assert_eq!(s(NodeId(1), AttrId(2), 3), 5.5);
        assert_eq!(s(NodeId(9), AttrId(0), 99), 5.5);
    }

    #[test]
    fn deterministic_distinguishes_pairs() {
        let s = deterministic();
        assert_ne!(s(NodeId(1), AttrId(0), 0), s(NodeId(2), AttrId(0), 0));
        assert_ne!(s(NodeId(1), AttrId(0), 0), s(NodeId(1), AttrId(1), 0));
        assert_eq!(s(NodeId(1), AttrId(0), 3), s(NodeId(1), AttrId(0), 13));
    }

    #[test]
    fn ramp_grows_linearly() {
        let s = ramp(10.0, 2.0);
        assert_eq!(s(NodeId(0), AttrId(0), 0), 10.0);
        assert_eq!(s(NodeId(0), AttrId(0), 5), 20.0);
    }

    #[test]
    fn bounded_noise_is_bounded_and_reproducible() {
        let s1 = bounded_noise(10.0, 20.0, 42);
        let s2 = bounded_noise(10.0, 20.0, 42);
        let mut distinct = std::collections::BTreeSet::new();
        for e in 0..200 {
            let v = s1(NodeId(3), AttrId(1), e);
            assert!((10.0..=20.0).contains(&v));
            assert_eq!(v, s2(NodeId(3), AttrId(1), e), "same seed, same stream");
            distinct.insert((v * 1e6) as i64);
        }
        assert!(distinct.len() > 150, "stream should not be degenerate");
    }

    #[test]
    fn table_overrides_default() {
        let mut t = HashMap::new();
        t.insert((NodeId(1), AttrId(1)), 99.0);
        let s = table(t, 1.0);
        assert_eq!(s(NodeId(1), AttrId(1), 0), 99.0);
        assert_eq!(s(NodeId(1), AttrId(2), 0), 1.0);
    }
}
