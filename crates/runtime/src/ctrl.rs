//! Control-plane protocol for the distributed runtime.
//!
//! The data plane ([`crate::proto`]) carries monitoring readings; this
//! module carries everything else a `remo-node` process and the
//! `remo-collector` service say to each other: registration
//! ([`CtrlMsg::Hello`]/[`CtrlMsg::Welcome`]), tree assignment
//! ([`CtrlMsg::Assign`]), lockstep epoch control ([`CtrlMsg::Tick`] /
//! [`CtrlMsg::Report`]), graceful degradation ([`CtrlMsg::Degrade`]),
//! and shutdown.
//!
//! Like the data plane, encoding is explicit, versioned, and
//! hand-rolled: decode never panics on hostile bytes, it returns a
//! structured [`CtrlError`]. The codec has its own magic marker so a
//! control frame misrouted into a data decoder (or vice versa) is
//! rejected immediately instead of being misparsed.

use crate::agent::{LocalAttr, Route, TickReport, TreeAssignment};
use crate::transport::NetConfig;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use remo_core::{Aggregation, AttrId, NodeId};
use std::collections::BTreeMap;
use std::error::Error as StdError;
use std::fmt;

/// Control-protocol magic marker ("RC").
pub const CTRL_MAGIC: u16 = 0x5243;
/// Control-protocol version.
pub const CTRL_VERSION: u8 = 1;
/// Upper bound on any declared collection length inside a control
/// frame — a hostile count must not drive allocation.
const MAX_ITEMS: u32 = 1 << 20;

/// `parent` tag meaning "route to the collector".
const PARENT_COLLECTOR: u32 = u32::MAX;

/// A control-plane message.
#[derive(Debug, Clone, PartialEq)]
pub enum CtrlMsg {
    /// Node → collector, first frame on a connection. A fresh process
    /// sends incarnation 0 and is assigned one; a reconnecting process
    /// re-sends the incarnation it already holds.
    Hello {
        /// The registering node.
        node: NodeId,
        /// 0 = fresh start (assign me one); nonzero = reconnect.
        incarnation: u32,
    },
    /// Collector → node, the registration answer: everything the node
    /// needs to run its agent loop.
    Welcome {
        /// The node's capacity budget (cost units per epoch).
        capacity: f64,
        /// Cost model: fixed per-message overhead `C`.
        per_message: f64,
        /// Cost model: per-value cost `a`.
        per_value: f64,
        /// ARQ + backpressure tuning, shared deployment-wide.
        net: NetConfig,
        /// The incarnation this process must stamp on its data frames.
        incarnation: u32,
        /// Epoch the deployment is currently at (0 before first tick).
        epoch: u64,
    },
    /// Collector → node: replace the node's tree assignments (sent at
    /// registration and again whenever plan repair changes them).
    Assign {
        /// The node's complete new assignment set.
        assignments: Vec<TreeAssignment>,
    },
    /// Collector → node: start lockstep epoch `epoch`.
    Tick {
        /// Epoch to run.
        epoch: u64,
    },
    /// Node → collector: the barrier report for one epoch.
    Report {
        /// The agent's tick report.
        report: TickReport,
    },
    /// Collector → node: set the effective reporting-interval
    /// multiplier (graceful degradation under collector overload).
    Degrade {
        /// New multiplier (1 = no degradation).
        factor: u64,
    },
    /// Collector → node: stop cleanly.
    Shutdown,
}

/// Control-frame decoding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CtrlError {
    /// Buffer ends before the fixed magic/version/tag header.
    Truncated,
    /// Buffer ends inside the payload of a recognized message kind.
    TruncatedPayload {
        /// The wire tag of the kind whose payload was cut short.
        kind: u8,
    },
    /// A recognized message kind decoded cleanly but left unread bytes
    /// — either a corrupt frame or a future protocol revision that
    /// widened the payload.
    TrailingBytes {
        /// The wire tag of the kind that left bytes behind.
        kind: u8,
        /// How many bytes were left unread.
        extra: usize,
    },
    /// Magic marker mismatch — not a control frame.
    BadMagic(u16),
    /// Unsupported control-protocol version.
    BadVersion(u8),
    /// Unknown (likely future) message kind tag.
    UnknownKind(u8),
    /// A declared collection length is hostile (exceeds `MAX_ITEMS`).
    BadCount(u32),
    /// Unknown aggregation tag inside an assignment.
    BadAggregation(u8),
}

impl fmt::Display for CtrlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CtrlError::Truncated => write!(f, "control frame truncated before header"),
            CtrlError::TruncatedPayload { kind } => {
                write!(f, "control payload truncated (kind tag {kind})")
            }
            CtrlError::TrailingBytes { kind, extra } => {
                write!(f, "{extra} trailing byte(s) after control kind tag {kind}")
            }
            CtrlError::BadMagic(m) => write!(f, "bad control magic {m:#06x}"),
            CtrlError::BadVersion(v) => write!(f, "unsupported control version {v}"),
            CtrlError::UnknownKind(t) => write!(f, "unknown control kind tag {t}"),
            CtrlError::BadCount(n) => write!(f, "hostile collection length {n}"),
            CtrlError::BadAggregation(a) => write!(f, "unknown aggregation tag {a}"),
        }
    }
}

impl StdError for CtrlError {}

impl CtrlMsg {
    fn tag(&self) -> u8 {
        match self {
            CtrlMsg::Hello { .. } => 0,
            CtrlMsg::Welcome { .. } => 1,
            CtrlMsg::Assign { .. } => 2,
            CtrlMsg::Tick { .. } => 3,
            CtrlMsg::Report { .. } => 4,
            CtrlMsg::Degrade { .. } => 5,
            CtrlMsg::Shutdown => 6,
        }
    }

    /// Encodes the message, magic and version first.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(64);
        buf.put_u16(CTRL_MAGIC);
        buf.put_u8(CTRL_VERSION);
        buf.put_u8(self.tag());
        match self {
            CtrlMsg::Hello { node, incarnation } => {
                buf.put_u32(node.0);
                buf.put_u32(*incarnation);
            }
            CtrlMsg::Welcome {
                capacity,
                per_message,
                per_value,
                net,
                incarnation,
                epoch,
            } => {
                buf.put_f64(*capacity);
                buf.put_f64(*per_message);
                buf.put_f64(*per_value);
                buf.put_u64(net.base_rto);
                buf.put_u32(net.max_attempts);
                buf.put_u64(net.ingress_capacity as u64);
                buf.put_f64(net.high_watermark);
                buf.put_f64(net.low_watermark);
                buf.put_u32(net.max_degrade_level);
                buf.put_u8(u8::from(net.record_deliveries));
                buf.put_u32(*incarnation);
                buf.put_u64(*epoch);
            }
            CtrlMsg::Assign { assignments } => {
                buf.put_u32(assignments.len() as u32);
                for a in assignments {
                    encode_assignment(&mut buf, a);
                }
            }
            CtrlMsg::Tick { epoch } => buf.put_u64(*epoch),
            CtrlMsg::Report { report } => {
                buf.put_u32(report.node.0);
                buf.put_u64(report.epoch);
                buf.put_u32(report.sent_messages);
                buf.put_u32(report.sent_readings);
                buf.put_u32(report.dropped_messages);
                buf.put_u32(report.dropped_readings);
                buf.put_f64(report.volume);
                buf.put_u32(report.retransmits);
                buf.put_u32(report.dup_ignored);
                buf.put_u32(report.abandoned);
            }
            CtrlMsg::Degrade { factor } => buf.put_u64(*factor),
            CtrlMsg::Shutdown => {}
        }
        buf.freeze()
    }

    /// The abstract protocol kind of this frame — the alphabet the
    /// `remo-proto` spec tables are written over. Stepping the shared
    /// spec machines starts here.
    pub fn kind(&self) -> remo_proto::CtrlKind {
        match self {
            CtrlMsg::Hello { .. } => remo_proto::CtrlKind::Hello,
            CtrlMsg::Welcome { .. } => remo_proto::CtrlKind::Welcome,
            CtrlMsg::Assign { .. } => remo_proto::CtrlKind::Assign,
            CtrlMsg::Tick { .. } => remo_proto::CtrlKind::Tick,
            CtrlMsg::Report { .. } => remo_proto::CtrlKind::Report,
            CtrlMsg::Degrade { .. } => remo_proto::CtrlKind::Degrade,
            CtrlMsg::Shutdown => remo_proto::CtrlKind::Shutdown,
        }
    }

    /// Decodes a control frame. Never panics: any malformed, hostile,
    /// or truncated input yields a structured [`CtrlError`] — unknown
    /// (future) kinds are [`CtrlError::UnknownKind`], a payload cut
    /// short inside a known kind is [`CtrlError::TruncatedPayload`],
    /// and unread bytes after a clean payload decode are
    /// [`CtrlError::TrailingBytes`].
    pub fn decode(mut buf: Bytes) -> Result<Self, CtrlError> {
        if buf.remaining() < 4 {
            return Err(CtrlError::Truncated);
        }
        let magic = buf.get_u16();
        if magic != CTRL_MAGIC {
            return Err(CtrlError::BadMagic(magic));
        }
        let version = buf.get_u8();
        if version != CTRL_VERSION {
            return Err(CtrlError::BadVersion(version));
        }
        let tag = buf.get_u8();
        let msg = decode_payload(tag, &mut buf).map_err(|e| match e {
            // Attribute payload truncation to the kind being decoded;
            // bare `Truncated` is reserved for the fixed header.
            CtrlError::Truncated => CtrlError::TruncatedPayload { kind: tag },
            other => other,
        })?;
        if buf.remaining() > 0 {
            return Err(CtrlError::TrailingBytes {
                kind: tag,
                extra: buf.remaining(),
            });
        }
        Ok(msg)
    }
}

/// Decodes the payload of a control frame whose header named `tag`.
fn decode_payload(tag: u8, buf: &mut Bytes) -> Result<CtrlMsg, CtrlError> {
    match tag {
        0 => Ok(CtrlMsg::Hello {
            node: NodeId(get_u32(buf)?),
            incarnation: get_u32(buf)?,
        }),
        1 => Ok(CtrlMsg::Welcome {
            capacity: get_f64(buf)?,
            per_message: get_f64(buf)?,
            per_value: get_f64(buf)?,
            net: NetConfig {
                base_rto: get_u64(buf)?,
                max_attempts: get_u32(buf)?,
                ingress_capacity: get_u64(buf)? as usize,
                high_watermark: get_f64(buf)?,
                low_watermark: get_f64(buf)?,
                max_degrade_level: get_u32(buf)?,
                record_deliveries: get_u8(buf)? != 0,
            },
            incarnation: get_u32(buf)?,
            epoch: get_u64(buf)?,
        }),
        2 => {
            let count = get_u32(buf)?;
            if count > MAX_ITEMS {
                return Err(CtrlError::BadCount(count));
            }
            let mut assignments = Vec::new();
            for _ in 0..count {
                assignments.push(decode_assignment(buf)?);
            }
            Ok(CtrlMsg::Assign { assignments })
        }
        3 => Ok(CtrlMsg::Tick {
            epoch: get_u64(buf)?,
        }),
        4 => Ok(CtrlMsg::Report {
            report: TickReport {
                node: NodeId(get_u32(buf)?),
                epoch: get_u64(buf)?,
                sent_messages: get_u32(buf)?,
                sent_readings: get_u32(buf)?,
                dropped_messages: get_u32(buf)?,
                dropped_readings: get_u32(buf)?,
                volume: get_f64(buf)?,
                retransmits: get_u32(buf)?,
                dup_ignored: get_u32(buf)?,
                abandoned: get_u32(buf)?,
            },
        }),
        5 => Ok(CtrlMsg::Degrade {
            factor: get_u64(buf)?,
        }),
        6 => Ok(CtrlMsg::Shutdown),
        other => Err(CtrlError::UnknownKind(other)),
    }
}

fn encode_aggregation(buf: &mut BytesMut, agg: Aggregation) {
    match agg {
        Aggregation::Holistic => {
            buf.put_u8(0);
            buf.put_u32(0);
        }
        Aggregation::Sum => {
            buf.put_u8(1);
            buf.put_u32(0);
        }
        Aggregation::Max => {
            buf.put_u8(2);
            buf.put_u32(0);
        }
        Aggregation::Top(k) => {
            buf.put_u8(3);
            buf.put_u32(k);
        }
        Aggregation::Distinct => {
            buf.put_u8(4);
            buf.put_u32(0);
        }
    }
}

fn decode_aggregation(buf: &mut Bytes) -> Result<Aggregation, CtrlError> {
    let tag = get_u8(buf)?;
    let arg = get_u32(buf)?;
    match tag {
        0 => Ok(Aggregation::Holistic),
        1 => Ok(Aggregation::Sum),
        2 => Ok(Aggregation::Max),
        3 => Ok(Aggregation::Top(arg)),
        4 => Ok(Aggregation::Distinct),
        other => Err(CtrlError::BadAggregation(other)),
    }
}

fn encode_assignment(buf: &mut BytesMut, a: &TreeAssignment) {
    buf.put_u32(a.tree);
    buf.put_u32(match a.parent {
        Route::Collector => PARENT_COLLECTOR,
        Route::Node(n) => n.0,
    });
    buf.put_u32(a.local.len() as u32);
    for la in &a.local {
        buf.put_u32(la.attr.0);
        buf.put_u64(la.period);
        encode_aggregation(buf, la.aggregation);
    }
    buf.put_u32(a.relay_aggregation.len() as u32);
    for (&attr, &agg) in &a.relay_aggregation {
        buf.put_u32(attr.0);
        encode_aggregation(buf, agg);
    }
}

fn decode_assignment(buf: &mut Bytes) -> Result<TreeAssignment, CtrlError> {
    let tree = get_u32(buf)?;
    let parent = match get_u32(buf)? {
        PARENT_COLLECTOR => Route::Collector,
        n => Route::Node(NodeId(n)),
    };
    let local_count = get_u32(buf)?;
    if local_count > MAX_ITEMS {
        return Err(CtrlError::BadCount(local_count));
    }
    let mut local = Vec::new();
    for _ in 0..local_count {
        local.push(LocalAttr {
            attr: AttrId(get_u32(buf)?),
            period: get_u64(buf)?,
            aggregation: decode_aggregation(buf)?,
        });
    }
    let relay_count = get_u32(buf)?;
    if relay_count > MAX_ITEMS {
        return Err(CtrlError::BadCount(relay_count));
    }
    let mut relay_aggregation = BTreeMap::new();
    for _ in 0..relay_count {
        let attr = AttrId(get_u32(buf)?);
        relay_aggregation.insert(attr, decode_aggregation(buf)?);
    }
    Ok(TreeAssignment {
        tree,
        parent,
        local,
        relay_aggregation,
    })
}

fn get_u8(buf: &mut Bytes) -> Result<u8, CtrlError> {
    if buf.remaining() < 1 {
        return Err(CtrlError::Truncated);
    }
    Ok(buf.get_u8())
}

fn get_u32(buf: &mut Bytes) -> Result<u32, CtrlError> {
    if buf.remaining() < 4 {
        return Err(CtrlError::Truncated);
    }
    Ok(buf.get_u32())
}

fn get_u64(buf: &mut Bytes) -> Result<u64, CtrlError> {
    if buf.remaining() < 8 {
        return Err(CtrlError::Truncated);
    }
    Ok(buf.get_u64())
}

fn get_f64(buf: &mut Bytes) -> Result<f64, CtrlError> {
    if buf.remaining() < 8 {
        return Err(CtrlError::Truncated);
    }
    Ok(buf.get_f64())
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;

    fn sample_assignment() -> TreeAssignment {
        TreeAssignment {
            tree: 2,
            parent: Route::Node(NodeId(7)),
            local: vec![
                LocalAttr {
                    attr: AttrId(0),
                    period: 1,
                    aggregation: Aggregation::Holistic,
                },
                LocalAttr {
                    attr: AttrId(3),
                    period: 4,
                    aggregation: Aggregation::Top(5),
                },
            ],
            relay_aggregation: [(AttrId(0), Aggregation::Sum), (AttrId(3), Aggregation::Max)]
                .into_iter()
                .collect(),
        }
    }

    #[test]
    fn every_variant_roundtrips() {
        let msgs = vec![
            CtrlMsg::Hello {
                node: NodeId(4),
                incarnation: 0,
            },
            CtrlMsg::Welcome {
                capacity: 100.0,
                per_message: 2.0,
                per_value: 1.0,
                net: NetConfig::default(),
                incarnation: 3,
                epoch: 17,
            },
            CtrlMsg::Assign {
                assignments: vec![
                    sample_assignment(),
                    TreeAssignment {
                        tree: 0,
                        parent: Route::Collector,
                        local: vec![],
                        relay_aggregation: BTreeMap::new(),
                    },
                ],
            },
            CtrlMsg::Tick { epoch: 9 },
            CtrlMsg::Report {
                report: TickReport {
                    node: NodeId(1),
                    epoch: 9,
                    sent_messages: 2,
                    sent_readings: 5,
                    dropped_messages: 1,
                    dropped_readings: 3,
                    volume: 12.5,
                    retransmits: 4,
                    dup_ignored: 2,
                    abandoned: 1,
                },
            },
            CtrlMsg::Degrade { factor: 8 },
            CtrlMsg::Shutdown,
        ];
        for msg in msgs {
            let decoded = CtrlMsg::decode(msg.encode()).unwrap();
            assert_eq!(decoded, msg);
        }
    }

    #[test]
    fn rejects_wrong_magic_and_version() {
        let mut bytes = CtrlMsg::Shutdown.encode().to_vec();
        bytes[0] ^= 0xFF;
        assert!(matches!(
            CtrlMsg::decode(Bytes::from(bytes.clone())),
            Err(CtrlError::BadMagic(_))
        ));
        let mut bytes = CtrlMsg::Shutdown.encode().to_vec();
        bytes[2] = 99;
        assert_eq!(
            CtrlMsg::decode(Bytes::from(bytes)),
            Err(CtrlError::BadVersion(99))
        );
    }

    #[test]
    fn rejects_hostile_assignment_count_without_allocating() {
        let mut buf = BytesMut::new();
        buf.put_u16(CTRL_MAGIC);
        buf.put_u8(CTRL_VERSION);
        buf.put_u8(2); // Assign
        buf.put_u32(u32::MAX); // hostile count
        assert_eq!(
            CtrlMsg::decode(buf.freeze()),
            Err(CtrlError::BadCount(u32::MAX))
        );
    }

    #[test]
    fn truncated_frames_error_cleanly() {
        for msg in [
            CtrlMsg::Hello {
                node: NodeId(1),
                incarnation: 2,
            },
            CtrlMsg::Assign {
                assignments: vec![sample_assignment()],
            },
            CtrlMsg::Tick { epoch: 3 },
        ] {
            let full = msg.encode();
            for cut in 0..full.len() {
                let r = CtrlMsg::decode(full.slice(..cut));
                assert!(r.is_err(), "truncation at {cut} must error, got {r:?}");
            }
        }
    }
}
