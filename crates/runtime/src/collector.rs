//! The collector's ingest core — shared by the in-process
//! [`Deployment`](crate::Deployment) and the distributed
//! `remo-collector` service.
//!
//! [`CollectorCore`] owns everything the paper's central collector
//! does with arriving traffic: the per-epoch token bucket (collector
//! capacity), receive-side dedup and acking on unreliable transports,
//! the bounded ingress queue with lowest-frequency-weight shedding,
//! per-value budgeted processing, the backpressure degrade ladder, and
//! the freshest-value snapshot store. Extracting it from the
//! deployment lets the TCP collector service reuse the exact same
//! capacity-enforcement arithmetic the in-memory runtime pins in its
//! perfect-path equivalence test.

use crate::proto::{FrameKind, WireMessage, WireReading};
use crate::throttle::TokenBucket;
use crate::transport::{Endpoint, IncarnationTracker, NetConfig, Transport};
use bytes::Bytes;
use remo_core::{AttrCatalog, AttrId, CostModel, NodeId};
use std::collections::{BTreeMap, VecDeque};

/// A value stored at the collector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Observed {
    /// Reported value.
    pub value: f64,
    /// Epoch the sample was produced.
    pub produced: u64,
    /// Epoch it reached the collector.
    pub received: u64,
    /// Samples folded in (aggregates).
    pub contributors: u32,
}

/// Aggregate statistics of one epoch across the deployment.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EpochReport {
    /// Epoch covered.
    pub epoch: u64,
    /// Values recorded at the collector.
    pub delivered_values: u64,
    /// Messages dropped anywhere.
    pub dropped_messages: u64,
    /// Readings lost anywhere.
    pub dropped_readings: u64,
    /// Monitoring traffic volume in cost units.
    pub volume: f64,
    /// Nodes that entered the suspected state this epoch.
    pub suspected: u64,
    /// Nodes confirmed dead this epoch.
    pub confirmed_dead: u64,
    /// Confirmed failures the plan was repaired around this epoch.
    pub repaired: u64,
    /// Previously dead nodes that reported again this epoch.
    pub recovered: u64,
    /// Readings unhealthy nodes were scheduled to produce but could
    /// not this epoch.
    pub values_lost: u64,
    /// Targeted reconfiguration messages sent by plan repair.
    pub reconfigure_messages: u64,
    /// Cumulative tree-cache counters of the self-healing planner, if
    /// one is attached: repairs that warm-start from memoized builds
    /// show up as hits here.
    pub planner_cache: Option<remo_core::CacheStats>,
    /// ARQ retransmissions sent this epoch (zero on a reliable
    /// transport).
    pub retransmit_messages: u64,
    /// Duplicate data frames discarded by receive-side dedup.
    pub duplicate_messages_ignored: u64,
    /// Frames abandoned after the retry budget ran out.
    pub abandoned_messages: u64,
    /// Readings shed by the collector's bounded ingress queue.
    pub shed_readings: u64,
    /// Degrade-level transitions signalled to the agents this epoch.
    pub backpressure_signals: u64,
    /// Collector ingress queue depth (readings) after this epoch.
    pub ingress_depth: u64,
    /// Effective reporting-interval multiplier in force after this
    /// epoch (1 = no degradation). Zero only in unticked defaults.
    pub degrade_factor: u64,
}

/// One reading as it was accepted into the collector store (recorded
/// only when [`NetConfig::record_deliveries`] is set; a test and
/// diagnosis aid).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeliveredReading {
    /// Source node.
    pub node: NodeId,
    /// Attribute.
    pub attr: AttrId,
    /// Reported value.
    pub value: f64,
    /// Epoch the sample was produced.
    pub produced: u64,
    /// Samples folded in.
    pub contributors: u32,
    /// Epoch the collector recorded it.
    pub received: u64,
}

/// The collector's capacity-enforcing ingest state machine.
#[derive(Debug)]
pub struct CollectorCore {
    bucket: TokenBucket,
    cost: CostModel,
    net: NetConfig,
    catalog: AttrCatalog,
    store: BTreeMap<(NodeId, AttrId), Observed>,
    aggregates: BTreeMap<AttrId, Observed>,
    /// Bounded ingress queue: `(reading, sent_epoch)` awaiting budget
    /// (ARQ path only).
    ingress: VecDeque<(WireReading, u64)>,
    /// Receive-side dedup state per root sender, incarnation-scoped
    /// (ARQ path only).
    seen: BTreeMap<NodeId, IncarnationTracker>,
    /// Current backpressure degrade level; the agents' period
    /// multiplier is `2^level`.
    degrade_level: u32,
    /// Every accepted reading, when `net.record_deliveries`.
    delivery_log: Vec<DeliveredReading>,
}

impl CollectorCore {
    /// A collector with `capacity` cost units of per-epoch budget.
    pub fn new(capacity: f64, cost: CostModel, net: NetConfig, catalog: AttrCatalog) -> Self {
        CollectorCore {
            bucket: TokenBucket::new(capacity),
            cost,
            net,
            catalog,
            store: BTreeMap::new(),
            aggregates: BTreeMap::new(),
            ingress: VecDeque::new(),
            seen: BTreeMap::new(),
            degrade_level: 0,
            delivery_log: Vec::new(),
        }
    }

    /// Starts a new collection epoch (refills the token bucket).
    pub fn refill(&mut self) {
        self.bucket.refill();
    }

    /// Intake of one frame on the reliable path: no acks, no dedup, no
    /// queueing — the whole message is processed now or dropped now.
    /// This is the pre-transport behavior, bit for bit — the
    /// perfect-path regression test pins its `EpochReport`s.
    pub fn accept_perfect(&mut self, sent_epoch: u64, frame: Bytes, report: &mut EpochReport) {
        let Ok(msg) = WireMessage::decode(frame) else {
            return;
        };
        let cost = self.cost.message_cost(msg.readings.len() as f64);
        if !self.bucket.try_consume(cost) {
            report.dropped_messages += 1;
            report.dropped_readings += msg.readings.len() as u64;
            return;
        }
        for r in msg.readings {
            self.record(&r, sent_epoch + 1, report);
        }
    }

    /// Intake of one frame on an unreliable transport: ack + dedup,
    /// pay the fixed per-message overhead `C` on arrival, and stage
    /// the readings in the bounded ingress queue for
    /// [`CollectorCore::drain_arq`].
    pub fn accept_arq(
        &mut self,
        epoch: u64,
        sent_epoch: u64,
        frame: Bytes,
        transport: &dyn Transport,
        report: &mut EpochReport,
    ) {
        let Ok(msg) = WireMessage::decode(frame) else {
            return;
        };
        if msg.kind != FrameKind::Data {
            return;
        }
        // Replayed frame: re-ack (the first ack may have been lost)
        // and discard.
        if self
            .seen
            .get(&msg.from)
            .is_some_and(|t| t.contains(msg.incarnation, msg.seq))
        {
            transport.send_ack(
                Endpoint::Collector,
                msg.from,
                msg.incarnation,
                msg.seq,
                epoch,
            );
            report.duplicate_messages_ignored += 1;
            if remo_obs::enabled() {
                remo_obs::counter("remo_net_dedup_dropped_total").inc();
            }
            return;
        }
        transport.send_ack(
            Endpoint::Collector,
            msg.from,
            msg.incarnation,
            msg.seq,
            epoch,
        );
        self.seen
            .entry(msg.from)
            .or_default()
            .insert(msg.incarnation, msg.seq);
        // The fixed per-message overhead C is paid on arrival —
        // parsing a frame costs the collector whether or not its
        // readings are ever processed.
        self.bucket.charge(self.cost.per_message());
        for r in msg.readings {
            self.ingress.push_back((r, sent_epoch));
        }
    }

    /// Sheds the queue down to capacity, processes under the per-value
    /// budget, and runs the backpressure control loop. Returns the new
    /// degrade factor when the level transitioned — the caller fans it
    /// out to the agents (`SetDegrade` in process, a `Degrade` control
    /// frame across sockets).
    pub fn drain_arq(&mut self, epoch: u64, report: &mut EpochReport) -> Option<u64> {
        // Bounded ingress: shed the lowest-frequency-weight readings
        // first (they contribute least to the cost-model's planned
        // load; ties broken oldest-produced first), exactly the
        // degradation order the paper's collector-capacity constraint
        // suggests.
        while self.ingress.len() > self.net.ingress_capacity {
            let victim = self
                .ingress
                .iter()
                .enumerate()
                .min_by(|(_, (a, _)), (_, (b, _))| {
                    let fa = self.catalog.get_or_default(a.attr).frequency();
                    let fb = self.catalog.get_or_default(b.attr).frequency();
                    fa.partial_cmp(&fb)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.produced.cmp(&b.produced))
                })
                .map(|(i, _)| i);
            let Some(i) = victim else { break };
            self.ingress.remove(i);
            report.shed_readings += 1;
            if remo_obs::enabled() {
                remo_obs::counter("remo_collector_shed_readings_total").inc();
            }
        }

        // Process under the per-value budget; what the budget cannot
        // cover stays queued (backpressure) instead of being lost.
        while let Some(&(r, _sent_epoch)) = self.ingress.front() {
            if !self.bucket.try_consume(self.cost.per_value()) {
                break;
            }
            self.ingress.pop_front();
            if remo_obs::enabled() {
                remo_obs::histogram("remo_net_delivery_latency_epochs")
                    .observe((epoch + 1).saturating_sub(r.produced) as f64);
            }
            self.record(&r, epoch + 1, report);
        }

        report.ingress_depth = self.ingress.len() as u64;
        if remo_obs::enabled() {
            remo_obs::gauge("remo_collector_queue_depth").set(self.ingress.len() as f64);
        }

        // Backpressure control loop: widen the agents' effective
        // reporting intervals while the queue stays saturated, relax
        // when it drains. Shedding this epoch counts as saturation
        // even when processing drains the residual queue below the
        // watermark — otherwise a small ingress bound sheds forever
        // without ever engaging degradation.
        let depth = self.ingress.len() as f64;
        let cap = self.net.ingress_capacity as f64;
        let saturated = depth > cap * self.net.high_watermark || report.shed_readings > 0;
        let mut level = self.degrade_level;
        if saturated && level < self.net.max_degrade_level {
            level += 1;
        } else if !saturated && depth < cap * self.net.low_watermark && level > 0 {
            level -= 1;
        }
        let transitioned = level != self.degrade_level;
        if transitioned {
            self.degrade_level = level;
            report.backpressure_signals += 1;
            if remo_obs::enabled() {
                remo_obs::counter("remo_collector_backpressure_transitions_total").inc();
            }
            remo_obs::event!("runtime.backpressure",
                "level" => u64::from(level),
                "queue_depth" => self.ingress.len() as u64);
        }
        report.degrade_factor = NetConfig::degrade_factor_at(self.degrade_level);
        transitioned.then(|| NetConfig::degrade_factor_at(self.degrade_level))
    }

    /// Records one reading into the snapshot store (shared by both
    /// intake paths): a reading only replaces the stored one if it was
    /// produced no earlier, so replays and stragglers never regress
    /// the snapshot.
    pub fn record(&mut self, r: &WireReading, received: u64, report: &mut EpochReport) {
        let observed = Observed {
            value: r.value,
            produced: r.produced,
            received,
            contributors: r.contributors,
        };
        report.delivered_values += r.contributors as u64;
        if self.net.record_deliveries {
            self.delivery_log.push(DeliveredReading {
                node: r.node,
                attr: r.attr,
                value: r.value,
                produced: r.produced,
                contributors: r.contributors,
                received,
            });
        }
        if r.contributors > 1 {
            let slot = self.aggregates.entry(r.attr).or_insert(observed);
            if observed.produced >= slot.produced {
                *slot = observed;
            }
        } else {
            let slot = self.store.entry((r.node, r.attr)).or_insert(observed);
            if observed.produced >= slot.produced {
                *slot = observed;
            }
        }
    }

    /// The snapshot of a pair.
    pub fn observed(&self, node: NodeId, attr: AttrId) -> Option<Observed> {
        self.store.get(&(node, attr)).copied()
    }

    /// The snapshot of an aggregated attribute.
    pub fn observed_aggregate(&self, attr: AttrId) -> Option<Observed> {
        self.aggregates.get(&attr).copied()
    }

    /// Number of distinct pairs ever observed.
    pub fn observed_pairs(&self) -> usize {
        self.store.len()
    }

    /// The full per-pair snapshot store.
    pub fn store(&self) -> &BTreeMap<(NodeId, AttrId), Observed> {
        &self.store
    }

    /// Readings accepted into the store, in order (only populated when
    /// [`NetConfig::record_deliveries`] is set).
    pub fn delivery_log(&self) -> &[DeliveredReading] {
        &self.delivery_log
    }

    /// Current backpressure degrade level.
    pub fn degrade_level(&self) -> u32 {
        self.degrade_level
    }

    /// Effective reporting-interval multiplier currently in force
    /// (1 = no degradation).
    pub fn degrade_factor(&self) -> u64 {
        NetConfig::degrade_factor_at(self.degrade_level)
    }

    /// Current ingress queue depth in readings.
    pub fn ingress_depth(&self) -> usize {
        self.ingress.len()
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;

    fn reading(node: u32, attr: u32, value: f64, produced: u64) -> WireReading {
        WireReading {
            node: NodeId(node),
            attr: AttrId(attr),
            value,
            produced,
            contributors: 1,
        }
    }

    fn core(capacity: f64) -> CollectorCore {
        CollectorCore::new(
            capacity,
            CostModel::new(2.0, 1.0).unwrap(),
            NetConfig::default(),
            AttrCatalog::new(),
        )
    }

    #[test]
    fn perfect_intake_charges_message_cost_and_records() {
        let mut c = core(10.0);
        let mut report = EpochReport::default();
        let frame = WireMessage::data(0, NodeId(1), 0, vec![reading(1, 0, 5.0, 3)]).encode();
        c.refill();
        c.accept_perfect(3, frame, &mut report);
        assert_eq!(report.delivered_values, 1);
        let obs = c.observed(NodeId(1), AttrId(0)).unwrap();
        assert_eq!(obs.value, 5.0);
        assert_eq!(obs.received, 4, "received at sent_epoch + 1");
    }

    #[test]
    fn perfect_intake_drops_whole_message_over_budget() {
        let mut c = core(2.5); // C = 2, a = 1: one reading costs 3
        let mut report = EpochReport::default();
        let frame = WireMessage::data(0, NodeId(1), 0, vec![reading(1, 0, 5.0, 3)]).encode();
        c.refill();
        c.accept_perfect(3, frame, &mut report);
        assert_eq!(report.dropped_messages, 1);
        assert_eq!(report.dropped_readings, 1);
        assert_eq!(c.observed_pairs(), 0);
    }

    #[test]
    fn stale_reading_never_regresses_the_snapshot() {
        let mut c = core(100.0);
        let mut report = EpochReport::default();
        c.record(&reading(0, 0, 9.0, 10), 11, &mut report);
        c.record(&reading(0, 0, 1.0, 5), 12, &mut report);
        assert_eq!(c.observed(NodeId(0), AttrId(0)).unwrap().value, 9.0);
    }

    #[test]
    fn arq_intake_dedups_restarted_sender_by_incarnation() {
        // Two frames with the same seq: incarnation 0 then a restart's
        // incarnation 1. Without incarnation-scoped dedup the second
        // (fresh) frame would be swallowed as a replay.
        let mut c = core(100.0);
        let mut report = EpochReport::default();
        let transport = NullTransport;
        c.refill();
        let old = WireMessage::data(0, NodeId(1), 1, vec![reading(1, 0, 1.0, 1)]).encode();
        c.accept_arq(1, 1, old, &transport, &mut report);
        let replay = WireMessage::data(0, NodeId(1), 1, vec![reading(1, 0, 1.0, 1)]).encode();
        c.accept_arq(1, 1, replay, &transport, &mut report);
        assert_eq!(report.duplicate_messages_ignored, 1);
        let restarted = WireMessage::data(0, NodeId(1), 1, vec![reading(1, 0, 7.0, 5)])
            .with_incarnation(1)
            .encode();
        c.accept_arq(5, 5, restarted, &transport, &mut report);
        assert_eq!(
            report.duplicate_messages_ignored, 1,
            "restarted sender's seq 1 must not be treated as a replay"
        );
        c.drain_arq(5, &mut report);
        assert_eq!(c.observed(NodeId(1), AttrId(0)).unwrap().value, 7.0);
    }

    #[derive(Debug, Default)]
    struct NullTransport;

    impl Transport for NullTransport {
        fn send_data(&self, _: NodeId, _: Endpoint, _: u64, _: u64, _: Bytes) {}
        fn send_ack(&self, _: Endpoint, _: NodeId, _: u32, _: u64, _: u64) {}
        fn reliable(&self) -> bool {
            false
        }
    }
}
