//! Node agents: one thread per monitoring node.
//!
//! Agents run in coordinator-driven lockstep: each `Tick(e)` starts
//! epoch `e`, on which the agent refills its token bucket, samples its
//! local attributes, folds in traffic received from children during
//! epoch `e − 1`, applies in-network aggregation, and forwards one
//! message per tree upstream — exactly the per-epoch behavior the
//! planner budgets for.
//!
//! All upstream traffic goes through a [`Transport`]. On a reliable
//! transport (the deterministic default) the agent behaves exactly as
//! it always has. On an unreliable one it runs an ARQ layer: every
//! data frame carries a sequence number, receivers ack and
//! deduplicate (via [`SeqTracker`](crate::transport::SeqTracker)),
//! and unacked frames are
//! retransmitted on an exponential-backoff timer until a retry budget
//! runs out.

use crate::proto::{FrameKind, WireMessage, WireReading};
use crate::throttle::TokenBucket;
use crate::transport::{Endpoint, IncarnationTracker, NetConfig, Transport};
use bytes::Bytes;
use crossbeam::channel::{Receiver, Sender};
use remo_core::{Aggregation, AttrId, CostModel, NodeId};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Produces the locally observed value of `(node, attr)` at an epoch.
pub type Sampler = Arc<dyn Fn(NodeId, AttrId, u64) -> f64 + Send + Sync>;

/// Where an agent forwards a tree's traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// This agent is the tree's root; traffic goes to the collector.
    Collector,
    /// Forward to another agent.
    Node(NodeId),
}

impl Route {
    fn endpoint(self) -> Endpoint {
        match self {
            Route::Collector => Endpoint::Collector,
            Route::Node(n) => Endpoint::Node(n),
        }
    }
}

/// One attribute an agent samples locally for a tree.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalAttr {
    /// The attribute.
    pub attr: AttrId,
    /// Sampling period in epochs (1 = every epoch).
    pub period: u64,
    /// In-network aggregation applied at relay points.
    pub aggregation: Aggregation,
}

/// An agent's role within one monitoring tree.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeAssignment {
    /// Tree index in the deployed forest.
    pub tree: u32,
    /// Upstream route.
    pub parent: Route,
    /// Locally sampled attributes.
    pub local: Vec<LocalAttr>,
    /// Aggregation kinds for attributes this agent may relay (keyed by
    /// attribute; holistic if absent).
    pub relay_aggregation: BTreeMap<AttrId, Aggregation>,
}

/// Messages an agent can receive.
#[derive(Debug)]
pub enum AgentMsg {
    /// A monitoring frame from a child, tagged with the epoch it was
    /// sent in (transport metadata, not part of the frame).
    Data {
        /// Sender's epoch.
        sent_epoch: u64,
        /// Encoded [`WireMessage`].
        frame: Bytes,
    },
    /// The upstream receiver acknowledged this agent's data frame
    /// `seq` (ARQ; only seen on unreliable transports).
    Ack {
        /// Sender incarnation the ack was earned under (echoed from
        /// the data frame; an ack for another incarnation is stale).
        incarnation: u32,
        /// Acknowledged sequence number.
        seq: u64,
    },
    /// Start of an epoch.
    Tick {
        /// The epoch now beginning.
        epoch: u64,
    },
    /// Replace this agent's tree assignments (topology adaptation).
    Reconfigure {
        /// New assignments (full replacement).
        assignments: Vec<TreeAssignment>,
    },
    /// Collector backpressure: multiply every local sampling period by
    /// `factor` (1 = no degradation). Widening the effective reporting
    /// interval sheds load at the source, per the paper's cost model.
    SetDegrade {
        /// Period multiplier (a power of two in practice).
        factor: u64,
    },
    /// Crash or heal the agent (failure injection): a failed agent
    /// drops all data traffic and goes silent — it stops acknowledging
    /// ticks, so the coordinator's epoch-deadline failure detector
    /// observes the misses and can confirm the crash.
    SetFailed(bool),
    /// Terminate the agent thread.
    Shutdown,
}

/// Per-epoch activity report sent back to the coordinator.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TickReport {
    /// Reporting node.
    pub node: NodeId,
    /// Epoch covered.
    pub epoch: u64,
    /// Messages sent upstream (first transmissions).
    pub sent_messages: u32,
    /// Readings sent upstream.
    pub sent_readings: u32,
    /// Messages dropped on the receive side (budget exhausted).
    pub dropped_messages: u32,
    /// Readings lost (receive drops + send-side trimming + abandoned
    /// retransmissions).
    pub dropped_readings: u32,
    /// Cost-units of traffic this agent paid for this epoch.
    pub volume: f64,
    /// ARQ retransmissions sent this epoch.
    pub retransmits: u32,
    /// Duplicate data frames ignored by receive-side dedup.
    pub dup_ignored: u32,
    /// Frames abandoned after the retry budget ran out.
    pub abandoned: u32,
}

/// A data frame awaiting its ack.
#[derive(Debug)]
struct Unacked {
    to: Endpoint,
    tree: u32,
    frame: Bytes,
    readings: u32,
    /// Transmissions so far (the initial send counts as 1).
    attempts: u32,
    /// Epoch at which the next retransmission is due.
    next_retry: u64,
}

/// The agent state machine (runs on its own thread via
/// [`run_agent`]).
pub struct Agent {
    id: NodeId,
    inbox: Receiver<AgentMsg>,
    transport: Arc<dyn Transport>,
    reports: Sender<TickReport>,
    bucket: TokenBucket,
    cost: CostModel,
    net: NetConfig,
    /// ARQ engaged (transport is unreliable).
    arq: bool,
    sampler: Sampler,
    assignments: Vec<TreeAssignment>,
    /// Buffered readings per tree: `(sent_epoch, reading)`.
    buffers: BTreeMap<u32, Vec<(u64, WireReading)>>,
    /// This process's incarnation, stamped on every outgoing frame.
    /// In-process agents never restart and stay at 0; distributed
    /// node processes get a fresh (higher) incarnation per restart.
    incarnation: u32,
    /// Sequence counter for outgoing data frames (monotone across
    /// crashes so fresh frames are never mistaken for replays).
    next_seq: u64,
    /// Sent-but-unacked data frames, by seq.
    unacked: BTreeMap<u64, Unacked>,
    /// Receive-side dedup state per child sender, incarnation-scoped
    /// so a restarted child's seqs starting over are not swallowed.
    seen: BTreeMap<NodeId, IncarnationTracker>,
    /// Sampling-period multiplier pushed by collector backpressure.
    degrade: u64,
    epoch: u64,
    failed: bool,
    /// Receive-side drops accumulated since the last tick report.
    drop_messages: u32,
    drop_readings: u32,
    dup_ignored: u32,
}

impl std::fmt::Debug for Agent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Agent")
            .field("id", &self.id)
            .field("epoch", &self.epoch)
            .field("assignments", &self.assignments.len())
            .field("arq", &self.arq)
            .finish()
    }
}

impl Agent {
    /// Creates an agent (not yet running; see [`run_agent`]).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        id: NodeId,
        inbox: Receiver<AgentMsg>,
        transport: Arc<dyn Transport>,
        reports: Sender<TickReport>,
        capacity: f64,
        cost: CostModel,
        net: NetConfig,
        sampler: Sampler,
        assignments: Vec<TreeAssignment>,
    ) -> Self {
        let arq = !transport.reliable();
        Agent {
            id,
            inbox,
            transport,
            reports,
            bucket: TokenBucket::new(capacity),
            cost,
            net,
            arq,
            sampler,
            assignments,
            buffers: BTreeMap::new(),
            incarnation: 0,
            next_seq: 0,
            unacked: BTreeMap::new(),
            seen: BTreeMap::new(),
            degrade: 1,
            epoch: 0,
            failed: false,
            drop_messages: 0,
            drop_readings: 0,
            dup_ignored: 0,
        }
    }

    /// Sets the process incarnation stamped on outgoing frames (a
    /// restarted node process must use a higher incarnation than its
    /// previous life; in-process deployments keep the default 0).
    pub fn with_incarnation(mut self, incarnation: u32) -> Self {
        self.incarnation = incarnation;
        self
    }

    /// Processes messages until shutdown.
    pub fn run(mut self) {
        while let Ok(msg) = self.inbox.recv() {
            match msg {
                AgentMsg::Shutdown => break,
                AgentMsg::Reconfigure { assignments } => {
                    // Buffers and in-flight frames of trees we no
                    // longer serve are dropped.
                    let live: Vec<u32> = assignments.iter().map(|a| a.tree).collect();
                    self.buffers.retain(|tree, _| live.contains(tree));
                    self.unacked.retain(|_, u| live.contains(&u.tree));
                    self.assignments = assignments;
                }
                AgentMsg::SetDegrade { factor } => {
                    self.degrade = factor.max(1);
                }
                AgentMsg::SetFailed(failed) => {
                    self.failed = failed;
                    if failed {
                        // A crashed process loses its volatile state:
                        // buffers, retransmit queue, and dedup window.
                        // `next_seq` survives (monotone identity), so
                        // post-recovery frames are never taken for
                        // replays upstream.
                        self.buffers.clear();
                        self.unacked.clear();
                        self.seen.clear();
                    }
                }
                AgentMsg::Data { sent_epoch, frame } => self.on_data(sent_epoch, frame),
                AgentMsg::Ack { incarnation, seq } => {
                    // An ack earned under another incarnation says
                    // nothing about this life's frames.
                    if !self.failed && incarnation == self.incarnation {
                        self.unacked.remove(&seq);
                    }
                }
                AgentMsg::Tick { epoch } => self.on_tick(epoch),
            }
        }
    }

    fn on_data(&mut self, sent_epoch: u64, frame: Bytes) {
        if self.failed {
            if let Ok(msg) = WireMessage::decode(frame) {
                self.pending_drop(msg.readings.len() as u32);
            }
            return;
        }
        let Ok(msg) = WireMessage::decode(frame) else {
            return; // corrupt frames are silently dropped
        };
        if msg.kind != FrameKind::Data {
            return; // acks arrive as AgentMsg::Ack, not as frames
        }
        if self.arq {
            // Replay? Re-ack (the first ack may have been lost) and
            // discard — dedup keeps duplicates out of the buffers.
            if self
                .seen
                .get(&msg.from)
                .is_some_and(|t| t.contains(msg.incarnation, msg.seq))
            {
                self.transport.send_ack(
                    Endpoint::Node(self.id),
                    msg.from,
                    msg.incarnation,
                    msg.seq,
                    self.epoch,
                );
                self.dup_ignored += 1;
                return;
            }
        }
        let cost = self.cost.message_cost(msg.readings.len() as f64);
        if !self.bucket.try_consume(cost) {
            // Receive-side drop; reported with the next tick. No ack:
            // on an unreliable transport the sender will retry once
            // budget pressure eases.
            self.pending_drop(msg.readings.len() as u32);
            return;
        }
        if self.arq {
            self.transport.send_ack(
                Endpoint::Node(self.id),
                msg.from,
                msg.incarnation,
                msg.seq,
                self.epoch,
            );
            self.seen
                .entry(msg.from)
                .or_default()
                .insert(msg.incarnation, msg.seq);
        }
        let buf = self.buffers.entry(msg.tree).or_default();
        for r in msg.readings {
            buf.push((sent_epoch, r));
        }
    }

    // Receive-side drops accumulate between ticks.
    fn pending_drop(&mut self, readings: u32) {
        self.drop_readings += readings;
        self.drop_messages += 1;
    }

    /// Retransmits overdue unacked frames, abandoning those whose
    /// retry budget ran out. Runs before new sends so retransmissions
    /// get first claim on the epoch's budget.
    fn retransmit_pass(&mut self, epoch: u64, report: &mut TickReport) {
        let due: Vec<u64> = self
            .unacked
            .iter()
            .filter(|(_, u)| u.next_retry <= epoch)
            .map(|(&seq, _)| seq)
            .collect();
        for seq in due {
            let Some(u) = self.unacked.get_mut(&seq) else {
                continue;
            };
            if u.attempts >= self.net.max_attempts {
                report.abandoned += 1;
                report.dropped_readings += u.readings;
                if remo_obs::enabled() {
                    remo_obs::counter("remo_net_abandoned_frames_total").inc();
                }
                self.unacked.remove(&seq);
                continue;
            }
            let cost = self.cost.message_cost(u.readings as f64);
            if !self.bucket.try_consume(cost) {
                // Budget exhausted: postpone rather than abandon.
                u.next_retry = epoch + 1;
                continue;
            }
            u.attempts += 1;
            // Exponential backoff: base_rto, 2·base_rto, 4·base_rto…
            // (the closed form `NetConfig::backoff` the static
            // analyzer sums into its staleness bound).
            u.next_retry = epoch + self.net.backoff(u.attempts);
            report.retransmits += 1;
            report.volume += cost;
            if remo_obs::enabled() {
                remo_obs::counter("remo_net_retransmits_total").inc();
            }
            self.transport
                .send_data(self.id, u.to, seq, epoch, u.frame.clone());
        }
    }

    fn on_tick(&mut self, epoch: u64) {
        self.epoch = epoch;
        if self.failed {
            // Crashed: produce nothing and stay silent. The missing
            // report is the failure signal; receive-side drop counters
            // keep accumulating and surface with the first report
            // after healing.
            return;
        }
        self.bucket.refill();
        let mut report = TickReport {
            node: self.id,
            epoch,
            dropped_messages: std::mem::take(&mut self.drop_messages),
            dropped_readings: std::mem::take(&mut self.drop_readings),
            dup_ignored: std::mem::take(&mut self.dup_ignored),
            ..TickReport::default()
        };

        if self.arq {
            self.retransmit_pass(epoch, &mut report);
        }

        for ai in 0..self.assignments.len() {
            let a = self.assignments[ai].clone();
            let mut readings: Vec<WireReading> = Vec::new();
            for la in &a.local {
                let period = la.period.max(1).saturating_mul(self.degrade);
                if !epoch.is_multiple_of(period) {
                    continue;
                }
                readings.push(WireReading {
                    node: self.id,
                    attr: la.attr,
                    value: (self.sampler)(self.id, la.attr, epoch),
                    produced: epoch,
                    contributors: 1,
                });
            }
            // Forward child traffic sent strictly before this epoch.
            if let Some(buf) = self.buffers.get_mut(&a.tree) {
                let mut keep = Vec::new();
                for (sent, r) in buf.drain(..) {
                    if sent < epoch {
                        readings.push(r);
                    } else {
                        keep.push((sent, r));
                    }
                }
                *buf = keep;
            }
            if readings.is_empty() {
                continue;
            }
            readings = fold_aggregates(self.id, readings, &a);

            // Send-side budget enforcement (oldest trimmed first).
            let full = self.cost.message_cost(readings.len() as f64);
            if !self.bucket.try_consume(full) {
                let affordable = ((self.bucket.available() - self.cost.per_message())
                    / self.cost.per_value())
                .floor();
                if affordable < 1.0 {
                    report.dropped_readings += readings.len() as u32;
                    continue;
                }
                readings.sort_by_key(|r| std::cmp::Reverse(r.produced));
                let keep = (affordable as usize).min(readings.len());
                report.dropped_readings += (readings.len() - keep) as u32;
                readings.truncate(keep);
                let cost = self.cost.message_cost(readings.len() as f64);
                let ok = self.bucket.try_consume(cost);
                debug_assert!(ok, "trimmed message must fit");
            }

            self.next_seq += 1;
            let seq = self.next_seq;
            let msg = WireMessage::data(a.tree, self.id, seq, readings)
                .with_incarnation(self.incarnation);
            report.sent_messages += 1;
            report.sent_readings += msg.readings.len() as u32;
            report.volume += self.cost.message_cost(msg.readings.len() as f64);
            let frame = msg.encode();
            let to = a.parent.endpoint();
            if self.arq {
                self.unacked.insert(
                    seq,
                    Unacked {
                        to,
                        tree: a.tree,
                        frame: frame.clone(),
                        readings: msg.readings.len() as u32,
                        attempts: 1,
                        next_retry: epoch + self.net.backoff(1),
                    },
                );
            }
            self.transport.send_data(self.id, to, seq, epoch, frame);
        }
        let _ = self.reports.send(report);
    }
}

/// Applies in-network aggregation at a relay point.
fn fold_aggregates(
    at: NodeId,
    readings: Vec<WireReading>,
    assignment: &TreeAssignment,
) -> Vec<WireReading> {
    let mut by_attr: BTreeMap<AttrId, Vec<WireReading>> = BTreeMap::new();
    for r in readings {
        by_attr.entry(r.attr).or_default().push(r);
    }
    let mut out = Vec::new();
    for (attr, group) in by_attr {
        let kind = assignment
            .relay_aggregation
            .get(&attr)
            .copied()
            .unwrap_or(Aggregation::Holistic);
        match kind {
            Aggregation::Holistic | Aggregation::Distinct => out.extend(group),
            Aggregation::Sum => {
                out.push(fold(at, attr, &group, group.iter().map(|r| r.value).sum()))
            }
            Aggregation::Max => out.push(fold(
                at,
                attr,
                &group,
                group
                    .iter()
                    .map(|r| r.value)
                    .fold(f64::NEG_INFINITY, f64::max),
            )),
            Aggregation::Top(k) => {
                let mut g = group;
                g.sort_by(|a, b| {
                    b.value
                        .partial_cmp(&a.value)
                        .unwrap_or(std::cmp::Ordering::Equal)
                });
                g.truncate(k as usize);
                out.extend(g);
            }
        }
    }
    out
}

fn fold(at: NodeId, attr: AttrId, group: &[WireReading], value: f64) -> WireReading {
    WireReading {
        node: at,
        attr,
        value,
        produced: group.iter().map(|r| r.produced).min().unwrap_or(0),
        contributors: group.iter().map(|r| r.contributors).sum(),
    }
}

/// Spawns an agent on a dedicated thread.
pub fn run_agent(agent: Agent) -> std::thread::JoinHandle<()> {
    let name = format!("remo-agent-{}", agent.id);
    std::thread::Builder::new()
        .name(name.clone())
        .spawn(move || agent.run())
        .unwrap_or_else(|e| panic!("failed to spawn {name}: {e}"))
}
