//! Node agents: one thread per monitoring node.
//!
//! Agents run in coordinator-driven lockstep: each `Tick(e)` starts
//! epoch `e`, on which the agent refills its token bucket, samples its
//! local attributes, folds in traffic received from children during
//! epoch `e − 1`, applies in-network aggregation, and forwards one
//! message per tree upstream — exactly the per-epoch behavior the
//! planner budgets for.

use crate::proto::{WireMessage, WireReading};
use crate::throttle::TokenBucket;
use bytes::Bytes;
use crossbeam::channel::{Receiver, Sender};
use remo_core::{Aggregation, AttrId, CostModel, NodeId};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Produces the locally observed value of `(node, attr)` at an epoch.
pub type Sampler = Arc<dyn Fn(NodeId, AttrId, u64) -> f64 + Send + Sync>;

/// Where an agent forwards a tree's traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// This agent is the tree's root; traffic goes to the collector.
    Collector,
    /// Forward to another agent.
    Node(NodeId),
}

/// One attribute an agent samples locally for a tree.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalAttr {
    /// The attribute.
    pub attr: AttrId,
    /// Sampling period in epochs (1 = every epoch).
    pub period: u64,
    /// In-network aggregation applied at relay points.
    pub aggregation: Aggregation,
}

/// An agent's role within one monitoring tree.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeAssignment {
    /// Tree index in the deployed forest.
    pub tree: u32,
    /// Upstream route.
    pub parent: Route,
    /// Locally sampled attributes.
    pub local: Vec<LocalAttr>,
    /// Aggregation kinds for attributes this agent may relay (keyed by
    /// attribute; holistic if absent).
    pub relay_aggregation: BTreeMap<AttrId, Aggregation>,
}

/// Messages an agent can receive.
#[derive(Debug)]
pub enum AgentMsg {
    /// A monitoring frame from a child, tagged with the epoch it was
    /// sent in (transport metadata, not part of the frame).
    Data {
        /// Sender's epoch.
        sent_epoch: u64,
        /// Encoded [`WireMessage`].
        frame: Bytes,
    },
    /// Start of an epoch.
    Tick {
        /// The epoch now beginning.
        epoch: u64,
    },
    /// Replace this agent's tree assignments (topology adaptation).
    Reconfigure {
        /// New assignments (full replacement).
        assignments: Vec<TreeAssignment>,
    },
    /// Crash or heal the agent (failure injection): a failed agent
    /// drops all data traffic and goes silent — it stops acknowledging
    /// ticks, so the coordinator's epoch-deadline failure detector
    /// observes the misses and can confirm the crash.
    SetFailed(bool),
    /// Terminate the agent thread.
    Shutdown,
}

/// Per-epoch activity report sent back to the coordinator.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TickReport {
    /// Reporting node.
    pub node: NodeId,
    /// Epoch covered.
    pub epoch: u64,
    /// Messages sent upstream.
    pub sent_messages: u32,
    /// Readings sent upstream.
    pub sent_readings: u32,
    /// Messages dropped on the receive side (budget exhausted).
    pub dropped_messages: u32,
    /// Readings lost (receive drops + send-side trimming).
    pub dropped_readings: u32,
    /// Cost-units of traffic this agent paid for this epoch.
    pub volume: f64,
}

/// The agent state machine (runs on its own thread via
/// [`run_agent`]).
pub struct Agent {
    id: NodeId,
    inbox: Receiver<AgentMsg>,
    peers: Arc<BTreeMap<NodeId, Sender<AgentMsg>>>,
    collector: Sender<(u64, Bytes)>,
    reports: Sender<TickReport>,
    bucket: TokenBucket,
    cost: CostModel,
    sampler: Sampler,
    assignments: Vec<TreeAssignment>,
    /// Buffered readings per tree: `(sent_epoch, reading)`.
    buffers: BTreeMap<u32, Vec<(u64, WireReading)>>,
    epoch: u64,
    failed: bool,
    /// Receive-side drops accumulated since the last tick report.
    drop_messages: u32,
    drop_readings: u32,
}

impl std::fmt::Debug for Agent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Agent")
            .field("id", &self.id)
            .field("epoch", &self.epoch)
            .field("assignments", &self.assignments.len())
            .finish()
    }
}

impl Agent {
    /// Creates an agent (not yet running; see [`run_agent`]).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        id: NodeId,
        inbox: Receiver<AgentMsg>,
        peers: Arc<BTreeMap<NodeId, Sender<AgentMsg>>>,
        collector: Sender<(u64, Bytes)>,
        reports: Sender<TickReport>,
        capacity: f64,
        cost: CostModel,
        sampler: Sampler,
        assignments: Vec<TreeAssignment>,
    ) -> Self {
        Agent {
            id,
            inbox,
            peers,
            collector,
            reports,
            bucket: TokenBucket::new(capacity),
            cost,
            sampler,
            assignments,
            buffers: BTreeMap::new(),
            epoch: 0,
            failed: false,
            drop_messages: 0,
            drop_readings: 0,
        }
    }

    /// Processes messages until shutdown.
    pub fn run(mut self) {
        while let Ok(msg) = self.inbox.recv() {
            match msg {
                AgentMsg::Shutdown => break,
                AgentMsg::Reconfigure { assignments } => {
                    // Buffers of trees we no longer serve are dropped.
                    let live: Vec<u32> = assignments.iter().map(|a| a.tree).collect();
                    self.buffers.retain(|tree, _| live.contains(tree));
                    self.assignments = assignments;
                }
                AgentMsg::SetFailed(failed) => {
                    self.failed = failed;
                    if failed {
                        // A crashed process loses its buffers.
                        self.buffers.clear();
                    }
                }
                AgentMsg::Data { sent_epoch, frame } => self.on_data(sent_epoch, frame),
                AgentMsg::Tick { epoch } => self.on_tick(epoch),
            }
        }
    }

    fn on_data(&mut self, sent_epoch: u64, frame: Bytes) {
        if self.failed {
            if let Ok(msg) = WireMessage::decode(frame) {
                self.pending_drop(msg.readings.len() as u32);
            }
            return;
        }
        let Ok(msg) = WireMessage::decode(frame) else {
            return; // corrupt frames are silently dropped
        };
        let cost = self.cost.message_cost(msg.readings.len() as f64);
        if !self.bucket.try_consume(cost) {
            // Receive-side drop; reported with the next tick.
            self.pending_drop(msg.readings.len() as u32);
            return;
        }
        let buf = self.buffers.entry(msg.tree).or_default();
        for r in msg.readings {
            buf.push((sent_epoch, r));
        }
    }

    // Receive-side drops accumulate between ticks.
    fn pending_drop(&mut self, readings: u32) {
        self.drop_readings += readings;
        self.drop_messages += 1;
    }

    fn on_tick(&mut self, epoch: u64) {
        self.epoch = epoch;
        if self.failed {
            // Crashed: produce nothing and stay silent. The missing
            // report is the failure signal; receive-side drop counters
            // keep accumulating and surface with the first report
            // after healing.
            return;
        }
        self.bucket.refill();
        let mut report = TickReport {
            node: self.id,
            epoch,
            dropped_messages: std::mem::take(&mut self.drop_messages),
            dropped_readings: std::mem::take(&mut self.drop_readings),
            ..TickReport::default()
        };

        for ai in 0..self.assignments.len() {
            let a = self.assignments[ai].clone();
            let mut readings: Vec<WireReading> = Vec::new();
            for la in &a.local {
                if !epoch.is_multiple_of(la.period.max(1)) {
                    continue;
                }
                readings.push(WireReading {
                    node: self.id,
                    attr: la.attr,
                    value: (self.sampler)(self.id, la.attr, epoch),
                    produced: epoch,
                    contributors: 1,
                });
            }
            // Forward child traffic sent strictly before this epoch.
            if let Some(buf) = self.buffers.get_mut(&a.tree) {
                let mut keep = Vec::new();
                for (sent, r) in buf.drain(..) {
                    if sent < epoch {
                        readings.push(r);
                    } else {
                        keep.push((sent, r));
                    }
                }
                *buf = keep;
            }
            if readings.is_empty() {
                continue;
            }
            readings = fold_aggregates(self.id, readings, &a);

            // Send-side budget enforcement (oldest trimmed first).
            let full = self.cost.message_cost(readings.len() as f64);
            if !self.bucket.try_consume(full) {
                let affordable = ((self.bucket.available() - self.cost.per_message())
                    / self.cost.per_value())
                .floor();
                if affordable < 1.0 {
                    report.dropped_readings += readings.len() as u32;
                    continue;
                }
                readings.sort_by_key(|r| std::cmp::Reverse(r.produced));
                let keep = (affordable as usize).min(readings.len());
                report.dropped_readings += (readings.len() - keep) as u32;
                readings.truncate(keep);
                let cost = self.cost.message_cost(readings.len() as f64);
                let ok = self.bucket.try_consume(cost);
                debug_assert!(ok, "trimmed message must fit");
            }

            let msg = WireMessage {
                tree: a.tree,
                from: self.id,
                readings,
            };
            report.sent_messages += 1;
            report.sent_readings += msg.readings.len() as u32;
            report.volume += self.cost.message_cost(msg.readings.len() as f64);
            let frame = msg.encode();
            match a.parent {
                Route::Collector => {
                    let _ = self.collector.send((epoch, frame));
                }
                Route::Node(p) => {
                    if let Some(tx) = self.peers.get(&p) {
                        let _ = tx.send(AgentMsg::Data {
                            sent_epoch: epoch,
                            frame,
                        });
                    }
                }
            }
        }
        let _ = self.reports.send(report);
    }
}

/// Applies in-network aggregation at a relay point.
fn fold_aggregates(
    at: NodeId,
    readings: Vec<WireReading>,
    assignment: &TreeAssignment,
) -> Vec<WireReading> {
    let mut by_attr: BTreeMap<AttrId, Vec<WireReading>> = BTreeMap::new();
    for r in readings {
        by_attr.entry(r.attr).or_default().push(r);
    }
    let mut out = Vec::new();
    for (attr, group) in by_attr {
        let kind = assignment
            .relay_aggregation
            .get(&attr)
            .copied()
            .unwrap_or(Aggregation::Holistic);
        match kind {
            Aggregation::Holistic | Aggregation::Distinct => out.extend(group),
            Aggregation::Sum => {
                out.push(fold(at, attr, &group, group.iter().map(|r| r.value).sum()))
            }
            Aggregation::Max => out.push(fold(
                at,
                attr,
                &group,
                group
                    .iter()
                    .map(|r| r.value)
                    .fold(f64::NEG_INFINITY, f64::max),
            )),
            Aggregation::Top(k) => {
                let mut g = group;
                g.sort_by(|a, b| {
                    b.value
                        .partial_cmp(&a.value)
                        .unwrap_or(std::cmp::Ordering::Equal)
                });
                g.truncate(k as usize);
                out.extend(g);
            }
        }
    }
    out
}

fn fold(at: NodeId, attr: AttrId, group: &[WireReading], value: f64) -> WireReading {
    WireReading {
        node: at,
        attr,
        value,
        produced: group.iter().map(|r| r.produced).min().unwrap_or(0),
        contributors: group.iter().map(|r| r.contributors).sum(),
    }
}

/// Spawns an agent on a dedicated thread.
pub fn run_agent(agent: Agent) -> std::thread::JoinHandle<()> {
    let name = format!("remo-agent-{}", agent.id);
    std::thread::Builder::new()
        .name(name.clone())
        .spawn(move || agent.run())
        .unwrap_or_else(|e| panic!("failed to spawn {name}: {e}"))
}
