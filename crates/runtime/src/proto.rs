//! Binary wire protocol for monitoring messages.
//!
//! A realistic serialization layer: each update message carries a
//! fixed header (the per-message overhead `C` of the cost model made
//! tangible) plus densely packed readings. Encoding is explicit and
//! versioned rather than serde-derived so the framing — and its fixed
//! overhead — is visible and testable.
//!
//! Version 2 adds ARQ support for unreliable transports: a frame kind
//! (data vs. ack) and a per-sender sequence number, so receivers can
//! acknowledge and deduplicate (see [`crate::transport`]).
//!
//! Version 3 adds the sender's *incarnation*: a number that increases
//! every time the sending process restarts. Without it, a recovered
//! sender restarting its sequence numbers at zero is silently swallowed
//! by the receiver's contiguous-watermark dedup — every fresh frame
//! looks "already seen". Receivers reset their per-sender watermark
//! when the incarnation advances, and acks echo the data frame's
//! incarnation so a sender never credits an ack earned by its previous
//! life. In-process deployments never restart agents, so they pin
//! incarnation 0 and their byte streams change only by the widened
//! header.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use remo_core::{AttrId, NodeId};
use std::error::Error as StdError;
use std::fmt;

/// Protocol magic marker.
pub const MAGIC: u16 = 0x5235; // "R5"
/// Protocol version.
pub const VERSION: u8 = 3;
/// Fixed header size in bytes: magic (2) + version (1) + kind (1) +
/// tree (4) + from (4) + incarnation (4) + seq (8) + count (4).
pub const HEADER_LEN: usize = 28;
/// Encoded size of one reading: node (4) + attr (4) + value (8) +
/// produced (8) + contributors (4).
pub const READING_LEN: usize = 28;

/// What a frame carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// A monitoring update (readings payload).
    Data,
    /// An acknowledgement of a data frame's sequence number (empty
    /// payload).
    Ack,
}

impl FrameKind {
    fn to_u8(self) -> u8 {
        match self {
            FrameKind::Data => 0,
            FrameKind::Ack => 1,
        }
    }

    fn from_u8(b: u8) -> Option<Self> {
        match b {
            0 => Some(FrameKind::Data),
            1 => Some(FrameKind::Ack),
            _ => None,
        }
    }
}

/// One encoded observation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireReading {
    /// Source node.
    pub node: NodeId,
    /// Attribute type.
    pub attr: AttrId,
    /// Observed value.
    pub value: f64,
    /// Producing epoch.
    pub produced: u64,
    /// Samples folded in (1 unless aggregated).
    pub contributors: u32,
}

/// A monitoring update message.
#[derive(Debug, Clone, PartialEq)]
pub struct WireMessage {
    /// Frame kind.
    pub kind: FrameKind,
    /// Tree index within the deployed forest.
    pub tree: u32,
    /// Sending node.
    pub from: NodeId,
    /// Sender process incarnation: bumped on every process restart so
    /// receivers know to reset their seq watermark. Always 0 for
    /// in-process agents (they never restart); acks echo the data
    /// frame's incarnation.
    pub incarnation: u32,
    /// Sender-assigned sequence number (monotone per sender within one
    /// incarnation; the ARQ layer's ack/dedup key). Zero on transports
    /// that never lose frames.
    pub seq: u64,
    /// Payload (empty for acks).
    pub readings: Vec<WireReading>,
}

/// Decoding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Buffer shorter than the fixed header.
    Truncated,
    /// Magic marker mismatch — not one of our frames.
    BadMagic(u16),
    /// Unsupported protocol version.
    BadVersion(u8),
    /// Unknown frame kind.
    BadKind(u8),
    /// Declared reading count exceeds the remaining bytes (or
    /// overflows entirely).
    BadCount(u32),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "frame shorter than header"),
            DecodeError::BadMagic(m) => write!(f, "bad magic {m:#06x}"),
            DecodeError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            DecodeError::BadKind(k) => write!(f, "unknown frame kind {k}"),
            DecodeError::BadCount(c) => write!(f, "reading count {c} exceeds frame size"),
        }
    }
}

impl StdError for DecodeError {}

impl WireMessage {
    /// A data frame (incarnation 0 — the in-process default; use
    /// [`WireMessage::with_incarnation`] for restartable senders).
    pub fn data(tree: u32, from: NodeId, seq: u64, readings: Vec<WireReading>) -> Self {
        WireMessage {
            kind: FrameKind::Data,
            tree,
            from,
            incarnation: 0,
            seq,
            readings,
        }
    }

    /// An ack frame for `seq` (incarnation 0; receivers acking a
    /// restartable sender echo its incarnation via
    /// [`WireMessage::with_incarnation`]).
    pub fn ack(tree: u32, from: NodeId, seq: u64) -> Self {
        WireMessage {
            kind: FrameKind::Ack,
            tree,
            from,
            incarnation: 0,
            seq,
            readings: Vec::new(),
        }
    }

    /// Sets the sender incarnation.
    pub fn with_incarnation(mut self, incarnation: u32) -> Self {
        self.incarnation = incarnation;
        self
    }

    /// Encodes the message into a frame.
    ///
    /// # Examples
    ///
    /// ```
    /// use remo_runtime::proto::{WireMessage, WireReading};
    /// use remo_core::{NodeId, AttrId};
    /// let msg = WireMessage::data(0, NodeId(3), 1, vec![WireReading {
    ///     node: NodeId(3),
    ///     attr: AttrId(1),
    ///     value: 0.5,
    ///     produced: 42,
    ///     contributors: 1,
    /// }]);
    /// let frame = msg.encode();
    /// assert_eq!(WireMessage::decode(frame).unwrap(), msg);
    /// ```
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(HEADER_LEN + self.readings.len() * READING_LEN);
        buf.put_u16(MAGIC);
        buf.put_u8(VERSION);
        buf.put_u8(self.kind.to_u8());
        buf.put_u32(self.tree);
        buf.put_u32(self.from.0);
        buf.put_u32(self.incarnation);
        buf.put_u64(self.seq);
        buf.put_u32(self.readings.len() as u32);
        for r in &self.readings {
            buf.put_u32(r.node.0);
            buf.put_u32(r.attr.0);
            buf.put_f64(r.value);
            buf.put_u64(r.produced);
            buf.put_u32(r.contributors);
        }
        buf.freeze()
    }

    /// Decodes a frame.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] on truncated, foreign, or corrupt
    /// frames. Never panics, whatever the input bytes.
    pub fn decode(mut frame: Bytes) -> Result<Self, DecodeError> {
        if frame.len() < HEADER_LEN {
            return Err(DecodeError::Truncated);
        }
        let magic = frame.get_u16();
        if magic != MAGIC {
            return Err(DecodeError::BadMagic(magic));
        }
        let version = frame.get_u8();
        if version != VERSION {
            return Err(DecodeError::BadVersion(version));
        }
        let kind_raw = frame.get_u8();
        let Some(kind) = FrameKind::from_u8(kind_raw) else {
            return Err(DecodeError::BadKind(kind_raw));
        };
        let tree = frame.get_u32();
        let from = NodeId(frame.get_u32());
        let incarnation = frame.get_u32();
        let seq = frame.get_u64();
        let count = frame.get_u32();
        // checked_mul: a hostile count must not overflow into a bogus
        // "fits" verdict on 32-bit targets (or wrap the Vec capacity).
        let Some(payload) = (count as usize).checked_mul(READING_LEN) else {
            return Err(DecodeError::BadCount(count));
        };
        if frame.remaining() < payload {
            return Err(DecodeError::BadCount(count));
        }
        let mut readings = Vec::with_capacity(count as usize);
        for _ in 0..count {
            readings.push(WireReading {
                node: NodeId(frame.get_u32()),
                attr: AttrId(frame.get_u32()),
                value: frame.get_f64(),
                produced: frame.get_u64(),
                contributors: frame.get_u32(),
            });
        }
        Ok(WireMessage {
            kind,
            tree,
            from,
            incarnation,
            seq,
            readings,
        })
    }

    /// The frame size this message encodes to.
    pub fn encoded_len(&self) -> usize {
        HEADER_LEN + self.readings.len() * READING_LEN
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;

    fn sample_msg(n: usize) -> WireMessage {
        WireMessage::data(
            7,
            NodeId(9),
            1234,
            (0..n)
                .map(|i| WireReading {
                    node: NodeId(i as u32),
                    attr: AttrId(100 + i as u32),
                    value: i as f64 * 1.5,
                    produced: 1000 + i as u64,
                    contributors: 1 + i as u32,
                })
                .collect(),
        )
    }

    #[test]
    fn roundtrip_various_sizes() {
        for n in [0, 1, 3, 100] {
            let msg = sample_msg(n);
            assert_eq!(WireMessage::decode(msg.encode()).unwrap(), msg);
        }
    }

    #[test]
    fn ack_roundtrip() {
        let ack = WireMessage::ack(3, NodeId(5), 42);
        let back = WireMessage::decode(ack.encode()).unwrap();
        assert_eq!(back, ack);
        assert_eq!(back.kind, FrameKind::Ack);
        assert!(back.readings.is_empty());
        assert_eq!(ack.encoded_len(), HEADER_LEN);
    }

    #[test]
    fn encoded_len_matches() {
        let msg = sample_msg(5);
        assert_eq!(msg.encode().len(), msg.encoded_len());
        assert_eq!(msg.encoded_len(), HEADER_LEN + 5 * READING_LEN);
    }

    #[test]
    fn rejects_truncated() {
        let frame = sample_msg(2).encode();
        let short = frame.slice(0..HEADER_LEN - 1);
        assert_eq!(WireMessage::decode(short), Err(DecodeError::Truncated));
    }

    #[test]
    fn rejects_bad_magic() {
        let mut buf = BytesMut::from(&sample_msg(0).encode()[..]);
        buf[0] = 0;
        assert!(matches!(
            WireMessage::decode(buf.freeze()),
            Err(DecodeError::BadMagic(_))
        ));
    }

    #[test]
    fn rejects_bad_version() {
        let mut buf = BytesMut::from(&sample_msg(0).encode()[..]);
        buf[2] = 99;
        assert_eq!(
            WireMessage::decode(buf.freeze()),
            Err(DecodeError::BadVersion(99))
        );
    }

    #[test]
    fn rejects_bad_kind() {
        let mut buf = BytesMut::from(&sample_msg(0).encode()[..]);
        buf[3] = 7;
        assert_eq!(
            WireMessage::decode(buf.freeze()),
            Err(DecodeError::BadKind(7))
        );
    }

    #[test]
    fn rejects_lying_count() {
        let frame = sample_msg(3).encode();
        // Keep header, drop one reading's bytes.
        let cut = frame.slice(0..frame.len() - 1);
        assert_eq!(WireMessage::decode(cut), Err(DecodeError::BadCount(3)));
    }

    #[test]
    fn rejects_overflowing_count() {
        // A header declaring u32::MAX readings: the byte check must not
        // wrap around.
        let mut buf = BytesMut::new();
        buf.put_u16(MAGIC);
        buf.put_u8(VERSION);
        buf.put_u8(0);
        buf.put_u32(0);
        buf.put_u32(0);
        buf.put_u32(0);
        buf.put_u64(0);
        buf.put_u32(u32::MAX);
        assert_eq!(
            WireMessage::decode(buf.freeze()),
            Err(DecodeError::BadCount(u32::MAX))
        );
    }

    #[test]
    fn incarnation_roundtrips() {
        let msg = sample_msg(2).with_incarnation(7);
        let back = WireMessage::decode(msg.encode()).unwrap();
        assert_eq!(back.incarnation, 7);
        assert_eq!(back, msg);
        let ack = WireMessage::ack(0, NodeId(1), 9).with_incarnation(3);
        assert_eq!(WireMessage::decode(ack.encode()).unwrap().incarnation, 3);
    }

    #[test]
    fn special_float_values_survive() {
        let mut msg = sample_msg(1);
        msg.readings[0].value = f64::MAX;
        let back = WireMessage::decode(msg.encode()).unwrap();
        assert_eq!(back.readings[0].value, f64::MAX);
    }
}
