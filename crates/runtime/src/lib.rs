//! # remo-runtime
//!
//! A real, threaded deployment substrate for REMO monitoring plans:
//! one agent thread per monitoring node, channel-based messaging with
//! a binary wire protocol ([`proto`]), token-bucket capacity emulation
//! ([`throttle`]), coordinator-driven lockstep epochs, in-network
//! aggregation at relay points, live topology reconfiguration, and a
//! self-healing control loop ([`health`]): epoch-deadline failure
//! detection, automatic plan repair through
//! `remo_core::adapt::AdaptivePlanner`, and targeted reconfiguration
//! of the surviving agents.
//!
//! Where [`remo-sim`](../remo_sim/index.html) is the fast, fully
//! deterministic model used for the paper's parameter sweeps, this
//! crate actually moves bytes between threads — it validates that a
//! plan's trees carry real traffic end to end (the role the
//! BlueGene/System S deployment plays in the paper).
//!
//! ```
//! use remo_core::{CapacityMap, CostModel, NodeId, AttrId, PairSet, AttrCatalog};
//! use remo_core::planner::Planner;
//! use remo_runtime::{Deployment, Sampler};
//! use std::sync::Arc;
//!
//! # fn main() -> Result<(), remo_core::PlanError> {
//! let caps = CapacityMap::uniform(4, 50.0, 1_000.0)?;
//! let cost = CostModel::default();
//! let pairs: PairSet = (0..4).map(|n| (NodeId(n), AttrId(0))).collect();
//! let catalog = AttrCatalog::new();
//! let plan = Planner::default().plan_with_catalog(&pairs, &caps, cost, &catalog);
//!
//! let sampler: Sampler = Arc::new(|n, _a, _e| n.0 as f64);
//! let mut dep = Deployment::launch(&plan, &pairs, &caps, cost, &catalog, sampler);
//! dep.run(8);
//! assert_eq!(dep.observed_pairs(), 4);
//! dep.shutdown();
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod agent;
pub mod collector;
pub mod ctrl;
pub mod deployment;
pub mod framing;
pub mod health;
pub mod proto;
pub mod repair;
pub mod samplers;
pub mod throttle;
pub mod transport;

pub use agent::{AgentMsg, LocalAttr, Route, Sampler, TickReport, TreeAssignment};
pub use collector::{CollectorCore, DeliveredReading, EpochReport, Observed};
pub use ctrl::{CtrlError, CtrlMsg};
pub use deployment::{
    changed_assignments, due_readings, plan_assignments, Deployment, Snapshot, TransportSpec,
};
pub use framing::{Envelope, FrameDecoder, FrameError};
pub use health::{
    HealthConfig, HealthEvents, HealthMonitor, HealthReport, HealthState, NodeHealthStats,
};
pub use proto::{FrameKind, WireMessage, WireReading};
pub use repair::RepairEngine;
pub use throttle::TokenBucket;
pub use transport::{
    Endpoint, IncarnationTracker, LinkSpec, LossyTransport, NetConfig, NetSpec, PartitionWindow,
    PerfectTransport, SeqTracker, Transport, TransportStats, MAX_BACKOFF_SHIFT,
};
