//! Pluggable message transports between agents and the collector.
//!
//! The deployment wires every agent's upstream traffic through a
//! [`Transport`]. Two implementations ship:
//!
//! - [`PerfectTransport`] — immediate, loss-free, in-order delivery
//!   over the same crossbeam channels the runtime has always used.
//!   This is the deterministic default that keeps the mc/loom/chaos
//!   suites honest, and it is bit-for-bit the pre-transport behavior.
//! - [`LossyTransport`] — a fault-injecting transport driven by a
//!   declarative [`NetSpec`]: per-link drop probability, uniform delay
//!   in epochs, duplication, reordering, named partition windows, and
//!   chaos-driven link outages. Every random decision is derived by
//!   hashing `(seed, from, to, seq, attempt)`, so outcomes are
//!   reproducible regardless of thread scheduling.
//!
//! On top of an unreliable transport the agents and the collector run
//! a per-hop ARQ protocol (sequence numbers, acks, timeout-based
//! retransmission with exponential backoff and a retry budget, and
//! idempotent receiver-side dedup via [`SeqTracker`]); see the
//! [`agent`](crate::agent) and [`deployment`](crate::deployment)
//! modules. [`Transport::reliable`] tells them whether that machinery
//! is needed at all.

use crate::agent::AgentMsg;
use bytes::Bytes;
use crossbeam::channel::Sender;
use remo_core::NodeId;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, Mutex};

/// Where a frame is headed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Endpoint {
    /// Another monitoring agent.
    Node(NodeId),
    /// The central collector.
    Collector,
}

/// Internal link-key tag for an endpoint ([`Endpoint::Collector`] maps
/// to `u32::MAX`, which is never a valid agent id in this runtime).
fn tag(to: Endpoint) -> u32 {
    match to {
        Endpoint::Node(n) => n.0,
        Endpoint::Collector => u32::MAX,
    }
}

// ----------------------------------------------------------------- NetSpec

/// Per-link drop-probability override.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkSpec {
    /// Sending node.
    pub from: NodeId,
    /// Receiving node.
    pub to: NodeId,
    /// Drop probability on this directed link (overrides
    /// [`NetSpec::drop`]).
    pub drop: f64,
}

/// A named partition window: while active, traffic crossing the
/// boundary between `members` and everyone else (the collector counts
/// as outside) is cut in both directions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PartitionWindow {
    /// Human-readable name (surfaced in fault telemetry).
    pub name: String,
    /// Nodes inside the partition.
    pub members: BTreeSet<NodeId>,
    /// First epoch (inclusive) the partition is in effect.
    pub from_epoch: u64,
    /// Last epoch (inclusive), or `None` for permanent.
    pub until_epoch: Option<u64>,
}

impl PartitionWindow {
    fn active_at(&self, epoch: u64) -> bool {
        epoch >= self.from_epoch && self.until_epoch.is_none_or(|u| epoch <= u)
    }

    /// Whether a `from → to` frame crosses this partition's boundary.
    fn cuts(&self, from: NodeId, to: Endpoint, epoch: u64) -> bool {
        if !self.active_at(epoch) {
            return false;
        }
        let from_inside = self.members.contains(&from);
        let to_inside = match to {
            Endpoint::Node(n) => self.members.contains(&n),
            Endpoint::Collector => false,
        };
        from_inside != to_inside
    }
}

/// Declarative description of a lossy network.
///
/// All probabilities are per transmission attempt; retransmissions
/// draw fresh (but reproducible) outcomes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetSpec {
    /// RNG seed for the hash-derived fault decisions.
    pub seed: u64,
    /// Default per-link drop probability.
    pub drop: f64,
    /// Per-link drop overrides.
    pub links: Vec<LinkSpec>,
    /// Uniform delivery delay in `0..=delay_max` epochs.
    pub delay_max: u64,
    /// Duplication probability (the copy is delivered with its own
    /// independent delay).
    pub dup: f64,
    /// Reordering probability: a reordered frame is held one extra
    /// epoch so later traffic overtakes it.
    pub reorder: f64,
    /// Named partition windows.
    pub partitions: Vec<PartitionWindow>,
    /// Epoch after which the random faults (drop/delay/dup/reorder)
    /// cease — the network "heals". Partition windows and chaos link
    /// outages keep their own schedules.
    pub active_until: Option<u64>,
}

impl Default for NetSpec {
    fn default() -> Self {
        NetSpec {
            seed: 0,
            drop: 0.0,
            links: Vec::new(),
            delay_max: 0,
            dup: 0.0,
            reorder: 0.0,
            partitions: Vec::new(),
            active_until: None,
        }
    }
}

impl NetSpec {
    /// Drop probability of the directed link `from → to`.
    pub fn drop_of(&self, from: NodeId, to: Endpoint) -> f64 {
        if let Endpoint::Node(n) = to {
            for l in &self.links {
                if l.from == from && l.to == n {
                    return l.drop;
                }
            }
        }
        self.drop
    }

    /// Whether the random faults apply at `epoch`.
    pub fn faults_active(&self, epoch: u64) -> bool {
        self.active_until.is_none_or(|u| epoch <= u)
    }
}

/// ARQ and collector-ingress tuning for deployments on an unreliable
/// transport.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetConfig {
    /// Epochs before the first retransmission of an unacked frame;
    /// doubles per attempt (exponential backoff).
    pub base_rto: u64,
    /// Total transmission attempts per frame before it is abandoned
    /// (the retry budget).
    pub max_attempts: u32,
    /// Collector ingress queue capacity, in readings.
    pub ingress_capacity: usize,
    /// Queue fill fraction above which the collector widens the
    /// agents' effective reporting intervals (degrade level +1).
    pub high_watermark: f64,
    /// Queue fill fraction below which the degrade level steps back
    /// toward zero.
    pub low_watermark: f64,
    /// Maximum degrade level; the reporting-interval multiplier is
    /// `2^level`.
    pub max_degrade_level: u32,
    /// Record every reading delivered at the collector (test/diagnosis
    /// aid; unbounded memory — keep off in production).
    pub record_deliveries: bool,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            base_rto: 2,
            max_attempts: 5,
            ingress_capacity: 4096,
            high_watermark: 0.75,
            low_watermark: 0.25,
            max_degrade_level: 3,
            record_deliveries: false,
        }
    }
}

/// Cap on the exponent of the exponential backoff: attempts beyond
/// `MAX_BACKOFF_SHIFT + 1` reuse the largest backoff instead of
/// overflowing the shift.
pub const MAX_BACKOFF_SHIFT: u32 = 32;

impl NetConfig {
    /// Backoff before retry number `attempts` (1-based transmission
    /// count): `base_rto · 2^(attempts-1)`, shift-capped — the ARQ
    /// retransmit schedule in closed form. `attempts == 0` is treated
    /// as the first attempt.
    pub fn backoff(&self, attempts: u32) -> u64 {
        let shift = attempts.saturating_sub(1).min(MAX_BACKOFF_SHIFT);
        self.base_rto.saturating_mul(1u64 << shift).max(1)
    }

    /// Epoch offset (from the original send) of the **last**
    /// transmission attempt: the geometric series
    /// `Σ_{i=0}^{A-2} base_rto·2^i = base_rto·(2^(A-1) − 1)` for a
    /// retry budget of `A = max_attempts` transmissions. Zero when the
    /// budget allows a single attempt.
    pub fn last_attempt_offset(&self) -> u64 {
        let mut offset = 0u64;
        for attempt in 1..self.max_attempts {
            offset = offset.saturating_add(self.backoff(attempt));
        }
        offset
    }

    /// Epochs a frame can stay in flight before it is delivered or
    /// abandoned: the last attempt's offset plus one epoch for the
    /// final transmission itself.
    pub fn retry_window(&self) -> u64 {
        self.last_attempt_offset().saturating_add(1)
    }

    /// The reporting-interval multiplier at a degrade level:
    /// `2^level`, shift-capped.
    pub fn degrade_factor_at(level: u32) -> u64 {
        1u64 << level.min(MAX_BACKOFF_SHIFT)
    }

    /// The largest reporting-interval multiplier backpressure can
    /// impose under this configuration.
    pub fn max_degrade_factor(&self) -> u64 {
        Self::degrade_factor_at(self.max_degrade_level)
    }

    /// Probability that a frame facing per-attempt drop probability
    /// `drop` is delivered within the retry budget: the complement of
    /// all `max_attempts` independent attempts failing,
    /// `1 − drop^A`. Purely informational — the worst-case bounds do
    /// not depend on it — but it quantifies how much of the budget a
    /// given `NetSpec` consumes.
    pub fn delivery_probability(&self, drop: f64) -> f64 {
        let p = drop.clamp(0.0, 1.0);
        1.0 - p.powi(self.max_attempts.max(1) as i32)
    }
}

// ----------------------------------------------------------------- stats

/// Fault-injection and delivery counters of a transport.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TransportStats {
    /// Data frames handed to the transport.
    pub data_sent: u64,
    /// Acks handed to the transport.
    pub acks_sent: u64,
    /// Frames dropped by the random loss process.
    pub dropped_random: u64,
    /// Frames dropped on a chaos-injected down link.
    pub dropped_link_down: u64,
    /// Frames cut by an active partition window.
    pub dropped_partition: u64,
    /// Extra copies injected by duplication.
    pub duplicated: u64,
    /// Frames held for later delivery (delay or reorder).
    pub delayed: u64,
    /// Frames actually delivered to a receiver.
    pub delivered: u64,
}

impl TransportStats {
    /// Every frame the transport refused to carry.
    pub fn total_dropped(&self) -> u64 {
        self.dropped_random + self.dropped_link_down + self.dropped_partition
    }
}

// ----------------------------------------------------------------- trait

/// Carries encoded wire frames between agents and up to the collector.
///
/// Sends never block and never report failure to the caller: loss is a
/// property of the network, and reliability is the ARQ layer's job.
pub trait Transport: Send + Sync + std::fmt::Debug {
    /// Carries a data frame from `from` toward `to`, sent during
    /// `epoch`. `seq` is the sender's sequence number (already encoded
    /// in the frame; passed separately so the transport can derive
    /// per-attempt randomness without decoding).
    fn send_data(&self, from: NodeId, to: Endpoint, seq: u64, epoch: u64, frame: Bytes);

    /// Carries an ack for `seq` from `from` back to `to`.
    /// `incarnation` echoes the acked data frame's sender incarnation,
    /// so a restarted sender never credits an ack earned by its
    /// previous life.
    fn send_ack(&self, from: Endpoint, to: NodeId, incarnation: u32, seq: u64, epoch: u64);

    /// Whether delivery is loss-free, exactly-once, and prompt. A
    /// reliable transport lets agents skip the ARQ machinery entirely,
    /// which keeps the perfect path byte-identical to the
    /// pre-transport runtime.
    fn reliable(&self) -> bool;

    /// Releases any held frames whose delivery epoch has arrived.
    /// Called by the coordinator at the start of every epoch, before
    /// ticks go out.
    fn advance(&self, _epoch: u64) {}

    /// Forces a directed link up or down (chaos injection). Returns
    /// `false` when this transport cannot model link faults.
    fn set_link_down(&self, _from: NodeId, _to: NodeId, _down: bool) -> bool {
        false
    }

    /// Snapshot of the fault counters.
    fn stats(&self) -> TransportStats {
        TransportStats::default()
    }
}

// ----------------------------------------------------------------- perfect

/// Immediate, loss-free channel delivery — the deterministic default.
pub struct PerfectTransport {
    peers: Arc<BTreeMap<NodeId, Sender<AgentMsg>>>,
    collector: Sender<(u64, Bytes)>,
}

impl std::fmt::Debug for PerfectTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PerfectTransport")
            .field("peers", &self.peers.len())
            .finish()
    }
}

impl PerfectTransport {
    /// Wraps the deployment's channels.
    pub fn new(
        peers: Arc<BTreeMap<NodeId, Sender<AgentMsg>>>,
        collector: Sender<(u64, Bytes)>,
    ) -> Self {
        PerfectTransport { peers, collector }
    }
}

impl Transport for PerfectTransport {
    fn send_data(&self, _from: NodeId, to: Endpoint, _seq: u64, epoch: u64, frame: Bytes) {
        match to {
            Endpoint::Collector => {
                let _ = self.collector.send((epoch, frame));
            }
            Endpoint::Node(n) => {
                if let Some(tx) = self.peers.get(&n) {
                    let _ = tx.send(AgentMsg::Data {
                        sent_epoch: epoch,
                        frame,
                    });
                }
            }
        }
    }

    fn send_ack(&self, _from: Endpoint, to: NodeId, incarnation: u32, seq: u64, _epoch: u64) {
        if let Some(tx) = self.peers.get(&to) {
            let _ = tx.send(AgentMsg::Ack { incarnation, seq });
        }
    }

    fn reliable(&self) -> bool {
        true
    }
}

// ----------------------------------------------------------------- lossy

/// A frame held for later delivery.
#[derive(Debug)]
enum Queued {
    Data {
        to: Endpoint,
        sent_epoch: u64,
        frame: Bytes,
    },
    Ack {
        to: NodeId,
        incarnation: u32,
        seq: u64,
    },
}

#[derive(Debug, Default)]
struct LossyState {
    /// delivery epoch → held frames.
    delayed: BTreeMap<u64, Vec<Queued>>,
    /// Per-(from, to, seq, is_ack) transmission counter: retransmits
    /// of the same frame draw fresh, still-reproducible outcomes.
    attempts: BTreeMap<(u32, u32, u64, bool), u32>,
    /// Chaos-injected down links (directed).
    link_down: BTreeSet<(u32, u32)>,
    stats: TransportStats,
}

/// Fault-injecting transport driven by a [`NetSpec`].
pub struct LossyTransport {
    peers: Arc<BTreeMap<NodeId, Sender<AgentMsg>>>,
    collector: Sender<(u64, Bytes)>,
    spec: NetSpec,
    state: Mutex<LossyState>,
}

impl std::fmt::Debug for LossyTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LossyTransport")
            .field("peers", &self.peers.len())
            .field("spec", &self.spec)
            .finish()
    }
}

/// SplitMix64: a tiny, high-quality bit mixer. Fault decisions hash
/// the send coordinates through it instead of drawing from a shared
/// mutable RNG stream, so outcomes do not depend on thread scheduling.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A uniform draw in `[0, 1)` for one (link, seq, attempt, salt)
/// coordinate.
fn unit(seed: u64, from: u32, to: u32, seq: u64, attempt: u32, salt: u64) -> f64 {
    let mut h = seed ^ salt.wrapping_mul(0xA076_1D64_78BD_642F);
    h = splitmix64(h ^ (u64::from(from) << 32 | u64::from(to)));
    h = splitmix64(h ^ seq);
    h = splitmix64(h ^ u64::from(attempt));
    (h >> 11) as f64 / (1u64 << 53) as f64
}

const SALT_DROP: u64 = 1;
const SALT_DUP: u64 = 2;
const SALT_DELAY: u64 = 3;
const SALT_REORDER: u64 = 4;
const SALT_DELAY_COPY: u64 = 5;
const SALT_REORDER_COPY: u64 = 6;

/// The `(attempt, salt)` coordinate of the reorder draw for `copy` of
/// transmission `attempt`. Duplicates get their own salt domain at the
/// *same* attempt: deriving the copy's draw at `attempt + 1` instead
/// (as this code once did) aliases the genuine next retry's coordinate
/// for the same (link, seq), correlating outcomes the seeded-hash
/// design promises are independent.
fn reorder_coordinate(attempt: u32, copy: u32) -> (u32, u64) {
    if copy == 0 {
        (attempt, SALT_REORDER)
    } else {
        (attempt, SALT_REORDER_COPY)
    }
}

impl LossyTransport {
    /// Wraps the deployment's channels in a faulty network.
    pub fn new(
        peers: Arc<BTreeMap<NodeId, Sender<AgentMsg>>>,
        collector: Sender<(u64, Bytes)>,
        spec: NetSpec,
    ) -> Self {
        LossyTransport {
            peers,
            collector,
            spec,
            state: Mutex::new(LossyState::default()),
        }
    }

    /// The network description this transport injects.
    pub fn spec(&self) -> &NetSpec {
        &self.spec
    }

    fn deliver(&self, q: Queued, stats: &mut TransportStats) {
        match q {
            Queued::Data {
                to,
                sent_epoch,
                frame,
            } => match to {
                Endpoint::Collector => {
                    let _ = self.collector.send((sent_epoch, frame));
                    stats.delivered += 1;
                }
                Endpoint::Node(n) => {
                    if let Some(tx) = self.peers.get(&n) {
                        let _ = tx.send(AgentMsg::Data { sent_epoch, frame });
                        stats.delivered += 1;
                    }
                }
            },
            Queued::Ack {
                to,
                incarnation,
                seq,
            } => {
                if let Some(tx) = self.peers.get(&to) {
                    let _ = tx.send(AgentMsg::Ack { incarnation, seq });
                    stats.delivered += 1;
                }
            }
        }
    }

    /// The shared faulty path for data and acks. `from`/`to_tag` are
    /// link-key tags; `build` constructs the queued frame per copy.
    #[allow(clippy::too_many_arguments)]
    fn route(
        &self,
        from_node: NodeId,
        from_tag: u32,
        to: Endpoint,
        seq: u64,
        epoch: u64,
        is_ack: bool,
        make: impl Fn() -> Queued,
    ) {
        let to_tag = tag(to);
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if is_ack {
            st.stats.acks_sent += 1;
        } else {
            st.stats.data_sent += 1;
        }

        // Structural faults apply on their own schedules, healed or not.
        if st.link_down.contains(&(from_tag, to_tag)) {
            st.stats.dropped_link_down += 1;
            if remo_obs::enabled() {
                remo_obs::counter("remo_net_dropped_frames_total").inc();
            }
            return;
        }
        if self
            .spec
            .partitions
            .iter()
            .any(|p| p.cuts(from_node, to, epoch))
        {
            st.stats.dropped_partition += 1;
            if remo_obs::enabled() {
                remo_obs::counter("remo_net_dropped_frames_total").inc();
            }
            return;
        }

        if !self.spec.faults_active(epoch) {
            let q = make();
            let stats = &mut st.stats;
            // Deliver inline while holding the lock: cheap, and keeps
            // the delivered counter consistent.
            self.deliver(q, stats);
            return;
        }

        let attempt = {
            let n = st
                .attempts
                .entry((from_tag, to_tag, seq, is_ack))
                .or_insert(0);
            *n += 1;
            *n
        };

        if unit(self.spec.seed, from_tag, to_tag, seq, attempt, SALT_DROP)
            < self.spec.drop_of(from_node, to)
        {
            st.stats.dropped_random += 1;
            if remo_obs::enabled() {
                remo_obs::counter("remo_net_dropped_frames_total").inc();
            }
            return;
        }

        let copies =
            if unit(self.spec.seed, from_tag, to_tag, seq, attempt, SALT_DUP) < self.spec.dup {
                st.stats.duplicated += 1;
                if remo_obs::enabled() {
                    remo_obs::counter("remo_net_duplicated_frames_total").inc();
                }
                2
            } else {
                1
            };

        for copy in 0..copies {
            let salt = if copy == 0 {
                SALT_DELAY
            } else {
                SALT_DELAY_COPY
            };
            let mut d = if self.spec.delay_max == 0 {
                0
            } else {
                (unit(self.spec.seed, from_tag, to_tag, seq, attempt, salt)
                    * (self.spec.delay_max + 1) as f64) as u64
            };
            let (reorder_attempt, reorder_salt) = reorder_coordinate(attempt, copy);
            if unit(
                self.spec.seed,
                from_tag,
                to_tag,
                seq,
                reorder_attempt,
                reorder_salt,
            ) < self.spec.reorder
            {
                d += 1;
            }
            let q = make();
            if d == 0 {
                let stats = &mut st.stats;
                self.deliver(q, stats);
            } else {
                st.stats.delayed += 1;
                if remo_obs::enabled() {
                    remo_obs::counter("remo_net_delayed_frames_total").inc();
                }
                st.delayed.entry(epoch + d).or_default().push(q);
            }
        }
    }
}

impl Transport for LossyTransport {
    fn send_data(&self, from: NodeId, to: Endpoint, seq: u64, epoch: u64, frame: Bytes) {
        self.route(from, from.0, to, seq, epoch, false, || Queued::Data {
            to,
            sent_epoch: epoch,
            frame: frame.clone(),
        });
    }

    fn send_ack(&self, from: Endpoint, to: NodeId, incarnation: u32, seq: u64, epoch: u64) {
        self.route(
            match from {
                Endpoint::Node(n) => n,
                // The collector is never inside a partition's member
                // set; use a sentinel node id for the link key.
                Endpoint::Collector => NodeId(u32::MAX),
            },
            tag(from),
            Endpoint::Node(to),
            seq,
            epoch,
            true,
            || Queued::Ack {
                to,
                incarnation,
                seq,
            },
        );
    }

    fn reliable(&self) -> bool {
        false
    }

    fn advance(&self, epoch: u64) {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let due: Vec<u64> = st.delayed.range(..=epoch).map(|(&e, _)| e).collect();
        for e in due {
            if let Some(queued) = st.delayed.remove(&e) {
                for q in queued {
                    let stats = &mut st.stats;
                    self.deliver(q, stats);
                }
            }
        }
    }

    fn set_link_down(&self, from: NodeId, to: NodeId, down: bool) -> bool {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if down {
            st.link_down.insert((from.0, to.0));
        } else {
            st.link_down.remove(&(from.0, to.0));
        }
        true
    }

    fn stats(&self) -> TransportStats {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).stats
    }
}

// ----------------------------------------------------------------- dedup

/// Idempotent receive-side dedup keyed on a sender's sequence numbers
/// (seqs start at 1): tracks the highest contiguous seq seen plus the
/// out-of-order stragglers, so memory stays bounded by the reorder
/// window instead of the whole history.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SeqTracker {
    contiguous: u64,
    pending: BTreeSet<u64>,
}

impl SeqTracker {
    /// Records `seq`; returns `true` iff it was never seen before.
    pub fn insert(&mut self, seq: u64) -> bool {
        if seq <= self.contiguous || self.pending.contains(&seq) {
            return false;
        }
        self.pending.insert(seq);
        while self.pending.remove(&(self.contiguous + 1)) {
            self.contiguous += 1;
        }
        true
    }

    /// Whether `seq` has been seen.
    pub fn contains(&self, seq: u64) -> bool {
        seq <= self.contiguous || self.pending.contains(&seq)
    }
}

/// [`SeqTracker`] dedup that survives sender restarts: the sequence
/// watermark is scoped to the sender's incarnation. A frame from a
/// newer incarnation resets the window — the restarted sender's seqs
/// legitimately start over, and without the reset every fresh frame
/// would sit below the old watermark and be silently swallowed. A
/// frame from an older incarnation is a stale replay from a previous
/// life and always counts as seen.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IncarnationTracker {
    incarnation: u32,
    seqs: SeqTracker,
    /// Debug-build shadow of the `remo-proto` dedup specification: the
    /// compact watermark implementation must agree with the explicit
    /// seen-set model on every call, or the disagreement is a spec
    /// violation caught at the exact call site.
    #[cfg(debug_assertions)]
    shadow: remo_proto::DedupModel,
}

impl IncarnationTracker {
    /// Records `(incarnation, seq)`; returns `true` iff never seen.
    pub fn insert(&mut self, incarnation: u32, seq: u64) -> bool {
        let fresh = self.insert_impl(incarnation, seq);
        #[cfg(debug_assertions)]
        debug_assert_eq!(
            fresh,
            self.shadow.insert(incarnation, seq),
            "IncarnationTracker::insert({incarnation}, {seq}) diverged from the spec model"
        );
        fresh
    }

    fn insert_impl(&mut self, incarnation: u32, seq: u64) -> bool {
        match incarnation.cmp(&self.incarnation) {
            std::cmp::Ordering::Greater => {
                self.incarnation = incarnation;
                self.seqs = SeqTracker::default();
            }
            std::cmp::Ordering::Less => return false,
            std::cmp::Ordering::Equal => {}
        }
        self.seqs.insert(seq)
    }

    /// Whether `(incarnation, seq)` has been seen. Frames from older
    /// incarnations always have; frames from newer ones never have.
    pub fn contains(&self, incarnation: u32, seq: u64) -> bool {
        let seen = match incarnation.cmp(&self.incarnation) {
            std::cmp::Ordering::Less => true,
            std::cmp::Ordering::Greater => false,
            std::cmp::Ordering::Equal => self.seqs.contains(seq),
        };
        #[cfg(debug_assertions)]
        debug_assert_eq!(
            seen,
            self.shadow.contains(incarnation, seq),
            "IncarnationTracker::contains({incarnation}, {seq}) diverged from the spec model"
        );
        seen
    }

    /// The newest sender incarnation observed.
    pub fn incarnation(&self) -> u32 {
        self.incarnation
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;

    #[test]
    fn seq_tracker_dedups_and_compacts() {
        let mut t = SeqTracker::default();
        assert!(t.insert(1));
        assert!(t.insert(3));
        assert!(!t.insert(1), "replay of a contiguous seq");
        assert!(!t.insert(3), "replay of a pending seq");
        assert!(t.insert(2), "gap fill");
        assert!(t.pending.is_empty(), "window compacted");
        assert_eq!(t.contiguous, 3);
        assert!(t.contains(2) && t.contains(3) && !t.contains(4));
    }

    #[test]
    fn incarnation_tracker_resets_on_restart_and_rejects_past_lives() {
        let mut t = IncarnationTracker::default();
        assert!(t.insert(0, 1));
        assert!(t.insert(0, 2));
        assert!(!t.insert(0, 1), "same-incarnation replay");
        // Restarted sender: seqs start over at 1 and must be fresh.
        assert!(t.insert(1, 1), "post-restart seq 1 swallowed");
        assert_eq!(t.incarnation(), 1);
        assert!(t.contains(1, 1) && !t.contains(1, 2));
        // A straggler from the previous life arrives late: stale.
        assert!(!t.insert(0, 3));
        assert!(t.contains(0, 3), "old incarnations always count seen");
        // Frames from a future incarnation are never pre-seen.
        assert!(!t.contains(2, 1));
    }

    /// Pre-fix, the duplicate copy of attempt `n` drew its reorder
    /// decision at `(attempt n+1, SALT_REORDER)` — byte-for-byte the
    /// genuine next retry's coordinate for the same (link, seq), so
    /// the two outcomes were perfectly correlated. The copy must draw
    /// from its own salt domain: equal draws across many coordinates
    /// would flag the aliasing (with the old
    /// `attempt.wrapping_add(copy)` derivation every single pair
    /// collides and this test fails).
    #[test]
    fn duplicate_reorder_draw_is_independent_of_later_retries() {
        let seed = 2026;
        for &(from, to) in &[(3u32, u32::MAX), (0, 1), (7, 2)] {
            for seq in 0..512u64 {
                for attempt in 1..4u32 {
                    let (a, s) = reorder_coordinate(attempt, 1);
                    let dup_draw = unit(seed, from, to, seq, a, s);
                    let retry_draw = unit(seed, from, to, seq, attempt + 1, SALT_REORDER);
                    assert_ne!(
                        dup_draw,
                        retry_draw,
                        "duplicate of attempt {attempt} aliases retry {} on \
                         ({from},{to},{seq})",
                        attempt + 1
                    );
                }
            }
        }
        // Determinism: the same coordinate always draws the same value,
        // and the primary copy's coordinate is unchanged by the fix.
        let (a, s) = reorder_coordinate(4, 1);
        assert_eq!(unit(7, 1, 2, 9, a, s), unit(7, 1, 2, 9, a, s));
        assert_eq!(reorder_coordinate(5, 0), (5, SALT_REORDER));
        assert_eq!(reorder_coordinate(5, 1), (5, SALT_REORDER_COPY));
    }

    #[test]
    fn unit_draw_is_deterministic_and_uniformish() {
        let a = unit(42, 1, 2, 7, 1, SALT_DROP);
        let b = unit(42, 1, 2, 7, 1, SALT_DROP);
        assert_eq!(a, b, "same coordinates, same draw");
        assert_ne!(
            a,
            unit(42, 1, 2, 7, 2, SALT_DROP),
            "fresh attempt, fresh draw"
        );
        let n = 4000;
        let mean: f64 = (0..n).map(|i| unit(9, 0, 1, i, 1, SALT_DROP)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean} far from uniform");
    }

    #[test]
    fn backoff_closed_forms_match_the_retransmit_schedule() {
        let net = NetConfig::default(); // base_rto 2, 5 attempts
        assert_eq!(net.backoff(1), 2);
        assert_eq!(net.backoff(2), 4);
        assert_eq!(net.backoff(3), 8);
        assert_eq!(net.backoff(0), 2, "attempt 0 treated as the first");
        // Geometric series: 2·(2^(5-1) − 1) = 30.
        assert_eq!(net.last_attempt_offset(), 30);
        assert_eq!(net.retry_window(), 31);
        // Iterated schedule agrees with the closed form.
        let mut offset = 0u64;
        for attempt in 1..net.max_attempts {
            offset += net.backoff(attempt);
        }
        assert_eq!(offset, net.last_attempt_offset());
        // Single-attempt budget: no retries, zero offset.
        let one = NetConfig {
            max_attempts: 1,
            ..NetConfig::default()
        };
        assert_eq!(one.last_attempt_offset(), 0);
        assert_eq!(one.retry_window(), 1);
        // Shift cap: huge attempt counts saturate instead of
        // overflowing.
        assert_eq!(
            net.backoff(200),
            2u64.saturating_mul(1 << MAX_BACKOFF_SHIFT)
        );
        // Zero base_rto still advances the retry clock.
        let zero = NetConfig {
            base_rto: 0,
            ..NetConfig::default()
        };
        assert_eq!(zero.backoff(3), 1);
    }

    #[test]
    fn degrade_factor_and_delivery_probability() {
        assert_eq!(NetConfig::degrade_factor_at(0), 1);
        assert_eq!(NetConfig::degrade_factor_at(3), 8);
        assert_eq!(NetConfig::default().max_degrade_factor(), 8);
        let net = NetConfig::default();
        assert_eq!(net.delivery_probability(0.0), 1.0);
        assert!((net.delivery_probability(0.5) - (1.0 - 0.5f64.powi(5))).abs() < 1e-12);
        assert_eq!(net.delivery_probability(1.0), 0.0);
        assert_eq!(net.delivery_probability(7.0), 0.0, "clamped");
    }

    #[test]
    fn partition_cuts_boundary_both_ways_within_window() {
        let p = PartitionWindow {
            name: "west".into(),
            members: [NodeId(1), NodeId(2)].into_iter().collect(),
            from_epoch: 10,
            until_epoch: Some(20),
        };
        // inside → outside, inside → collector: cut.
        assert!(p.cuts(NodeId(1), Endpoint::Node(NodeId(5)), 15));
        assert!(p.cuts(NodeId(1), Endpoint::Collector, 10));
        // outside → inside: cut. inside → inside: flows.
        assert!(p.cuts(NodeId(5), Endpoint::Node(NodeId(2)), 20));
        assert!(!p.cuts(NodeId(1), Endpoint::Node(NodeId(2)), 15));
        // outside the window: flows.
        assert!(!p.cuts(NodeId(1), Endpoint::Collector, 9));
        assert!(!p.cuts(NodeId(1), Endpoint::Collector, 21));
    }

    #[test]
    fn netspec_serde_roundtrip() {
        let spec = NetSpec {
            seed: 7,
            drop: 0.05,
            links: vec![LinkSpec {
                from: NodeId(1),
                to: NodeId(2),
                drop: 0.5,
            }],
            delay_max: 2,
            dup: 0.01,
            reorder: 0.1,
            partitions: vec![PartitionWindow {
                name: "west".into(),
                members: [NodeId(1)].into_iter().collect(),
                from_epoch: 5,
                until_epoch: None,
            }],
            active_until: Some(100),
        };
        let v = serde::Serialize::serialize(&spec);
        let back: NetSpec = serde::Deserialize::deserialize(&v).unwrap();
        assert_eq!(back, spec);
    }
}
