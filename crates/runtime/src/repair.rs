//! Plan repair around confirmed failures — shared by the in-process
//! [`Deployment`](crate::Deployment) and the distributed
//! `remo-collector` service.
//!
//! [`RepairEngine`] wraps the self-healing
//! [`AdaptivePlanner`]: it applies
//! confirmed failures and recoveries, re-derives every node's tree
//! assignments, and reports which nodes actually changed so the caller
//! can send *targeted* reconfiguration — `AgentMsg::Reconfigure` over
//! channels in process, an `Assign` control frame over sockets.

use crate::agent::TreeAssignment;
use crate::deployment::{changed_assignments, plan_assignments};
use remo_core::adapt::AdaptivePlanner;
use remo_core::{AttrCatalog, CapacityMap, NodeId};
use std::collections::BTreeMap;

/// Repairs the monitoring plan around node failures and recoveries.
#[derive(Debug)]
pub struct RepairEngine {
    healer: AdaptivePlanner,
    /// Capacities as launched, used to reintegrate recovered nodes.
    original_caps: CapacityMap,
    catalog: AttrCatalog,
}

impl RepairEngine {
    /// Wraps `healer`; recovered nodes reintegrate at the capacity the
    /// planner held for them at construction time.
    pub fn new(healer: AdaptivePlanner) -> Self {
        let original_caps = healer.caps().clone();
        let catalog = healer.catalog().clone();
        RepairEngine {
            healer,
            original_caps,
            catalog,
        }
    }

    /// The wrapped planner (for its plan, pairs, and cache counters).
    pub fn planner(&self) -> &AdaptivePlanner {
        &self.healer
    }

    /// Applies `confirmed` failures and `recovered` nodes to the
    /// planner and re-derives assignments. Returns the fresh
    /// assignment map plus the nodes whose assignments changed from
    /// `current` — the only agents that need a reconfiguration
    /// message.
    ///
    /// In debug builds the repaired plan is audited; a repair that
    /// leaves a plan failing an error-severity rule is a logic error.
    pub fn repair(
        &mut self,
        confirmed: &[NodeId],
        recovered: &[NodeId],
        current: &BTreeMap<NodeId, Vec<TreeAssignment>>,
        epoch: u64,
    ) -> (BTreeMap<NodeId, Vec<TreeAssignment>>, Vec<NodeId>) {
        for &node in confirmed {
            self.healer.handle_node_failure(node, epoch);
        }
        for &node in recovered {
            let capacity = self.original_caps.node(node).unwrap_or(0.0);
            self.healer.handle_node_recovery(node, capacity, epoch);
        }
        let fresh = plan_assignments(self.healer.plan(), self.healer.pairs(), &self.catalog);
        let changed = changed_assignments(current, &fresh);
        #[cfg(debug_assertions)]
        {
            // Post-condition: the repaired plan must still pass every
            // error-severity audit rule before agents act on it.
            let outcome = self.healer.audit();
            debug_assert!(
                outcome.is_clean(),
                "repair left a plan that fails the audit:\n{}",
                outcome.render()
            );
        }
        (fresh, changed)
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use remo_core::adapt::AdaptScheme;
    use remo_core::planner::Planner;
    use remo_core::{AttrId, CostModel, PairSet};

    #[test]
    fn repair_returns_only_changed_nodes() {
        let caps = CapacityMap::uniform(6, 100.0, 10_000.0).unwrap();
        let cost = CostModel::new(2.0, 1.0).unwrap();
        let pairs: PairSet = (0..6).map(|n| (NodeId(n), AttrId(0))).collect();
        let catalog = AttrCatalog::new();
        let planner = AdaptivePlanner::new(
            Planner::default(),
            AdaptScheme::Adaptive,
            pairs.clone(),
            caps,
            cost,
            catalog.clone(),
        );
        let current = plan_assignments(planner.plan(), planner.pairs(), &catalog);
        let mut engine = RepairEngine::new(planner);

        let (fresh, changed) = engine.repair(&[NodeId(2)], &[], &current, 3);
        assert!(
            fresh.get(&NodeId(2)).is_none_or(Vec::is_empty),
            "failed node keeps no assignments"
        );
        assert!(!changed.is_empty(), "some survivor must be re-routed");
        assert!(
            changed
                .iter()
                .all(|n| current.get(n).unwrap_or(&Vec::new())
                    != fresh.get(n).unwrap_or(&Vec::new())),
            "changed list only contains nodes whose assignments differ"
        );

        // Repairing again with no events is a no-op diff.
        let (fresh2, changed2) = engine.repair(&[], &[], &fresh, 4);
        assert_eq!(fresh, fresh2);
        assert!(changed2.is_empty());
    }
}
