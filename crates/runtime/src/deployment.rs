//! Deployment coordinator: launches agents for a monitoring plan and
//! drives them through lockstep epochs.
//!
//! The tick barrier doubles as a failure detector: instead of blocking
//! until every agent reports, the coordinator waits up to a
//! configurable deadline ([`HealthConfig::deadline`]) and feeds the
//! set of reporters into a [`HealthMonitor`]. A deployment launched
//! with [`Deployment::launch_self_healing`] closes the loop: confirmed
//! failures invoke `AdaptivePlanner::handle_node_failure`, the old and
//! repaired plans are diffed, and only agents whose assignments
//! changed receive targeted [`AgentMsg::Reconfigure`] messages (with
//! bounded retry and exponential backoff), so orphaned subtrees
//! reattach without restarting the deployment.

use crate::agent::{
    run_agent, Agent, AgentMsg, LocalAttr, Route, Sampler, TickReport, TreeAssignment,
};
use crate::collector::CollectorCore;
use crate::health::{HealthConfig, HealthMonitor, HealthReport, HealthState};
use crate::repair::RepairEngine;
use crate::transport::{
    LossyTransport, NetConfig, NetSpec, PerfectTransport, Transport, TransportStats,
};
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use remo_core::adapt::AdaptivePlanner;
use remo_core::{
    AttrCatalog, AttrId, CapacityMap, CostModel, MonitoringPlan, NodeId, PairSet, Parent,
};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

pub use crate::collector::{DeliveredReading, EpochReport, Observed};

/// Result of [`Deployment::snapshot`]: the observed values for the
/// queried pairs plus the pairs with no observation yet.
pub type Snapshot = (BTreeMap<(NodeId, AttrId), Observed>, Vec<(NodeId, AttrId)>);

/// Which transport a deployment runs on.
#[derive(Debug, Clone, Default)]
pub enum TransportSpec {
    /// Immediate, loss-free in-memory delivery (deterministic; the
    /// pre-transport behavior, bit for bit).
    #[default]
    Perfect,
    /// Fault-injecting transport with ARQ, bounded collector ingress,
    /// and graceful degradation.
    Lossy(NetSpec, NetConfig),
}

/// A running in-process deployment of a monitoring plan.
#[derive(Debug)]
pub struct Deployment {
    agents: Arc<BTreeMap<NodeId, Sender<AgentMsg>>>,
    handles: Vec<JoinHandle<()>>,
    reports: Receiver<TickReport>,
    collector_rx: Receiver<(u64, Bytes)>,
    /// The collector's ingest core: capacity enforcement, dedup,
    /// bounded ingress, backpressure, and the snapshot store.
    collector: CollectorCore,
    transport: Arc<dyn Transport>,
    net: NetConfig,
    /// ARQ + backpressure engaged (transport is unreliable).
    lossy: bool,
    epoch: u64,
    /// Assignments currently pushed to each agent, diffed at repair
    /// time so reconfiguration messages stay targeted.
    assignments: BTreeMap<NodeId, Vec<TreeAssignment>>,
    health_cfg: HealthConfig,
    health: HealthMonitor,
    /// Present only for self-healing deployments.
    healer: Option<RepairEngine>,
}

impl Deployment {
    /// Launches one agent thread per node in `caps` and wires them
    /// according to `plan`, with default failure-detection settings
    /// (see [`HealthConfig`]).
    pub fn launch(
        plan: &MonitoringPlan,
        pairs: &PairSet,
        caps: &CapacityMap,
        cost: CostModel,
        catalog: &AttrCatalog,
        sampler: Sampler,
    ) -> Self {
        Self::launch_with_health(
            plan,
            pairs,
            caps,
            cost,
            catalog,
            sampler,
            HealthConfig::default(),
        )
    }

    /// [`Deployment::launch`] with explicit failure-detector tuning.
    #[allow(clippy::too_many_arguments)]
    pub fn launch_with_health(
        plan: &MonitoringPlan,
        pairs: &PairSet,
        caps: &CapacityMap,
        cost: CostModel,
        catalog: &AttrCatalog,
        sampler: Sampler,
        health_cfg: HealthConfig,
    ) -> Self {
        Self::launch_with_transport(
            plan,
            pairs,
            caps,
            cost,
            catalog,
            sampler,
            health_cfg,
            TransportSpec::Perfect,
        )
    }

    /// [`Deployment::launch_with_health`] on an explicit transport.
    /// With [`TransportSpec::Lossy`] the deployment runs the full
    /// robustness stack: ARQ delivery, bounded collector ingress with
    /// backpressure, and graceful degradation under overload.
    #[allow(clippy::too_many_arguments)]
    pub fn launch_with_transport(
        plan: &MonitoringPlan,
        pairs: &PairSet,
        caps: &CapacityMap,
        cost: CostModel,
        catalog: &AttrCatalog,
        sampler: Sampler,
        health_cfg: HealthConfig,
        tspec: TransportSpec,
    ) -> Self {
        let (report_tx, report_rx) = unbounded();
        let (collector_tx, collector_rx) = unbounded();

        let mut senders: BTreeMap<NodeId, Sender<AgentMsg>> = BTreeMap::new();
        let mut inboxes: BTreeMap<NodeId, Receiver<AgentMsg>> = BTreeMap::new();
        for node in caps.node_ids() {
            let (tx, rx) = unbounded();
            senders.insert(node, tx);
            inboxes.insert(node, rx);
        }
        let peers = Arc::new(senders);

        let (transport, net): (Arc<dyn Transport>, NetConfig) = match tspec {
            TransportSpec::Perfect => (
                Arc::new(PerfectTransport::new(Arc::clone(&peers), collector_tx)),
                NetConfig::default(),
            ),
            TransportSpec::Lossy(spec, net) => (
                Arc::new(LossyTransport::new(Arc::clone(&peers), collector_tx, spec)),
                net,
            ),
        };
        let lossy = !transport.reliable();

        let assignments = plan_assignments(plan, pairs, catalog);
        let mut handles = Vec::new();
        for (node, inbox) in inboxes {
            let agent = Agent::new(
                node,
                inbox,
                Arc::clone(&transport),
                report_tx.clone(),
                caps.node(node).unwrap_or(0.0),
                cost,
                net,
                Arc::clone(&sampler),
                assignments.get(&node).cloned().unwrap_or_default(),
            );
            handles.push(run_agent(agent));
        }

        let health = HealthMonitor::new(peers.keys().copied(), health_cfg.confirm_after);
        Deployment {
            agents: peers,
            handles,
            reports: report_rx,
            collector_rx,
            collector: CollectorCore::new(caps.collector(), cost, net, catalog.clone()),
            transport,
            net,
            lossy,
            epoch: 0,
            assignments,
            health_cfg,
            health,
            healer: None,
        }
    }

    /// Launches a self-healing deployment driven by `planner`'s
    /// current plan: confirmed agent failures trigger
    /// `AdaptivePlanner::handle_node_failure` and a targeted
    /// reconfiguration of the survivors; recovered agents reintegrate
    /// via `handle_node_recovery` at their original capacity.
    pub fn launch_self_healing(
        planner: AdaptivePlanner,
        sampler: Sampler,
        health_cfg: HealthConfig,
    ) -> Self {
        Self::launch_self_healing_with_transport(
            planner,
            sampler,
            health_cfg,
            TransportSpec::Perfect,
        )
    }

    /// [`Deployment::launch_self_healing`] on an explicit transport:
    /// the combination exercised by the chaos soak — node failures
    /// repaired by the planner while the network drops, delays, and
    /// partitions traffic underneath.
    pub fn launch_self_healing_with_transport(
        planner: AdaptivePlanner,
        sampler: Sampler,
        health_cfg: HealthConfig,
        tspec: TransportSpec,
    ) -> Self {
        let caps = planner.caps().clone();
        let catalog = planner.catalog().clone();
        let mut dep = Self::launch_with_transport(
            planner.plan(),
            planner.pairs(),
            &caps,
            planner.cost(),
            &catalog,
            sampler,
            health_cfg,
            tspec,
        );
        dep.healer = Some(RepairEngine::new(planner));
        dep
    }

    /// Current epoch (completed ticks).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The assignments currently pushed to each agent (updated by
    /// launch, [`Deployment::apply_plan`], and plan repair). The
    /// `remo-audit` crate checks these against the plan they claim to
    /// implement.
    pub fn assignments(&self) -> &BTreeMap<NodeId, Vec<TreeAssignment>> {
        &self.assignments
    }

    /// The collector's snapshot of a pair.
    pub fn observed(&self, node: NodeId, attr: AttrId) -> Option<Observed> {
        self.collector.observed(node, attr)
    }

    /// The collector's snapshot of an aggregated attribute.
    pub fn observed_aggregate(&self, attr: AttrId) -> Option<Observed> {
        self.collector.observed_aggregate(attr)
    }

    /// Number of distinct pairs ever observed.
    pub fn observed_pairs(&self) -> usize {
        self.collector.observed_pairs()
    }

    /// Snapshot of an explicit pair list: observed values plus the
    /// pairs with no observation yet (the runtime analog of the
    /// simulator's task-scoped query).
    pub fn snapshot(&self, pairs: impl IntoIterator<Item = (NodeId, AttrId)>) -> Snapshot {
        let mut values = BTreeMap::new();
        let mut missing = Vec::new();
        for (n, a) in pairs {
            match self.collector.store().get(&(n, a)) {
                Some(&o) => {
                    values.insert((n, a), o);
                }
                None => missing.push((n, a)),
            }
        }
        (values, missing)
    }

    /// Current health snapshot (states and incident statistics as of
    /// the last completed tick).
    pub fn health_report(&self) -> HealthReport {
        self.health.report(self.epoch)
    }

    /// Fault counters of the underlying transport (all zero on the
    /// perfect transport).
    pub fn net_stats(&self) -> TransportStats {
        self.transport.stats()
    }

    /// Forces a directed link up or down on the transport (chaos
    /// injection). Returns `false` when the transport cannot model
    /// link faults — the perfect transport cannot.
    pub fn set_link_down(&self, from: NodeId, to: NodeId, down: bool) -> bool {
        self.transport.set_link_down(from, to, down)
    }

    /// Effective reporting-interval multiplier currently in force
    /// (1 = no degradation).
    pub fn degrade_factor(&self) -> u64 {
        self.collector.degrade_factor()
    }

    /// Readings accepted into the store, in order (only populated when
    /// [`NetConfig::record_deliveries`] is set).
    pub fn delivery_log(&self) -> &[DeliveredReading] {
        self.collector.delivery_log()
    }

    /// Per-attribute staleness bounds under the current degradation
    /// level: once the network delivers again (faults healed, queue
    /// drained), a live pair's snapshot is at most
    /// `degrade_factor·period + tree depth + base_rto + 1` epochs old —
    /// the degraded sampling interval, plus one epoch per relay hop,
    /// plus the retransmit timer of the last in-flight frame. During
    /// an outage no finite bound exists (that is what
    /// [`EpochReport::values_lost`] and the abandoned counters
    /// surface); this is the convergence bound the soak test holds the
    /// collector to.
    pub fn staleness_bounds(&self) -> BTreeMap<AttrId, u64> {
        let factor = self.degrade_factor();
        let mut out: BTreeMap<AttrId, u64> = BTreeMap::new();
        for (&node, assigns) in &self.assignments {
            for a in assigns {
                let depth = route_depth(&self.assignments, node, a.tree);
                for la in &a.local {
                    let bound =
                        la.period.max(1).saturating_mul(factor) + depth + self.net.base_rto + 1;
                    let slot = out.entry(la.attr).or_insert(0);
                    *slot = (*slot).max(bound);
                }
            }
        }
        out
    }

    /// Advances one lockstep epoch and returns its aggregate report.
    ///
    /// The tick barrier waits up to [`HealthConfig::deadline`] for
    /// every non-dead agent's report; stragglers are fed to the
    /// failure detector, and (in self-healing deployments) confirmed
    /// failures trigger plan repair before the epoch completes.
    pub fn tick(&mut self) -> EpochReport {
        let _tick_span = remo_obs::span!("runtime.tick");
        self.epoch += 1;
        let epoch = self.epoch;
        let mut report = EpochReport {
            epoch,
            ..EpochReport::default()
        };

        // Release transport-delayed frames due this epoch before the
        // agents start processing it.
        self.transport.advance(epoch);

        for tx in self.agents.values() {
            let _ = tx.send(AgentMsg::Tick { epoch });
        }

        // Deadline-bounded barrier: wait for every expected (non-dead)
        // reporter, but never past the health deadline. Each reporter
        // is credited with the freshest epoch it claimed — a report
        // proves its sender's process is alive *as of that epoch*, so
        // a stale report racing in late cannot satisfy this epoch's
        // liveness check (it is counted as a miss-then-arrival by
        // [`HealthMonitor::observe_reports`]).
        let mut missing: BTreeSet<NodeId> = self.health.expected_reporters();
        let mut reporters: BTreeMap<NodeId, u64> = BTreeMap::new();
        let deadline = Instant::now() + self.health_cfg.deadline;
        loop {
            let fold = |tr: TickReport, report: &mut EpochReport| {
                report.dropped_messages += tr.dropped_messages as u64;
                report.dropped_readings += tr.dropped_readings as u64;
                report.volume += tr.volume;
                report.retransmit_messages += tr.retransmits as u64;
                report.duplicate_messages_ignored += tr.dup_ignored as u64;
                report.abandoned_messages += tr.abandoned as u64;
            };
            let credit = |tr: &TickReport, reporters: &mut BTreeMap<NodeId, u64>| {
                let e = reporters.entry(tr.node).or_insert(tr.epoch);
                *e = (*e).max(tr.epoch);
            };
            if missing.is_empty() {
                // Barrier satisfied; drain anything already queued so
                // reports from recovering (previously dead) agents are
                // seen this epoch rather than next.
                while let Ok(tr) = self.reports.try_recv() {
                    missing.remove(&tr.node);
                    credit(&tr, &mut reporters);
                    fold(tr, &mut report);
                }
                break;
            }
            let wait = deadline.saturating_duration_since(Instant::now());
            match self.reports.recv_timeout(wait) {
                Ok(tr) => {
                    missing.remove(&tr.node);
                    credit(&tr, &mut reporters);
                    fold(tr, &mut report);
                }
                Err(RecvTimeoutError::Timeout) => break,
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }

        let events = self.health.observe_reports(epoch, &reporters);
        report.suspected = events.suspected.len() as u64;
        report.confirmed_dead = events.confirmed.len() as u64;
        report.recovered = events.recovered.len() as u64;

        // Degradation telemetry: readings unhealthy nodes were
        // scheduled to produce this epoch are lost until the plan is
        // repaired around them (their assignments then become empty).
        for (&node, assigns) in self.assignments.iter() {
            if self.health.state(node) == HealthState::Healthy {
                continue;
            }
            let due = due_readings(assigns, epoch);
            if due > 0 {
                self.health.add_values_lost(node, due);
                report.values_lost += due;
            }
        }

        if !events.confirmed.is_empty() || !events.recovered.is_empty() {
            self.repair(&events.confirmed, &events.recovered, epoch, &mut report);
        }
        report.planner_cache = self.healer.as_ref().map(|e| e.planner().cache_stats());

        if self.lossy {
            self.collector_intake_arq(epoch, &mut report);
        } else {
            self.collector_intake_perfect(&mut report);
        }
        export_epoch_metrics(&report);
        report
    }

    /// Collector intake on the reliable transport: frames roots sent
    /// this epoch, processed immediately. This is the pre-transport
    /// behavior, bit for bit — the perfect-path regression test pins
    /// its `EpochReport`s.
    fn collector_intake_perfect(&mut self, report: &mut EpochReport) {
        self.collector.refill();
        while let Ok((sent_epoch, frame)) = self.collector_rx.try_recv() {
            self.collector.accept_perfect(sent_epoch, frame, report);
        }
    }

    /// Collector intake on an unreliable transport: ack + dedup every
    /// arriving frame, stage its readings in the bounded ingress
    /// queue, shed the least valuable readings when the queue
    /// overflows, process under the per-value budget (the paper's
    /// collector-capacity constraint), and signal backpressure to the
    /// agents when the queue stays saturated.
    fn collector_intake_arq(&mut self, epoch: u64, report: &mut EpochReport) {
        self.collector.refill();
        while let Ok((sent_epoch, frame)) = self.collector_rx.try_recv() {
            self.collector
                .accept_arq(epoch, sent_epoch, frame, self.transport.as_ref(), report);
        }
        if let Some(factor) = self.collector.drain_arq(epoch, report) {
            for tx in self.agents.values() {
                let _ = tx.send(AgentMsg::SetDegrade { factor });
            }
        }
    }

    /// Repairs the plan around newly confirmed failures and
    /// reintegrates recovered nodes, sending targeted `Reconfigure`
    /// messages only to agents whose assignments changed.
    fn repair(
        &mut self,
        confirmed: &[NodeId],
        recovered: &[NodeId],
        epoch: u64,
        report: &mut EpochReport,
    ) {
        let Some(healer) = self.healer.as_mut() else {
            return;
        };
        let (fresh, changed) = healer.repair(confirmed, recovered, &self.assignments, epoch);
        for node in changed {
            let Some(tx) = self.agents.get(&node) else {
                continue;
            };
            let next = fresh.get(&node).cloned().unwrap_or_default();
            if send_reconfigure(tx, next, &self.health_cfg) {
                report.reconfigure_messages += 1;
            }
        }
        self.assignments = fresh;
        for &node in confirmed {
            self.health.mark_repaired(node, epoch);
            report.repaired += 1;
        }
    }

    /// Runs `epochs` ticks, returning the summed report.
    pub fn run(&mut self, epochs: u64) -> EpochReport {
        let mut total = EpochReport::default();
        for _ in 0..epochs {
            let r = self.tick();
            total.epoch = r.epoch;
            total.delivered_values += r.delivered_values;
            total.dropped_messages += r.dropped_messages;
            total.dropped_readings += r.dropped_readings;
            total.volume += r.volume;
            total.suspected += r.suspected;
            total.confirmed_dead += r.confirmed_dead;
            total.repaired += r.repaired;
            total.recovered += r.recovered;
            total.values_lost += r.values_lost;
            total.reconfigure_messages += r.reconfigure_messages;
            total.retransmit_messages += r.retransmit_messages;
            total.duplicate_messages_ignored += r.duplicate_messages_ignored;
            total.abandoned_messages += r.abandoned_messages;
            total.shed_readings += r.shed_readings;
            total.backpressure_signals += r.backpressure_signals;
            // Latest-state fields: keep the final epoch's snapshot.
            total.ingress_depth = r.ingress_depth;
            total.degrade_factor = r.degrade_factor;
            // Counters are already cumulative; keep the latest snapshot.
            total.planner_cache = r.planner_cache.or(total.planner_cache);
        }
        total
    }

    /// Pushes a new plan to the agents (topology adaptation); returns
    /// the number of reconfiguration messages sent.
    pub fn apply_plan(
        &mut self,
        plan: &MonitoringPlan,
        pairs: &PairSet,
        catalog: &AttrCatalog,
    ) -> usize {
        let assignments = plan_assignments(plan, pairs, catalog);
        let mut sent = 0;
        for (&node, tx) in self.agents.iter() {
            let a = assignments.get(&node).cloned().unwrap_or_default();
            let _ = tx.send(AgentMsg::Reconfigure { assignments: a });
            sent += 1;
        }
        self.assignments = assignments;
        sent
    }

    /// Crashes a node: it drops all traffic until healed. Takes
    /// effect from the next tick.
    pub fn fail_node(&mut self, node: NodeId) {
        if let Some(tx) = self.agents.get(&node) {
            let _ = tx.send(AgentMsg::SetFailed(true));
        }
    }

    /// Heals a crashed node.
    pub fn heal_node(&mut self, node: NodeId) {
        if let Some(tx) = self.agents.get(&node) {
            let _ = tx.send(AgentMsg::SetFailed(false));
        }
    }

    /// Stops all agent threads and waits for them.
    pub fn shutdown(mut self) {
        for tx in self.agents.values() {
            let _ = tx.send(AgentMsg::Shutdown);
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for Deployment {
    fn drop(&mut self) {
        for tx in self.agents.values() {
            let _ = tx.send(AgentMsg::Shutdown);
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Publishes one epoch's aggregate report into the process-wide
/// metrics registry (no-op while observability is disabled). The
/// suspected/confirmed/recovered transitions are counted at their
/// source in [`HealthMonitor::observe`], not re-counted here.
fn export_epoch_metrics(report: &EpochReport) {
    if !remo_obs::enabled() {
        return;
    }
    remo_obs::counter("remo_runtime_epochs_total").inc();
    remo_obs::counter("remo_runtime_delivered_values_total").inc_by(report.delivered_values as f64);
    remo_obs::counter("remo_runtime_dropped_messages_total").inc_by(report.dropped_messages as f64);
    remo_obs::counter("remo_runtime_dropped_readings_total").inc_by(report.dropped_readings as f64);
    remo_obs::counter("remo_runtime_volume_cost_units_total").inc_by(report.volume);
    remo_obs::counter("remo_runtime_values_lost_total").inc_by(report.values_lost as f64);
    remo_obs::counter("remo_runtime_reconfigure_messages_total")
        .inc_by(report.reconfigure_messages as f64);
}

/// Sends a targeted `Reconfigure` with bounded retry and exponential
/// backoff; returns whether the send eventually succeeded.
fn send_reconfigure(
    tx: &Sender<AgentMsg>,
    assignments: Vec<TreeAssignment>,
    cfg: &HealthConfig,
) -> bool {
    let attempts = cfg.reconfigure_retries.max(1);
    let mut backoff = cfg.backoff;
    let mut msg = AgentMsg::Reconfigure { assignments };
    for attempt in 0..attempts {
        match tx.send(msg) {
            Ok(()) => return true,
            Err(err) => {
                msg = err.0;
                if remo_obs::enabled() {
                    remo_obs::counter("remo_runtime_reconfigure_retries_total").inc();
                }
                remo_obs::event!("runtime.reconfigure.retry",
                    "attempt" => attempt + 1,
                    "backoff_ms" => backoff.as_millis() as u64);
                if attempt + 1 < attempts {
                    std::thread::sleep(backoff);
                    backoff = backoff.saturating_mul(2);
                }
            }
        }
    }
    remo_obs::event!("runtime.reconfigure.failed", "attempts" => attempts);
    false
}

/// Computes every node's tree assignments from a plan. This is the
/// single source of truth the deployment configures agents from; the
/// `remo-audit` crate re-derives it to cross-check live assignments
/// against the plan they claim to implement.
pub fn plan_assignments(
    plan: &MonitoringPlan,
    pairs: &PairSet,
    catalog: &AttrCatalog,
) -> BTreeMap<NodeId, Vec<TreeAssignment>> {
    let mut out: BTreeMap<NodeId, Vec<TreeAssignment>> = BTreeMap::new();
    for (k, (set, planned)) in plan.partition().sets().iter().zip(plan.trees()).enumerate() {
        let Some(tree) = planned.tree.as_ref() else {
            continue;
        };
        let relay_aggregation: BTreeMap<AttrId, remo_core::Aggregation> = set
            .iter()
            .map(|&a| (a, catalog.get_or_default(a).aggregation()))
            .collect();
        for node in tree.nodes() {
            // `is_valid` guarantees members have parents, but this path
            // must not panic on a corrupted plan: skip the orphan and
            // let the audit's tree-acyclic rule report it.
            let Some(raw_parent) = tree.parent(node) else {
                continue;
            };
            let parent = match raw_parent {
                Parent::Collector => Route::Collector,
                Parent::Node(p) => Route::Node(p),
            };
            let local: Vec<LocalAttr> = pairs
                .attrs_of(node)
                .map(|owned| {
                    owned
                        .intersection(set)
                        .map(|&attr| {
                            let info = catalog.get_or_default(attr);
                            LocalAttr {
                                attr,
                                period: (1.0 / info.frequency()).round().max(1.0) as u64,
                                aggregation: info.aggregation(),
                            }
                        })
                        .collect()
                })
                .unwrap_or_default();
            out.entry(node).or_default().push(TreeAssignment {
                tree: k as u32,
                parent,
                local,
                relay_aggregation: relay_aggregation.clone(),
            });
        }
    }
    out
}

/// Hops from `node` to the collector along `tree`'s parent chain (1 =
/// the node is the tree's root). Walks are bounded, so a corrupted
/// cyclic topology yields a finite (conservative) depth instead of a
/// hang.
fn route_depth(
    assignments: &BTreeMap<NodeId, Vec<TreeAssignment>>,
    node: NodeId,
    tree: u32,
) -> u64 {
    let mut depth: u64 = 1;
    let mut cur = node;
    for _ in 0..=assignments.len() {
        let Some(a) = assignments
            .get(&cur)
            .and_then(|v| v.iter().find(|a| a.tree == tree))
        else {
            return depth;
        };
        match a.parent {
            Route::Collector => return depth,
            Route::Node(p) => {
                depth += 1;
                cur = p;
            }
        }
    }
    depth
}

/// Readings `assigns` schedules for production at `epoch` — the per-
/// epoch quantum the deployment charges to `values_lost` while the
/// owning node is unhealthy. Shared with the `remo-mc` model checker
/// so its loss accounting audits the real deployment arithmetic.
pub fn due_readings(assigns: &[TreeAssignment], epoch: u64) -> u64 {
    assigns
        .iter()
        .flat_map(|a| a.local.iter())
        .filter(|la| epoch.is_multiple_of(la.period.max(1)))
        .count() as u64
}

/// Nodes whose assignments differ between `old` and `new` (a missing
/// entry counts as empty) — exactly the agents plan repair sends a
/// targeted `Reconfigure` to. Shared with the `remo-mc` model checker
/// so its reconfiguration counts match the deployment's.
pub fn changed_assignments(
    old: &BTreeMap<NodeId, Vec<TreeAssignment>>,
    new: &BTreeMap<NodeId, Vec<TreeAssignment>>,
) -> Vec<NodeId> {
    const EMPTY: &Vec<TreeAssignment> = &Vec::new();
    old.keys()
        .chain(new.keys())
        .copied()
        .collect::<BTreeSet<NodeId>>()
        .into_iter()
        .filter(|node| old.get(node).unwrap_or(EMPTY) != new.get(node).unwrap_or(EMPTY))
        .collect()
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use remo_core::planner::Planner;

    fn sampler() -> Sampler {
        Arc::new(|n: NodeId, a: AttrId, e: u64| (n.0 * 1000 + a.0 * 10) as f64 + (e % 7) as f64)
    }

    fn dense_pairs(nodes: u32, attrs: u32) -> PairSet {
        (0..nodes)
            .flat_map(|n| (0..attrs).map(move |a| (NodeId(n), AttrId(a))))
            .collect()
    }

    fn launch(nodes: usize, attrs: u32, budget: f64) -> (Deployment, PairSet) {
        let caps = CapacityMap::uniform(nodes, budget, 10_000.0).unwrap();
        let cost = CostModel::new(2.0, 1.0).unwrap();
        let pairs = dense_pairs(nodes as u32, attrs);
        let catalog = AttrCatalog::new();
        let plan = Planner::default().plan_with_catalog(&pairs, &caps, cost, &catalog);
        let dep = Deployment::launch(&plan, &pairs, &caps, cost, &catalog, sampler());
        (dep, pairs)
    }

    #[test]
    fn all_pairs_eventually_observed() {
        let (mut dep, pairs) = launch(6, 2, 100.0);
        dep.run(12);
        assert_eq!(dep.observed_pairs(), pairs.len());
        dep.shutdown();
    }

    #[test]
    fn observed_values_match_sampler() {
        let (mut dep, pairs) = launch(5, 1, 100.0);
        dep.run(10);
        let s = sampler();
        for (n, a) in pairs.iter() {
            let obs = dep.observed(n, a).expect("pair observed");
            assert_eq!(
                obs.value,
                s(n, a, obs.produced),
                "value integrity for {n}/{a}"
            );
        }
        dep.shutdown();
    }

    #[test]
    fn staleness_matches_tree_depth() {
        let (mut dep, pairs) = launch(8, 1, 100.0);
        dep.run(10);
        for (n, a) in pairs.iter() {
            let obs = dep.observed(n, a).expect("observed");
            let staleness = obs.received - obs.produced;
            assert!(
                (1..=8).contains(&staleness),
                "staleness {staleness} out of range for {n}"
            );
        }
        dep.shutdown();
    }

    #[test]
    fn tight_budget_drops_traffic() {
        // Plan with generous budgets, then deploy on starved nodes: the
        // runtime must shed load rather than violate capacity.
        let plan_caps = CapacityMap::uniform(10, 1_000.0, 10_000.0).unwrap();
        let run_caps = CapacityMap::uniform(10, 6.0, 10_000.0).unwrap();
        let cost = CostModel::new(2.0, 1.0).unwrap();
        let pairs = dense_pairs(10, 4);
        let catalog = AttrCatalog::new();
        let plan = Planner::default().plan_with_catalog(&pairs, &plan_caps, cost, &catalog);
        let mut dep = Deployment::launch(&plan, &pairs, &run_caps, cost, &catalog, sampler());
        let total = dep.run(10);
        assert!(
            total.dropped_readings > 0 || total.dropped_messages > 0,
            "starved deployment must drop"
        );
        dep.shutdown();
    }

    #[test]
    fn reconfiguration_switches_topology() {
        let caps = CapacityMap::uniform(6, 100.0, 10_000.0).unwrap();
        let cost = CostModel::new(2.0, 1.0).unwrap();
        let pairs = dense_pairs(6, 2);
        let catalog = AttrCatalog::new();
        let plan = Planner::default().plan_with_catalog(&pairs, &caps, cost, &catalog);
        let mut dep = Deployment::launch(&plan, &pairs, &caps, cost, &catalog, sampler());
        dep.run(5);
        let before = dep.observed_pairs();

        // Add a new attribute and re-plan.
        let mut pairs2 = pairs.clone();
        for n in 0..6 {
            pairs2.insert(NodeId(n), AttrId(9));
        }
        let plan2 = Planner::default().plan_with_catalog(&pairs2, &caps, cost, &catalog);
        let sent = dep.apply_plan(&plan2, &pairs2, &catalog);
        assert_eq!(sent, 6);
        dep.run(8);
        assert!(dep.observed_pairs() > before);
        assert!(dep.observed(NodeId(3), AttrId(9)).is_some());
        dep.shutdown();
    }

    #[test]
    fn failed_node_stops_and_heals() {
        let (mut dep, pairs) = launch(6, 1, 100.0);
        dep.run(8);
        // Every pair observed while healthy.
        assert_eq!(dep.observed_pairs(), pairs.len());
        let victim = NodeId(2);
        dep.fail_node(victim);
        dep.run(5);
        let stale = dep.observed(victim, AttrId(0)).unwrap();
        let lag_when_failed = dep.epoch() - stale.produced;
        assert!(
            lag_when_failed >= 4,
            "victim's snapshot should go stale, lag {lag_when_failed}"
        );
        dep.heal_node(victim);
        dep.run(8);
        let fresh = dep.observed(victim, AttrId(0)).unwrap();
        assert!(
            dep.epoch() - fresh.produced <= 8,
            "healed node resumes reporting"
        );
        assert!(fresh.produced > stale.produced);
        dep.shutdown();
    }

    #[test]
    fn snapshot_query_partitions_observed_and_missing() {
        let (mut dep, pairs) = launch(5, 1, 100.0);
        dep.run(8);
        let mut wanted: Vec<(NodeId, AttrId)> = pairs.iter().collect();
        wanted.push((NodeId(99), AttrId(0))); // never observed
        let (values, missing) = dep.snapshot(wanted);
        assert_eq!(values.len(), pairs.len());
        assert_eq!(missing, vec![(NodeId(99), AttrId(0))]);
        dep.shutdown();
    }

    #[test]
    fn volume_accounts_for_messages() {
        let (mut dep, _) = launch(4, 1, 100.0);
        let r = dep.tick();
        // 4 nodes each send one message on the first epoch.
        assert!(r.volume > 0.0);
        dep.shutdown();
    }

    fn fast_health(confirm_after: u32) -> HealthConfig {
        HealthConfig {
            deadline: std::time::Duration::from_millis(60),
            confirm_after,
            ..HealthConfig::default()
        }
    }

    #[test]
    fn silent_crash_is_suspected_then_confirmed() {
        let caps = CapacityMap::uniform(6, 100.0, 10_000.0).unwrap();
        let cost = CostModel::new(2.0, 1.0).unwrap();
        let pairs = dense_pairs(6, 1);
        let catalog = AttrCatalog::new();
        let plan = Planner::default().plan_with_catalog(&pairs, &caps, cost, &catalog);
        let mut dep = Deployment::launch_with_health(
            &plan,
            &pairs,
            &caps,
            cost,
            &catalog,
            sampler(),
            fast_health(2),
        );
        dep.run(4);
        assert!(dep.health_report().dead_nodes().is_empty());

        let victim = NodeId(4);
        dep.fail_node(victim);
        let total = dep.run(4);
        let hr = dep.health_report();
        assert_eq!(hr.states[&victim], HealthState::Dead);
        assert_eq!(hr.stats[&victim].confirmed, 1);
        assert_eq!(
            hr.stats[&victim].time_to_detect, 1,
            "K=2 confirms one epoch after first miss"
        );
        assert!(
            hr.stats[&victim].values_lost > 0,
            "victim's due readings counted as lost"
        );
        assert_eq!(total.suspected, 1);
        assert_eq!(total.confirmed_dead, 1);
        assert_eq!(total.repaired, 0, "no healer attached");
        dep.shutdown();
    }

    fn self_healing(nodes: usize, attrs: u32, confirm_after: u32) -> (Deployment, PairSet) {
        use remo_core::adapt::{AdaptScheme, AdaptivePlanner};
        let caps = CapacityMap::uniform(nodes, 100.0, 10_000.0).unwrap();
        let cost = CostModel::new(2.0, 1.0).unwrap();
        let pairs = dense_pairs(nodes as u32, attrs);
        let planner = AdaptivePlanner::new(
            Planner::default(),
            AdaptScheme::Adaptive,
            pairs.clone(),
            caps,
            cost,
            AttrCatalog::new(),
        );
        let dep = Deployment::launch_self_healing(planner, sampler(), fast_health(confirm_after));
        (dep, pairs)
    }

    #[test]
    fn confirmed_failure_triggers_plan_repair() {
        let (mut dep, pairs) = self_healing(8, 1, 2);
        dep.run(6);
        assert_eq!(dep.observed_pairs(), pairs.len());

        let victim = NodeId(3);
        dep.fail_node(victim);
        let total = dep.run(4);
        assert_eq!(total.confirmed_dead, 1);
        assert_eq!(total.repaired, 1, "healer repairs on confirmation");
        assert!(
            total.reconfigure_messages >= 1,
            "at least one survivor re-routed"
        );
        let hr = dep.health_report();
        assert_eq!(hr.stats[&victim].repaired, 1);
        assert!(hr.stats[&victim].mttr_epochs >= hr.stats[&victim].time_to_detect);

        // After repair the survivors keep delivering fresh values.
        dep.run(6);
        let now = dep.epoch();
        for (n, a) in pairs.iter().filter(|(n, _)| *n != victim) {
            let obs = dep.observed(n, a).expect("survivor pair observed");
            assert!(
                now - obs.produced <= 10,
                "survivor {n}/{a} stale after repair: lag {}",
                now - obs.produced
            );
        }
        dep.shutdown();
    }

    #[test]
    fn recovered_node_is_reintegrated() {
        let (mut dep, pairs) = self_healing(6, 1, 2);
        dep.run(4);
        let victim = NodeId(2);
        dep.fail_node(victim);
        dep.run(4);
        assert_eq!(dep.health_report().states[&victim], HealthState::Dead);

        dep.heal_node(victim);
        let total = dep.run(10);
        assert_eq!(total.recovered, 1);
        let hr = dep.health_report();
        assert_eq!(hr.states[&victim], HealthState::Healthy);
        assert_eq!(hr.stats[&victim].recovered, 1);
        // The recovered node's pairs are being collected again.
        let now = dep.epoch();
        for (n, a) in pairs.iter().filter(|(n, _)| *n == victim) {
            let obs = dep.observed(n, a).expect("recovered pair observed");
            assert!(
                now - obs.produced <= 10,
                "recovered {n}/{a} should be fresh, lag {}",
                now - obs.produced
            );
        }
        dep.shutdown();
    }
}
