//! Deployment coordinator: launches agents for a monitoring plan and
//! drives them through lockstep epochs.

use crate::agent::{
    run_agent, Agent, AgentMsg, LocalAttr, Route, Sampler, TickReport, TreeAssignment,
};
use crate::proto::WireMessage;
use crate::throttle::TokenBucket;
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};
use remo_core::{
    AttrCatalog, AttrId, CapacityMap, CostModel, MonitoringPlan, NodeId, PairSet, Parent,
};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::thread::JoinHandle;

/// A value stored at the collector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Observed {
    /// Reported value.
    pub value: f64,
    /// Epoch the sample was produced.
    pub produced: u64,
    /// Epoch it reached the collector.
    pub received: u64,
    /// Samples folded in (aggregates).
    pub contributors: u32,
}

/// Aggregate statistics of one epoch across the deployment.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EpochReport {
    /// Epoch covered.
    pub epoch: u64,
    /// Values recorded at the collector.
    pub delivered_values: u64,
    /// Messages dropped anywhere.
    pub dropped_messages: u64,
    /// Readings lost anywhere.
    pub dropped_readings: u64,
    /// Monitoring traffic volume in cost units.
    pub volume: f64,
}

/// A running in-process deployment of a monitoring plan.
#[derive(Debug)]
pub struct Deployment {
    agents: Arc<BTreeMap<NodeId, Sender<AgentMsg>>>,
    handles: Vec<JoinHandle<()>>,
    reports: Receiver<TickReport>,
    collector_rx: Receiver<(u64, Bytes)>,
    collector_bucket: TokenBucket,
    cost: CostModel,
    epoch: u64,
    store: BTreeMap<(NodeId, AttrId), Observed>,
    aggregates: BTreeMap<AttrId, Observed>,
    node_count: usize,
}

impl Deployment {
    /// Launches one agent thread per node in `caps` and wires them
    /// according to `plan`.
    pub fn launch(
        plan: &MonitoringPlan,
        pairs: &PairSet,
        caps: &CapacityMap,
        cost: CostModel,
        catalog: &AttrCatalog,
        sampler: Sampler,
    ) -> Self {
        let (report_tx, report_rx) = unbounded();
        let (collector_tx, collector_rx) = unbounded();

        let mut senders: BTreeMap<NodeId, Sender<AgentMsg>> = BTreeMap::new();
        let mut inboxes: BTreeMap<NodeId, Receiver<AgentMsg>> = BTreeMap::new();
        for node in caps.node_ids() {
            let (tx, rx) = unbounded();
            senders.insert(node, tx);
            inboxes.insert(node, rx);
        }
        let peers = Arc::new(senders);

        let assignments = assignments_of(plan, pairs, catalog);
        let mut handles = Vec::new();
        for (node, inbox) in inboxes {
            let agent = Agent::new(
                node,
                inbox,
                Arc::clone(&peers),
                collector_tx.clone(),
                report_tx.clone(),
                caps.node(node).unwrap_or(0.0),
                cost,
                Arc::clone(&sampler),
                assignments.get(&node).cloned().unwrap_or_default(),
            );
            handles.push(run_agent(agent));
        }

        Deployment {
            node_count: peers.len(),
            agents: peers,
            handles,
            reports: report_rx,
            collector_rx,
            collector_bucket: TokenBucket::new(caps.collector()),
            cost,
            epoch: 0,
            store: BTreeMap::new(),
            aggregates: BTreeMap::new(),
        }
    }

    /// Current epoch (completed ticks).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The collector's snapshot of a pair.
    pub fn observed(&self, node: NodeId, attr: AttrId) -> Option<Observed> {
        self.store.get(&(node, attr)).copied()
    }

    /// The collector's snapshot of an aggregated attribute.
    pub fn observed_aggregate(&self, attr: AttrId) -> Option<Observed> {
        self.aggregates.get(&attr).copied()
    }

    /// Number of distinct pairs ever observed.
    pub fn observed_pairs(&self) -> usize {
        self.store.len()
    }

    /// Snapshot of an explicit pair list: observed values plus the
    /// pairs with no observation yet (the runtime analog of the
    /// simulator's task-scoped query).
    pub fn snapshot(
        &self,
        pairs: impl IntoIterator<Item = (NodeId, AttrId)>,
    ) -> (BTreeMap<(NodeId, AttrId), Observed>, Vec<(NodeId, AttrId)>) {
        let mut values = BTreeMap::new();
        let mut missing = Vec::new();
        for (n, a) in pairs {
            match self.store.get(&(n, a)) {
                Some(&o) => {
                    values.insert((n, a), o);
                }
                None => missing.push((n, a)),
            }
        }
        (values, missing)
    }

    /// Advances one lockstep epoch and returns its aggregate report.
    pub fn tick(&mut self) -> EpochReport {
        self.epoch += 1;
        let epoch = self.epoch;
        let mut report = EpochReport {
            epoch,
            ..EpochReport::default()
        };

        for tx in self.agents.values() {
            let _ = tx.send(AgentMsg::Tick { epoch });
        }
        for _ in 0..self.node_count {
            let tr = self
                .reports
                .recv()
                .expect("agents alive while deployment holds their senders");
            report.dropped_messages += tr.dropped_messages as u64;
            report.dropped_readings += tr.dropped_readings as u64;
            report.volume += tr.volume;
        }

        // Collector intake: frames roots sent this epoch.
        self.collector_bucket.refill();
        while let Ok((sent_epoch, frame)) = self.collector_rx.try_recv() {
            let Ok(msg) = WireMessage::decode(frame) else {
                continue;
            };
            let cost = self.cost.message_cost(msg.readings.len() as f64);
            if !self.collector_bucket.try_consume(cost) {
                report.dropped_messages += 1;
                report.dropped_readings += msg.readings.len() as u64;
                continue;
            }
            for r in msg.readings {
                let observed = Observed {
                    value: r.value,
                    produced: r.produced,
                    received: sent_epoch + 1,
                    contributors: r.contributors,
                };
                report.delivered_values += r.contributors as u64;
                if r.contributors > 1 {
                    let slot = self.aggregates.entry(r.attr).or_insert(observed);
                    if observed.produced >= slot.produced {
                        *slot = observed;
                    }
                } else {
                    let slot = self.store.entry((r.node, r.attr)).or_insert(observed);
                    if observed.produced >= slot.produced {
                        *slot = observed;
                    }
                }
            }
        }
        report
    }

    /// Runs `epochs` ticks, returning the summed report.
    pub fn run(&mut self, epochs: u64) -> EpochReport {
        let mut total = EpochReport::default();
        for _ in 0..epochs {
            let r = self.tick();
            total.epoch = r.epoch;
            total.delivered_values += r.delivered_values;
            total.dropped_messages += r.dropped_messages;
            total.dropped_readings += r.dropped_readings;
            total.volume += r.volume;
        }
        total
    }

    /// Pushes a new plan to the agents (topology adaptation); returns
    /// the number of reconfiguration messages sent.
    pub fn apply_plan(
        &mut self,
        plan: &MonitoringPlan,
        pairs: &PairSet,
        catalog: &AttrCatalog,
    ) -> usize {
        let assignments = assignments_of(plan, pairs, catalog);
        let mut sent = 0;
        for (&node, tx) in self.agents.iter() {
            let a = assignments.get(&node).cloned().unwrap_or_default();
            let _ = tx.send(AgentMsg::Reconfigure { assignments: a });
            sent += 1;
        }
        sent
    }

    /// Crashes a node: it drops all traffic until healed. Takes
    /// effect from the next tick.
    pub fn fail_node(&mut self, node: NodeId) {
        if let Some(tx) = self.agents.get(&node) {
            let _ = tx.send(AgentMsg::SetFailed(true));
        }
    }

    /// Heals a crashed node.
    pub fn heal_node(&mut self, node: NodeId) {
        if let Some(tx) = self.agents.get(&node) {
            let _ = tx.send(AgentMsg::SetFailed(false));
        }
    }

    /// Stops all agent threads and waits for them.
    pub fn shutdown(mut self) {
        for tx in self.agents.values() {
            let _ = tx.send(AgentMsg::Shutdown);
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for Deployment {
    fn drop(&mut self) {
        for tx in self.agents.values() {
            let _ = tx.send(AgentMsg::Shutdown);
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Computes every node's tree assignments from a plan.
fn assignments_of(
    plan: &MonitoringPlan,
    pairs: &PairSet,
    catalog: &AttrCatalog,
) -> BTreeMap<NodeId, Vec<TreeAssignment>> {
    let mut out: BTreeMap<NodeId, Vec<TreeAssignment>> = BTreeMap::new();
    for (k, (set, planned)) in plan
        .partition()
        .sets()
        .iter()
        .zip(plan.trees())
        .enumerate()
    {
        let Some(tree) = planned.tree.as_ref() else {
            continue;
        };
        let relay_aggregation: BTreeMap<AttrId, remo_core::Aggregation> = set
            .iter()
            .map(|&a| (a, catalog.get_or_default(a).aggregation()))
            .collect();
        for node in tree.nodes() {
            let parent = match tree.parent(node).expect("member has parent") {
                Parent::Collector => Route::Collector,
                Parent::Node(p) => Route::Node(p),
            };
            let local: Vec<LocalAttr> = pairs
                .attrs_of(node)
                .map(|owned| {
                    owned
                        .intersection(set)
                        .map(|&attr| {
                            let info = catalog.get_or_default(attr);
                            LocalAttr {
                                attr,
                                period: (1.0 / info.frequency()).round().max(1.0) as u64,
                                aggregation: info.aggregation(),
                            }
                        })
                        .collect()
                })
                .unwrap_or_default();
            out.entry(node).or_default().push(TreeAssignment {
                tree: k as u32,
                parent,
                local,
                relay_aggregation: relay_aggregation.clone(),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use remo_core::planner::Planner;

    fn sampler() -> Sampler {
        Arc::new(|n: NodeId, a: AttrId, e: u64| (n.0 * 1000 + a.0 * 10) as f64 + (e % 7) as f64)
    }

    fn dense_pairs(nodes: u32, attrs: u32) -> PairSet {
        (0..nodes)
            .flat_map(|n| (0..attrs).map(move |a| (NodeId(n), AttrId(a))))
            .collect()
    }

    fn launch(nodes: usize, attrs: u32, budget: f64) -> (Deployment, PairSet) {
        let caps = CapacityMap::uniform(nodes, budget, 10_000.0).unwrap();
        let cost = CostModel::new(2.0, 1.0).unwrap();
        let pairs = dense_pairs(nodes as u32, attrs);
        let catalog = AttrCatalog::new();
        let plan = Planner::default().plan_with_catalog(&pairs, &caps, cost, &catalog);
        let dep = Deployment::launch(&plan, &pairs, &caps, cost, &catalog, sampler());
        (dep, pairs)
    }

    #[test]
    fn all_pairs_eventually_observed() {
        let (mut dep, pairs) = launch(6, 2, 100.0);
        dep.run(12);
        assert_eq!(dep.observed_pairs(), pairs.len());
        dep.shutdown();
    }

    #[test]
    fn observed_values_match_sampler() {
        let (mut dep, pairs) = launch(5, 1, 100.0);
        dep.run(10);
        let s = sampler();
        for (n, a) in pairs.iter() {
            let obs = dep.observed(n, a).expect("pair observed");
            assert_eq!(obs.value, s(n, a, obs.produced), "value integrity for {n}/{a}");
        }
        dep.shutdown();
    }

    #[test]
    fn staleness_matches_tree_depth() {
        let (mut dep, pairs) = launch(8, 1, 100.0);
        dep.run(10);
        for (n, a) in pairs.iter() {
            let obs = dep.observed(n, a).expect("observed");
            let staleness = obs.received - obs.produced;
            assert!(
                (1..=8).contains(&staleness),
                "staleness {staleness} out of range for {n}"
            );
        }
        dep.shutdown();
    }

    #[test]
    fn tight_budget_drops_traffic() {
        // Plan with generous budgets, then deploy on starved nodes: the
        // runtime must shed load rather than violate capacity.
        let plan_caps = CapacityMap::uniform(10, 1_000.0, 10_000.0).unwrap();
        let run_caps = CapacityMap::uniform(10, 6.0, 10_000.0).unwrap();
        let cost = CostModel::new(2.0, 1.0).unwrap();
        let pairs = dense_pairs(10, 4);
        let catalog = AttrCatalog::new();
        let plan = Planner::default().plan_with_catalog(&pairs, &plan_caps, cost, &catalog);
        let mut dep = Deployment::launch(&plan, &pairs, &run_caps, cost, &catalog, sampler());
        let total = dep.run(10);
        assert!(
            total.dropped_readings > 0 || total.dropped_messages > 0,
            "starved deployment must drop"
        );
        dep.shutdown();
    }

    #[test]
    fn reconfiguration_switches_topology() {
        let caps = CapacityMap::uniform(6, 100.0, 10_000.0).unwrap();
        let cost = CostModel::new(2.0, 1.0).unwrap();
        let pairs = dense_pairs(6, 2);
        let catalog = AttrCatalog::new();
        let plan = Planner::default().plan_with_catalog(&pairs, &caps, cost, &catalog);
        let mut dep = Deployment::launch(&plan, &pairs, &caps, cost, &catalog, sampler());
        dep.run(5);
        let before = dep.observed_pairs();

        // Add a new attribute and re-plan.
        let mut pairs2 = pairs.clone();
        for n in 0..6 {
            pairs2.insert(NodeId(n), AttrId(9));
        }
        let plan2 = Planner::default().plan_with_catalog(&pairs2, &caps, cost, &catalog);
        let sent = dep.apply_plan(&plan2, &pairs2, &catalog);
        assert_eq!(sent, 6);
        dep.run(8);
        assert!(dep.observed_pairs() > before);
        assert!(dep.observed(NodeId(3), AttrId(9)).is_some());
        dep.shutdown();
    }

    #[test]
    fn failed_node_stops_and_heals() {
        let (mut dep, pairs) = launch(6, 1, 100.0);
        dep.run(8);
        // Every pair observed while healthy.
        assert_eq!(dep.observed_pairs(), pairs.len());
        let victim = NodeId(2);
        dep.fail_node(victim);
        dep.run(5);
        let stale = dep.observed(victim, AttrId(0)).unwrap();
        let lag_when_failed = dep.epoch() - stale.produced;
        assert!(
            lag_when_failed >= 4,
            "victim's snapshot should go stale, lag {lag_when_failed}"
        );
        dep.heal_node(victim);
        dep.run(8);
        let fresh = dep.observed(victim, AttrId(0)).unwrap();
        assert!(
            dep.epoch() - fresh.produced <= 8,
            "healed node resumes reporting"
        );
        assert!(fresh.produced > stale.produced);
        dep.shutdown();
    }

    #[test]
    fn snapshot_query_partitions_observed_and_missing() {
        let (mut dep, pairs) = launch(5, 1, 100.0);
        dep.run(8);
        let mut wanted: Vec<(NodeId, AttrId)> = pairs.iter().collect();
        wanted.push((NodeId(99), AttrId(0))); // never observed
        let (values, missing) = dep.snapshot(wanted);
        assert_eq!(values.len(), pairs.len());
        assert_eq!(missing, vec![(NodeId(99), AttrId(0))]);
        dep.shutdown();
    }

    #[test]
    fn volume_accounts_for_messages() {
        let (mut dep, _) = launch(4, 1, 100.0);
        let r = dep.tick();
        // 4 nodes each send one message on the first epoch.
        assert!(r.volume > 0.0);
        dep.shutdown();
    }
}
