//! Fuzz-shaped hardening tests for the wire protocol decoder: no
//! byte string — random, truncated, or bit-flipped — may ever panic
//! the decoder; every rejection must be a structured [`DecodeError`].

#![allow(clippy::unwrap_used, clippy::expect_used)]

use bytes::{BufMut, Bytes, BytesMut};
use proptest::prelude::*;
use remo_core::{AttrId, NodeId};
use remo_runtime::proto::{DecodeError, WireMessage, WireReading, HEADER_LEN, MAGIC, VERSION};

fn valid_frame(readings: usize) -> Bytes {
    WireMessage::data(
        3,
        NodeId(7),
        99,
        (0..readings)
            .map(|i| WireReading {
                node: NodeId(i as u32),
                attr: AttrId(i as u32 % 5),
                value: i as f64 * 0.25,
                produced: 40 + i as u64,
                contributors: 1,
            })
            .collect(),
    )
    .encode()
}

proptest! {
    /// Arbitrary byte strings decode to Ok or a structured error —
    /// never a panic, never an unbounded allocation.
    #[test]
    fn random_bytes_never_panic(
        bytes in prop::collection::vec(0u16..256, 0..512),
    ) {
        let raw: Vec<u8> = bytes.into_iter().map(|b| b as u8).collect();
        let _ = WireMessage::decode(Bytes::from(raw));
    }

    /// Every strict prefix of a valid frame is rejected with a
    /// structured error; the full frame round-trips.
    #[test]
    fn truncations_are_structured_errors(
        readings in 0usize..12,
        cut in 0u64..u64::MAX,
    ) {
        let frame = valid_frame(readings);
        let len = (cut % frame.len() as u64) as usize; // strict prefix
        let err = WireMessage::decode(frame.slice(0..len)).unwrap_err();
        if len < HEADER_LEN {
            prop_assert_eq!(err, DecodeError::Truncated);
        } else {
            prop_assert!(matches!(err, DecodeError::BadCount(_)));
        }
        prop_assert!(WireMessage::decode(frame).is_ok());
    }

    /// Single-byte corruption never panics, and corrupting the fixed
    /// header fields yields the matching structured error.
    #[test]
    fn bit_flips_never_panic(
        readings in 0usize..8,
        pos in 0u64..u64::MAX,
        val in 0u16..256,
    ) {
        let frame = valid_frame(readings);
        let mut raw = BytesMut::from(&frame[..]);
        let pos = (pos % raw.len() as u64) as usize;
        let val = val as u8;
        if raw[pos] != val {
            raw[pos] = val;
            match WireMessage::decode(raw.freeze()) {
                // Corruption past the magic/version/kind prefix can
                // still parse (tree, from, seq, count-shrink, payload
                // bytes all remain structurally valid frames).
                Ok(_) => prop_assert!(pos >= 4, "magic/version/kind corruption must not pass"),
                Err(DecodeError::BadMagic(_)) => prop_assert!(pos < 2),
                Err(DecodeError::BadVersion(v)) => {
                    prop_assert_eq!(pos, 2);
                    prop_assert_ne!(v, VERSION);
                }
                Err(DecodeError::BadKind(_)) => prop_assert_eq!(pos, 3),
                Err(DecodeError::BadCount(_)) => {
                    // Only a grown count field (bytes 20..24) trips this.
                    prop_assert!((20..24).contains(&pos));
                }
                Err(DecodeError::Truncated) => prop_assert!(false, "length never changed"),
            }
        }
    }

    /// Headers declaring absurd reading counts are rejected without
    /// allocating for them.
    #[test]
    fn hostile_counts_rejected(count in 0u64..u64::from(u32::MAX)) {
        let count = count as u32;
        let mut buf = BytesMut::new();
        buf.put_u16(MAGIC);
        buf.put_u8(VERSION);
        buf.put_u8(0); // data
        buf.put_u32(0); // tree
        buf.put_u32(0); // from
        buf.put_u64(0); // seq
        buf.put_u32(count);
        let res = WireMessage::decode(buf.freeze());
        if count == 0 {
            prop_assert!(res.is_ok());
        } else {
            prop_assert_eq!(res.unwrap_err(), DecodeError::BadCount(count));
        }
    }
}

/// The decoder handles the empty buffer and the exact-header boundary.
#[test]
fn boundary_sizes() {
    assert_eq!(
        WireMessage::decode(Bytes::new()).unwrap_err(),
        DecodeError::Truncated
    );
    let frame = valid_frame(0);
    assert_eq!(frame.len(), HEADER_LEN);
    assert!(WireMessage::decode(frame).is_ok());
}
