//! Fuzz-shaped hardening tests for the wire-facing decoders: no byte
//! string — random, truncated, segmented, or bit-flipped — may ever
//! panic the data-plane decoder ([`WireMessage`]), the stream framing
//! codec ([`FrameDecoder`]), or the control-plane decoder
//! ([`CtrlMsg`]); every rejection must be a structured error.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use bytes::{BufMut, Bytes, BytesMut};
use proptest::prelude::*;
use remo_core::{AttrId, NodeId};
use remo_runtime::ctrl::{CtrlError, CtrlMsg, CTRL_MAGIC, CTRL_VERSION};
use remo_runtime::framing::{Envelope, FrameDecoder, FrameError, MAX_FRAME_LEN};
use remo_runtime::proto::{DecodeError, WireMessage, WireReading, HEADER_LEN, MAGIC, VERSION};

fn valid_frame(readings: usize) -> Bytes {
    WireMessage::data(
        3,
        NodeId(7),
        99,
        (0..readings)
            .map(|i| WireReading {
                node: NodeId(i as u32),
                attr: AttrId(i as u32 % 5),
                value: i as f64 * 0.25,
                produced: 40 + i as u64,
                contributors: 1,
            })
            .collect(),
    )
    .encode()
}

proptest! {
    /// Arbitrary byte strings decode to Ok or a structured error —
    /// never a panic, never an unbounded allocation.
    #[test]
    fn random_bytes_never_panic(
        bytes in prop::collection::vec(0u16..256, 0..512),
    ) {
        let raw: Vec<u8> = bytes.into_iter().map(|b| b as u8).collect();
        let _ = WireMessage::decode(Bytes::from(raw));
    }

    /// Every strict prefix of a valid frame is rejected with a
    /// structured error; the full frame round-trips.
    #[test]
    fn truncations_are_structured_errors(
        readings in 0usize..12,
        cut in 0u64..u64::MAX,
    ) {
        let frame = valid_frame(readings);
        let len = (cut % frame.len() as u64) as usize; // strict prefix
        let err = WireMessage::decode(frame.slice(0..len)).unwrap_err();
        if len < HEADER_LEN {
            prop_assert_eq!(err, DecodeError::Truncated);
        } else {
            prop_assert!(matches!(err, DecodeError::BadCount(_)));
        }
        prop_assert!(WireMessage::decode(frame).is_ok());
    }

    /// Single-byte corruption never panics, and corrupting the fixed
    /// header fields yields the matching structured error.
    #[test]
    fn bit_flips_never_panic(
        readings in 0usize..8,
        pos in 0u64..u64::MAX,
        val in 0u16..256,
    ) {
        let frame = valid_frame(readings);
        let mut raw = BytesMut::from(&frame[..]);
        let pos = (pos % raw.len() as u64) as usize;
        let val = val as u8;
        if raw[pos] != val {
            raw[pos] = val;
            match WireMessage::decode(raw.freeze()) {
                // Corruption past the magic/version/kind prefix can
                // still parse (tree, from, seq, count-shrink, payload
                // bytes all remain structurally valid frames).
                Ok(_) => prop_assert!(pos >= 4, "magic/version/kind corruption must not pass"),
                Err(DecodeError::BadMagic(_)) => prop_assert!(pos < 2),
                Err(DecodeError::BadVersion(v)) => {
                    prop_assert_eq!(pos, 2);
                    prop_assert_ne!(v, VERSION);
                }
                Err(DecodeError::BadKind(_)) => prop_assert_eq!(pos, 3),
                Err(DecodeError::BadCount(_)) => {
                    // Only a grown count field (bytes 24..28) trips this.
                    prop_assert!((24..28).contains(&pos));
                }
                Err(DecodeError::Truncated) => prop_assert!(false, "length never changed"),
            }
        }
    }

    /// Headers declaring absurd reading counts are rejected without
    /// allocating for them.
    #[test]
    fn hostile_counts_rejected(count in 0u64..u64::from(u32::MAX)) {
        let count = count as u32;
        let mut buf = BytesMut::new();
        buf.put_u16(MAGIC);
        buf.put_u8(VERSION);
        buf.put_u8(0); // data
        buf.put_u32(0); // tree
        buf.put_u32(0); // from
        buf.put_u32(0); // incarnation
        buf.put_u64(0); // seq
        buf.put_u32(count);
        let res = WireMessage::decode(buf.freeze());
        if count == 0 {
            prop_assert!(res.is_ok());
        } else {
            prop_assert_eq!(res.unwrap_err(), DecodeError::BadCount(count));
        }
    }
}

proptest! {
    /// Arbitrary byte streams fed to the framing decoder in arbitrary
    /// chunks either produce envelopes or a structured [`FrameError`]
    /// — never a panic, never unbounded buffering past the length cap.
    #[test]
    fn framing_random_streams_never_panic(
        bytes in prop::collection::vec(0u16..256, 0..1024),
        chunk in 1usize..64,
    ) {
        let bytes: Vec<u8> = bytes.into_iter().map(|b| b as u8).collect();
        let mut dec = FrameDecoder::new();
        'outer: for piece in bytes.chunks(chunk) {
            dec.push(piece);
            loop {
                match dec.try_next() {
                    Ok(Some(_)) => {}
                    Ok(None) => break,
                    Err(FrameError::TooLong(n)) => {
                        prop_assert!(n as usize > MAX_FRAME_LEN);
                        break 'outer;
                    }
                    Err(FrameError::TooShort(_)) => break 'outer,
                }
            }
        }
    }

    /// A sequence of valid envelopes survives any adversarial
    /// segmentation of the byte stream: every envelope comes back
    /// intact and in order regardless of chunk boundaries.
    #[test]
    fn framing_reassembles_across_any_segmentation(
        payload_lens in prop::collection::vec(0usize..96, 1..8),
        chunk in 1usize..48,
    ) {
        let envelopes: Vec<Envelope> = payload_lens
            .iter()
            .enumerate()
            .map(|(i, &n)| Envelope {
                dest: i as u32,
                chan: (i % 2) as u8,
                sent_epoch: i as u64,
                payload: Bytes::from_vec((0..n).map(|b| b as u8).collect()),
            })
            .collect();
        let mut wire = Vec::new();
        for e in &envelopes {
            wire.extend_from_slice(&e.encode());
        }
        let mut dec = FrameDecoder::new();
        let mut out = Vec::new();
        for piece in wire.chunks(chunk) {
            dec.push(piece);
            while let Some(e) = dec.try_next().unwrap() {
                out.push(e);
            }
        }
        prop_assert_eq!(out, envelopes);
        prop_assert_eq!(dec.pending(), 0);
    }

    /// Hostile length prefixes fail immediately — before the decoder
    /// waits for (or allocates) the declared body.
    #[test]
    fn framing_hostile_lengths_fail_fast(len in (MAX_FRAME_LEN as u32 + 1)..u32::MAX) {
        let mut dec = FrameDecoder::new();
        dec.push(&len.to_be_bytes());
        prop_assert_eq!(dec.try_next(), Err(FrameError::TooLong(len)));
    }

    /// Arbitrary byte strings never panic the control-plane decoder.
    #[test]
    fn ctrl_random_bytes_never_panic(
        bytes in prop::collection::vec(0u16..256, 0..512),
    ) {
        let raw: Vec<u8> = bytes.into_iter().map(|b| b as u8).collect();
        let _ = CtrlMsg::decode(Bytes::from(raw));
    }

    /// Single-byte corruption of a valid control frame never panics.
    #[test]
    fn ctrl_bit_flips_never_panic(
        epoch in 0u64..u64::MAX,
        pos in 0u64..u64::MAX,
        val in 0u16..256,
    ) {
        let frame = CtrlMsg::Tick { epoch }.encode();
        let mut raw = frame.to_vec();
        let pos = (pos % raw.len() as u64) as usize;
        raw[pos] = val as u8;
        let _ = CtrlMsg::decode(Bytes::from(raw));
    }

    /// Regression (failed before the decode hardening): a valid frame
    /// followed by garbage must not decode — trailing bytes mean a
    /// corrupt frame or a future, wider payload revision, and silently
    /// accepting the prefix would misparse either.
    #[test]
    fn ctrl_trailing_bytes_are_rejected(
        epoch in 0u64..u64::MAX,
        extra in 1usize..32,
    ) {
        for (msg, tag) in [
            (CtrlMsg::Tick { epoch }, 3u8),
            (CtrlMsg::Degrade { factor: epoch }, 5),
            (CtrlMsg::Shutdown, 6),
        ] {
            let mut raw = msg.encode().to_vec();
            raw.extend(std::iter::repeat_n(0xAB, extra));
            prop_assert_eq!(
                CtrlMsg::decode(Bytes::from(raw)),
                Err(CtrlError::TrailingBytes { kind: tag, extra })
            );
        }
    }

    /// Regression: an unknown (future) message kind is a structured
    /// [`CtrlError::UnknownKind`] carrying the tag, whatever bytes
    /// follow it.
    #[test]
    fn ctrl_unknown_kinds_are_structured(
        tag in 7u16..256,
        body in prop::collection::vec(0u16..256, 0..64),
    ) {
        let tag = tag as u8;
        let mut buf = BytesMut::new();
        buf.put_u16(CTRL_MAGIC);
        buf.put_u8(CTRL_VERSION);
        buf.put_u8(tag);
        for b in body {
            buf.put_u8(b as u8);
        }
        prop_assert_eq!(
            CtrlMsg::decode(buf.freeze()),
            Err(CtrlError::UnknownKind(tag))
        );
    }

    /// Regression: payload truncation is attributed to the kind being
    /// decoded — `Truncated` alone is reserved for a frame cut inside
    /// the fixed header.
    #[test]
    fn ctrl_payload_truncations_attribute_the_kind(cut in 0u64..u64::MAX) {
        for (msg, tag) in [
            (
                CtrlMsg::Hello {
                    node: NodeId(1),
                    incarnation: 2,
                },
                0u8,
            ),
            (CtrlMsg::Tick { epoch: 3 }, 3),
            (CtrlMsg::Degrade { factor: 4 }, 5),
        ] {
            let full = msg.encode();
            let cut = (cut % full.len() as u64) as usize; // strict prefix
            let err = CtrlMsg::decode(full.slice(..cut)).unwrap_err();
            if cut < 4 {
                prop_assert_eq!(err, CtrlError::Truncated);
            } else {
                prop_assert_eq!(err, CtrlError::TruncatedPayload { kind: tag });
            }
        }
    }
}

/// The decoder handles the empty buffer and the exact-header boundary.
#[test]
fn boundary_sizes() {
    assert_eq!(
        WireMessage::decode(Bytes::new()).unwrap_err(),
        DecodeError::Truncated
    );
    let frame = valid_frame(0);
    assert_eq!(frame.len(), HEADER_LEN);
    assert!(WireMessage::decode(frame).is_ok());
}
