//! Model-checked concurrency tests for the PR-1 failure-detection
//! state machine: the epoch-deadline health detector and the
//! token-bucket throttle, explored exhaustively (up to the preemption
//! and iteration bounds) by `loom::model`'s deterministic scheduler.
//!
//! Run with: `RUSTFLAGS="--cfg loom" cargo test -p remo-runtime --test loom`
//! (scripts/check.sh does this, with a separate target dir so the
//! normal build cache survives, and a bounded `LOOM_MAX_ITER`).
#![cfg(loom)]
#![allow(clippy::unwrap_used, clippy::expect_used)]

use loom::sync::{Arc, Mutex};
use loom::thread;
use remo_core::NodeId;
use remo_runtime::{HealthMonitor, HealthState, TokenBucket};
use std::collections::BTreeSet;

/// Every test in this file races at least two threads, so the
/// scheduler must have found more than one distinct interleaving —
/// otherwise the model checking was vacuous.
fn assert_explored_schedules() {
    let explored = loom::explored_iterations();
    assert!(
        explored > 1,
        "loom explored only {explored} interleaving(s); the schedule search is broken"
    );
}

fn rank(s: HealthState) -> u8 {
    match s {
        HealthState::Healthy => 0,
        HealthState::Suspected => 1,
        HealthState::Dead => 2,
    }
}

/// A silent node's state must progress Healthy → Suspected → Dead
/// monotonically: no interleaving of the coordinator's observe loop
/// with a concurrent reader may ever show the detector moving
/// backwards, and after `confirm_after` misses the verdict is Dead.
#[test]
fn detector_confirms_silent_node_monotonically() {
    loom::model(|| {
        let monitor = Arc::new(Mutex::new(HealthMonitor::new(
            [NodeId(0), NodeId(1)],
            2, // confirm_after
        )));

        let writer = {
            let monitor = Arc::clone(&monitor);
            thread::spawn(move || {
                let reporters: BTreeSet<NodeId> = [NodeId(0)].into_iter().collect();
                for epoch in 1..=3 {
                    monitor.lock().unwrap().observe(epoch, &reporters);
                }
            })
        };
        let reader = {
            let monitor = Arc::clone(&monitor);
            thread::spawn(move || {
                let mut last = 0;
                for _ in 0..4 {
                    let seen = rank(monitor.lock().unwrap().state(NodeId(1)));
                    assert!(seen >= last, "detector regressed: {last} -> {seen}");
                    // The healthy reporter never degrades at all.
                    assert_eq!(
                        monitor.lock().unwrap().state(NodeId(0)),
                        HealthState::Healthy
                    );
                    last = seen;
                    thread::yield_now();
                }
            })
        };
        writer.join().unwrap();
        reader.join().unwrap();

        let m = monitor.lock().unwrap();
        assert_eq!(m.state(NodeId(1)), HealthState::Dead);
        let report = m.report(3);
        assert_eq!(report.dead_nodes(), vec![NodeId(1)]);
        assert_eq!(report.total_confirmed(), 1);
        // First miss at epoch 1, confirmed at epoch 2.
        assert_eq!(report.stats[&NodeId(1)].time_to_detect, 1);
    });
    assert_explored_schedules();
}

/// A dead node that reports again is recovered exactly once, and a
/// concurrent reader only ever sees Dead-then-Healthy, never a
/// half-updated state.
#[test]
fn detector_recovers_reporting_node() {
    loom::model(|| {
        let monitor = Arc::new(Mutex::new(HealthMonitor::new([NodeId(0)], 1)));
        // Kill the node deterministically before the race.
        let nobody: BTreeSet<NodeId> = BTreeSet::new();
        monitor.lock().unwrap().observe(1, &nobody);
        monitor.lock().unwrap().observe(2, &nobody);
        assert_eq!(monitor.lock().unwrap().state(NodeId(0)), HealthState::Dead);

        let writer = {
            let monitor = Arc::clone(&monitor);
            thread::spawn(move || {
                let back: BTreeSet<NodeId> = [NodeId(0)].into_iter().collect();
                let events = monitor.lock().unwrap().observe(3, &back);
                assert_eq!(events.recovered, vec![NodeId(0)]);
            })
        };
        let reader = {
            let monitor = Arc::clone(&monitor);
            thread::spawn(move || {
                for _ in 0..3 {
                    let s = monitor.lock().unwrap().state(NodeId(0));
                    assert!(
                        s == HealthState::Dead || s == HealthState::Healthy,
                        "recovery passed through {s:?}"
                    );
                    thread::yield_now();
                }
            })
        };
        writer.join().unwrap();
        reader.join().unwrap();

        let m = monitor.lock().unwrap();
        assert_eq!(m.state(NodeId(0)), HealthState::Healthy);
        assert_eq!(m.report(3).stats[&NodeId(0)].recovered, 1);
    });
    assert_explored_schedules();
}

/// Two racing consumers on one bucket: capacity admits at most one of
/// them, the loser is cleanly rejected, and refill never overshoots
/// the configured capacity.
#[test]
fn throttle_admits_at_most_one_racing_consumer() {
    loom::model(|| {
        let bucket = Arc::new(Mutex::new(TokenBucket::new(1.0)));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let bucket = Arc::clone(&bucket);
                thread::spawn(move || bucket.lock().unwrap().try_consume(0.6))
            })
            .collect();
        let admitted = handles
            .into_iter()
            .map(|h| h.join().unwrap())
            .filter(|&won| won)
            .count();
        assert_eq!(admitted, 1, "exactly one 0.6 consume fits in 1.0");

        let mut b = bucket.lock().unwrap();
        assert!(b.available() >= -1e-9, "try_consume overdrew the bucket");
        b.refill();
        assert!(
            b.available() <= b.capacity() + 1e-9,
            "refill overshot capacity"
        );
    });
    assert_explored_schedules();
}

/// A forced `charge` overdraft (the coordinator debits traffic that
/// already happened) must carry its debt through `refill` rather than
/// being forgiven, under any interleaving with a competing consumer.
#[test]
fn throttle_overdraft_survives_refill() {
    loom::model(|| {
        let bucket = Arc::new(Mutex::new(TokenBucket::new(1.0)));
        let charger = {
            let bucket = Arc::clone(&bucket);
            thread::spawn(move || bucket.lock().unwrap().charge(2.5))
        };
        let consumer = {
            let bucket = Arc::clone(&bucket);
            thread::spawn(move || bucket.lock().unwrap().try_consume(0.4))
        };
        charger.join().unwrap();
        let consumed = consumer.join().unwrap();

        let mut b = bucket.lock().unwrap();
        b.refill();
        // Debt: -1.5 (-1.9 if the consume won first) + 1.0 capacity.
        let expected = if consumed { -0.9 } else { -0.5 };
        assert!(
            (b.available() - expected).abs() < 1e-9,
            "refill forgave overdraft: available {} expected {expected}",
            b.available()
        );
    });
    assert_explored_schedules();
}
