//! Substrate benchmarks: simulator epoch throughput and wire-protocol
//! encode/decode.

// Benchmark scaffolding: inputs are compile-time constants, so a
// failed unwrap is a broken harness, not a runtime error path.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use remo_core::planner::Planner;
use remo_core::{AttrCatalog, AttrId, CapacityMap, CostModel, NodeId, PairSet};
use remo_runtime::proto::{WireMessage, WireReading};
use remo_sim::{SimConfig, SimSetup, Simulator};
use std::collections::BTreeMap;

fn bench_simulator_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_step");
    group.sample_size(20);
    for &nodes in &[50usize, 200] {
        let pairs: PairSet = (0..nodes as u32)
            .flat_map(|n| (0..5).map(move |a| (NodeId(n), AttrId(a))))
            .collect();
        let caps = CapacityMap::uniform(nodes, 200.0, 10_000.0).expect("caps");
        let cost = CostModel::new(10.0, 1.0).expect("cost");
        let catalog = AttrCatalog::new();
        let plan = Planner::default().plan_with_catalog(&pairs, &caps, cost, &catalog);
        group.throughput(Throughput::Elements(pairs.len() as u64));
        group.bench_with_input(BenchmarkId::new("epoch", nodes), &nodes, |b, _| {
            let mut sim = Simulator::new(SimSetup {
                plan: &plan,
                planned_pairs: &pairs,
                metric_pairs: None,
                caps: &caps,
                cost,
                catalog: &catalog,
                aliases: BTreeMap::new(),
                config: SimConfig::default(),
            });
            b.iter(|| sim.step());
        });
    }
    group.finish();
}

fn bench_wire_protocol(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire");
    for &n in &[1usize, 64, 1024] {
        let msg = WireMessage::data(
            3,
            NodeId(7),
            1,
            (0..n)
                .map(|i| WireReading {
                    node: NodeId(i as u32),
                    attr: AttrId((i % 50) as u32),
                    value: i as f64 * 0.5,
                    produced: 1_000 + i as u64,
                    contributors: 1,
                })
                .collect(),
        );
        group.throughput(Throughput::Bytes(msg.encoded_len() as u64));
        group.bench_with_input(BenchmarkId::new("encode", n), &msg, |b, msg| {
            b.iter(|| msg.encode());
        });
        let frame = msg.encode();
        group.bench_with_input(BenchmarkId::new("decode", n), &frame, |b, frame| {
            b.iter(|| WireMessage::decode(frame.clone()).expect("valid frame"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_simulator_step, bench_wire_protocol);
criterion_main!(benches);
