//! Tree-construction benchmarks: the four builders (Fig. 7's
//! candidates) and the adjustment-optimization variants (Fig. 10's
//! timing dimension).

// Benchmark scaffolding: inputs are compile-time constants, so a
// failed unwrap is a broken harness, not a runtime error path.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use remo_core::build::{
    build_tree, AdjustConfig, BuildRequest, BuilderKind, LocalLoad, NodeDemand,
};
use remo_core::{AttrId, CostModel, NodeId};

fn uniform_request(nodes: usize, budget: f64) -> BuildRequest {
    BuildRequest {
        attrs: [AttrId(0)].into_iter().collect(),
        demand: (0..nodes)
            .map(|i| NodeDemand {
                node: NodeId(i as u32),
                load: LocalLoad::holistic(2.0),
                budget,
                pairs: 2,
            })
            .collect(),
        collector_budget: 1e9,
        cost: CostModel::new(6.0, 1.0).expect("cost"),
        funnels: Vec::new(),
    }
}

/// Hub-pressure request (the Fig. 10 adjust-heavy regime).
fn hub_request(nodes: usize) -> BuildRequest {
    let hub = 0.7 * nodes as f64 * 2.0;
    BuildRequest {
        attrs: [AttrId(0)].into_iter().collect(),
        demand: (0..nodes)
            .map(|i| NodeDemand {
                node: NodeId(i as u32),
                load: LocalLoad::holistic(2.0),
                budget: 30.0 + hub * (1.0 - i as f64 / nodes as f64),
                pairs: 2,
            })
            .collect(),
        collector_budget: 1e9,
        cost: CostModel::new(6.0, 1.0).expect("cost"),
        funnels: Vec::new(),
    }
}

fn bench_builders(c: &mut Criterion) {
    let mut group = c.benchmark_group("tree_builders");
    group.sample_size(20);
    for &nodes in &[50usize, 200] {
        let req = uniform_request(nodes, 60.0);
        for (name, kind) in [
            ("star", BuilderKind::Star),
            ("chain", BuilderKind::Chain),
            ("max_avb", BuilderKind::MaxAvb),
            ("adaptive", BuilderKind::default()),
        ] {
            group.bench_with_input(BenchmarkId::new(name, nodes), &kind, |b, &kind| {
                b.iter(|| build_tree(kind, &req));
            });
        }
    }
    group.finish();
}

fn bench_adjust_optimizations(c: &mut Criterion) {
    let mut group = c.benchmark_group("adjusting_procedure");
    group.sample_size(10);
    let req = hub_request(200);
    for (name, cfg) in [
        ("basic", AdjustConfig::basic()),
        (
            "branch_based",
            AdjustConfig {
                branch_based: true,
                subtree_only: false,
            },
        ),
        ("combined", AdjustConfig::default()),
    ] {
        group.bench_with_input(BenchmarkId::new(name, 200), &cfg, |b, &cfg| {
            b.iter(|| build_tree(BuilderKind::Adaptive(cfg), &req));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_builders, bench_adjust_optimizations);
criterion_main!(benches);
