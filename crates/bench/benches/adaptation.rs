//! Adaptation-scheme benchmarks: planning time per task-update batch
//! for D-A, REBUILD, NO-THROTTLE, ADAPTIVE (the Fig. 9a dimension).

// Benchmark scaffolding: inputs are compile-time constants, so a
// failed unwrap is a broken harness, not a runtime error path.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use remo_core::adapt::{AdaptScheme, AdaptivePlanner};
use remo_core::planner::Planner;
use remo_core::{AttrCatalog, CapacityMap, CostModel, MonitoringTask, PairSet, TaskId};
use remo_workloads::churn::{churn_pairs, ChurnConfig};
use remo_workloads::TaskGenConfig;

fn initial_pairs(nodes: usize) -> PairSet {
    let gen = TaskGenConfig::small_scale(nodes, 40);
    let mut rng = SmallRng::seed_from_u64(9);
    gen.generate(40, TaskId(0), &mut rng)
        .iter()
        .flat_map(MonitoringTask::pairs)
        .collect()
}

fn bench_adaptation_schemes(c: &mut Criterion) {
    let mut group = c.benchmark_group("adaptation_update");
    group.sample_size(10);
    let nodes = 40usize;
    let pairs = initial_pairs(nodes);
    let caps = CapacityMap::uniform(nodes, 300.0, 6_000.0).expect("caps");
    let cost = CostModel::new(20.0, 1.0).expect("cost");
    let churn_cfg = ChurnConfig {
        node_fraction: 0.05,
        attr_fraction: 0.5,
        attr_universe: 40,
    };

    for (name, scheme) in [
        ("direct_apply", AdaptScheme::DirectApply),
        ("rebuild", AdaptScheme::Rebuild),
        ("no_throttle", AdaptScheme::NoThrottle),
        ("adaptive", AdaptScheme::Adaptive),
    ] {
        group.bench_with_input(BenchmarkId::new(name, nodes), &scheme, |b, &scheme| {
            // One update on a fresh planner per iteration; churn is
            // pre-generated so only the adaptation work is timed.
            let base = AdaptivePlanner::new(
                Planner::default(),
                scheme,
                pairs.clone(),
                caps.clone(),
                cost,
                AttrCatalog::new(),
            );
            let mut rng = SmallRng::seed_from_u64(31);
            let next = churn_pairs(&pairs, &churn_cfg, &mut rng);
            b.iter(|| {
                let mut planner = base.clone();
                planner.update(next.clone(), 10)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_adaptation_schemes);
criterion_main!(benches);
