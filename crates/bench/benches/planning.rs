//! Planning-time benchmarks: the three partition schemes at two
//! scales. Complements the figure harnesses with statistically sound
//! timing (the schemes' *coverage* comparison lives in fig5/fig6).

// Benchmark scaffolding: inputs are compile-time constants, so a
// failed unwrap is a broken harness, not a runtime error path.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use remo_core::planner::{PartitionScheme, Planner, PlannerConfig};
use remo_core::{AttrCatalog, CapacityMap, CostModel, MonitoringTask, PairSet, TaskId};
use remo_workloads::TaskGenConfig;

fn workload(nodes: usize, attrs: usize, tasks: usize) -> (PairSet, CapacityMap, CostModel) {
    let gen = TaskGenConfig::small_scale(nodes, attrs);
    let mut rng = SmallRng::seed_from_u64(42);
    let tasks = gen.generate(tasks, TaskId(0), &mut rng);
    let pairs: PairSet = tasks.iter().flat_map(MonitoringTask::pairs).collect();
    let caps = CapacityMap::uniform(nodes, 800.0, 16_000.0).expect("caps");
    (pairs, caps, CostModel::new(50.0, 1.0).expect("cost"))
}

fn bench_partition_schemes(c: &mut Criterion) {
    let mut group = c.benchmark_group("plan");
    group.sample_size(10);
    for &(nodes, attrs, tasks) in &[(50usize, 40usize, 40usize), (100, 80, 100)] {
        let (pairs, caps, cost) = workload(nodes, attrs, tasks);
        let catalog = AttrCatalog::new();
        let planner = Planner::new(PlannerConfig::default());
        for (name, scheme) in [
            ("singleton", PartitionScheme::SingletonSet),
            ("one-set", PartitionScheme::OneSet),
            ("remo", PartitionScheme::Remo),
        ] {
            group.bench_with_input(
                BenchmarkId::new(name, format!("n{nodes}_t{tasks}")),
                &scheme,
                |b, &scheme| {
                    b.iter(|| scheme.plan(&planner, &pairs, &caps, cost, &catalog));
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_partition_schemes);
criterion_main!(benches);
