//! Shared infrastructure for the figure-reproduction harness.
//!
//! Every binary in `src/bin/` regenerates one figure of the paper's
//! evaluation (§7) and prints its series as CSV — the same rows the
//! paper plots. Numbers differ from the paper's BlueGene testbed; the
//! *shape* (who wins, by what factor, where crossovers fall) is what
//! reproduces. Each binary also writes its CSV under `results/`.

use remo_core::planner::{EvalBreakdown, PartitionScheme, Planner, PlannerConfig};
use remo_core::{AttrCatalog, CapacityMap, CostModel, MonitoringPlan, PairSet, Partition};
use std::fmt::Display;
use std::fs::{create_dir_all, File};
use std::io::Write;
use std::path::PathBuf;
use std::time::Instant;

/// Writes one figure's series to stdout and `results/<name>.csv`.
#[derive(Debug)]
pub struct Reporter {
    name: String,
    file: Option<File>,
}

impl Reporter {
    /// Opens a reporter for figure `name` (e.g. `fig5a`).
    pub fn new(name: &str) -> Self {
        let file = results_dir().and_then(|dir| {
            let path = dir.join(format!("{name}.csv"));
            File::create(path).ok()
        });
        println!("# {name}");
        Reporter {
            name: name.to_string(),
            file,
        }
    }

    /// Emits the CSV header.
    pub fn header(&mut self, cols: &[&str]) {
        self.line(&cols.join(","));
    }

    /// Emits one row.
    pub fn row(&mut self, cells: &[&dyn Display]) {
        let joined = cells
            .iter()
            .map(|c| c.to_string())
            .collect::<Vec<_>>()
            .join(",");
        self.line(&joined);
    }

    fn line(&mut self, s: &str) {
        println!("{s}");
        if let Some(f) = self.file.as_mut() {
            let _ = writeln!(f, "{s}");
        }
    }

    /// The figure name.
    pub fn name(&self) -> &str {
        &self.name
    }
}

fn results_dir() -> Option<PathBuf> {
    // Walk up from the crate to the workspace root.
    let mut dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    dir.pop();
    dir.pop();
    let dir = dir.join("results");
    create_dir_all(&dir).ok()?;
    Some(dir)
}

/// The three §7 partition schemes in display order.
pub const SCHEMES: [(&str, PartitionScheme); 3] = [
    ("SINGLETON-SET", PartitionScheme::SingletonSet),
    ("ONE-SET", PartitionScheme::OneSet),
    ("REMO", PartitionScheme::Remo),
];

/// Plans one scheme with a search window sized for experiment scale.
///
/// Every plan is audited against the error-severity paper invariants
/// before it is returned, so no reported figure can come from a plan
/// that violates a budget or miscounts its own coverage.
pub fn plan_scheme(
    scheme: PartitionScheme,
    pairs: &PairSet,
    caps: &CapacityMap,
    cost: CostModel,
    catalog: &AttrCatalog,
) -> MonitoringPlan {
    eval_scheme(scheme, pairs, caps, cost, catalog).into_plan()
}

/// Like [`plan_scheme`], but returns the full [`EvalBreakdown`] (plan
/// plus per-tree cost/coverage decomposition and wall time) so figure
/// binaries report from one structured source instead of recomputing
/// totals by hand.
pub fn eval_scheme(
    scheme: PartitionScheme,
    pairs: &PairSet,
    caps: &CapacityMap,
    cost: CostModel,
    catalog: &AttrCatalog,
) -> EvalBreakdown {
    let planner = Planner::new(PlannerConfig {
        max_rounds: 256,
        ..PlannerConfig::default()
    });
    let breakdown = match scheme {
        PartitionScheme::SingletonSet => planner.evaluate_partition(
            &Partition::singleton(pairs.attr_universe()),
            pairs,
            caps,
            cost,
            catalog,
        ),
        PartitionScheme::OneSet => planner.evaluate_partition(
            &Partition::one_set(pairs.attr_universe()),
            pairs,
            caps,
            cost,
            catalog,
        ),
        PartitionScheme::Remo => {
            let t0 = Instant::now();
            let plan = planner.plan_with_catalog(pairs, caps, cost, catalog);
            EvalBreakdown::from_plan(plan, t0.elapsed())
        }
    };
    remo_audit::assert_plan_clean(&breakdown.plan, pairs, caps, cost, catalog);
    breakdown
}

/// The default experiment cost model: a per-message overhead that
/// dominates small payloads, matching the paper's Fig. 2 measurements
/// (one empty message ≈ the cost of tens of values).
pub fn default_cost() -> CostModel {
    CostModel::from_ratio(20.0).unwrap_or_else(|_| unreachable!("20.0 is a valid ratio"))
}

/// Formats a float with three decimals for CSV cells.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    #[test]
    fn default_cost_has_heavy_overhead() {
        assert!(default_cost().ratio() >= 10.0);
    }

    #[test]
    fn f3_formats() {
        assert_eq!(f3(1.23456), "1.235");
    }
}
