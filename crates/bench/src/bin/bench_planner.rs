//! Planner latency/throughput harness (Fig. 9a planning cost) — serial
//! vs parallel vs parallel+cache engines over growing system sizes.
//!
//! For each size the same workload is planned by three configurations:
//!
//! - `serial` — `parallelism: 1, cache: false`: the legacy
//!   clone-per-candidate search loop, kept as the baseline engine.
//! - `parallel` — `parallelism: 0, cache: false`: the batch engine
//!   (rayon candidate window, copy-on-write budget overlays).
//! - `parallel_cached` — `parallelism: 0, cache: true`: the batch
//!   engine plus the memoized [`TreeCache`](remo_core::TreeCache). The
//!   cache persists across the mode's iterations, so `mean_ms` blends
//!   one cold plan with warm re-plans — the epoch-to-epoch reuse the
//!   adaptive planner gets in production, and what Fig. 9a's repeated
//!   re-planning actually pays.
//!
//! All three must produce **byte-identical plans** (asserted via JSON
//! serialization) — the engines differ in evaluation mechanics only,
//! never in search decisions. The trajectory is written to
//! `BENCH_planner.json` at the repo root.
//!
//! The default full run covers sizes up to n=10_000; the n=100_000 row
//! is opt-in via `--all` (which also writes the file) or an explicit
//! `--sizes` list (probe only, never writes). The committed
//! `BENCH_planner.json` is regenerated with `--all`.
//!
//! `--smoke` re-times only the small sizes (one iteration each) and
//! **fails** (exit 1) when a mode regresses past
//! `REMO_BENCH_SMOKE_TOLERANCE` against the committed
//! `BENCH_planner.json` baseline; it never rewrites the file.
//!
//! `--trace <file.jsonl>` / `--metrics <file.prom>` turn observability
//! collection on for the run and export the planner's span trace and
//! metric registry when it finishes. Collection adds overhead (every
//! candidate accept/reject records an event), so timings from an
//! instrumented run are not comparable to the committed baseline —
//! the smoke regression gate is skipped when either flag is given.

// Benchmark scaffolding: inputs are compile-time constants, so a
// failed unwrap is a broken harness, not a runtime error path.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use rand::rngs::SmallRng;
use rand::SeedableRng;
use remo_core::planner::{EvalBreakdown, Planner, PlannerConfig};
use remo_core::{AttrCatalog, CapacityMap, MonitoringTask, PairSet, TaskId};
use remo_workloads::TaskGenConfig;
use serde::{Deserialize, Serialize};
use std::path::PathBuf;
use std::time::Instant;

/// Sizes exercised by the full run; the first two double as the smoke
/// set. Iteration counts shrink as plans get expensive. Sizes above
/// [`DEFAULT_MAX_NODES`] only run under `--all` or an explicit
/// `--sizes` list.
const SIZES: [(usize, usize); 6] = [
    (32, 5),
    (64, 5),
    (100, 5),
    (1000, 3),
    (10_000, 2),
    (100_000, 1),
];
const SMOKE_SIZES: [usize; 2] = [32, 64];
/// Largest size the default (flag-less) full run exercises.
const DEFAULT_MAX_NODES: usize = 10_000;
/// The tentpole target is absolute, not relative: the serial engine
/// must plan the n=[`TARGET_NODES`] workload under this many
/// milliseconds (mean). Override with `REMO_BENCH_SERIAL_TARGET_MS`
/// on machines much slower than the baseline box.
const TARGET_NODES: usize = 10_000;
fn serial_target_ms() -> f64 {
    std::env::var("REMO_BENCH_SERIAL_TARGET_MS")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .filter(|t| *t > 0.0)
        .unwrap_or(1_000.0)
}

/// Relative mean-time tolerance for `--bench-smoke` against the
/// committed `BENCH_planner.json`. The baseline was recorded on one
/// machine; drift close to 2x has been observed on others at the tiny
/// smoke sizes, so the default is loose. Tighten it with
/// `REMO_BENCH_SMOKE_TOLERANCE=1.2` where the baseline is local.
fn regression_tolerance() -> f64 {
    std::env::var("REMO_BENCH_SMOKE_TOLERANCE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .filter(|t| *t >= 1.0)
        .unwrap_or(2.0)
}

const MODES: [(&str, usize, bool); 3] = [
    ("serial", 1, false),
    ("parallel", 0, false),
    ("parallel_cached", 0, true),
];

#[derive(Debug, Clone, Serialize, Deserialize)]
struct ModeResult {
    mode: String,
    iters: usize,
    mean_ms: f64,
    min_ms: f64,
    plans_per_sec: f64,
    collected_pairs: usize,
    message_volume: f64,
    uncovered_pairs: usize,
    adjusted_cost: f64,
    cache_hits: u64,
    cache_misses: u64,
    rounds: usize,
    local_evals: usize,
    seed_ms: f64,
    rank_ms: f64,
    local_ms: f64,
    global_ms: f64,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct SizeResult {
    nodes: usize,
    attrs: usize,
    tasks: usize,
    pairs: usize,
    plans_identical: bool,
    speedup_parallel: f64,
    speedup_parallel_cached: f64,
    modes: Vec<ModeResult>,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct BenchReport {
    schema: String,
    /// Absolute serial-time budget (ms) at `target_nodes`.
    serial_target_ms: f64,
    target_nodes: usize,
    /// Measured serial mean at `target_nodes`; `None` when the run's
    /// size list did not include that size.
    target_serial_ms: Option<f64>,
    target_met: bool,
    sizes: Vec<SizeResult>,
}

/// A workload scaled to `nodes`: the attribute universe and task count
/// grow with the system, the per-task shape stays small-scale.
fn workload(nodes: usize) -> (PairSet, usize, usize) {
    let attrs = (nodes / 10).clamp(12, 100);
    let tasks = (nodes / 2).clamp(10, 2_000);
    let gen = TaskGenConfig::small_scale(nodes, attrs);
    let mut rng = SmallRng::seed_from_u64(42 + nodes as u64);
    let generated = gen.generate(tasks, TaskId(0), &mut rng);
    let pairs: PairSet = generated.iter().flat_map(MonitoringTask::pairs).collect();
    (pairs, attrs, tasks)
}

fn planner_for(parallelism: usize, cache: bool) -> Planner {
    Planner::new(PlannerConfig {
        parallelism,
        cache,
        ..PlannerConfig::default()
    })
}

fn bench_size(nodes: usize, iters: usize) -> SizeResult {
    let (pairs, attrs, tasks) = workload(nodes);
    // Per-node capacity scales with pair density so roots can carry a
    // meaningful share of their set's payload at every size (a flat
    // budget starves the 10k workload down to ~2% coverage, which is
    // not a deployment anyone would plan for).
    let per_node = (0.35 * pairs.len() as f64 / attrs as f64).max(60.0);
    let caps = CapacityMap::uniform(nodes, per_node, 40.0 * nodes as f64).expect("caps");
    let cost = remo_bench::default_cost();
    let catalog = AttrCatalog::new();

    let mut modes = Vec::new();
    let mut plan_jsons: Vec<String> = Vec::new();
    for (name, parallelism, cache) in MODES {
        let planner = planner_for(parallelism, cache);
        let mut times = Vec::with_capacity(iters);
        let mut last = None;
        let mut stats = remo_core::CacheStats::default();
        let mut report = remo_core::planner::PlanReport::default();
        // The cached mode keeps one cache across iterations: the first
        // plan is cold, later ones warm-start from it — the same reuse
        // `AdaptivePlanner` and `Deployment` repair get across epochs.
        let shared = cache.then(remo_core::TreeCache::new);
        for _ in 0..iters {
            let t0 = Instant::now();
            let (plan, rep) =
                planner.plan_with_report_cached(&pairs, &caps, cost, &catalog, shared.as_ref());
            times.push(t0.elapsed().as_secs_f64() * 1e3);
            if let Some(c) = &shared {
                stats = c.stats();
            }
            report = rep;
            last = Some(plan);
        }
        let plan = last.expect("at least one iteration");
        remo_audit::assert_plan_clean(&plan, &pairs, &caps, cost, &catalog);
        let breakdown = EvalBreakdown::from_plan(plan, Default::default());
        plan_jsons.push(serde_json::to_string(&breakdown.plan).expect("plan serializes"));
        let mean = times.iter().sum::<f64>() / times.len() as f64;
        let min = times.iter().copied().fold(f64::INFINITY, f64::min);
        modes.push(ModeResult {
            mode: name.to_string(),
            iters,
            mean_ms: mean,
            min_ms: min,
            plans_per_sec: if mean > 0.0 { 1e3 / mean } else { 0.0 },
            collected_pairs: breakdown.plan.collected_pairs(),
            message_volume: breakdown.plan.message_volume(),
            uncovered_pairs: breakdown.uncovered_pairs,
            adjusted_cost: breakdown.adjusted_cost(cost),
            cache_hits: stats.hits,
            cache_misses: stats.misses,
            rounds: report.rounds,
            local_evals: report.local_evals,
            seed_ms: report.seed_ms,
            rank_ms: report.rank_ms,
            local_ms: report.local_ms,
            global_ms: report.global_ms,
        });
    }

    let plans_identical = plan_jsons.windows(2).all(|w| w[0] == w[1]);
    assert!(
        plans_identical,
        "n={nodes}: engines disagreed on the plan — serial/parallel/cached must be byte-identical"
    );
    let serial_ms = modes[0].mean_ms;
    let result = SizeResult {
        nodes,
        attrs,
        tasks,
        pairs: pairs.len(),
        plans_identical,
        speedup_parallel: serial_ms / modes[1].mean_ms.max(1e-9),
        speedup_parallel_cached: serial_ms / modes[2].mean_ms.max(1e-9),
        modes,
    };
    println!(
        "n={:>6} pairs={:>7}  serial {:>10.1}ms  parallel {:>10.1}ms ({:>5.2}x)  +cache {:>10.1}ms ({:>5.2}x)  identical={}",
        result.nodes,
        result.pairs,
        result.modes[0].mean_ms,
        result.modes[1].mean_ms,
        result.speedup_parallel,
        result.modes[2].mean_ms,
        result.speedup_parallel_cached,
        result.plans_identical,
    );
    result
}

fn repo_root() -> PathBuf {
    let mut dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    dir.pop();
    dir.pop();
    dir
}

fn run_full(only: Option<Vec<usize>>, all: bool) {
    let sizes: Vec<SizeResult> = SIZES
        .into_iter()
        .filter(|(n, _)| match &only {
            Some(list) => list.contains(n),
            None => all || *n <= DEFAULT_MAX_NODES,
        })
        .map(|(n, iters)| bench_size(n, iters))
        .collect();
    assert!(!sizes.is_empty(), "size list selected no benchmark sizes");
    let target_ms = serial_target_ms();
    let target_serial_ms = sizes
        .iter()
        .find(|s| s.nodes == TARGET_NODES)
        .map(|s| s.modes[0].mean_ms);
    // A run that skipped the target size can't prove the target; only
    // explicit `--sizes` probes may do that, and they never write.
    let target_met = target_serial_ms.is_some_and(|ms| ms <= target_ms);
    let report = BenchReport {
        schema: "bench_planner/v2".to_string(),
        serial_target_ms: target_ms,
        target_nodes: TARGET_NODES,
        target_serial_ms,
        target_met,
        sizes,
    };
    if only.is_some() {
        // Partial run: print the report instead of clobbering the trajectory.
        println!(
            "{}",
            serde_json::to_string_pretty(&report).expect("report serializes")
        );
        return;
    }
    let path = repo_root().join("BENCH_planner.json");
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&path, json + "\n").expect("write BENCH_planner.json");
    println!("wrote {}", path.display());
    match target_serial_ms {
        Some(ms) if target_met => {
            println!("target met: serial {ms:.1}ms <= {target_ms:.0}ms at n={TARGET_NODES}");
        }
        Some(ms) => {
            eprintln!("TARGET MISSED: serial {ms:.1}ms > {target_ms:.0}ms at n={TARGET_NODES}");
            std::process::exit(1);
        }
        None => {
            eprintln!("TARGET UNPROVEN: run did not include n={TARGET_NODES}");
            std::process::exit(1);
        }
    }
}

fn run_smoke() {
    let tolerance = regression_tolerance();
    let baseline: Option<BenchReport> =
        std::fs::read_to_string(repo_root().join("BENCH_planner.json"))
            .ok()
            .and_then(|s| serde_json::from_str(&s).ok());
    let mut regressed = false;
    for n in SMOKE_SIZES {
        let fresh = bench_size(n, 1);
        let Some(base) = baseline
            .as_ref()
            .and_then(|b| b.sizes.iter().find(|s| s.nodes == n))
        else {
            continue;
        };
        for (new_mode, old_mode) in fresh.modes.iter().zip(&base.modes) {
            if new_mode.mean_ms > old_mode.mean_ms * tolerance {
                eprintln!(
                    "REGRESSION: n={} {} slowed {:.1}ms -> {:.1}ms (>{:.0}% over baseline)",
                    n,
                    new_mode.mode,
                    old_mode.mean_ms,
                    new_mode.mean_ms,
                    (tolerance - 1.0) * 100.0,
                );
                regressed = true;
            }
        }
    }
    if baseline.is_none() {
        println!("no committed BENCH_planner.json baseline; smoke timings reported only");
    } else if regressed {
        eprintln!("smoke FAILED: see regressions above");
        std::process::exit(1);
    } else {
        println!(
            "smoke: within {:.0}% of baseline",
            (tolerance - 1.0) * 100.0
        );
    }
}

/// Value of `name <value>` in `args`, if present.
fn value_flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .filter(|v| !v.starts_with("--"))
        .cloned()
}

/// Exports the collected trace and/or metrics to the requested files.
fn write_obs_outputs(trace: Option<&str>, metrics: Option<&str>) {
    if let Some(path) = trace {
        let records = remo_obs::drain_trace();
        std::fs::write(path, remo_obs::trace::to_jsonl(&records)).expect("write trace file");
        println!("wrote trace to {path}");
    }
    if let Some(path) = metrics {
        let text = remo_obs::registry::registry().render_prometheus();
        std::fs::write(path, text).expect("write metrics file");
        println!("wrote metrics to {path}");
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let trace = value_flag(&args, "--trace");
    let metrics = value_flag(&args, "--metrics");
    let instrumented = trace.is_some() || metrics.is_some();
    if instrumented {
        remo_obs::enable();
    }
    if args.iter().any(|a| a == "--smoke") {
        if instrumented {
            // Instrumented timings are not baseline-comparable; time
            // the smoke sizes but skip the regression gate.
            println!("observability on: timing only, regression gate skipped");
            for n in SMOKE_SIZES {
                bench_size(n, 1);
            }
        } else {
            run_smoke();
        }
        write_obs_outputs(trace.as_deref(), metrics.as_deref());
        return;
    }
    let only = args
        .iter()
        .position(|a| a == "--sizes")
        .and_then(|i| args.get(i + 1))
        .map(|list| {
            list.split(',')
                .filter_map(|s| s.trim().parse().ok())
                .collect()
        });
    let all = args.iter().any(|a| a == "--all");
    run_full(only, all);
    write_obs_outputs(trace.as_deref(), metrics.as_deref());
}
