//! Fig. 11 — tree-wise capacity allocation schemes: UNIFORM,
//! PROPORTIONAL, ON-DEMAND, ORDERED.
//!
//! Paper shape: ON-DEMAND and ORDERED consistently beat the static
//! schemes, and ORDERED's edge over ON-DEMAND grows with scale (more
//! trees of very different sizes, where building small trees first
//! avoids starving them).

// Benchmark scaffolding: inputs are compile-time constants, so a
// failed unwrap is a broken harness, not a runtime error path.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use rand::rngs::SmallRng;
use rand::SeedableRng;
use remo_bench::{f3, Reporter};
use remo_core::alloc::AllocationScheme;
use remo_core::planner::{Planner, PlannerConfig};
use remo_core::{AttrCatalog, CapacityMap, CostModel, MonitoringTask, PairSet, Partition, TaskId};
use remo_workloads::TaskGenConfig;

const ALLOCS: [(&str, AllocationScheme); 4] = [
    ("UNIFORM", AllocationScheme::Uniform),
    ("PROPORTIONAL", AllocationScheme::Proportional),
    ("ON-DEMAND", AllocationScheme::OnDemand),
    ("ORDERED", AllocationScheme::Ordered),
];

/// Mixed small + large tasks produce trees of very different sizes —
/// the regime where allocation order matters.
fn mixed_pairs(nodes: usize, attrs: usize, tasks: usize, seed: u64) -> PairSet {
    let mut rng = SmallRng::seed_from_u64(seed);
    let small = TaskGenConfig::small_scale(nodes, attrs);
    let large = TaskGenConfig::large_scale(nodes, attrs);
    let n_small = tasks * 7 / 10;
    let mut all: Vec<MonitoringTask> = small.generate(n_small, TaskId(0), &mut rng);
    all.extend(large.generate(tasks - n_small, TaskId(n_small as u32), &mut rng));
    all.iter().flat_map(MonitoringTask::pairs).collect()
}

fn coverage(alloc: AllocationScheme, pairs: &PairSet, caps: &CapacityMap, cost: CostModel) -> f64 {
    let catalog = AttrCatalog::new();
    let planner = Planner::new(PlannerConfig {
        allocation: alloc,
        ..PlannerConfig::default()
    });
    // Fixed singleton partition isolates allocation effects.
    let ev = planner.evaluate_partition(
        &Partition::singleton(pairs.attr_universe()),
        pairs,
        caps,
        cost,
        &catalog,
    );
    remo_audit::assert_plan_clean(&ev.plan, pairs, caps, cost, &catalog);
    ev.coverage() * 100.0
}

fn main() {
    let cost = CostModel::new(10.0, 1.0).expect("cost");

    // 11a: sweep node count.
    let mut rep = Reporter::new("fig11a_alloc_vs_nodes");
    rep.header(&["nodes", "scheme", "collected_pct"]);
    for &nodes in &[25usize, 50, 100, 150] {
        let pairs = mixed_pairs(nodes, 40, nodes, 31 + nodes as u64);
        let caps = CapacityMap::uniform(nodes, 500.0, 120.0 * nodes as f64).expect("caps");
        for (name, alloc) in ALLOCS {
            rep.row(&[&nodes, &name, &f3(coverage(alloc, &pairs, &caps, cost))]);
        }
    }

    // 11b: sweep task count.
    let mut rep = Reporter::new("fig11b_alloc_vs_tasks");
    rep.header(&["tasks", "scheme", "collected_pct"]);
    let nodes = 60usize;
    for &tasks in &[20usize, 40, 80, 160] {
        let pairs = mixed_pairs(nodes, 40, tasks, 400 + tasks as u64);
        let caps = CapacityMap::uniform(nodes, 500.0, 7_200.0).expect("caps");
        for (name, alloc) in ALLOCS {
            rep.row(&[&tasks, &name, &f3(coverage(alloc, &pairs, &caps, cost))]);
        }
    }
}
