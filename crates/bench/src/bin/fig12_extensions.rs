//! Fig. 12 — extension techniques.
//!
//! 12a: aggregation-awareness and frequency-awareness, alone and
//! combined, normalized to the basic (oblivious) REMO planner. Paper
//! shape: close to +50% collected values when combined.
//!
//! 12b: reliability with replication factor 2 — REMO's SSDP rewriting
//! (REMO-2) versus naive duplication under SINGLETON-SET
//! (SINGLETON-SET-2) and ONE-SET (ONE-SET-2), as tasks grow. Paper
//! shape: REMO-2 collects the most at every scale.

// Benchmark scaffolding: inputs are compile-time constants, so a
// failed unwrap is a broken harness, not a runtime error path.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use rand::rngs::SmallRng;
use rand::SeedableRng;
use remo_bench::{f3, Reporter};
use remo_core::planner::{Planner, PlannerConfig};
use remo_core::reliability::rewrite_ssdp;
use remo_core::{
    Aggregation, AttrCatalog, AttrId, AttrInfo, CapacityMap, CostModel, MonitoringTask, PairSet,
    Partition, TaskId,
};
use remo_workloads::TaskGenConfig;

fn main() {
    fig12a();
    fig12b();
}

/// 12a — MAX-aggregation tasks with half the attributes at half
/// update frequency; collected pairs normalized to the basic planner.
fn fig12a() {
    let mut rep = Reporter::new("fig12a_awareness");
    rep.header(&["variant", "collected_ratio"]);

    let nodes = 40usize;
    let n_attrs = 30usize;
    let mut catalog = AttrCatalog::new();
    let mut attrs = Vec::new();
    for i in 0..n_attrs {
        // Half the attribute types are MAX-aggregable health metrics,
        // half are holistic; within each class, half update at half
        // rate — so each awareness dimension has separate headroom.
        let mut info = AttrInfo::new(format!("m{i}"));
        if i % 2 == 0 {
            info = info.with_aggregation(Aggregation::Max);
        }
        if (i / 2) % 2 == 1 {
            info = info.with_frequency(0.25).expect("valid frequency");
        }
        attrs.push(catalog.register(info));
    }
    let mut pairs = PairSet::new();
    let mut rng = SmallRng::seed_from_u64(3);
    let gen = TaskGenConfig::small_scale(nodes, n_attrs);
    for t in gen.generate(40, TaskId(0), &mut rng) {
        for (n, a) in t.pairs() {
            pairs.insert(n, AttrId(attrs[a.index() % n_attrs].0));
        }
    }
    // Tight collector so funnel savings decide who fits.
    let caps = CapacityMap::uniform(nodes, 90.0, 700.0).expect("caps");
    let cost = CostModel::new(10.0, 1.0).expect("cost");

    let run = |agg: bool, freq: bool| {
        let plan = Planner::new(PlannerConfig {
            aggregation_aware: agg,
            frequency_aware: freq,
            ..PlannerConfig::default()
        })
        .plan_with_catalog(&pairs, &caps, cost, &catalog);
        // Self-audit with the same extension flags the planner used.
        let outcome = remo_audit::Audit::new().run(
            &remo_audit::AuditInput::new(&plan, &pairs, &caps, cost, &catalog)
                .aggregation_aware(agg)
                .frequency_aware(freq),
        );
        assert!(
            outcome.is_clean(),
            "fig12a plan failed its audit:\n{}",
            outcome.render()
        );
        plan.collected_pairs() as f64
    };
    let base = run(false, false).max(1.0);
    rep.row(&[&"BASIC", &f3(1.0)]);
    rep.row(&[&"AGGREGATION-AWARE", &f3(run(true, false) / base)]);
    rep.row(&[&"FREQUENCY-AWARE", &f3(run(false, true) / base)]);
    rep.row(&[&"BOTH", &f3(run(true, true) / base)]);
}

/// 12b — replication ×2 via SSDP rewriting versus naive duplication.
fn fig12b() {
    let mut rep = Reporter::new("fig12b_replication");
    rep.header(&["tasks", "variant", "collected_pct"]);

    let nodes = 40usize;
    let n_attrs = 30usize;
    let cost = CostModel::new(20.0, 1.0).expect("cost");
    let caps = CapacityMap::uniform(nodes, 400.0, 8_000.0).expect("caps");

    for &count in &[10usize, 20, 40, 80] {
        let mut catalog = AttrCatalog::with_generic(n_attrs);
        let gen = TaskGenConfig::small_scale(nodes, n_attrs);
        let mut rng = SmallRng::seed_from_u64(8 + count as u64);
        let tasks = gen.generate(count, TaskId(0), &mut rng);

        // SSDP-rewrite every task with replication 2.
        let mut next_task = count as u32;
        let mut rewritten: Vec<MonitoringTask> = Vec::new();
        let mut forbidden = Vec::new();
        for t in &tasks {
            let rw =
                rewrite_ssdp(t, 2, &mut catalog, TaskId(next_task)).expect("valid replication");
            next_task += rw.tasks.len() as u32;
            rewritten.extend(rw.tasks);
            forbidden.extend(rw.forbidden_pairs);
        }
        let pairs: PairSet = rewritten.iter().flat_map(MonitoringTask::pairs).collect();

        // REMO-2: constrained partition search.
        let remo2 = Planner::new(PlannerConfig {
            forbidden_pairs: forbidden,
            ..PlannerConfig::default()
        })
        .plan_with_catalog(&pairs, &caps, cost, &catalog);
        remo_audit::assert_plan_clean(&remo2, &pairs, &caps, cost, &catalog);
        rep.row(&[&count, &"REMO-2", &f3(remo2.coverage() * 100.0)]);

        // SINGLETON-SET-2: every attribute (original or alias) in its
        // own tree.
        let planner = Planner::default();
        let sp2 = planner.evaluate_partition(
            &Partition::singleton(pairs.attr_universe()),
            &pairs,
            &caps,
            cost,
            &catalog,
        );
        rep.row(&[&count, &"SINGLETON-SET-2", &f3(sp2.coverage() * 100.0)]);

        // ONE-SET-2: originals in one tree, aliases in another.
        let originals: std::collections::BTreeSet<AttrId> =
            pairs.attrs().filter(|a| a.index() < n_attrs).collect();
        let aliases: std::collections::BTreeSet<AttrId> =
            pairs.attrs().filter(|a| a.index() >= n_attrs).collect();
        let sets: Vec<_> = [originals, aliases]
            .into_iter()
            .filter(|s| !s.is_empty())
            .collect();
        let op2 = planner.evaluate_partition(
            &Partition::from_sets(sets).expect("disjoint"),
            &pairs,
            &caps,
            cost,
            &catalog,
        );
        rep.row(&[&count, &"ONE-SET-2", &f3(op2.coverage() * 100.0)]);
    }
}
