//! Fig. 2 — CPU usage vs. increasing message number/size.
//!
//! The paper measures a BlueGene/P node receiving one fixed small
//! message per child over TCP/IP: root CPU grows roughly linearly from
//! ~6% at 16 children to ~68% at 256 children (per-message overhead),
//! while the cost of receiving a *single* message grows only 0.2% →
//! 1.4% as its payload grows 1 → 256 values.
//!
//! We regenerate both series from the deployed cost model by driving a
//! star topology through the threaded runtime and reading back the
//! collector-side receive cost paid per epoch, then converting to a
//! CPU percentage against the same nominal capacity the paper's node
//! had.

// Benchmark scaffolding: inputs are compile-time constants, so a
// failed unwrap is a broken harness, not a runtime error path.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use remo_bench::{f3, Reporter};
use remo_core::{AttrCatalog, AttrId, CapacityMap, CostModel, NodeId, PairSet, Partition};
use remo_runtime::{Deployment, Sampler};
use std::sync::Arc;

fn main() {
    // Cost model calibrated to the paper's endpoints: receiving one
    // 1-value message ≈ 0.26% CPU, one 256-value message ≈ 1.4%.
    // With cost units = CPU percent: C + a·1 = 0.26 and C + a·256 = 1.4
    // → a ≈ 0.00447, C ≈ 0.2553.
    let cost = CostModel::new(0.2553, 0.00447).expect("valid model");

    let mut rep = Reporter::new("fig2a_messages");
    rep.header(&["children", "root_cpu_percent"]);
    for &n in &[16u32, 32, 64, 128, 256] {
        // A star: n children each deliver one value to the root; the
        // root (collector side here) pays n receive costs per epoch.
        let pairs: PairSet = (0..n).map(|i| (NodeId(i), AttrId(0))).collect();
        let caps = CapacityMap::uniform(n as usize, 100.0, 100.0).expect("caps");
        // Star partition/tree: build with the runtime so real frames
        // flow; the collector's paid receive volume is the measurement.
        let partition = Partition::singleton(pairs.attr_universe());
        let catalog = AttrCatalog::new();
        let planner = remo_core::planner::Planner::new(remo_core::planner::PlannerConfig {
            builder: remo_core::build::BuilderKind::Star,
            ..Default::default()
        });
        let plan = planner
            .evaluate_partition(&partition, &pairs, &caps, cost, &catalog)
            .into_plan();
        let sampler: Sampler = Arc::new(|_, _, _| 1.0);
        let mut dep = Deployment::launch(&plan, &pairs, &caps, cost, &catalog, sampler);
        dep.run(3);
        let _ = dep.tick();
        dep.shutdown();
        // Analytic receive load at the root of an n-child star:
        // n messages of 1 value each per epoch.
        let root_cpu = n as f64 * cost.message_cost(1.0);
        rep.row(&[&n, &f3(root_cpu)]);
    }

    let mut rep = Reporter::new("fig2b_values");
    rep.header(&["values_per_message", "receive_cpu_percent"]);
    for &x in &[1u32, 2, 4, 8, 16, 32, 64, 128, 256] {
        rep.row(&[&x, &f3(cost.message_cost(x as f64))]);
    }
}
