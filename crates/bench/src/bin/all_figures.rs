//! Runs every figure harness in sequence, leaving all series under
//! `results/`. This is the one-shot reproduction of the paper's §7.
//!
//! ```sh
//! cargo run --release -p remo-bench --bin all_figures
//! ```

// Benchmark scaffolding: inputs are compile-time constants, so a
// failed unwrap is a broken harness, not a runtime error path.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::process::Command;

const FIGURES: [&str; 8] = [
    "fig2_cost_model",
    "fig5_partition_workload",
    "fig6_partition_system",
    "fig7_tree_construction",
    "fig8_percentage_error",
    "fig9_adaptation",
    "fig10_optimization",
    "fig11_allocation",
];

fn main() {
    let exe = std::env::current_exe().expect("own path");
    let dir = exe.parent().expect("bin dir");
    let mut failures = Vec::new();
    for fig in FIGURES.iter().chain(["fig12_extensions"].iter()) {
        eprintln!("==> {fig}");
        let status = Command::new(dir.join(fig))
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {fig}: {e}"));
        if !status.success() {
            failures.push(*fig);
        }
    }
    if failures.is_empty() {
        eprintln!("all figures regenerated; CSVs under results/");
    } else {
        eprintln!("FAILED figures: {failures:?}");
        std::process::exit(1);
    }
}
