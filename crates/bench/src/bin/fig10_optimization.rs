//! Fig. 10 — speedup of the tree-adjustment optimizations
//! (branch-based reattaching §5.1.1, subtree-only searching §5.1.2)
//! over the basic adjusting procedure, with the coverage penalty they
//! cost.
//!
//! Paper shape: combined speedup up to ~11× growing with scale, with a
//! <2% collected-value penalty.
//!
//! The workload that exercises the adjusting procedure hardest has
//! budgets decreasing across nodes: early nodes act as hubs whose
//! congestion must repeatedly be relieved by relocating multi-node
//! branches deeper.

// Benchmark scaffolding: inputs are compile-time constants, so a
// failed unwrap is a broken harness, not a runtime error path.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use remo_bench::{f3, Reporter};
use remo_core::build::{
    build_tree, AdjustConfig, BuildRequest, BuilderKind, LocalLoad, NodeDemand,
};
use remo_core::{AttrId, CostModel, NodeId};
use std::time::Instant;

const VARIANTS: [(&str, AdjustConfig); 3] = [
    (
        "BRANCH",
        AdjustConfig {
            branch_based: true,
            subtree_only: false,
        },
    ),
    (
        "SUBTREE",
        AdjustConfig {
            branch_based: false,
            subtree_only: true,
        },
    ),
    (
        "COMBINED",
        AdjustConfig {
            branch_based: true,
            subtree_only: true,
        },
    ),
];

/// Hub-and-spoke pressure: budgets fall linearly across nodes, so the
/// early high-capacity nodes congest and branches must migrate.
fn request(nodes: usize, values_per_node: f64, seed: u64) -> BuildRequest {
    use rand::{rngs::SmallRng, Rng, SeedableRng};
    let mut rng = SmallRng::seed_from_u64(seed);
    // Hub budgets scale with the tree payload (nodes × values) so the
    // workload stays in the adjust-heavy regime across the sweep.
    let hub = 0.7 * nodes as f64 * values_per_node;
    BuildRequest {
        attrs: [AttrId(0)].into_iter().collect(),
        demand: (0..nodes)
            .map(|i| NodeDemand {
                node: NodeId(i as u32),
                load: LocalLoad::holistic(values_per_node),
                budget: (30.0 + hub * (1.0 - i as f64 / nodes as f64)) * rng.gen_range(0.9..1.1),
                pairs: values_per_node as usize,
            })
            .collect(),
        collector_budget: 1e9,
        cost: CostModel::new(6.0, 1.0).expect("cost"),
        funnels: Vec::new(),
    }
}

/// Total time and pairs over three jittered instances (smooths the
/// sharp phase boundary between adjust-light and adjust-heavy
/// regimes).
fn timed(nodes: usize, values: f64, cfg: AdjustConfig) -> (f64, usize) {
    let mut total = 0.0;
    let mut pairs = 0;
    for seed in [5u64, 6, 7] {
        let req = request(nodes, values, seed);
        let t0 = Instant::now();
        let out = build_tree(BuilderKind::Adaptive(cfg), &req);
        total += t0.elapsed().as_secs_f64();
        pairs += out.collected_pairs;
    }
    (total, pairs)
}

fn main() {
    // 10a: sweep node count.
    let mut rep = Reporter::new("fig10a_speedup_vs_nodes");
    rep.header(&["nodes", "variant", "speedup", "coverage_penalty_pct"]);
    for &nodes in &[100usize, 200, 300, 400] {
        let (t_basic, c_basic) = timed(nodes, 2.0, AdjustConfig::basic());
        for (name, cfg) in VARIANTS {
            let (t, c) = timed(nodes, 2.0, cfg);
            let penalty = (c_basic.saturating_sub(c)) as f64 / c_basic.max(1) as f64 * 100.0;
            rep.row(&[&nodes, &name, &f3(t_basic / t.max(1e-9)), &f3(penalty)]);
        }
    }

    // 10b: sweep per-node load (stands in for task count growth).
    let mut rep = Reporter::new("fig10b_speedup_vs_load");
    rep.header(&[
        "values_per_node",
        "variant",
        "speedup",
        "coverage_penalty_pct",
    ]);
    for &load in &[1.0f64, 2.0, 4.0, 8.0] {
        let (t_basic, c_basic) = timed(300, load, AdjustConfig::basic());
        for (name, cfg) in VARIANTS {
            let (t, c) = timed(300, load, cfg);
            let penalty = (c_basic.saturating_sub(c)) as f64 / c_basic.max(1) as f64 * 100.0;
            rep.row(&[&load, &name, &f3(t_basic / t.max(1e-9)), &f3(penalty)]);
        }
    }
}
