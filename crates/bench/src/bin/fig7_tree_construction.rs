//! Fig. 7 — tree-construction schemes (STAR, CHAIN, MAX_AVB, REMO's
//! ADAPTIVE) under varying workload and system characteristics.
//!
//! Paper shapes: ADAPTIVE best everywhere; CHAIN wins among baselines
//! only under light load (its relay cost kills it under heavy load);
//! STAR is relatively better under heavy load; MAX_AVB is good under
//! light load but degrades with pressure.

// Benchmark scaffolding: inputs are compile-time constants, so a
// failed unwrap is a broken harness, not a runtime error path.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use rand::rngs::SmallRng;
use rand::SeedableRng;
use remo_bench::{f3, Reporter};
use remo_core::build::{AdjustConfig, BuilderKind};
use remo_core::planner::{Planner, PlannerConfig};
use remo_core::{AttrCatalog, CapacityMap, CostModel, MonitoringTask, PairSet, Partition, TaskId};
use remo_workloads::TaskGenConfig;

const BUILDERS: [(&str, BuilderKind); 4] = [
    ("STAR", BuilderKind::Star),
    ("CHAIN", BuilderKind::Chain),
    ("MAX_AVB", BuilderKind::MaxAvb),
    (
        "ADAPTIVE",
        BuilderKind::Adaptive(AdjustConfig {
            branch_based: true,
            subtree_only: true,
        }),
    ),
];

fn collected(builder: BuilderKind, pairs: &PairSet, caps: &CapacityMap, cost: CostModel) -> f64 {
    let catalog = AttrCatalog::new();
    let planner = Planner::new(PlannerConfig {
        builder,
        ..PlannerConfig::default()
    });
    // Fixed mid-granularity partition (5 sets) isolates tree
    // construction from partition search.
    let universe: Vec<_> = pairs.attrs().collect();
    let k = 5usize;
    let sets: Vec<_> = (0..k)
        .map(|g| {
            universe
                .iter()
                .enumerate()
                .filter(|(i, _)| i % k == g)
                .map(|(_, &a)| a)
                .collect()
        })
        .collect();
    let partition = Partition::from_sets(sets).expect("disjoint");
    let ev = planner.evaluate_partition(&partition, pairs, caps, cost, &catalog);
    remo_audit::assert_plan_clean(&ev.plan, pairs, caps, cost, &catalog);
    ev.coverage() * 100.0
}

fn main() {
    let nodes = 50usize;
    let attrs = 40usize;
    // Payload-dominated regime for the workload sweeps: relay cost is
    // what separates STAR from CHAIN under heavy load (paper §7).
    let cost = CostModel::new(2.0, 1.0).expect("cost");

    // 7a: sweep workload (number of tasks) — light to heavy.
    let mut rep = Reporter::new("fig7a_workload");
    rep.header(&["tasks", "builder", "collected_pct"]);
    for &count in &[5usize, 15, 40, 100] {
        let gen = TaskGenConfig::small_scale(nodes, attrs);
        let mut rng = SmallRng::seed_from_u64(3 + count as u64);
        let tasks = gen.generate(count, TaskId(0), &mut rng);
        let pairs: PairSet = tasks.iter().flat_map(MonitoringTask::pairs).collect();
        let caps = CapacityMap::uniform(nodes, 300.0, 8_000.0).expect("caps");
        for (name, kind) in BUILDERS {
            rep.row(&[&count, &name, &f3(collected(kind, &pairs, &caps, cost))]);
        }
    }

    // 7b: sweep node budget (system generosity) at fixed heavy load.
    let mut rep = Reporter::new("fig7b_budget");
    rep.header(&["node_budget", "builder", "collected_pct"]);
    let gen = TaskGenConfig::small_scale(nodes, attrs);
    let mut rng = SmallRng::seed_from_u64(11);
    let tasks = gen.generate(60, TaskId(0), &mut rng);
    let pairs: PairSet = tasks.iter().flat_map(MonitoringTask::pairs).collect();
    for &budget in &[60.0f64, 120.0, 240.0, 480.0] {
        let caps = CapacityMap::uniform(nodes, budget, 5_000.0).expect("caps");
        for (name, kind) in BUILDERS {
            rep.row(&[&budget, &name, &f3(collected(kind, &pairs, &caps, cost))]);
        }
    }

    // 7c/7d: sweep C/a under light and heavy workloads.
    for (fig, count, budget) in [
        ("fig7c_ca_light", 10usize, 200.0f64),
        ("fig7d_ca_heavy", 60, 150.0),
    ] {
        let mut rep = Reporter::new(fig);
        rep.header(&["c_over_a", "builder", "collected_pct"]);
        let gen = TaskGenConfig::small_scale(nodes, attrs);
        let mut rng = SmallRng::seed_from_u64(23);
        let tasks = gen.generate(count, TaskId(0), &mut rng);
        let pairs: PairSet = tasks.iter().flat_map(MonitoringTask::pairs).collect();
        for &ca in &[1.0f64, 5.0, 20.0, 50.0] {
            let cost = CostModel::new(ca, 1.0).expect("cost");
            let caps = CapacityMap::uniform(nodes, budget, 5_000.0).expect("caps");
            for (name, kind) in BUILDERS {
                rep.row(&[&f3(ca), &name, &f3(collected(kind, &pairs, &caps, cost))]);
            }
        }
    }
}
