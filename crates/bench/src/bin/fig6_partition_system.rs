//! Fig. 6 — attribute-set partition schemes under varying *system*
//! characteristics: node count (6a small-scale / 6b large-scale tasks)
//! and the per-message overhead ratio `C/a` (6c/6d).
//!
//! Paper shapes: REMO collects up to ~90% more pairs than either
//! baseline across node counts; increasing `C/a` hits SINGLETON-SET
//! hardest (many trees, many messages), ONE-SET degrades gracefully,
//! and REMO adapts by coarsening its partition.

// Benchmark scaffolding: inputs are compile-time constants, so a
// failed unwrap is a broken harness, not a runtime error path.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use rand::rngs::SmallRng;
use rand::SeedableRng;
use remo_bench::{eval_scheme, f3, Reporter, SCHEMES};
use remo_core::{AttrCatalog, CapacityMap, CostModel, MonitoringTask, PairSet, TaskId};
use remo_workloads::TaskGenConfig;

const ATTRS: usize = 100;

fn pairs_of(tasks: &[MonitoringTask]) -> PairSet {
    tasks.iter().flat_map(MonitoringTask::pairs).collect()
}

fn main() {
    let cost = CostModel::new(100.0, 1.0).expect("cost");

    // 6a/6b: sweep node count with small-/large-scale tasks. Tasks
    // scale with the system (paper: "about as many tasks as nodes").
    for (fig, small) in [
        ("fig6a_nodes_small_tasks", true),
        ("fig6b_nodes_large_tasks", false),
    ] {
        let mut rep = Reporter::new(fig);
        rep.header(&["nodes", "scheme", "collected_pct"]);
        for &nodes in &[25usize, 50, 100, 150] {
            let gen = if small {
                TaskGenConfig::small_scale(nodes, ATTRS)
            } else {
                TaskGenConfig::large_scale(nodes, ATTRS)
            };
            let count = if small { nodes } else { nodes / 5 };
            let mut rng = SmallRng::seed_from_u64(7 + nodes as u64);
            let tasks = gen.generate(count, TaskId(0), &mut rng);
            let pairs = pairs_of(&tasks);
            let caps = CapacityMap::uniform(nodes, 1_000.0, 400.0 * nodes as f64).expect("caps");
            let catalog = AttrCatalog::new();
            for (name, scheme) in SCHEMES {
                let ev = eval_scheme(scheme, &pairs, &caps, cost, &catalog);
                rep.row(&[&nodes, &name, &f3(ev.coverage() * 100.0)]);
            }
        }
    }

    // 6c/6d: sweep C/a with fixed budgets; higher per-message overhead
    // shrinks the message budget every scheme lives on.
    for (fig, small) in [
        ("fig6c_ca_small_tasks", true),
        ("fig6d_ca_large_tasks", false),
    ] {
        let mut rep = Reporter::new(fig);
        rep.header(&["c_over_a", "scheme", "collected_pct", "remo_trees"]);
        let nodes = 50usize;
        let gen = if small {
            TaskGenConfig::small_scale(nodes, ATTRS)
        } else {
            TaskGenConfig::large_scale(nodes, ATTRS)
        };
        let count = if small { 40 } else { 10 };
        let mut rng = SmallRng::seed_from_u64(99);
        let tasks = gen.generate(count, TaskId(0), &mut rng);
        let pairs = pairs_of(&tasks);
        let caps = CapacityMap::uniform(nodes, 1_000.0, 20_000.0).expect("caps");
        let catalog = AttrCatalog::new();
        for &ca in &[1.0f64, 5.0, 20.0, 50.0, 100.0, 200.0] {
            let cost = CostModel::new(ca, 1.0).expect("cost");
            let mut remo_trees = 0usize;
            for (name, scheme) in SCHEMES {
                let ev = eval_scheme(scheme, &pairs, &caps, cost, &catalog);
                if name == "REMO" {
                    remo_trees = ev.per_tree.len();
                }
                rep.row(&[
                    &f3(ca),
                    &name,
                    &f3(ev.coverage() * 100.0),
                    &ev.per_tree.len(),
                ]);
            }
            let _ = remo_trees;
        }
    }
}
