//! Fig. 9 — runtime adaptation schemes (D-A, REBUILD, NO-THROTTLE,
//! ADAPTIVE) under increasing task-update frequency.
//!
//! x-axis: task-update batches per window of 10 value-update epochs.
//! Series:
//! - 9a planning CPU time (REBUILD ≫ NO-THROTTLE > ADAPTIVE > D-A),
//! - 9b adaptation traffic as % of total traffic,
//! - 9c total traffic relative to D-A (REBUILD crosses above 1.0 as
//!   churn grows; ADAPTIVE stays below),
//! - 9d collected values relative to D-A (ADAPTIVE/NO-THROTTLE gain
//!   with churn; REBUILD degrades).

// Benchmark scaffolding: inputs are compile-time constants, so a
// failed unwrap is a broken harness, not a runtime error path.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use rand::rngs::SmallRng;
use rand::SeedableRng;
use remo_bench::{f3, Reporter};
use remo_core::adapt::AdaptScheme;
use remo_core::planner::Planner;
use remo_core::{AttrCatalog, CapacityMap, CostModel, MonitoringTask, PairSet, TaskId};
use remo_sim::{run_adaptation_experiment, AdaptationRunStats, SimConfig};
use remo_workloads::churn::{churn_schedule, ChurnConfig};
use remo_workloads::TaskGenConfig;
use std::collections::BTreeMap;

const SCHEMES: [(&str, AdaptScheme); 4] = [
    ("D-A", AdaptScheme::DirectApply),
    ("REBUILD", AdaptScheme::Rebuild),
    ("NO-THROTTLE", AdaptScheme::NoThrottle),
    ("ADAPTIVE", AdaptScheme::Adaptive),
];

const EPOCHS: u64 = 100;

fn run(
    scheme: AdaptScheme,
    pairs: &PairSet,
    caps: &CapacityMap,
    cost: CostModel,
    batches_per_window: usize,
) -> AdaptationRunStats {
    // A window is 10 epochs; spread the batches inside each window.
    let mut rng = SmallRng::seed_from_u64(500 + batches_per_window as u64);
    let total_batches = (EPOCHS as usize / 10) * batches_per_window;
    let interval = (10 / batches_per_window.max(1)).max(1) as u64;
    let schedule = churn_schedule(
        pairs,
        &ChurnConfig {
            node_fraction: 0.05,
            attr_fraction: 0.5,
            attr_universe: 60,
        },
        total_batches,
        10,
        interval,
        &mut rng,
    );
    let updates: BTreeMap<u64, PairSet> = schedule.into_iter().collect();
    let (stats, _) = run_adaptation_experiment(
        Planner::default(),
        scheme,
        pairs.clone(),
        updates,
        caps.clone(),
        cost,
        AttrCatalog::new(),
        SimConfig {
            seed: 9,
            ..SimConfig::default()
        },
        EPOCHS,
    );
    stats
}

fn main() {
    let nodes = 50usize;
    let cost = CostModel::new(20.0, 1.0).expect("cost");
    let caps = CapacityMap::uniform(nodes, 400.0, 8_000.0).expect("caps");
    let gen = TaskGenConfig::small_scale(nodes, 60);
    let mut rng = SmallRng::seed_from_u64(17);
    let tasks = gen.generate(50, TaskId(0), &mut rng);
    let pairs: PairSet = tasks.iter().flat_map(MonitoringTask::pairs).collect();

    let mut rep_a = Reporter::new("fig9a_planning_time");
    rep_a.header(&["batches_per_window", "scheme", "cpu_ms"]);
    let mut rep_b = Reporter::new("fig9b_adaptation_fraction");
    rep_b.header(&["batches_per_window", "scheme", "adaptation_pct_of_total"]);
    let mut rep_c = Reporter::new("fig9c_total_cost_vs_da");
    rep_c.header(&["batches_per_window", "scheme", "total_cost_ratio"]);
    let mut rep_d = Reporter::new("fig9d_collected_vs_da");
    rep_d.header(&["batches_per_window", "scheme", "collected_ratio"]);

    for &bpw in &[1usize, 2, 4, 8] {
        let da = run(AdaptScheme::DirectApply, &pairs, &caps, cost, bpw);
        for (name, scheme) in SCHEMES {
            let stats = if scheme == AdaptScheme::DirectApply {
                da.clone()
            } else {
                run(scheme, &pairs, &caps, cost, bpw)
            };
            rep_a.row(&[
                &bpw,
                &name,
                &f3(stats.planning_time.as_secs_f64() * 1_000.0),
            ]);
            rep_b.row(&[&bpw, &name, &f3(stats.control_fraction() * 100.0)]);
            rep_c.row(&[
                &bpw,
                &name,
                &f3(stats.total_volume() / da.total_volume().max(1e-9)),
            ]);
            rep_d.row(&[
                &bpw,
                &name,
                &f3(stats.delivered_values as f64 / (da.delivered_values.max(1)) as f64),
            ]);
        }
    }
}
