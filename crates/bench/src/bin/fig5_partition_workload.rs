//! Fig. 5 — attribute-set partition schemes under varying workload
//! characteristics: percentage of collected node-attribute pairs for
//! SINGLETON-SET, ONE-SET, and REMO as the task shape and task count
//! change.
//!
//! Paper shapes to reproduce:
//! - 5a (sweep `|A_t|`): REMO best everywhere; ONE-SET beats
//!   SINGLETON-SET at small `|A_t|` and degrades as `|A_t|` grows.
//! - 5b (`|A_t|` large, sweep `|N_t|`): extreme load; REMO converges
//!   toward SINGLETON-SET behavior (balance matters most).
//! - 5c (sweep #small-scale tasks) and 5d (sweep #large-scale tasks):
//!   REMO consistently on top.
//!
//! The cost model follows the Fig. 2 measurements: a message's fixed
//! overhead is worth ~100 values (`C/a = 100`), so node budgets bound
//! message *counts* long before payloads.

// Benchmark scaffolding: inputs are compile-time constants, so a
// failed unwrap is a broken harness, not a runtime error path.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use rand::rngs::SmallRng;
use rand::SeedableRng;
use remo_bench::{eval_scheme, f3, Reporter, SCHEMES};
use remo_core::{AttrCatalog, CapacityMap, CostModel, MonitoringTask, PairSet, TaskId};
use remo_workloads::TaskGenConfig;

const NODES: usize = 50;
const ATTRS: usize = 100;

fn pairs_of(tasks: &[MonitoringTask]) -> PairSet {
    tasks.iter().flat_map(MonitoringTask::pairs).collect()
}

fn run_point(
    rep: &mut Reporter,
    x: usize,
    pairs: &PairSet,
    cost: CostModel,
    node_budget: f64,
    collector: f64,
) {
    let caps = CapacityMap::uniform(NODES, node_budget, collector).expect("caps");
    let catalog = AttrCatalog::new();
    for (name, scheme) in SCHEMES {
        let ev = eval_scheme(scheme, pairs, &caps, cost, &catalog);
        rep.row(&[&x, &name, &f3(ev.coverage() * 100.0)]);
    }
}

fn main() {
    let heavy_overhead = CostModel::new(100.0, 1.0).expect("cost");

    // 5a: |At| sweep at fixed task count and |Nt|.
    let mut rep = Reporter::new("fig5a_attrs_per_task");
    rep.header(&["attrs_per_task", "scheme", "collected_pct"]);
    for &at in &[2usize, 5, 10, 20, 40] {
        let gen = TaskGenConfig::fixed(NODES, ATTRS, at, 10);
        let mut rng = SmallRng::seed_from_u64(50 + at as u64);
        let tasks = gen.generate(30, TaskId(0), &mut rng);
        run_point(
            &mut rep,
            at,
            &pairs_of(&tasks),
            heavy_overhead,
            1_000.0,
            20_000.0,
        );
    }

    // 5b: extreme |At|, sweep |Nt| — payload-dominated regime where
    // load balance decides. Convergence toward SINGLETON-SET shows up
    // as REMO's chosen tree count approaching the attribute count, so
    // the tree count is reported alongside coverage.
    let balance_regime = CostModel::new(10.0, 1.0).expect("cost");
    let mut rep = Reporter::new("fig5b_nodes_per_task");
    rep.header(&["nodes_per_task", "scheme", "collected_pct", "trees"]);
    for &nt in &[5usize, 10, 20, 30, 50] {
        let gen = TaskGenConfig::fixed(NODES, ATTRS, 60, nt);
        let mut rng = SmallRng::seed_from_u64(500 + nt as u64);
        let tasks = gen.generate(10, TaskId(0), &mut rng);
        let pairs = pairs_of(&tasks);
        let caps = CapacityMap::uniform(NODES, 800.0, 20_000.0).expect("caps");
        let catalog = AttrCatalog::new();
        for (name, scheme) in SCHEMES {
            let ev = eval_scheme(scheme, &pairs, &caps, balance_regime, &catalog);
            rep.row(&[&nt, &name, &f3(ev.coverage() * 100.0), &ev.per_tree.len()]);
        }
    }

    // 5c: number of small-scale tasks.
    let mut rep = Reporter::new("fig5c_small_tasks");
    rep.header(&["tasks", "scheme", "collected_pct"]);
    for &count in &[20usize, 40, 80, 160] {
        let gen = TaskGenConfig::small_scale(NODES, ATTRS);
        let mut rng = SmallRng::seed_from_u64(900 + count as u64);
        let tasks = gen.generate(count, TaskId(0), &mut rng);
        run_point(
            &mut rep,
            count,
            &pairs_of(&tasks),
            heavy_overhead,
            1_000.0,
            20_000.0,
        );
    }

    // 5d: number of large-scale tasks.
    let mut rep = Reporter::new("fig5d_large_tasks");
    rep.header(&["tasks", "scheme", "collected_pct"]);
    for &count in &[5usize, 10, 20, 40] {
        let gen = TaskGenConfig::large_scale(NODES, ATTRS);
        let mut rng = SmallRng::seed_from_u64(1300 + count as u64);
        let tasks = gen.generate(count, TaskId(0), &mut rng);
        run_point(
            &mut rep,
            count,
            &pairs_of(&tasks),
            heavy_overhead,
            1_500.0,
            30_000.0,
        );
    }
}
