//! Fig. 8 — average percentage error of collected attribute values in
//! the (simulated) System S deployment.
//!
//! The paper deploys YieldMonitor across up to 200 nodes with ~1 task
//! per node, then compares the collector's snapshot against ground
//! truth. REMO's error is 30–50% below SINGLETON-SET and ONE-SET, and
//! falls as node count grows (sparser per-node load → bushier trees →
//! less staleness).

// Benchmark scaffolding: inputs are compile-time constants, so a
// failed unwrap is a broken harness, not a runtime error path.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use rand::rngs::SmallRng;
use rand::SeedableRng;
use remo_bench::{f3, plan_scheme, Reporter, SCHEMES};
use remo_core::{CapacityMap, CostModel, PairSet, TaskId};
use remo_sim::analysis::staleness_profile;
use remo_sim::{SimConfig, SimSetup, Simulator, ValueModel};
use remo_workloads::{AppModel, AppModelConfig, TaskGenConfig};
use std::collections::BTreeMap;

const EPOCHS: u64 = 60;
const WARMUP: usize = 15;

fn run_error(
    pairs: &PairSet,
    caps: &CapacityMap,
    cost: CostModel,
    app: &AppModel,
    scheme: remo_core::planner::PartitionScheme,
) -> (f64, f64, f64) {
    let plan = plan_scheme(scheme, pairs, caps, cost, app.catalog());
    let mut sim = Simulator::new(SimSetup {
        plan: &plan,
        planned_pairs: pairs,
        metric_pairs: None,
        caps,
        cost,
        catalog: app.catalog(),
        aliases: BTreeMap::new(),
        config: SimConfig {
            seed: 1234,
            default_model: ValueModel::Bursty {
                lo: 10.0,
                hi: 100.0,
                step: 2.0,
                burst_p: 0.1,
                burst_gain: 6.0,
            },
            error_cap: 1.0,
        },
    });
    sim.run(EPOCHS);
    let profile = staleness_profile(sim.collector(), &plan, pairs, sim.epoch());
    (
        sim.metrics().mean_error(WARMUP) * 100.0,
        plan.coverage() * 100.0,
        profile.mean_staleness(),
    )
}

fn main() {
    let cost = CostModel::new(100.0, 1.0).expect("cost");

    // 8a: sweep node count, tasks = nodes.
    let mut rep = Reporter::new("fig8a_error_vs_nodes");
    rep.header(&[
        "nodes",
        "scheme",
        "error_pct",
        "coverage_pct",
        "mean_staleness",
    ]);
    for &nodes in &[25usize, 50, 100, 150] {
        let app = AppModel::generate(&AppModelConfig {
            nodes,
            attrs_per_node: (30, 50),
            attr_types: 80,
            seed: 2009,
            ..AppModelConfig::default()
        });
        let gen = TaskGenConfig::small_scale(nodes, 80);
        let mut rng = SmallRng::seed_from_u64(41 + nodes as u64);
        let tasks = gen.generate(nodes, TaskId(0), &mut rng);
        let pairs = app.observable_pairs(&tasks);
        let caps = CapacityMap::uniform(nodes, 2_000.0, 200.0 * nodes as f64).expect("caps");
        for (name, scheme) in SCHEMES {
            let (err, cov, stale) = run_error(&pairs, &caps, cost, &app, scheme);
            rep.row(&[&nodes, &name, &f3(err), &f3(cov), &f3(stale)]);
        }
    }

    // 8b: sweep task count at fixed node count.
    let mut rep = Reporter::new("fig8b_error_vs_tasks");
    rep.header(&[
        "tasks",
        "scheme",
        "error_pct",
        "coverage_pct",
        "mean_staleness",
    ]);
    let nodes = 80usize;
    let app = AppModel::generate(&AppModelConfig {
        nodes,
        attrs_per_node: (30, 50),
        attr_types: 80,
        seed: 2012,
        ..AppModelConfig::default()
    });
    for &count in &[40usize, 80, 160, 240] {
        let gen = TaskGenConfig::small_scale(nodes, 80);
        let mut rng = SmallRng::seed_from_u64(77 + count as u64);
        let tasks = gen.generate(count, TaskId(0), &mut rng);
        let pairs = app.observable_pairs(&tasks);
        let caps = CapacityMap::uniform(nodes, 2_000.0, 200.0 * nodes as f64).expect("caps");
        for (name, scheme) in SCHEMES {
            let (err, cov, stale) = run_error(&pairs, &caps, cost, &app, scheme);
            rep.row(&[&count, &name, &f3(err), &f3(cov), &f3(stale)]);
        }
    }
}
