//! Spec-driven state machines: the executable side of the
//! specification.
//!
//! The runtime embeds these machines and *asks* them what to do —
//! `client.rs` steps a [`ClientMachine`] per supervisor, `service.rs`
//! a [`SessionMachine`] per expected node — so a transition the spec
//! does not define cannot be silently improvised. An undefined step
//! returns `None` and bumps a reject counter: node-side callers
//! `debug_assert!` on it (their input comes from the trusted
//! collector), collector-side callers count it (their input arrives
//! over the open network). The [`DedupModel`] is the obviously-correct
//! restatement of `IncarnationTracker` that the runtime shadows in
//! debug builds.

use crate::spec::{
    ClientAction, ClientEvent, ClientState, DedupPolicy, ProtocolSpec, SessionAction, SessionEvent,
    SessionState,
};
use std::collections::BTreeSet;
use std::sync::Arc;

fn shipped() -> Arc<ProtocolSpec> {
    Arc::new(ProtocolSpec::shipped())
}

// ----------------------------------------------------------- client machine

/// The node-side supervisor machine. One instance per node process:
/// construct it when the supervisor starts, step it for every
/// connection edge and every decoded control frame.
#[derive(Debug, Clone)]
pub struct ClientMachine {
    spec: Arc<ProtocolSpec>,
    state: ClientState,
    held: Option<u32>,
    rejects: u64,
}

impl Default for ClientMachine {
    fn default() -> Self {
        ClientMachine::new()
    }
}

impl ClientMachine {
    /// A machine over the shipped spec.
    pub fn new() -> ClientMachine {
        ClientMachine::with_spec(shipped())
    }

    /// A machine over an explicit (possibly mutated) spec.
    pub fn with_spec(spec: Arc<ProtocolSpec>) -> ClientMachine {
        ClientMachine {
            spec,
            state: ClientState::Disconnected,
            held: None,
            rejects: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> ClientState {
        self.state
    }

    /// The incarnation adopted from the last Welcome, if any.
    pub fn held_incarnation(&self) -> Option<u32> {
        self.held
    }

    /// Transitions the spec left undefined that this machine was asked
    /// to take anyway.
    pub fn rejects(&self) -> u64 {
        self.rejects
    }

    /// Steps the machine. `Some(action)` on a defined transition;
    /// `None` (and a counted reject, state unchanged) on an undefined
    /// one.
    pub fn step(&mut self, event: ClientEvent) -> Option<ClientAction> {
        match self.spec.client_step(self.state, event) {
            Some((action, next)) => {
                self.state = next;
                Some(action)
            }
            None => {
                self.rejects += 1;
                None
            }
        }
    }

    /// Records the incarnation a Welcome assigned. Returns `false` if
    /// it regressed below an incarnation this process already held —
    /// the client-side half of RA024.
    pub fn adopt_incarnation(&mut self, incarnation: u32) -> bool {
        let ok = self.held.is_none_or(|h| incarnation >= h);
        if ok {
            self.held = Some(incarnation);
        }
        ok
    }
}

// ---------------------------------------------------------- session machine

/// How a Hello landed on a [`SessionMachine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HelloOutcome {
    /// Admitted; carry this incarnation in the Welcome.
    Admitted(u32),
    /// The spec defines the Hello as ignored (e.g. during drain):
    /// refuse the registration without counting a protocol reject.
    Refused,
    /// The spec leaves the Hello undefined here; counted as a reject.
    Rejected,
}

/// The collector-side per-node session machine. One instance per
/// expected node for the collector's lifetime; it also owns the
/// node's incarnation slot, so incarnation assignment itself flows
/// through the spec.
#[derive(Debug, Clone)]
pub struct SessionMachine {
    spec: Arc<ProtocolSpec>,
    state: SessionState,
    slot: u32,
    rejects: u64,
}

impl Default for SessionMachine {
    fn default() -> Self {
        SessionMachine::new()
    }
}

impl SessionMachine {
    /// A machine over the shipped spec.
    pub fn new() -> SessionMachine {
        SessionMachine::with_spec(shipped())
    }

    /// A machine over an explicit (possibly mutated) spec.
    pub fn with_spec(spec: Arc<ProtocolSpec>) -> SessionMachine {
        SessionMachine {
            spec,
            state: SessionState::Listening,
            slot: 0,
            rejects: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> SessionState {
        self.state
    }

    /// The newest incarnation this session has assigned.
    pub fn incarnation_slot(&self) -> u32 {
        self.slot
    }

    /// Transitions the spec left undefined that this machine was asked
    /// to take anyway.
    pub fn rejects(&self) -> u64 {
        self.rejects
    }

    /// Steps the machine. `Some(action)` on a defined transition;
    /// `None` (and a counted reject, state unchanged) on an undefined
    /// one.
    pub fn step(&mut self, event: SessionEvent) -> Option<SessionAction> {
        match self.spec.session_step(self.state, event) {
            Some((action, next)) => {
                self.state = next;
                Some(action)
            }
            None => {
                self.rejects += 1;
                None
            }
        }
    }

    /// Handles a Hello carrying `held` (0 = fresh life): steps the
    /// table, updates the incarnation slot per the spec's policy, and
    /// — when the table admits it — immediately steps the paired
    /// `SendAssign`, mirroring the atomic Welcome+Assign queueing in
    /// the collector.
    pub fn on_hello(&mut self, held: u32) -> HelloOutcome {
        let event = if held == 0 {
            SessionEvent::RecvHelloFresh
        } else {
            SessionEvent::RecvHelloHeld
        };
        match self.step(event) {
            Some(SessionAction::AssignFreshIncarnation) => {
                if self.spec.fresh_bump {
                    self.slot += 1;
                }
                let assigned = self.slot;
                self.step(SessionEvent::SendAssign);
                HelloOutcome::Admitted(assigned)
            }
            Some(SessionAction::KeepHeldIncarnation) => {
                self.slot = self.slot.max(held);
                self.step(SessionEvent::SendAssign);
                // The Welcome echoes the *held* incarnation, not the
                // slot max: a reconnecting stale life stays on its own
                // incarnation instead of adopting a newer one and
                // colliding with that life's sequence space.
                HelloOutcome::Admitted(held)
            }
            Some(_) => HelloOutcome::Refused,
            None => HelloOutcome::Rejected,
        }
    }
}

// -------------------------------------------------------------- dedup model

/// The specification of the receive-side dedup lattice: an explicit
/// (incarnation, seen-set) pair with none of `SeqTracker`'s watermark
/// compaction. `IncarnationTracker` must agree with this model on
/// every `insert`/`contains` — debug builds assert exactly that — and
/// the verifier exhaustively checks the model's own laws.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DedupModel {
    scoped: bool,
    incarnation: u32,
    seen: BTreeSet<u64>,
}

impl Default for DedupModel {
    /// The shipped (incarnation-scoped) policy.
    fn default() -> Self {
        DedupModel::new()
    }
}

impl DedupModel {
    /// A model with the shipped (incarnation-scoped) policy.
    pub fn new() -> DedupModel {
        DedupModel::with_policy(DedupPolicy {
            incarnation_scoped: true,
        })
    }

    /// A model with an explicit policy (`incarnation_scoped: false`
    /// reproduces the PR 9 seq-restart swallow).
    pub fn with_policy(policy: DedupPolicy) -> DedupModel {
        DedupModel {
            scoped: policy.incarnation_scoped,
            incarnation: 0,
            seen: BTreeSet::new(),
        }
    }

    /// Records `(incarnation, seq)`; returns `true` iff never seen.
    pub fn insert(&mut self, incarnation: u32, seq: u64) -> bool {
        if self.scoped {
            match incarnation.cmp(&self.incarnation) {
                std::cmp::Ordering::Greater => {
                    self.incarnation = incarnation;
                    self.seen.clear();
                }
                std::cmp::Ordering::Less => return false,
                std::cmp::Ordering::Equal => {}
            }
        } else {
            // Buggy policy: one flat window across incarnations.
            self.incarnation = self.incarnation.max(incarnation);
        }
        self.seen.insert(seq)
    }

    /// Whether `(incarnation, seq)` has been seen.
    pub fn contains(&self, incarnation: u32, seq: u64) -> bool {
        if self.scoped {
            match incarnation.cmp(&self.incarnation) {
                std::cmp::Ordering::Less => true,
                std::cmp::Ordering::Greater => false,
                std::cmp::Ordering::Equal => self.seen.contains(&seq),
            }
        } else {
            self.seen.contains(&seq)
        }
    }

    /// The newest sender incarnation observed.
    pub fn incarnation(&self) -> u32 {
        self.incarnation
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    #[test]
    fn client_machine_walks_the_happy_path() {
        let mut m = ClientMachine::new();
        assert_eq!(
            m.step(ClientEvent::Connected),
            Some(ClientAction::SendHello)
        );
        assert_eq!(
            m.step(ClientEvent::RecvWelcome),
            Some(ClientAction::AdoptWelcome)
        );
        assert!(m.adopt_incarnation(1));
        assert_eq!(
            m.step(ClientEvent::RecvAssign),
            Some(ClientAction::ApplyAssign)
        );
        assert_eq!(m.step(ClientEvent::RecvTick), Some(ClientAction::RunTick));
        assert_eq!(m.step(ClientEvent::RecvShutdown), Some(ClientAction::Stop));
        assert_eq!(m.state(), ClientState::Done);
        assert_eq!(m.rejects(), 0);
    }

    #[test]
    fn client_machine_rejects_undefined_and_holds_state() {
        let mut m = ClientMachine::new();
        assert_eq!(m.step(ClientEvent::RecvTick), None, "tick before connect");
        assert_eq!(m.state(), ClientState::Disconnected);
        assert_eq!(m.rejects(), 1);
    }

    #[test]
    fn adopting_a_regressed_incarnation_is_refused() {
        let mut m = ClientMachine::new();
        assert!(m.adopt_incarnation(3));
        assert!(!m.adopt_incarnation(2));
        assert_eq!(m.held_incarnation(), Some(3));
    }

    #[test]
    fn session_assigns_strictly_growing_incarnations() {
        let mut s = SessionMachine::new();
        assert_eq!(s.on_hello(0), HelloOutcome::Admitted(1));
        assert_eq!(s.state(), SessionState::Assigned);
        // Reconnect of the same life keeps it.
        assert_eq!(s.on_hello(1), HelloOutcome::Admitted(1));
        // A restarted process gets a strictly newer one.
        assert_eq!(s.on_hello(0), HelloOutcome::Admitted(2));
    }

    #[test]
    fn draining_sessions_refuse_new_hellos() {
        let mut s = SessionMachine::new();
        assert_eq!(s.on_hello(0), HelloOutcome::Admitted(1));
        assert_eq!(
            s.step(SessionEvent::SendShutdown),
            Some(SessionAction::Drain)
        );
        assert_eq!(s.on_hello(0), HelloOutcome::Refused);
        assert_eq!(s.rejects(), 0, "a defined Ignore is not a reject");
    }

    #[test]
    fn dedup_model_scopes_the_window_to_the_incarnation() {
        let mut m = DedupModel::new();
        assert!(m.insert(1, 1));
        assert!(m.insert(1, 2));
        assert!(!m.insert(1, 1), "replay within a life");
        // A restarted sender's seqs start over and must land fresh.
        assert!(m.insert(2, 1), "fresh incarnation resets the window");
        assert!(!m.insert(1, 3), "stale life is always seen");
        assert!(m.contains(1, 99), "stale life is always seen");
        assert!(!m.contains(3, 1), "future life is never seen");
    }

    #[test]
    fn unscoped_dedup_model_reproduces_the_seq_restart_swallow() {
        let mut m = DedupModel::with_policy(DedupPolicy {
            incarnation_scoped: false,
        });
        assert!(m.insert(1, 1));
        assert!(
            !m.insert(2, 1),
            "the buggy flat window swallows the restarted sender's frame"
        );
    }
}
