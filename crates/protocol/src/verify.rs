//! Exhaustive verification of a [`ProtocolSpec`] under lossy-channel
//! semantics.
//!
//! Three bounded-exhaustive explorations, each a DFS with
//! state-fingerprint dedup over a *closed* system built from the spec
//! tables themselves:
//!
//! 1. **Control plane** (`verify_ctrl`): one node supervisor × one
//!    collector session over FIFO channels, with the channel faults
//!    the runtime tolerates — message drop via connection reset,
//!    process restart with a fresh incarnation, late/straggler
//!    delivery — interleaved against the epoch/barrier loop.
//! 2. **ARQ** (`verify_arq`): sender/receiver over a multiset
//!    channel with drop, duplication, reordering, and sender restart
//!    (sequence numbers restart at 1 in the new life — the exact
//!    PR 9 scenario).
//! 3. **Dedup lattice** (`verify_dedup`): every insert sequence
//!    over a small (incarnation, seq) universe against the
//!    [`DedupModel`] laws.
//!
//! Properties proved (rule codes from `remo_core::validate`):
//! RA022 — every reachable non-terminal state has an enabled
//! transition; RA023 — no reachable delivery lands on an undefined
//! table entry, and no stale frame is ever treated as fresh evidence
//! (the straggler-resurrection / double-repair property); RA024 —
//! assigned incarnations grow strictly across fresh Hellos, adopted
//! incarnations never regress, and the dedup lattice never swallows a
//! current- or future-life frame; RA025 — per-frame transmissions
//! respect the retry budget and channels stay within their declared
//! caps.
//!
//! Undefined entries are handled by kind: an undefined **message**
//! delivery is an RA023 finding (the message is dropped and
//! exploration continues, so one mutation yields one rule); an
//! undefined **internal** event (connection edges, fan-out) leaves
//! the machine unmoved — the resulting starvation surfaces as RA022.

use crate::machine::DedupModel;
use crate::spec::{
    ClientAction, ClientEvent, ClientState, ProtocolSpec, SessionAction, SessionEvent, SessionState,
};
use remo_core::validate::{rule, rules, AuditOutcome, Finding};
use std::collections::{BTreeSet, HashSet};

/// Exploration counters, per phase: `expanded` counts transitions
/// applied, `visited` unique states, `deduped` transitions that
/// landed on an already-visited state.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseStats {
    /// Unique states reached (including the initial state).
    pub visited: u64,
    /// Transitions applied.
    pub expanded: u64,
    /// Transitions that reached an already-visited state.
    pub deduped: u64,
}

/// One verification phase's name and counters.
#[derive(Debug, Clone, Copy)]
pub struct PhaseReport {
    /// Phase name (`ctrl`, `arq`, `dedup`).
    pub name: &'static str,
    /// Counters.
    pub stats: PhaseStats,
}

/// The full verification result.
#[derive(Debug, Clone)]
pub struct VerifyReport {
    /// Per-phase counters.
    pub phases: Vec<PhaseReport>,
    /// Deduplicated findings across phases (empty = verified).
    pub findings: Vec<Finding>,
}

impl VerifyReport {
    /// Whether the spec verified with zero violations.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Summed counters across phases.
    pub fn totals(&self) -> PhaseStats {
        let mut t = PhaseStats::default();
        for p in &self.phases {
            t.visited += p.stats.visited;
            t.expanded += p.stats.expanded;
            t.deduped += p.stats.deduped;
        }
        t
    }

    /// The findings as an [`AuditOutcome`] for the shared SARIF
    /// pipeline.
    pub fn outcome(&self) -> AuditOutcome {
        AuditOutcome {
            findings: self.findings.clone(),
            ..AuditOutcome::default()
        }
    }
}

fn finding(name: &str, message: String) -> Finding {
    let meta = rule(name);
    Finding {
        rule: name.to_string(),
        code: meta.map(|m| m.code).unwrap_or("RA000").to_string(),
        severity: meta.map(|m| m.severity).unwrap_or_default(),
        message,
        tree: None,
        node: None,
        attr: None,
        actual: None,
        limit: None,
        fix_hint: meta.map(|m| m.fix_hint).unwrap_or_default().to_string(),
    }
}

/// Collects findings with message-level dedup so a violation reached
/// through many interleavings reports once.
#[derive(Debug, Default)]
struct Sink {
    seen: BTreeSet<(String, String)>,
    findings: Vec<Finding>,
}

impl Sink {
    fn push(&mut self, name: &str, message: String) {
        if self.seen.insert((name.to_string(), message.clone())) {
            self.findings.push(finding(name, message));
        }
    }
}

/// Verifies `spec` across all three phases. `depth` bounds the DFS
/// trace length (the state spaces are finite, so the default
/// [`verify`] bound is effectively "until closure").
pub fn verify_with_depth(spec: &ProtocolSpec, depth: usize) -> VerifyReport {
    let mut sink = Sink::default();
    let ctrl = verify_ctrl(spec, depth, &mut sink);
    let arq = verify_arq(spec, depth, &mut sink);
    let dedup = verify_dedup(spec, &mut sink);
    VerifyReport {
        phases: vec![
            PhaseReport {
                name: "ctrl",
                stats: ctrl,
            },
            PhaseReport {
                name: "arq",
                stats: arq,
            },
            PhaseReport {
                name: "dedup",
                stats: dedup,
            },
        ],
        findings: sink.findings,
    }
}

/// Verifies `spec` to state-space closure.
pub fn verify(spec: &ProtocolSpec) -> VerifyReport {
    verify_with_depth(spec, 100_000)
}

// =========================================================== ctrl product

/// Collector → node control frames (abstracted payloads).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
enum CMsg {
    Welcome { inc: u8 },
    Assign,
    Tick { epoch: u8 },
    DegradeOn,
    DegradeOff,
    Shutdown,
}

/// Node → collector control frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
enum NMsg {
    Hello { inc: u8 },
    Report { epoch: u8 },
}

/// The closed-system state: one supervisor, one session, two FIFO
/// queues, the collector's epoch loop, and the fault budgets.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
struct Ctrl {
    client: ClientState,
    held: Option<u8>,
    registered_once: bool,
    session: SessionState,
    slot: u8,
    last_fresh_grant: u8,
    fresh_evidence: bool,
    evidence_stale: bool,
    conn: bool,
    conn_registered: bool,
    c2n: Vec<CMsg>,
    n2c: Vec<NMsg>,
    epoch: u8,
    ticked: bool,
    credited: bool,
    misses: u8,
    degraded: bool,
    degrade_moved: bool,
    shutdown_sent: bool,
    collector_done: bool,
    restarts_left: u8,
    resets_left: u8,
}

impl Ctrl {
    fn initial(spec: &ProtocolSpec) -> Ctrl {
        Ctrl {
            client: ClientState::Disconnected,
            held: None,
            registered_once: false,
            session: SessionState::Listening,
            slot: 0,
            last_fresh_grant: 0,
            fresh_evidence: false,
            evidence_stale: false,
            conn: false,
            conn_registered: false,
            c2n: Vec::new(),
            n2c: Vec::new(),
            epoch: 0,
            ticked: false,
            credited: false,
            misses: 0,
            degraded: false,
            degrade_moved: false,
            shutdown_sent: false,
            collector_done: false,
            restarts_left: spec.bounds.restarts,
            resets_left: spec.bounds.resets,
        }
    }

    fn terminal(&self) -> bool {
        self.collector_done
            && !self.conn
            && (self.client == ClientState::Done
                || (self.client == ClientState::Disconnected && !self.registered_once))
    }

    /// Steps the session table for an internal (non-message) event;
    /// an undefined entry leaves the machine unmoved (starvation is
    /// RA022's job, not RA023's).
    fn session_internal(&mut self, spec: &ProtocolSpec, event: SessionEvent) {
        if let Some((_, next)) = spec.session_step(self.session, event) {
            self.session = next;
        }
    }

    /// Steps the client table for an internal event.
    fn client_internal(&mut self, spec: &ProtocolSpec, event: ClientEvent) {
        if let Some((_, next)) = spec.client_step(self.client, event) {
            self.client = next;
        }
    }

    fn drop_conn(&mut self, spec: &ProtocolSpec) {
        self.conn = false;
        self.conn_registered = false;
        self.c2n.clear();
        self.n2c.clear();
        self.client_internal(spec, ClientEvent::ConnLost);
        self.session_internal(spec, SessionEvent::ConnLost);
    }

    fn check_caps(&self, spec: &ProtocolSpec, sink: &mut Sink) {
        let cap = spec.arq.channel_cap as usize;
        if self.c2n.len() > cap || self.n2c.len() > cap {
            sink.push(
                rules::UNBOUNDED_INFLIGHT,
                format!(
                    "ctrl: a control channel exceeded its declared cap of {cap} frames \
                     (collector→node {}, node→collector {})",
                    self.c2n.len(),
                    self.n2c.len()
                ),
            );
        }
    }
}

/// All successors of `s`, applying spec semantics and recording
/// findings. A successor equal to `None` means the transition
/// recorded a violation and the offending input was dropped.
fn ctrl_successors(s: &Ctrl, spec: &ProtocolSpec, sink: &mut Sink) -> Vec<Ctrl> {
    let mut out = Vec::new();

    // Connect: the supervisor dials while the collector is alive.
    if !s.collector_done && !s.conn && s.client == ClientState::Disconnected {
        let mut n = s.clone();
        n.conn = true;
        n.conn_registered = false;
        if let Some((ClientAction::SendHello, next)) =
            spec.client_step(n.client, ClientEvent::Connected)
        {
            n.client = next;
            n.n2c.push(NMsg::Hello {
                inc: n.held.unwrap_or(0),
            });
            n.check_caps(spec, sink);
        } else {
            // Undefined/mutated Connected entry: dial without Hello.
            n.client_internal(spec, ClientEvent::Connected);
        }
        out.push(n);
    }

    // Deliver the head of the collector→node FIFO.
    if s.conn && !s.c2n.is_empty() {
        let mut n = s.clone();
        let msg = n.c2n.remove(0);
        let event = match msg {
            CMsg::Welcome { .. } => ClientEvent::RecvWelcome,
            CMsg::Assign => ClientEvent::RecvAssign,
            CMsg::Tick { .. } => ClientEvent::RecvTick,
            CMsg::DegradeOn | CMsg::DegradeOff => ClientEvent::RecvDegrade,
            CMsg::Shutdown => ClientEvent::RecvShutdown,
        };
        match spec.client_step(n.client, event) {
            None => {
                sink.push(
                    rules::UNEXPECTED_MESSAGE,
                    format!(
                        "ctrl: node in {:?} has no table entry for {event:?}",
                        n.client
                    ),
                );
            }
            Some((action, next)) => {
                n.client = next;
                match (action, msg) {
                    (ClientAction::AdoptWelcome, CMsg::Welcome { inc }) => {
                        if n.held.is_some_and(|h| inc < h) {
                            sink.push(
                                rules::INCARNATION_REGRESSION,
                                format!(
                                    "ctrl: Welcome regressed the node's incarnation \
                                     from {:?} to {inc}",
                                    n.held
                                ),
                            );
                        }
                        n.held = Some(inc.max(n.held.unwrap_or(0)));
                        n.registered_once = true;
                    }
                    (ClientAction::RunTick, CMsg::Tick { epoch }) => {
                        n.n2c.push(NMsg::Report { epoch });
                        n.check_caps(spec, sink);
                    }
                    _ => {}
                }
            }
        }
        out.push(n);
    }

    // Deliver the head of the node→collector FIFO.
    if s.conn && !s.n2c.is_empty() {
        let mut n = s.clone();
        let msg = n.n2c.remove(0);
        match msg {
            NMsg::Hello { inc } => {
                let event = if inc == 0 {
                    SessionEvent::RecvHelloFresh
                } else {
                    SessionEvent::RecvHelloHeld
                };
                match spec.session_step(n.session, event) {
                    None => {
                        sink.push(
                            rules::UNEXPECTED_MESSAGE,
                            format!(
                                "ctrl: session in {:?} has no table entry for {event:?}",
                                n.session
                            ),
                        );
                    }
                    Some((SessionAction::AssignFreshIncarnation, next)) => {
                        n.session = next;
                        if spec.fresh_bump {
                            n.slot += 1;
                        }
                        if n.slot <= n.last_fresh_grant {
                            sink.push(
                                rules::INCARNATION_REGRESSION,
                                format!(
                                    "ctrl: fresh Hello granted incarnation {}, not strictly \
                                     above the previous grant {}",
                                    n.slot, n.last_fresh_grant
                                ),
                            );
                        }
                        n.last_fresh_grant = n.last_fresh_grant.max(n.slot);
                        n.conn_registered = true;
                        n.c2n.push(CMsg::Welcome { inc: n.slot });
                        n.session_internal(spec, SessionEvent::SendAssign);
                        n.c2n.push(CMsg::Assign);
                        n.check_caps(spec, sink);
                    }
                    Some((SessionAction::KeepHeldIncarnation, next)) => {
                        n.session = next;
                        n.slot = n.slot.max(inc);
                        n.conn_registered = true;
                        // Welcome echoes the *held* incarnation, not the
                        // slot max: a stale life must stay on its own
                        // incarnation rather than adopt a newer one.
                        n.c2n.push(CMsg::Welcome { inc });
                        n.session_internal(spec, SessionEvent::SendAssign);
                        n.c2n.push(CMsg::Assign);
                        n.check_caps(spec, sink);
                    }
                    Some((_, next)) => {
                        // Refused (e.g. draining): the collector hangs up.
                        n.session = next;
                        n.drop_conn(spec);
                    }
                }
            }
            NMsg::Report { epoch } => {
                let stale = !(s.ticked && epoch == s.epoch);
                let as_fresh = !stale || spec.barrier.credit_stale_reports;
                let event = if as_fresh {
                    SessionEvent::RecvReportFresh
                } else {
                    SessionEvent::RecvReportStale
                };
                match spec.session_step(n.session, event) {
                    None => {
                        sink.push(
                            rules::UNEXPECTED_MESSAGE,
                            format!(
                                "ctrl: session in {:?} has no table entry for {event:?} \
                                 (report epoch {epoch}, barrier epoch {})",
                                n.session, s.epoch
                            ),
                        );
                    }
                    Some((action, next)) => {
                        n.session = next;
                        if action == SessionAction::CreditReport {
                            n.credited = true;
                            if n.session == SessionState::Dead {
                                n.fresh_evidence = true;
                                n.evidence_stale = stale;
                            }
                        }
                    }
                }
            }
        }
        out.push(n);
    }

    // Tick: the epoch loop advances and fans out to the registry.
    if !s.collector_done && !s.shutdown_sent && !s.ticked && s.epoch < spec.bounds.epochs {
        let mut n = s.clone();
        n.epoch += 1;
        n.ticked = true;
        n.credited = false;
        n.degrade_moved = false;
        if n.conn && n.conn_registered {
            if let Some((SessionAction::DeliverTick, next)) =
                spec.session_step(n.session, SessionEvent::SendTick)
            {
                n.session = next;
                n.c2n.push(CMsg::Tick { epoch: n.epoch });
                n.check_caps(spec, sink);
            } else {
                n.session_internal(spec, SessionEvent::SendTick);
            }
        }
        out.push(n);
    }

    // Barrier: the report deadline expires and health verdicts land.
    if s.ticked {
        let mut n = s.clone();
        n.ticked = false;
        if n.session == SessionState::Dead && n.fresh_evidence {
            if n.evidence_stale {
                sink.push(
                    rules::UNEXPECTED_MESSAGE,
                    "ctrl: a stale straggler report resurrected a confirmed-dead \
                     session (a second repair of already-repaired load follows)"
                        .to_string(),
                );
            }
            n.session_internal(spec, SessionEvent::MarkRecovered);
            n.fresh_evidence = false;
            n.evidence_stale = false;
            n.misses = 0;
        } else if n.credited {
            n.misses = 0;
        } else {
            n.misses = (n.misses + 1).min(spec.barrier.confirm_after);
            n.session_internal(spec, SessionEvent::MissDeadline);
            if n.misses >= spec.barrier.confirm_after && n.session != SessionState::Dead {
                n.session_internal(spec, SessionEvent::ConfirmDead);
                n.session_internal(spec, SessionEvent::Repair);
            }
        }
        out.push(n);
    }

    // Degrade fan-out: at most one backpressure move per epoch.
    if !s.collector_done && !s.shutdown_sent && !s.degrade_moved && s.conn && s.conn_registered {
        let mut n = s.clone();
        n.degrade_moved = true;
        if s.degraded {
            n.degraded = false;
            n.session_internal(spec, SessionEvent::SendRecover);
            n.c2n.push(CMsg::DegradeOff);
        } else {
            n.degraded = true;
            n.session_internal(spec, SessionEvent::SendDegrade);
            n.c2n.push(CMsg::DegradeOn);
        }
        n.check_caps(spec, sink);
        out.push(n);
    }

    // Shutdown broadcast after the last barrier closes.
    if !s.collector_done && !s.shutdown_sent && s.epoch == spec.bounds.epochs && !s.ticked {
        let mut n = s.clone();
        n.shutdown_sent = true;
        if n.conn && n.conn_registered {
            n.session_internal(spec, SessionEvent::SendShutdown);
            n.c2n.push(CMsg::Shutdown);
            n.check_caps(spec, sink);
        }
        out.push(n);
    }

    // Collector process exit: after the broadcast drains.
    if s.shutdown_sent && !s.collector_done && s.c2n.is_empty() {
        let mut n = s.clone();
        n.collector_done = true;
        if n.conn {
            n.drop_conn(spec);
        }
        out.push(n);
    }

    // Node hangs up after draining.
    if s.conn && s.client == ClientState::Done {
        let mut n = s.clone();
        n.conn = false;
        n.conn_registered = false;
        n.c2n.clear();
        n.n2c.clear();
        n.session_internal(spec, SessionEvent::ConnLost);
        out.push(n);
    }

    // Connection reset: both sides observe ConnLost, queues are lost,
    // the process (and its held incarnation) survives.
    if s.conn && s.resets_left > 0 {
        let mut n = s.clone();
        n.resets_left -= 1;
        n.drop_conn(spec);
        out.push(n);
    }

    // Process restart: a brand-new supervisor with no held state.
    if s.restarts_left > 0 && s.client != ClientState::Done {
        let mut n = s.clone();
        n.restarts_left -= 1;
        if n.conn {
            n.conn = false;
            n.conn_registered = false;
            n.c2n.clear();
            n.n2c.clear();
            n.session_internal(spec, SessionEvent::ConnLost);
        }
        n.client = ClientState::Disconnected;
        n.held = None;
        n.registered_once = false;
        out.push(n);
    }

    // Give up: a registered supervisor stops redialing once the
    // collector is gone.
    if s.collector_done && s.client == ClientState::Disconnected && s.registered_once {
        let mut n = s.clone();
        n.client_internal(spec, ClientEvent::GiveUp);
        out.push(n);
    }

    out
}

/// Explores the control-plane product automaton.
fn verify_ctrl(spec: &ProtocolSpec, depth: usize, sink: &mut Sink) -> PhaseStats {
    let root = Ctrl::initial(spec);
    let mut stats = PhaseStats {
        visited: 1,
        ..PhaseStats::default()
    };
    let mut seen: HashSet<Ctrl> = HashSet::new();
    seen.insert(root.clone());
    // Explicit stack: (state, depth spent) — state spaces are small
    // but traces can be long, so no recursion.
    let mut stack = vec![(root, 0usize)];
    while let Some((state, d)) = stack.pop() {
        if d >= depth {
            continue;
        }
        let succs = ctrl_successors(&state, spec, sink);
        if succs.is_empty() && !state.terminal() {
            sink.push(
                rules::PROTOCOL_DEADLOCK,
                format!(
                    "ctrl: stuck non-terminal state (client {:?}, session {:?}, \
                     conn {}, epoch {}) has no enabled transition",
                    state.client, state.session, state.conn, state.epoch
                ),
            );
        }
        for next in succs {
            stats.expanded += 1;
            if seen.insert(next.clone()) {
                stats.visited += 1;
                stack.push((next, d + 1));
            } else {
                stats.deduped += 1;
            }
        }
    }
    stats
}

// ================================================================== arq

const ARQ_NET_CAP: usize = 3;

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
enum Pkt {
    Data { inc: u8, seq: u8 },
    Ack { inc: u8, seq: u8 },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
struct FrameSt {
    seq: u8,
    attempts: u8,
    acked: bool,
    abandoned: bool,
}

#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
struct Arq {
    inc: u8,
    produced: u8,
    frames: Vec<FrameSt>,
    receiver: DedupModel,
    delivered: BTreeSet<(u8, u8)>,
    net: Vec<Pkt>,
    dups_left: u8,
    restarts_left: u8,
}

impl Arq {
    fn initial(spec: &ProtocolSpec) -> Arq {
        Arq {
            inc: 1,
            produced: 0,
            frames: Vec::new(),
            receiver: DedupModel::with_policy(spec.dedup),
            delivered: BTreeSet::new(),
            net: Vec::new(),
            dups_left: spec.bounds.dups,
            restarts_left: spec.bounds.restarts,
        }
    }

    fn terminal(&self, spec: &ProtocolSpec) -> bool {
        self.produced == spec.bounds.frames
            && self.restarts_left == 0
            && self.net.is_empty()
            && self.frames.iter().all(|f| f.acked || f.abandoned)
    }
}

fn arq_successors(s: &Arq, spec: &ProtocolSpec, sink: &mut Sink) -> Vec<Arq> {
    let mut out = Vec::new();
    let max = spec.arq.max_attempts;

    // Produce the next frame of this life (first transmission).
    if s.produced < spec.bounds.frames && s.net.len() < ARQ_NET_CAP {
        let mut n = s.clone();
        n.produced += 1;
        let seq = n.produced;
        n.frames.push(FrameSt {
            seq,
            attempts: 1,
            acked: false,
            abandoned: false,
        });
        n.net.push(Pkt::Data { inc: n.inc, seq });
        out.push(n);
    }

    for (i, f) in s.frames.iter().enumerate() {
        if f.acked || f.abandoned {
            continue;
        }
        let budget_ok = f.attempts < max;
        // Retransmit: within budget always; past it only when the
        // spec (buggily) fails to enforce the budget — RA025.
        if s.net.len() < ARQ_NET_CAP && (budget_ok || !spec.arq.retry_budget_enforced) {
            let mut n = s.clone();
            if !budget_ok {
                sink.push(
                    rules::UNBOUNDED_INFLIGHT,
                    format!(
                        "arq: frame seq {} retransmitted past the {max}-attempt retry \
                         budget; the unacked set never drains",
                        f.seq
                    ),
                );
            }
            n.frames[i].attempts = (f.attempts + 1).min(max + 1);
            n.net.push(Pkt::Data {
                inc: n.inc,
                seq: f.seq,
            });
            out.push(n);
        }
        // Abandon once the budget is spent.
        if !budget_ok && spec.arq.retry_budget_enforced {
            let mut n = s.clone();
            n.frames[i].abandoned = true;
            out.push(n);
        }
    }

    for (k, pkt) in s.net.iter().enumerate() {
        // Deliver (any index: the network reorders freely).
        let mut n = s.clone();
        let pkt = *pkt;
        n.net.remove(k);
        match pkt {
            Pkt::Data { inc, seq } => {
                let watermark = s.receiver.incarnation();
                let was_delivered = s.delivered.contains(&(inc, seq));
                let accepted = n.receiver.insert(u32::from(inc), u64::from(seq));
                if accepted {
                    if was_delivered {
                        sink.push(
                            rules::UNEXPECTED_MESSAGE,
                            format!(
                                "arq: frame (inc {inc}, seq {seq}) accepted twice — \
                                 duplicate delivery reached the application"
                            ),
                        );
                    }
                    n.delivered.insert((inc, seq));
                } else if !was_delivered && u32::from(inc) >= watermark {
                    sink.push(
                        rules::INCARNATION_REGRESSION,
                        format!(
                            "arq: fresh frame (inc {inc}, seq {seq}) swallowed by dedup — \
                             a restarted sender's first frames are silently lost"
                        ),
                    );
                }
                if n.net.len() < ARQ_NET_CAP {
                    n.net.push(Pkt::Ack { inc, seq });
                }
            }
            Pkt::Ack { inc, seq } => {
                if inc == n.inc {
                    for f in &mut n.frames {
                        if f.seq == seq && !f.abandoned {
                            f.acked = true;
                        }
                    }
                }
            }
        }
        out.push(n);

        // Drop.
        let mut n = s.clone();
        n.net.remove(k);
        out.push(n);

        // Duplicate.
        if s.dups_left > 0 && s.net.len() < ARQ_NET_CAP {
            let mut n = s.clone();
            n.dups_left -= 1;
            n.net.push(pkt);
            out.push(n);
        }
    }

    // Sender restart: new incarnation, sequence numbers start over,
    // the old life's packets stay in flight.
    if s.restarts_left > 0 {
        let mut n = s.clone();
        n.restarts_left -= 1;
        n.inc += 1;
        n.produced = 0;
        n.frames.clear();
        out.push(n);
    }

    out
}

/// Explores the ARQ sender/receiver automaton.
fn verify_arq(spec: &ProtocolSpec, depth: usize, sink: &mut Sink) -> PhaseStats {
    let root = Arq::initial(spec);
    let mut stats = PhaseStats {
        visited: 1,
        ..PhaseStats::default()
    };
    let mut seen: HashSet<Arq> = HashSet::new();
    seen.insert(root.clone());
    let mut stack = vec![(root, 0usize)];
    while let Some((state, d)) = stack.pop() {
        if d >= depth {
            continue;
        }
        let succs = arq_successors(&state, spec, sink);
        if succs.is_empty() && !state.terminal(spec) {
            sink.push(
                rules::PROTOCOL_DEADLOCK,
                format!(
                    "arq: stuck non-terminal state (inc {}, {} frames unresolved)",
                    state.inc,
                    state
                        .frames
                        .iter()
                        .filter(|f| !f.acked && !f.abandoned)
                        .count()
                ),
            );
        }
        for next in succs {
            stats.expanded += 1;
            if seen.insert(next.clone()) {
                stats.visited += 1;
                stack.push((next, d + 1));
            } else {
                stats.deduped += 1;
            }
        }
    }
    stats
}

// ================================================================ dedup

/// Exhaustively enumerates insert sequences over a small
/// (incarnation, seq) universe and checks the lattice laws.
fn verify_dedup(spec: &ProtocolSpec, sink: &mut Sink) -> PhaseStats {
    const INCS: [u8; 2] = [1, 2];
    const SEQS: [u8; 3] = [1, 2, 3];
    const DEPTH: usize = 4;

    let mut stats = PhaseStats::default();
    let universe: Vec<(u8, u8)> = INCS
        .iter()
        .flat_map(|&i| SEQS.iter().map(move |&q| (i, q)))
        .collect();

    // (model, accepted ground truth) pairs, expanded breadth-first;
    // dedup collapses permutations that reach the same lattice state.
    let mut seen: HashSet<(DedupModel, BTreeSet<(u8, u8)>)> = HashSet::new();
    let root = (DedupModel::with_policy(spec.dedup), BTreeSet::new());
    seen.insert(root.clone());
    stats.visited = 1;
    let mut frontier = vec![root];
    for _ in 0..DEPTH {
        let mut next_frontier = Vec::new();
        for (model, accepted) in &frontier {
            for &(inc, seq) in &universe {
                stats.expanded += 1;
                let mut m = model.clone();
                let mut acc = accepted.clone();
                let watermark = m.incarnation();
                let max_inc_accepted = acc.iter().map(|&(i, _)| i).max().unwrap_or(0);
                let fresh = inc > max_inc_accepted
                    || (inc == max_inc_accepted && !acc.contains(&(inc, seq)));
                let pre = m.contains(u32::from(inc), u64::from(seq));
                let r = m.insert(u32::from(inc), u64::from(seq));
                if m.incarnation() < watermark {
                    sink.push(
                        rules::INCARNATION_REGRESSION,
                        format!(
                            "dedup: watermark regressed from {watermark} to {} on \
                             insert (inc {inc}, seq {seq})",
                            m.incarnation()
                        ),
                    );
                }
                if r && pre {
                    sink.push(
                        rules::UNEXPECTED_MESSAGE,
                        format!(
                            "dedup: insert (inc {inc}, seq {seq}) accepted a frame \
                             contains() already reported seen"
                        ),
                    );
                }
                if !r && fresh && u32::from(inc) >= watermark {
                    sink.push(
                        rules::INCARNATION_REGRESSION,
                        format!(
                            "dedup: never-accepted frame (inc {inc}, seq {seq}) from a \
                             current-or-newer life rejected — swallowed by a stale window"
                        ),
                    );
                }
                if r && acc.contains(&(inc, seq)) {
                    sink.push(
                        rules::UNEXPECTED_MESSAGE,
                        format!("dedup: frame (inc {inc}, seq {seq}) accepted twice"),
                    );
                }
                if r {
                    acc.insert((inc, seq));
                }
                let state = (m, acc);
                if seen.insert(state.clone()) {
                    stats.visited += 1;
                    next_frontier.push(state);
                } else {
                    stats.deduped += 1;
                }
            }
        }
        frontier = next_frontier;
    }
    stats
}

/// Full closure in release; a bounded dive in debug builds so plain
/// `cargo test` stays fast. Depth 20 is past every corpus trip point
/// (the deepest, the RA022 stuck state, needs 14) with margin.
#[cfg(test)]
pub(crate) fn test_verify(spec: &ProtocolSpec) -> VerifyReport {
    if cfg!(debug_assertions) {
        verify_with_depth(spec, 20)
    } else {
        verify(spec)
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    #[test]
    fn shipped_spec_verifies_clean() {
        let report = test_verify(&ProtocolSpec::shipped());
        assert!(
            report.is_clean(),
            "shipped spec must verify with zero violations: {:?}",
            report.findings
        );
        let totals = report.totals();
        assert!(totals.visited > 100, "exploration must be non-trivial");
        assert!(totals.deduped > 0, "interleavings must collapse");
        for phase in &report.phases {
            assert!(
                phase.stats.visited > 0,
                "phase {} explored nothing",
                phase.name
            );
        }
    }

    #[test]
    fn conservation_of_transitions() {
        let report = test_verify(&ProtocolSpec::shipped());
        for phase in &report.phases {
            // Every applied transition either discovers a state or
            // lands on a known one.
            assert_eq!(
                phase.stats.expanded,
                phase.stats.visited - 1 + phase.stats.deduped,
                "phase {}: {:?}",
                phase.name,
                phase.stats
            );
        }
    }
}
