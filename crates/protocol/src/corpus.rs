//! The known-bad spec corpus: one minimal mutation of the shipped
//! spec per rule, each engineered to trip exactly that rule — and
//! nothing else — under [`crate::verify`]. Two of the mutations are
//! PR 9's real bugs, re-introduced verbatim at the spec level, so the
//! corpus is also the proof that the verifier would have caught both
//! before they shipped.

use crate::spec::{ClientEvent, ClientState, ProtocolSpec, SessionEvent, SessionState};

/// One corpus case: a mutated spec plus the single rule it must trip.
#[derive(Debug, Clone)]
pub struct CorpusCase {
    /// Stable case name.
    pub name: &'static str,
    /// The rule the mutation violates (kebab-case name).
    pub rule: &'static str,
    /// The rule's stable `RA…` code.
    pub code: &'static str,
    /// What was mutated and why it is wrong.
    pub why: &'static str,
    /// The mutated spec.
    pub spec: ProtocolSpec,
}

/// PR 9 bug #1, as a spec mutation: the receive-side dedup window not
/// scoped to the sender incarnation, so a restarted sender's fresh
/// frames (seqs starting over at 1) sit below the old watermark and
/// are silently swallowed.
pub fn seq_restart_swallow() -> ProtocolSpec {
    let mut spec = ProtocolSpec::shipped();
    spec.dedup.incarnation_scoped = false;
    spec
}

/// PR 9 bug #2, as a spec mutation: stale (closed-epoch) straggler
/// reports credited as barrier attendance, resurrecting confirmed-dead
/// nodes and double-repairing already-repaired load.
pub fn straggler_resurrection() -> ProtocolSpec {
    let mut spec = ProtocolSpec::shipped();
    spec.barrier.credit_stale_reports = true;
    spec
}

/// All corpus cases, in rule-code order.
pub fn cases() -> Vec<CorpusCase> {
    let mut client_drops_conn_lost = ProtocolSpec::shipped();
    client_drops_conn_lost
        .client
        .retain(|r| !(r.state == ClientState::Running && r.event == ClientEvent::ConnLost));

    let mut undefined_stale_report = ProtocolSpec::shipped();
    undefined_stale_report.session.retain(|r| {
        !(r.state == SessionState::Ticking && r.event == SessionEvent::RecvReportStale)
    });

    let mut incarnation_reuse = ProtocolSpec::shipped();
    incarnation_reuse.fresh_bump = false;

    let mut unbounded_retransmit = ProtocolSpec::shipped();
    unbounded_retransmit.arq.retry_budget_enforced = false;

    vec![
        CorpusCase {
            name: "client-drops-conn-lost",
            rule: "protocol-deadlock",
            code: "RA022",
            why: "the supervisor's Running state has no ConnLost entry, so a node whose \
                  connection dies keeps believing it is connected and can never redial, \
                  drain, or give up",
            spec: client_drops_conn_lost,
        },
        CorpusCase {
            name: "undefined-stale-report",
            rule: "unexpected-message",
            code: "RA023",
            why: "the session's Ticking state has no entry for straggler reports, so a \
                  late frame from a slow node lands on an undefined transition",
            spec: undefined_stale_report,
        },
        CorpusCase {
            name: "straggler-resurrection",
            rule: "unexpected-message",
            code: "RA023",
            why: "PR 9 bug #2: stale reports credited as attendance resurrect a \
                  confirmed-dead node and double-repair its load",
            spec: straggler_resurrection(),
        },
        CorpusCase {
            name: "incarnation-reuse",
            rule: "incarnation-regression",
            code: "RA024",
            why: "fresh Hellos no longer mint a strictly greater incarnation, so a \
                  restarted node is indistinguishable from its previous life",
            spec: incarnation_reuse,
        },
        CorpusCase {
            name: "seq-restart-swallow",
            rule: "incarnation-regression",
            code: "RA024",
            why: "PR 9 bug #1: the dedup window ignores the sender incarnation, so a \
                  restarted sender's first frames are silently swallowed",
            spec: seq_restart_swallow(),
        },
        CorpusCase {
            name: "unbounded-retransmit",
            rule: "unbounded-inflight",
            code: "RA025",
            why: "the ARQ retry budget is not enforced, so an unreachable peer's frames \
                  are retransmitted forever and the unacked set never drains",
            spec: unbounded_retransmit,
        },
    ]
}

/// Looks up a case by name, rule name, or rule code.
pub fn case(key: &str) -> Option<CorpusCase> {
    cases()
        .into_iter()
        .find(|c| c.name == key || c.rule == key || c.code == key)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use crate::verify::test_verify;

    /// The heart of the corpus: every mutation trips its named rule
    /// and *only* that rule — so a verifier regression (a missed bug
    /// or a false positive) fails this test by name.
    #[test]
    fn each_case_trips_exactly_its_rule() {
        for case in cases() {
            let report = test_verify(&case.spec);
            assert!(
                !report.findings.is_empty(),
                "corpus case {} tripped nothing",
                case.name
            );
            let codes: Vec<&str> = report.findings.iter().map(|f| f.code.as_str()).collect();
            assert!(
                codes.iter().all(|&c| c == case.code),
                "corpus case {} must trip only {}: got {codes:?}\n{:#?}",
                case.name,
                case.code,
                report.findings
            );
        }
    }

    /// Seed-the-bug regression: PR 9's seq-restart dedup bug, caught
    /// as RA024 by the ARQ and lattice phases.
    #[test]
    fn verifier_catches_the_seq_restart_bug() {
        let report = test_verify(&seq_restart_swallow());
        assert!(
            report
                .findings
                .iter()
                .any(|f| f.code == "RA024" && f.message.contains("swallowed")),
            "the verifier must catch the PR 9 seq-restart swallow: {:?}",
            report.findings
        );
    }

    /// Seed-the-bug regression: PR 9's straggler-resurrection bug,
    /// caught as RA023 by the control-plane phase.
    #[test]
    fn verifier_catches_the_straggler_resurrection_bug() {
        let report = test_verify(&straggler_resurrection());
        assert!(
            report
                .findings
                .iter()
                .any(|f| f.code == "RA023" && f.message.contains("resurrected")),
            "the verifier must catch the PR 9 straggler resurrection: {:?}",
            report.findings
        );
    }

    #[test]
    fn corpus_cases_round_trip_through_json() {
        for case in cases() {
            let text = case.spec.to_json().unwrap();
            assert_eq!(ProtocolSpec::from_json(&text).unwrap(), case.spec);
        }
    }
}
