//! The executable control-plane specification: per-role transition
//! tables plus the policy knobs that PR 9's bugfixes pinned down.
//!
//! Everything here is *data*, not code: a [`ProtocolSpec`] is a plain
//! serializable document listing, for every `(state, event)` pair a
//! role defines, the action taken and the successor state. The
//! runtime drives its real transitions through these tables (see
//! [`crate::machine`]), the verifier exhaustively explores their
//! product under lossy-channel semantics (see [`crate::verify`]), and
//! the known-bad corpus mutates them one knob at a time (see
//! [`crate::corpus`]). A `(state, event)` pair *absent* from a table
//! is an undefined transition: the verifier reports it as RA023 if
//! any reachable interleaving delivers it, and the runtime counts it
//! as a protocol reject.

use serde::{Deserialize, Serialize};

// --------------------------------------------------------------- messages

/// The seven control-plane message kinds of `remo_runtime::ctrl`, by
/// wire tag order. This is the abstract alphabet the client and
/// session tables are written over; `CtrlMsg::kind` maps concrete
/// frames onto it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum CtrlKind {
    /// Node → collector: join/rejoin with a held incarnation (0 = fresh).
    Hello,
    /// Collector → node: admission, limits, and the assigned incarnation.
    Welcome,
    /// Collector → node: per-tree routing/sampling assignments.
    Assign,
    /// Collector → node: epoch heartbeat driving the sampling loop.
    Tick,
    /// Node → collector: the epoch's aggregated readings.
    Report,
    /// Collector → node: backpressure interval widening (factor 1 restores).
    Degrade,
    /// Collector → node: drain and exit.
    Shutdown,
}

impl CtrlKind {
    /// Every kind, in wire-tag order.
    pub const ALL: [CtrlKind; 7] = [
        CtrlKind::Hello,
        CtrlKind::Welcome,
        CtrlKind::Assign,
        CtrlKind::Tick,
        CtrlKind::Report,
        CtrlKind::Degrade,
        CtrlKind::Shutdown,
    ];
}

// ----------------------------------------------------------- client machine

/// Node-side supervisor states. One machine lives for one node
/// *process*: a restart is a brand-new machine (held incarnation
/// gone), while a reconnect keeps the machine (and the held
/// incarnation) across `Disconnected`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ClientState {
    /// No TCP connection; between attempts (backoff) or before the first.
    Disconnected,
    /// Connected and Hello sent; waiting for Welcome.
    Greeting,
    /// Welcomed; sampling loop live, processing Assign/Tick/Degrade.
    Running,
    /// Drained after Shutdown, or gave up reconnecting.
    Done,
}

/// Events the node-side supervisor reacts to: delivered control
/// frames plus the connection-lifecycle edges the supervisor itself
/// observes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ClientEvent {
    /// TCP connect succeeded.
    Connected,
    /// A Hello frame arrived (never legal at a node).
    RecvHello,
    /// A Welcome frame arrived.
    RecvWelcome,
    /// An Assign frame arrived.
    RecvAssign,
    /// A Tick frame arrived.
    RecvTick,
    /// A Report frame arrived (never legal at a node).
    RecvReport,
    /// A Degrade frame arrived.
    RecvDegrade,
    /// A Shutdown frame arrived.
    RecvShutdown,
    /// The connection died (read/write error or EOF).
    ConnLost,
    /// Reconnect budget exhausted after registration.
    GiveUp,
}

impl ClientEvent {
    /// The delivery event for a control frame of the given kind.
    pub fn recv(kind: CtrlKind) -> ClientEvent {
        match kind {
            CtrlKind::Hello => ClientEvent::RecvHello,
            CtrlKind::Welcome => ClientEvent::RecvWelcome,
            CtrlKind::Assign => ClientEvent::RecvAssign,
            CtrlKind::Tick => ClientEvent::RecvTick,
            CtrlKind::Report => ClientEvent::RecvReport,
            CtrlKind::Degrade => ClientEvent::RecvDegrade,
            CtrlKind::Shutdown => ClientEvent::RecvShutdown,
        }
    }
}

/// What the node-side supervisor does on a defined transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ClientAction {
    /// Send Hello carrying the held incarnation (0 if fresh).
    SendHello,
    /// Adopt the Welcome: record the assigned incarnation, start (or
    /// keep) the agent. The adopted incarnation must never regress.
    AdoptWelcome,
    /// A redundant Welcome while already running; keep current state.
    DropDuplicate,
    /// Reconfigure the agent with the new assignments.
    ApplyAssign,
    /// Run the epoch sampling pass.
    RunTick,
    /// Apply the interval widening factor.
    ApplyDegrade,
    /// Drain and exit cleanly.
    Stop,
    /// Schedule a reconnect attempt.
    EnterBackoff,
    /// Explicit no-op.
    Ignore,
}

/// One row of the client transition table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClientRule {
    /// State the rule fires in.
    pub state: ClientState,
    /// Event that triggers it.
    pub event: ClientEvent,
    /// Action the implementation must take.
    pub action: ClientAction,
    /// Successor state.
    pub next: ClientState,
}

// ---------------------------------------------------------- session machine

/// Collector-side per-node session states. One machine lives per
/// *expected node* for the whole collector run, across that node's
/// connections, restarts, and deaths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum SessionState {
    /// Node expected but has never said Hello.
    Listening,
    /// Hello accepted, incarnation assigned, Welcome queued.
    Registered,
    /// Assignments delivered; waiting for the first tick fan-out.
    Assigned,
    /// In the tick/report steady state.
    Ticking,
    /// Interval widened by collector backpressure.
    Degraded,
    /// Shutdown sent; waiting for the node to hang up.
    Draining,
    /// Confirmed dead by consecutive missed barriers; repaired around.
    Dead,
    /// Connection closed after draining.
    Closed,
}

/// Events a collector-side session reacts to: frames from its node,
/// internal barrier/health verdicts, and collector-initiated sends.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum SessionEvent {
    /// Hello with incarnation 0: a fresh process life.
    RecvHelloFresh,
    /// Hello with a held incarnation: a reconnect of a known life.
    RecvHelloHeld,
    /// Collector queues the Assign right after the Welcome.
    SendAssign,
    /// Collector fans out the epoch tick.
    SendTick,
    /// A report for the current barrier epoch arrived.
    RecvReportFresh,
    /// A report for an already-closed epoch arrived (straggler).
    RecvReportStale,
    /// The barrier closed without a fresh report from this node.
    MissDeadline,
    /// Consecutive misses crossed the health threshold.
    ConfirmDead,
    /// The repair engine re-planned around this dead node.
    Repair,
    /// Health saw fresh evidence from a confirmed-dead node.
    MarkRecovered,
    /// Collector widens this node's reporting interval.
    SendDegrade,
    /// Collector restores the reporting interval (factor 1).
    SendRecover,
    /// Collector broadcasts Shutdown.
    SendShutdown,
    /// This node's connection deregistered.
    ConnLost,
}

/// What the collector-side session does on a defined transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum SessionAction {
    /// Mint a strictly greater incarnation for a fresh process life.
    AssignFreshIncarnation,
    /// Keep `max(slot, held)` for a reconnecting known life.
    KeepHeldIncarnation,
    /// Deliver the routing/sampling assignments.
    DeliverAssign,
    /// Deliver the epoch tick.
    DeliverTick,
    /// Count the report toward barrier attendance.
    CreditReport,
    /// Note a stale frame as a liveness hint only — never attendance.
    ObserveStale,
    /// Record a missed barrier.
    NoteMiss,
    /// Declare the node dead; its load must be repaired around.
    DeclareDead,
    /// Re-plan around the dead node (at most once per death).
    RepairPlan,
    /// Reintegrate a recovered node into the steady state.
    Reintegrate,
    /// Widen the node's reporting interval.
    WidenInterval,
    /// Restore the node's reporting interval.
    RestoreInterval,
    /// Enter the drain phase.
    Drain,
    /// Close the session for good.
    CloseSession,
    /// Explicit no-op.
    Ignore,
}

/// One row of the session transition table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SessionRule {
    /// State the rule fires in.
    pub state: SessionState,
    /// Event that triggers it.
    pub event: SessionEvent,
    /// Action the implementation must take.
    pub action: SessionAction,
    /// Successor state.
    pub next: SessionState,
}

// ------------------------------------------------------------ policy knobs

/// ARQ retry/backoff discipline for the data plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArqParams {
    /// Transmissions per frame before abandonment (first send included).
    pub max_attempts: u8,
    /// Whether the retry budget is actually enforced. Shipped: `true`.
    /// `false` reproduces an unbounded-retransmission sender whose
    /// in-flight set grows without bound (RA025).
    pub retry_budget_enforced: bool,
    /// Declared bound on packets simultaneously in a channel.
    pub channel_cap: u8,
}

/// Receive-side dedup discipline (the `IncarnationTracker` lattice).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DedupPolicy {
    /// Whether the seq watermark is scoped to the sender incarnation.
    /// Shipped: `true`. `false` reproduces PR 9's seq-restart bug —
    /// a restarted sender's fresh frames sit below the old watermark
    /// and are silently swallowed (RA024).
    pub incarnation_scoped: bool,
}

/// Report-barrier attendance discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BarrierPolicy {
    /// Whether a stale (already-closed-epoch) report counts as barrier
    /// attendance. Shipped: `false`. `true` reproduces PR 9's
    /// straggler-resurrection bug — a queued frame from a dead node
    /// revives it and double-repairs the plan (RA023).
    pub credit_stale_reports: bool,
    /// Consecutive missed barriers before a node is confirmed dead.
    pub confirm_after: u8,
}

/// Exploration bounds for the verifier: how many of each fault and
/// lifecycle event the closed system budgets per run. Small on
/// purpose — every interesting PR 9 bug fits in two epochs, one
/// restart, and one reset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VerifyBounds {
    /// Epochs the collector runs before shutting down.
    pub epochs: u8,
    /// Node process restarts (fresh incarnation) budgeted.
    pub restarts: u8,
    /// Connection resets (held incarnation survives) budgeted.
    pub resets: u8,
    /// Data frames the ARQ exploration produces per sender life.
    pub frames: u8,
    /// Packet duplications budgeted in the ARQ exploration.
    pub dups: u8,
}

impl Default for VerifyBounds {
    fn default() -> Self {
        VerifyBounds {
            epochs: 3,
            restarts: 1,
            resets: 1,
            frames: 2,
            dups: 1,
        }
    }
}

// ------------------------------------------------------------------- spec

/// The complete protocol specification: both role tables plus the
/// ARQ, dedup, and barrier policies. [`ProtocolSpec::shipped`] is the
/// canonical spec the runtime conforms to; everything else (corpus
/// mutations, operator-supplied JSON) goes through the same verifier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProtocolSpec {
    /// Node-side supervisor transition table.
    pub client: Vec<ClientRule>,
    /// Collector-side session transition table.
    pub session: Vec<SessionRule>,
    /// ARQ retry discipline.
    pub arq: ArqParams,
    /// Receive-side dedup discipline.
    pub dedup: DedupPolicy,
    /// Barrier attendance discipline.
    pub barrier: BarrierPolicy,
    /// Whether a fresh Hello mints a strictly greater incarnation.
    /// Shipped: `true`. `false` lets a restarted node reuse its old
    /// incarnation (RA024).
    pub fresh_bump: bool,
    /// Exploration bounds for the verifier.
    pub bounds: VerifyBounds,
}

impl ProtocolSpec {
    /// The canonical spec the runtime implements.
    pub fn shipped() -> ProtocolSpec {
        use ClientAction as CA;
        use ClientEvent as CE;
        use ClientState as CS;
        use SessionAction as SA;
        use SessionEvent as SE;
        use SessionState as SS;

        let c = |state, event, action, next| ClientRule {
            state,
            event,
            action,
            next,
        };
        let client = vec![
            c(CS::Disconnected, CE::Connected, CA::SendHello, CS::Greeting),
            c(CS::Disconnected, CE::ConnLost, CA::Ignore, CS::Disconnected),
            c(CS::Disconnected, CE::GiveUp, CA::Stop, CS::Done),
            c(CS::Greeting, CE::RecvWelcome, CA::AdoptWelcome, CS::Running),
            c(CS::Greeting, CE::RecvShutdown, CA::Stop, CS::Done),
            c(
                CS::Greeting,
                CE::ConnLost,
                CA::EnterBackoff,
                CS::Disconnected,
            ),
            c(CS::Running, CE::RecvWelcome, CA::DropDuplicate, CS::Running),
            c(CS::Running, CE::RecvAssign, CA::ApplyAssign, CS::Running),
            c(CS::Running, CE::RecvTick, CA::RunTick, CS::Running),
            c(CS::Running, CE::RecvDegrade, CA::ApplyDegrade, CS::Running),
            c(CS::Running, CE::RecvShutdown, CA::Stop, CS::Done),
            c(
                CS::Running,
                CE::ConnLost,
                CA::EnterBackoff,
                CS::Disconnected,
            ),
        ];

        let s = |state, event, action, next| SessionRule {
            state,
            event,
            action,
            next,
        };
        let mut session = vec![
            s(
                SS::Listening,
                SE::RecvHelloFresh,
                SA::AssignFreshIncarnation,
                SS::Registered,
            ),
            s(
                SS::Listening,
                SE::RecvHelloHeld,
                SA::KeepHeldIncarnation,
                SS::Registered,
            ),
            s(SS::Listening, SE::MissDeadline, SA::NoteMiss, SS::Listening),
            s(SS::Listening, SE::ConfirmDead, SA::DeclareDead, SS::Dead),
            s(SS::Listening, SE::ConnLost, SA::Ignore, SS::Listening),
            s(
                SS::Registered,
                SE::SendAssign,
                SA::DeliverAssign,
                SS::Assigned,
            ),
            s(SS::Registered, SE::ConnLost, SA::Ignore, SS::Registered),
            s(
                SS::Registered,
                SE::RecvHelloFresh,
                SA::AssignFreshIncarnation,
                SS::Registered,
            ),
            s(
                SS::Registered,
                SE::RecvHelloHeld,
                SA::KeepHeldIncarnation,
                SS::Registered,
            ),
        ];
        // The live steady states share most rows: re-registration,
        // reports, barrier verdicts, degrade fan-out, drain.
        for live in [SS::Assigned, SS::Ticking, SS::Degraded] {
            session.push(s(
                live,
                SE::RecvHelloFresh,
                SA::AssignFreshIncarnation,
                SS::Registered,
            ));
            session.push(s(
                live,
                SE::RecvHelloHeld,
                SA::KeepHeldIncarnation,
                SS::Registered,
            ));
            session.push(s(live, SE::RecvReportFresh, SA::CreditReport, live));
            session.push(s(live, SE::RecvReportStale, SA::ObserveStale, live));
            session.push(s(live, SE::MissDeadline, SA::NoteMiss, live));
            session.push(s(live, SE::ConfirmDead, SA::DeclareDead, SS::Dead));
            session.push(s(live, SE::Repair, SA::Ignore, live));
            session.push(s(live, SE::MarkRecovered, SA::Ignore, live));
            session.push(s(live, SE::ConnLost, SA::Ignore, live));
            session.push(s(live, SE::SendShutdown, SA::Drain, SS::Draining));
        }
        session.extend([
            s(SS::Assigned, SE::SendTick, SA::DeliverTick, SS::Ticking),
            s(
                SS::Assigned,
                SE::SendDegrade,
                SA::WidenInterval,
                SS::Degraded,
            ),
            s(SS::Assigned, SE::SendRecover, SA::Ignore, SS::Assigned),
            s(SS::Ticking, SE::SendTick, SA::DeliverTick, SS::Ticking),
            s(
                SS::Ticking,
                SE::SendDegrade,
                SA::WidenInterval,
                SS::Degraded,
            ),
            s(SS::Ticking, SE::SendRecover, SA::Ignore, SS::Ticking),
            s(SS::Degraded, SE::SendTick, SA::DeliverTick, SS::Degraded),
            s(
                SS::Degraded,
                SE::SendDegrade,
                SA::WidenInterval,
                SS::Degraded,
            ),
            s(
                SS::Degraded,
                SE::SendRecover,
                SA::RestoreInterval,
                SS::Ticking,
            ),
            // Dead: only fresh evidence reintegrates; stale frames are
            // liveness hints at most (the PR 9 straggler property).
            s(
                SS::Dead,
                SE::RecvHelloFresh,
                SA::AssignFreshIncarnation,
                SS::Registered,
            ),
            s(
                SS::Dead,
                SE::RecvHelloHeld,
                SA::KeepHeldIncarnation,
                SS::Registered,
            ),
            // A dead-but-still-connected node keeps receiving the
            // collector's broadcasts (tick and backpressure fan-out go
            // to every live connection, not just healthy sessions).
            s(SS::Dead, SE::SendTick, SA::DeliverTick, SS::Dead),
            s(SS::Dead, SE::SendDegrade, SA::WidenInterval, SS::Dead),
            s(SS::Dead, SE::SendRecover, SA::RestoreInterval, SS::Dead),
            s(SS::Dead, SE::RecvReportFresh, SA::CreditReport, SS::Dead),
            s(SS::Dead, SE::RecvReportStale, SA::ObserveStale, SS::Dead),
            s(SS::Dead, SE::MissDeadline, SA::NoteMiss, SS::Dead),
            s(SS::Dead, SE::ConfirmDead, SA::Ignore, SS::Dead),
            s(SS::Dead, SE::Repair, SA::RepairPlan, SS::Dead),
            s(SS::Dead, SE::MarkRecovered, SA::Reintegrate, SS::Ticking),
            s(SS::Dead, SE::ConnLost, SA::Ignore, SS::Dead),
            s(SS::Dead, SE::SendShutdown, SA::Drain, SS::Draining),
            // Draining: refuse new registrations, swallow stragglers,
            // close when the node hangs up.
            s(SS::Draining, SE::RecvHelloFresh, SA::Ignore, SS::Draining),
            s(SS::Draining, SE::RecvHelloHeld, SA::Ignore, SS::Draining),
            s(SS::Draining, SE::RecvReportFresh, SA::Ignore, SS::Draining),
            s(SS::Draining, SE::RecvReportStale, SA::Ignore, SS::Draining),
            s(SS::Draining, SE::SendShutdown, SA::Ignore, SS::Draining),
            s(SS::Draining, SE::ConnLost, SA::CloseSession, SS::Closed),
            s(SS::Closed, SE::ConnLost, SA::Ignore, SS::Closed),
            s(SS::Closed, SE::RecvHelloFresh, SA::Ignore, SS::Closed),
            s(SS::Closed, SE::RecvHelloHeld, SA::Ignore, SS::Closed),
            s(SS::Closed, SE::RecvReportFresh, SA::Ignore, SS::Closed),
            s(SS::Closed, SE::RecvReportStale, SA::Ignore, SS::Closed),
        ]);

        ProtocolSpec {
            client,
            session,
            arq: ArqParams {
                max_attempts: 3,
                retry_budget_enforced: true,
                channel_cap: 12,
            },
            dedup: DedupPolicy {
                incarnation_scoped: true,
            },
            barrier: BarrierPolicy {
                credit_stale_reports: false,
                confirm_after: 2,
            },
            fresh_bump: true,
            bounds: VerifyBounds::default(),
        }
    }

    /// Looks up the client table entry for `(state, event)`.
    pub fn client_step(
        &self,
        state: ClientState,
        event: ClientEvent,
    ) -> Option<(ClientAction, ClientState)> {
        self.client
            .iter()
            .find(|r| r.state == state && r.event == event)
            .map(|r| (r.action, r.next))
    }

    /// Looks up the session table entry for `(state, event)`.
    pub fn session_step(
        &self,
        state: SessionState,
        event: SessionEvent,
    ) -> Option<(SessionAction, SessionState)> {
        self.session
            .iter()
            .find(|r| r.state == state && r.event == event)
            .map(|r| (r.action, r.next))
    }

    /// Serializes the spec as pretty JSON.
    pub fn to_json(&self) -> Option<String> {
        serde_json::to_string_pretty(self).ok()
    }

    /// Parses a spec from JSON.
    pub fn from_json(text: &str) -> Result<ProtocolSpec, String> {
        serde_json::from_str(text).map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    #[test]
    fn shipped_tables_are_unambiguous() {
        let spec = ProtocolSpec::shipped();
        for (i, a) in spec.client.iter().enumerate() {
            for b in &spec.client[i + 1..] {
                assert!(
                    !(a.state == b.state && a.event == b.event),
                    "duplicate client row {:?}/{:?}",
                    a.state,
                    a.event
                );
            }
        }
        for (i, a) in spec.session.iter().enumerate() {
            for b in &spec.session[i + 1..] {
                assert!(
                    !(a.state == b.state && a.event == b.event),
                    "duplicate session row {:?}/{:?}",
                    a.state,
                    a.event
                );
            }
        }
    }

    #[test]
    fn spec_round_trips_through_json() {
        let spec = ProtocolSpec::shipped();
        let text = spec.to_json().unwrap();
        let back = ProtocolSpec::from_json(&text).unwrap();
        assert_eq!(spec, back);
    }

    #[test]
    fn stale_frames_never_credit_and_never_resurrect() {
        let spec = ProtocolSpec::shipped();
        assert!(!spec.barrier.credit_stale_reports);
        let (action, next) = spec
            .session_step(SessionState::Dead, SessionEvent::RecvReportStale)
            .unwrap();
        assert_eq!(action, SessionAction::ObserveStale);
        assert_eq!(next, SessionState::Dead);
    }
}
