//! # remo-proto
//!
//! An **executable specification** of the REMO distributed control
//! plane, plus an exhaustive verifier over it.
//!
//! PR 9 stood up the real distributed runtime — Hello/Welcome/Assign/
//! Tick/Report/Degrade/Shutdown over TCP, per-hop ARQ, incarnation-
//! scoped dedup — and all three of its late bugfixes were protocol
//! state-machine bugs found by soak testing. This crate moves that
//! class of bug to *before* the code runs:
//!
//! - [`spec`] — the transition tables and policy knobs as plain
//!   serializable data ([`ProtocolSpec::shipped`] is canonical);
//! - [`machine`] — spec-driven machines the runtime actually embeds
//!   ([`ClientMachine`] in `remo-node`'s supervisor, [`SessionMachine`]
//!   per collector session, [`DedupModel`] shadowing
//!   `IncarnationTracker` in debug builds);
//! - [`verify`] — bounded-exhaustive exploration of the product
//!   automaton under lossy-channel semantics (drop, duplicate,
//!   reorder, connection reset, restart with incarnation bump),
//!   proving deadlock freedom (RA022), no unexpected message and no
//!   stale-report resurrection (RA023), incarnation monotonicity and
//!   no dedup swallow (RA024), and bounded in-flight frames (RA025);
//! - [`corpus`] — known-bad spec mutations, one per rule, including
//!   both PR 9 bugs re-introduced at the spec level.
//!
//! The `remo-proto` CLI verifies specs and reports through the shared
//! SARIF pipeline (`remo_core::sarif`).
//!
//! ```
//! use remo_proto::{ProtocolSpec, verify::verify_with_depth};
//!
//! let report = verify_with_depth(&ProtocolSpec::shipped(), 16);
//! assert!(report.is_clean());
//!
//! let mut buggy = ProtocolSpec::shipped();
//! buggy.dedup.incarnation_scoped = false; // PR 9's seq-restart bug
//! let report = verify_with_depth(&buggy, 16);
//! assert!(report.findings.iter().any(|f| f.code == "RA024"));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![deny(clippy::print_stdout)]
#![deny(clippy::print_stderr)]

pub mod corpus;
pub mod machine;
pub mod spec;
pub mod verify;

pub use machine::{ClientMachine, DedupModel, HelloOutcome, SessionMachine};
pub use spec::{
    ClientAction, ClientEvent, ClientState, CtrlKind, ProtocolSpec, SessionAction, SessionEvent,
    SessionState,
};
pub use verify::{PhaseStats, VerifyReport};
