//! `remo-proto` — exhaustive verification of a control-plane
//! protocol spec.
//!
//! ```text
//! remo-proto verify [<spec.json>] [--sarif <out.json>] [--depth <n>]
//! remo-proto --list-rules
//! remo-proto --example [<rule>]
//! ```
//!
//! Exit status: 0 when the spec verifies clean, 1 when at least one
//! property is violated, 2 on usage or I/O problems.

use remo_proto::verify::verify_with_depth;
use remo_proto::{corpus, ProtocolSpec};
use std::process::ExitCode;

const USAGE: &str = "\
usage: remo-proto verify [<spec.json>] [options]
       remo-proto --list-rules
       remo-proto --example [<rule>]

Without a path, `verify` checks the shipped spec the runtime
conforms to. A spec JSON document is produced by --example or by
serializing a ProtocolSpec.

options:
  --sarif <out.json>  also write a SARIF-style report
  --depth <n>         bound the exploration trace length
                      (default: explore to state-space closure)
  --list-rules        print the protocol rule registry (RA022-RA025)
                      and exit
  --example [<rule>]  print a known-bad spec from the corpus
                      (default: the first case) and exit
";

/// The protocol verifier's slice of the shared rule registry.
const PROTO_CODES: [&str; 4] = ["RA022", "RA023", "RA024", "RA025"];

fn list_rules() {
    println!(
        "{:<7} {:<30} {:<8} {:<12} summary",
        "code", "rule", "level", "paper"
    );
    for r in remo_core::validate::RULES {
        if PROTO_CODES.contains(&r.code) {
            println!(
                "{:<7} {:<30} {:<8} {:<12} {}",
                r.code,
                r.name,
                r.severity.to_string(),
                r.paper_section,
                r.summary
            );
        }
    }
}

fn usage_error(message: &str) -> ExitCode {
    eprintln!("remo-proto: {message}");
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

fn print_example(which: Option<&str>) -> ExitCode {
    let case = match which {
        None => corpus::cases().into_iter().next(),
        Some(key) => corpus::case(key),
    };
    let Some(case) = case else {
        eprintln!(
            "remo-proto: no corpus case named `{}`",
            which.unwrap_or_default()
        );
        return ExitCode::from(2);
    };
    match case.spec.to_json() {
        Some(text) => {
            println!("{text}");
            ExitCode::SUCCESS
        }
        None => {
            eprintln!("remo-proto: cannot render example");
            ExitCode::from(2)
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    if args.iter().any(|a| a == "--list-rules") {
        list_rules();
        return ExitCode::SUCCESS;
    }
    if let Some(i) = args.iter().position(|a| a == "--example") {
        return print_example(args.get(i + 1).map(String::as_str));
    }

    let mut it = args.into_iter();
    match it.next().as_deref() {
        Some("verify") => {}
        Some(other) => return usage_error(&format!("unknown command `{other}`")),
        None => return usage_error("no command given"),
    }

    let mut spec_path: Option<String> = None;
    let mut sarif_path: Option<String> = None;
    let mut depth: usize = 100_000;
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--sarif" => match it.next() {
                Some(path) => sarif_path = Some(path),
                None => return usage_error("--sarif needs a path"),
            },
            "--depth" => match it.next().as_deref().map(str::parse) {
                Some(Ok(n)) => depth = n,
                _ => return usage_error("--depth needs a number"),
            },
            other if other.starts_with("--") => {
                return usage_error(&format!("unknown option `{other}`"));
            }
            path => {
                if spec_path.replace(path.to_string()).is_some() {
                    return usage_error("more than one spec path given");
                }
            }
        }
    }

    let (label, spec) = match &spec_path {
        None => ("shipped spec".to_string(), ProtocolSpec::shipped()),
        Some(path) => {
            let text = match std::fs::read_to_string(path) {
                Ok(text) => text,
                Err(e) => {
                    eprintln!("remo-proto: cannot read {path}: {e}");
                    return ExitCode::from(2);
                }
            };
            match ProtocolSpec::from_json(&text) {
                Ok(spec) => (path.clone(), spec),
                Err(e) => {
                    eprintln!("remo-proto: {path} is not a valid spec: {e}");
                    return ExitCode::from(2);
                }
            }
        }
    };

    let report = verify_with_depth(&spec, depth);
    for phase in &report.phases {
        println!(
            "{:<6} visited {:>8}  expanded {:>8}  deduped {:>8}",
            phase.name, phase.stats.visited, phase.stats.expanded, phase.stats.deduped
        );
    }
    let totals = report.totals();
    println!(
        "total  visited {:>8}  expanded {:>8}  deduped {:>8}",
        totals.visited, totals.expanded, totals.deduped
    );

    if let Some(out) = sarif_path {
        if let Err(e) = std::fs::write(&out, remo_core::sarif::sarif_json(&report.outcome())) {
            eprintln!("remo-proto: cannot write {out}: {e}");
            return ExitCode::from(2);
        }
    }

    if report.is_clean() {
        println!(
            "{label}: verified — deadlock-free, no unexpected message, incarnations \
             monotone, dedup never swallows, in-flight bounded"
        );
        ExitCode::SUCCESS
    } else {
        for f in &report.findings {
            println!("{} {} [{}] {}", f.severity, f.code, f.rule, f.message);
        }
        println!("{label}: {} violation(s)", report.findings.len());
        ExitCode::FAILURE
    }
}
