//! # remo-obs
//!
//! Unified observability for the REMO workspace: structured tracing
//! (spans and events) plus a metrics registry (counters, gauges,
//! histograms), with two exporters — JSON-lines trace files and
//! Prometheus text format.
//!
//! The evaluation of a monitoring system is itself a monitoring
//! problem (cf. the self-monitoring arguments of layered-gossip and
//! hierarchical pub-sub monitoring systems): per-phase planner cost,
//! collection latency, and adaptation traffic must come out of one
//! pipeline or they cannot be compared. Every crate in this workspace
//! reports through the process-wide [`Registry`] and trace sink
//! defined here; `remo-plan --trace/--metrics` and the bench binaries
//! export them, and `remo-obs dump` summarizes the files.
//!
//! ## Zero cost when disabled
//!
//! Observability is **off by default**. A disabled [`span!`] or
//! [`event!`] callsite performs a single relaxed atomic load and no
//! allocation; metric handles skip their atomic update. Enable
//! collection explicitly:
//!
//! ```
//! let _g = remo_obs::test_guard(); // serialize access in doctests
//! remo_obs::enable();
//! {
//!     let _span = remo_obs::span!("doc.example");
//!     remo_obs::event!("doc.tick", "n" => 3u64);
//! }
//! remo_obs::counter("doc_ticks_total").inc();
//! let trace = remo_obs::drain_trace();
//! assert!(trace.iter().any(|r| r.name == "doc.example"));
//! remo_obs::disable();
//! ```
//!
//! ## Callsites
//!
//! Each `span!`/`event!` expansion declares a `static` [`Callsite`]
//! holding its name, file, and line. The callsite registers itself in
//! the process-wide callsite table on first hit and caches its id in
//! an atomic, so steady-state recording never re-hashes name strings.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod registry;
pub mod summary;
pub mod trace;

pub use registry::{counter, gauge, histogram, Counter, Gauge, Histogram, Registry};
pub use trace::{
    drain_trace, record_event, span_enter, Callsite, FieldValue, SpanGuard, TraceRecord,
};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether observability collection is currently on.
///
/// This is the only check on the disabled fast path: a relaxed load.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns collection on (spans, events, and metric updates record).
pub fn enable() {
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turns collection off. Already-recorded data stays until drained.
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Serializes tests that flip the global enabled flag or read the
/// global registry/trace: hold the returned guard for the duration.
///
/// The global state is process-wide; concurrent tests would otherwise
/// observe each other's spans and counter increments.
pub fn test_guard() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    let lock = LOCK.get_or_init(|| Mutex::new(()));
    match lock.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Reads an environment variable as a boolean feature flag.
///
/// A flag is **on** only when the variable is set to something other
/// than the conventional "off" spellings: unset, empty, `0`, `false`,
/// `off`, and `no` (case-insensitive) all read as off. This is the
/// predicate `REMO_PLANNER_DEBUG` should always have used —
/// `std::env::var(..).is_ok()` treated `REMO_PLANNER_DEBUG=0` as
/// enabled.
///
/// # Examples
///
/// ```
/// std::env::set_var("REMO_OBS_DOCTEST_FLAG", "0");
/// assert!(!remo_obs::env_flag("REMO_OBS_DOCTEST_FLAG"));
/// std::env::set_var("REMO_OBS_DOCTEST_FLAG", "1");
/// assert!(remo_obs::env_flag("REMO_OBS_DOCTEST_FLAG"));
/// ```
pub fn env_flag(name: &str) -> bool {
    match std::env::var(name) {
        Ok(v) => {
            let v = v.trim();
            !(v.is_empty()
                || v == "0"
                || v.eq_ignore_ascii_case("false")
                || v.eq_ignore_ascii_case("off")
                || v.eq_ignore_ascii_case("no"))
        }
        Err(_) => false,
    }
}

/// Mirrors a debug line to stderr on behalf of crates whose lint
/// configuration denies direct printing (e.g. `remo-core`, where
/// `clippy::print_stderr` is a build error). Used by the planner's
/// `REMO_PLANNER_DEBUG` path alongside the structured event.
#[allow(clippy::print_stderr)]
pub fn debug_echo(line: &str) {
    eprintln!("{line}");
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    #[test]
    fn env_flag_off_spellings() {
        let var = "REMO_OBS_TEST_FLAG_OFF";
        for off in ["", "0", "false", "FALSE", "off", "Off", "no", "  "] {
            std::env::set_var(var, off);
            assert!(!env_flag(var), "{off:?} must read as off");
        }
        std::env::remove_var(var);
        assert!(!env_flag(var), "unset must read as off");
    }

    #[test]
    fn env_flag_on_spellings() {
        let var = "REMO_OBS_TEST_FLAG_ON";
        for on in ["1", "true", "yes", "debug", "anything-else"] {
            std::env::set_var(var, on);
            assert!(env_flag(var), "{on:?} must read as on");
        }
        std::env::remove_var(var);
    }

    #[test]
    fn enable_disable_roundtrip() {
        let _g = test_guard();
        let was = enabled();
        enable();
        assert!(enabled());
        disable();
        assert!(!enabled());
        if was {
            enable();
        }
    }
}
