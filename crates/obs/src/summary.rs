//! Readers for the two export formats: a JSON-lines trace summarizer
//! and a Prometheus text-format parser, shared by `remo-obs dump` and
//! the round-trip tests.

use serde_json::Value;
use std::collections::BTreeMap;

/// Per-name aggregate over the span records of one trace file.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanAgg {
    /// How many spans carried this name.
    pub count: u64,
    /// Sum of their durations, µs.
    pub total_us: u64,
    /// Longest single span, µs.
    pub max_us: u64,
}

/// Aggregates of one parsed JSON-lines trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceSummary {
    /// Span aggregates by name.
    pub spans: BTreeMap<String, SpanAgg>,
    /// Event counts by name.
    pub events: BTreeMap<String, u64>,
}

/// Parses a JSON-lines trace export and aggregates it by name.
///
/// # Errors
///
/// Returns a message naming the first malformed line.
pub fn parse_trace(text: &str) -> Result<TraceSummary, String> {
    let mut summary = TraceSummary::default();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = serde_json::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        let name = match v.get("name") {
            Some(Value::Str(s)) => s.clone(),
            _ => return Err(format!("line {}: missing `name`", i + 1)),
        };
        let kind = match v.get("kind") {
            Some(Value::Str(s)) => s.clone(),
            _ => return Err(format!("line {}: missing `kind`", i + 1)),
        };
        match kind.as_str() {
            "span" => {
                let duration = match v.get("duration_us") {
                    Some(Value::U64(n)) => *n,
                    Some(Value::I64(n)) if *n >= 0 => *n as u64,
                    _ => return Err(format!("line {}: missing `duration_us`", i + 1)),
                };
                let agg = summary.spans.entry(name).or_insert(SpanAgg {
                    count: 0,
                    total_us: 0,
                    max_us: 0,
                });
                agg.count += 1;
                agg.total_us += duration;
                agg.max_us = agg.max_us.max(duration);
            }
            "event" => {
                *summary.events.entry(name).or_insert(0) += 1;
            }
            other => return Err(format!("line {}: unknown kind `{other}`", i + 1)),
        }
    }
    Ok(summary)
}

/// Renders a [`TraceSummary`] as an aligned plain-text table.
pub fn render_trace_summary(summary: &TraceSummary) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    if !summary.spans.is_empty() {
        let _ = writeln!(out, "spans:");
        let width = summary.spans.keys().map(String::len).max().unwrap_or(0);
        for (name, agg) in &summary.spans {
            let _ = writeln!(
                out,
                "  {name:<width$}  count {:>6}  total {:>10.3} ms  max {:>10.3} ms",
                agg.count,
                agg.total_us as f64 / 1_000.0,
                agg.max_us as f64 / 1_000.0,
            );
        }
    }
    if !summary.events.is_empty() {
        let _ = writeln!(out, "events:");
        let width = summary.events.keys().map(String::len).max().unwrap_or(0);
        for (name, count) in &summary.events {
            let _ = writeln!(out, "  {name:<width$}  count {count:>6}");
        }
    }
    if out.is_empty() {
        out.push_str("trace is empty\n");
    }
    out
}

/// Parses Prometheus text exposition format into `sample name → value`.
///
/// Histogram series keep their label block in the key
/// (`lat_ms_bucket{le="1"}`), matching what [`crate::Registry`] emits.
///
/// # Errors
///
/// Returns a message naming the first malformed line.
pub fn parse_prometheus(text: &str) -> Result<BTreeMap<String, f64>, String> {
    let mut samples = BTreeMap::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (key, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {}: expected `name value`", i + 1))?;
        let key = key.trim();
        if key.is_empty() {
            return Err(format!("line {}: empty sample name", i + 1));
        }
        let value: f64 = value
            .parse()
            .map_err(|_| format!("line {}: invalid value `{value}`", i + 1))?;
        samples.insert(key.to_string(), value);
    }
    Ok(samples)
}

/// Renders parsed Prometheus samples as an aligned plain-text table.
pub fn render_metrics_summary(samples: &BTreeMap<String, f64>) -> String {
    use std::fmt::Write as _;
    if samples.is_empty() {
        return "no samples\n".to_string();
    }
    let width = samples.keys().map(String::len).max().unwrap_or(0);
    let mut out = String::new();
    for (name, value) in samples {
        let _ = writeln!(out, "  {name:<width$}  {value}");
    }
    out
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use crate::test_guard;

    #[test]
    fn trace_summary_aggregates_by_name() {
        let _g = test_guard();
        crate::enable();
        crate::drain_trace();
        for _ in 0..3 {
            let _s = crate::span!("sum.phase");
        }
        crate::event!("sum.tick");
        crate::event!("sum.tick");
        crate::disable();
        let text = crate::trace::to_jsonl(&crate::drain_trace());
        let summary = parse_trace(&text).expect("well-formed trace");
        assert_eq!(summary.spans["sum.phase"].count, 3);
        assert_eq!(summary.events["sum.tick"], 2);
        let rendered = render_trace_summary(&summary);
        assert!(rendered.contains("sum.phase"));
        assert!(rendered.contains("count      3"));
    }

    #[test]
    fn trace_parser_rejects_malformed_lines() {
        assert!(parse_trace("{not json").is_err());
        assert!(parse_trace(r#"{"kind":"span"}"#).is_err());
        assert!(parse_trace(r#"{"kind":"wat","name":"x"}"#).is_err());
        assert!(parse_trace("").expect("empty ok").spans.is_empty());
    }

    #[test]
    fn prometheus_parser_reads_registry_output() {
        let _g = test_guard();
        crate::enable();
        let r = crate::Registry::new();
        r.counter("hits_total").inc_by(4.0);
        r.gauge("depth").set(2.5);
        let h = r.histogram_with_buckets("lat_ms", &[1.0]);
        h.observe(0.5);
        crate::disable();
        let samples = parse_prometheus(&r.render_prometheus()).expect("parseable");
        assert_eq!(samples["hits_total"], 4.0);
        assert_eq!(samples["depth"], 2.5);
        assert_eq!(samples["lat_ms_bucket{le=\"1\"}"], 1.0);
        assert_eq!(samples["lat_ms_count"], 1.0);
        let rendered = render_metrics_summary(&samples);
        assert!(rendered.contains("hits_total"));
    }

    #[test]
    fn prometheus_parser_rejects_malformed_lines() {
        assert!(parse_prometheus("lonely_name").is_err());
        assert!(parse_prometheus("name not_a_number").is_err());
        assert!(parse_prometheus("# just a comment\n")
            .expect("ok")
            .is_empty());
    }
}
