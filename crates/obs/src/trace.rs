//! Structured tracing: spans (timed regions) and events (point
//! records), collected into a process-wide sink and exported as
//! JSON-lines.
//!
//! Use the [`span!`](crate::span!) and [`event!`](crate::event!)
//! macros rather than calling [`span_enter`] / [`record_event`]
//! directly: each expansion declares a `static` [`Callsite`] so the
//! name/file/line triple is registered once and the hot path touches
//! only atomics.
//!
//! Timestamps are microseconds relative to the first observation in
//! the process (a monotonic clock, not wall time), which keeps records
//! comparable within a run and trivially serializable.

use crate::enabled;
use serde::{Serialize, Value};
use std::cell::RefCell;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// A statically registered span/event site: name, file, line, and a
/// lazily assigned process-wide id.
#[derive(Debug)]
pub struct Callsite {
    name: &'static str,
    file: &'static str,
    line: u32,
    /// Cached registry id + 1 (0 = not yet registered).
    id: AtomicU32,
}

impl Callsite {
    /// Declares a callsite; `const` so macro expansions can put it in
    /// a `static`.
    pub const fn new(name: &'static str, file: &'static str, line: u32) -> Self {
        Callsite {
            name,
            file,
            line,
            id: AtomicU32::new(0),
        }
    }

    /// The site's span/event name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Source file of the expansion.
    pub fn file(&self) -> &'static str {
        self.file
    }

    /// Source line of the expansion.
    pub fn line(&self) -> u32 {
        self.line
    }

    /// The site's id in the process-wide callsite table, registering
    /// on first call and serving from the atomic cache afterwards.
    pub fn id(&self) -> u32 {
        let cached = self.id.load(Ordering::Relaxed);
        if cached != 0 {
            return cached - 1;
        }
        let mut table = lock(callsite_table());
        // Double-check under the lock: another thread may have just
        // registered this same static.
        let cached = self.id.load(Ordering::Relaxed);
        if cached != 0 {
            return cached - 1;
        }
        let id = table.len() as u32;
        table.push((self.name, self.file, self.line));
        self.id.store(id + 1, Ordering::Relaxed);
        id
    }
}

/// A registered callsite's identity: `(name, file, line)`.
type CallsiteEntry = (&'static str, &'static str, u32);

/// Every callsite hit so far, in registration order, as
/// `(name, file, line)`.
pub fn callsites() -> Vec<CallsiteEntry> {
    lock(callsite_table()).clone()
}

fn callsite_table() -> &'static Mutex<Vec<CallsiteEntry>> {
    static TABLE: OnceLock<Mutex<Vec<CallsiteEntry>>> = OnceLock::new();
    TABLE.get_or_init(|| Mutex::new(Vec::new()))
}

fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// A typed event-field value.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Boolean field.
    Bool(bool),
    /// Signed integer field.
    I64(i64),
    /// Unsigned integer field.
    U64(u64),
    /// Floating-point field.
    F64(f64),
    /// String field.
    Str(String),
}

macro_rules! field_from {
    ($($t:ty => $variant:ident as $conv:ty),* $(,)?) => {$(
        impl From<$t> for FieldValue {
            fn from(v: $t) -> Self {
                FieldValue::$variant(v as $conv)
            }
        }
    )*};
}
field_from! {
    bool => Bool as bool,
    i32 => I64 as i64,
    i64 => I64 as i64,
    u32 => U64 as u64,
    u64 => U64 as u64,
    usize => U64 as u64,
    f32 => F64 as f64,
    f64 => F64 as f64,
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

impl Serialize for FieldValue {
    fn serialize(&self) -> Value {
        match self {
            FieldValue::Bool(b) => Value::Bool(*b),
            FieldValue::I64(n) => Value::I64(*n),
            FieldValue::U64(n) => Value::U64(*n),
            FieldValue::F64(f) => Value::F64(*f),
            FieldValue::Str(s) => Value::Str(s.clone()),
        }
    }
}

/// Whether a [`TraceRecord`] is a timed span or a point event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordKind {
    /// A timed region: `duration_us` is meaningful.
    Span,
    /// A point record: `duration_us` is 0.
    Event,
}

/// One collected span or event.
#[derive(Debug, Clone)]
pub struct TraceRecord {
    /// Span or event.
    pub kind: RecordKind,
    /// Callsite name (e.g. `planner.seed`).
    pub name: &'static str,
    /// Callsite source file.
    pub file: &'static str,
    /// Callsite source line.
    pub line: u32,
    /// Unique span id (0 for events).
    pub span_id: u64,
    /// Enclosing span's id on the same thread (0 = root).
    pub parent_id: u64,
    /// Recording thread's name, or its debug id when unnamed.
    pub thread: String,
    /// Start offset in µs from the process's first observation.
    pub start_us: u64,
    /// Span duration in µs (0 for events).
    pub duration_us: u64,
    /// Event fields, in declaration order.
    pub fields: Vec<(&'static str, FieldValue)>,
}

impl Serialize for TraceRecord {
    fn serialize(&self) -> Value {
        let kind = match self.kind {
            RecordKind::Span => "span",
            RecordKind::Event => "event",
        };
        Value::Object(vec![
            ("kind".to_string(), Value::Str(kind.to_string())),
            ("name".to_string(), Value::Str(self.name.to_string())),
            ("file".to_string(), Value::Str(self.file.to_string())),
            ("line".to_string(), Value::U64(self.line as u64)),
            ("span_id".to_string(), Value::U64(self.span_id)),
            ("parent_id".to_string(), Value::U64(self.parent_id)),
            ("thread".to_string(), Value::Str(self.thread.clone())),
            ("start_us".to_string(), Value::U64(self.start_us)),
            ("duration_us".to_string(), Value::U64(self.duration_us)),
            (
                "fields".to_string(),
                Value::Object(
                    self.fields
                        .iter()
                        .map(|(k, v)| (k.to_string(), v.serialize()))
                        .collect(),
                ),
            ),
        ])
    }
}

fn obs_epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn micros_since_epoch(t: Instant) -> u64 {
    t.saturating_duration_since(obs_epoch()).as_micros() as u64
}

fn sink() -> &'static Mutex<Vec<TraceRecord>> {
    static SINK: OnceLock<Mutex<Vec<TraceRecord>>> = OnceLock::new();
    SINK.get_or_init(|| Mutex::new(Vec::new()))
}

/// Removes and returns everything collected so far, oldest first.
pub fn drain_trace() -> Vec<TraceRecord> {
    std::mem::take(&mut *lock(sink()))
}

/// Renders records as JSON-lines (one compact object per line).
pub fn to_jsonl(records: &[TraceRecord]) -> String {
    let mut out = String::new();
    for r in records {
        if let Ok(line) = serde_json::to_string(r) {
            out.push_str(&line);
            out.push('\n');
        }
    }
    out
}

fn current_thread_label() -> String {
    let t = std::thread::current();
    match t.name() {
        Some(name) => name.to_string(),
        None => format!("{:?}", t.id()),
    }
}

static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Open span ids on this thread, innermost last. Parenthood is
    /// per-thread: rayon workers start their own root spans.
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

fn current_parent() -> u64 {
    SPAN_STACK.with(|s| s.borrow().last().copied().unwrap_or(0))
}

/// An open span; records its duration into the trace sink on drop.
///
/// Created by [`span!`](crate::span!) / [`span_enter`]. Inert (and
/// allocation-free) when observability was disabled at entry.
#[derive(Debug)]
#[must_use = "a span measures the scope that holds it"]
pub struct SpanGuard {
    live: Option<OpenSpan>,
}

#[derive(Debug)]
struct OpenSpan {
    callsite: &'static Callsite,
    span_id: u64,
    parent_id: u64,
    start: Instant,
}

/// Opens a span at `callsite`. Prefer the [`span!`](crate::span!)
/// macro, which declares the static callsite for you.
pub fn span_enter(callsite: &'static Callsite) -> SpanGuard {
    if !enabled() {
        return SpanGuard { live: None };
    }
    callsite.id(); // ensure registration
    let span_id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let parent_id = current_parent();
    SPAN_STACK.with(|s| s.borrow_mut().push(span_id));
    SpanGuard {
        live: Some(OpenSpan {
            callsite,
            span_id,
            parent_id,
            start: Instant::now(),
        }),
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(open) = self.live.take() else {
            return;
        };
        let end = Instant::now();
        SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            // Guards drop in LIFO order within a thread, but be
            // defensive about a guard outliving an inner one.
            if let Some(pos) = stack.iter().rposition(|&id| id == open.span_id) {
                stack.remove(pos);
            }
        });
        let record = TraceRecord {
            kind: RecordKind::Span,
            name: open.callsite.name(),
            file: open.callsite.file(),
            line: open.callsite.line(),
            span_id: open.span_id,
            parent_id: open.parent_id,
            thread: current_thread_label(),
            start_us: micros_since_epoch(open.start),
            duration_us: end.saturating_duration_since(open.start).as_micros() as u64,
            fields: Vec::new(),
        };
        lock(sink()).push(record);
    }
}

/// Records a point event at `callsite`. Prefer the
/// [`event!`](crate::event!) macro.
pub fn record_event(callsite: &'static Callsite, fields: Vec<(&'static str, FieldValue)>) {
    if !enabled() {
        return;
    }
    callsite.id();
    let record = TraceRecord {
        kind: RecordKind::Event,
        name: callsite.name(),
        file: callsite.file(),
        line: callsite.line(),
        span_id: 0,
        parent_id: current_parent(),
        thread: current_thread_label(),
        start_us: micros_since_epoch(Instant::now()),
        duration_us: 0,
        fields,
    };
    lock(sink()).push(record);
}

/// Opens a timed span bound to the enclosing scope.
///
/// ```
/// let _g = remo_obs::test_guard();
/// remo_obs::enable();
/// {
///     let _span = remo_obs::span!("example.work");
/// }
/// assert!(remo_obs::drain_trace().iter().any(|r| r.name == "example.work"));
/// remo_obs::disable();
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {{
        static CALLSITE: $crate::Callsite = $crate::Callsite::new($name, file!(), line!());
        $crate::span_enter(&CALLSITE)
    }};
}

/// Records a point event with optional `"key" => value` fields.
///
/// ```
/// let _g = remo_obs::test_guard();
/// remo_obs::enable();
/// remo_obs::event!("example.tick", "round" => 2u64, "accepted" => true);
/// let trace = remo_obs::drain_trace();
/// assert_eq!(trace.len(), 1);
/// assert_eq!(trace[0].fields.len(), 2);
/// remo_obs::disable();
/// ```
#[macro_export]
macro_rules! event {
    ($name:expr $(, $key:literal => $value:expr)* $(,)?) => {{
        static CALLSITE: $crate::Callsite = $crate::Callsite::new($name, file!(), line!());
        if $crate::enabled() {
            $crate::record_event(
                &CALLSITE,
                vec![$(($key, $crate::FieldValue::from($value))),*],
            );
        }
    }};
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use crate::test_guard;

    #[test]
    fn disabled_span_and_event_record_nothing() {
        let _g = test_guard();
        crate::disable();
        drain_trace();
        {
            let _s = crate::span!("test.disabled");
            crate::event!("test.disabled.event", "x" => 1u64);
        }
        assert!(drain_trace().is_empty());
    }

    #[test]
    fn span_nesting_links_parents() {
        let _g = test_guard();
        crate::enable();
        drain_trace();
        {
            let _outer = crate::span!("test.outer");
            crate::event!("test.mid");
            {
                let _inner = crate::span!("test.inner");
            }
        }
        crate::disable();
        let trace = drain_trace();
        let outer = trace
            .iter()
            .find(|r| r.name == "test.outer")
            .expect("outer span recorded");
        let inner = trace
            .iter()
            .find(|r| r.name == "test.inner")
            .expect("inner span recorded");
        let mid = trace
            .iter()
            .find(|r| r.name == "test.mid")
            .expect("event recorded");
        assert_eq!(outer.parent_id, 0);
        assert_eq!(inner.parent_id, outer.span_id);
        assert_eq!(mid.parent_id, outer.span_id);
        assert_eq!(mid.kind, RecordKind::Event);
        assert!(outer.duration_us >= inner.duration_us);
        assert!(outer.start_us <= inner.start_us);
    }

    #[test]
    fn jsonl_lines_parse_and_carry_fields() {
        let _g = test_guard();
        crate::enable();
        drain_trace();
        {
            let _s = crate::span!("test.jsonl");
            crate::event!("test.jsonl.event", "n" => 3u64, "why" => "ok", "r" => 0.5f64);
        }
        crate::disable();
        let text = to_jsonl(&drain_trace());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in &lines {
            let v = serde_json::parse(line).expect("valid JSON line");
            assert!(v.get("name").is_some());
            assert!(v.get("start_us").is_some());
        }
        let event_line = lines
            .iter()
            .find(|l| l.contains("test.jsonl.event"))
            .expect("event line present");
        let v = serde_json::parse(event_line).expect("valid JSON");
        let fields = v.get("fields").expect("fields object");
        assert_eq!(fields.get("n"), Some(&Value::U64(3)));
        assert_eq!(fields.get("why"), Some(&Value::Str("ok".to_string())));
        assert_eq!(fields.get("r"), Some(&Value::F64(0.5)));
    }

    #[test]
    fn callsite_ids_are_stable() {
        static SITE: Callsite = Callsite::new("test.site", "trace.rs", 1);
        let first = SITE.id();
        let second = SITE.id();
        assert_eq!(first, second);
        assert!(callsites().iter().any(|(name, _, _)| *name == "test.site"));
    }

    #[test]
    fn spans_across_threads_are_roots() {
        let _g = test_guard();
        crate::enable();
        drain_trace();
        let _outer = crate::span!("test.main_thread");
        std::thread::spawn(|| {
            let _s = crate::span!("test.worker");
        })
        .join()
        .expect("worker thread");
        drop(_outer);
        crate::disable();
        let trace = drain_trace();
        let worker = trace
            .iter()
            .find(|r| r.name == "test.worker")
            .expect("worker span recorded");
        // The worker thread has its own span stack: no cross-thread parent.
        assert_eq!(worker.parent_id, 0);
    }
}
