//! The metrics registry: named counters, gauges, and histograms with a
//! Prometheus text-format exporter.
//!
//! Handles are cheap to clone (`Arc` over atomics) and safe to update
//! from any thread. Updates respect the global enabled flag: a
//! disabled [`Counter::inc`] is one relaxed load. Values survive
//! enable/disable cycles; [`Registry::reset`] zeroes everything.
//!
//! Metric names follow Prometheus conventions
//! (`remo_<crate>_<what>_<unit>`), with `_total` suffixes on
//! monotonically increasing series. Counters are f64 (Prometheus
//! counters are floats; traffic volumes are fractional cost units).

use crate::enabled;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Default histogram bucket upper bounds, in milliseconds — tuned for
/// planner-phase and epoch-tick durations (sub-millisecond to minutes).
pub const DEFAULT_BUCKETS_MS: [f64; 11] = [
    0.25, 1.0, 4.0, 16.0, 64.0, 250.0, 1_000.0, 4_000.0, 16_000.0, 60_000.0, 240_000.0,
];

/// An atomic f64 cell (bit-cast over `AtomicU64`).
#[derive(Debug, Default)]
struct AtomicF64(AtomicU64);

impl AtomicF64 {
    fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }

    fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    fn add(&self, delta: f64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + delta).to_bits();
            match self
                .0
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }
}

/// A monotonically increasing metric.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    value: Arc<AtomicF64>,
}

impl Counter {
    /// Adds 1 (no-op while observability is disabled).
    pub fn inc(&self) {
        self.inc_by(1.0);
    }

    /// Adds `delta` (no-op while observability is disabled; negative
    /// deltas are ignored — counters only go up).
    pub fn inc_by(&self, delta: f64) {
        if enabled() && delta > 0.0 {
            self.value.add(delta);
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        self.value.get()
    }
}

/// A metric that can go up and down.
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    value: Arc<AtomicF64>,
}

impl Gauge {
    /// Sets the gauge (no-op while observability is disabled).
    pub fn set(&self, v: f64) {
        if enabled() {
            self.value.set(v);
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        self.value.get()
    }
}

#[derive(Debug)]
struct HistogramInner {
    bounds: Vec<f64>,
    counts: Vec<AtomicU64>,
    sum: AtomicF64,
    count: AtomicU64,
}

/// A fixed-bucket histogram of f64 observations.
#[derive(Debug, Clone)]
pub struct Histogram {
    inner: Arc<HistogramInner>,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Self {
        Histogram {
            inner: Arc::new(HistogramInner {
                bounds: bounds.to_vec(),
                counts: bounds.iter().map(|_| AtomicU64::new(0)).collect(),
                sum: AtomicF64::default(),
                count: AtomicU64::new(0),
            }),
        }
    }

    /// Records one observation (no-op while observability is disabled).
    pub fn observe(&self, v: f64) {
        if !enabled() {
            return;
        }
        for (bound, count) in self.inner.bounds.iter().zip(&self.inner.counts) {
            if v <= *bound {
                count.fetch_add(1, Ordering::Relaxed);
            }
        }
        self.inner.sum.add(v);
        self.inner.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.inner.sum.get()
    }

    /// Cumulative count at or below each bucket bound.
    pub fn buckets(&self) -> Vec<(f64, u64)> {
        self.inner
            .bounds
            .iter()
            .zip(&self.inner.counts)
            .map(|(b, c)| (*b, c.load(Ordering::Relaxed)))
            .collect()
    }
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// A point-in-time reading of one metric, as returned by
/// [`Registry::snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Counter value.
    Counter(f64),
    /// Gauge value.
    Gauge(f64),
    /// Histogram `(count, sum)`.
    Histogram(u64, f64),
}

/// A named collection of metrics.
///
/// Most callers use the process-wide registry through the free
/// functions [`counter`], [`gauge`], and [`histogram`]; a private
/// `Registry` is useful in tests.
#[derive(Debug, Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

/// Panics avoided: all lock sites recover from poisoning, because the
/// registry's maps are never left mid-update.
fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// The counter named `name`, registering it on first use.
    ///
    /// A name previously registered as a different metric kind yields
    /// a fresh unregistered handle (the exporter keeps the original).
    pub fn counter(&self, name: &str) -> Counter {
        let mut metrics = lock(&self.metrics);
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Counter::default()))
        {
            Metric::Counter(c) => c.clone(),
            _ => Counter::default(),
        }
    }

    /// The gauge named `name`, registering it on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut metrics = lock(&self.metrics);
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Gauge::default()))
        {
            Metric::Gauge(g) => g.clone(),
            _ => Gauge::default(),
        }
    }

    /// The histogram named `name` (default duration buckets),
    /// registering it on first use.
    pub fn histogram(&self, name: &str) -> Histogram {
        self.histogram_with_buckets(name, &DEFAULT_BUCKETS_MS)
    }

    /// The histogram named `name` with explicit bucket bounds (applied
    /// only on first registration).
    pub fn histogram_with_buckets(&self, name: &str, bounds: &[f64]) -> Histogram {
        let mut metrics = lock(&self.metrics);
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Histogram::new(bounds)))
        {
            Metric::Histogram(h) => h.clone(),
            _ => Histogram::new(bounds),
        }
    }

    /// Current values of every registered metric, by name.
    pub fn snapshot(&self) -> BTreeMap<String, MetricValue> {
        let metrics = lock(&self.metrics);
        metrics
            .iter()
            .map(|(name, m)| {
                let v = match m {
                    Metric::Counter(c) => MetricValue::Counter(c.get()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                    Metric::Histogram(h) => MetricValue::Histogram(h.count(), h.sum()),
                };
                (name.clone(), v)
            })
            .collect()
    }

    /// Renders every metric in the Prometheus text exposition format
    /// (`# TYPE` comments, histogram `_bucket`/`_sum`/`_count` series
    /// with `le` labels and the `+Inf` bucket).
    pub fn render_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let metrics = lock(&self.metrics);
        let mut out = String::new();
        for (name, m) in metrics.iter() {
            match m {
                Metric::Counter(c) => {
                    let _ = writeln!(out, "# TYPE {name} counter");
                    let _ = writeln!(out, "{name} {}", fmt_f64(c.get()));
                }
                Metric::Gauge(g) => {
                    let _ = writeln!(out, "# TYPE {name} gauge");
                    let _ = writeln!(out, "{name} {}", fmt_f64(g.get()));
                }
                Metric::Histogram(h) => {
                    let _ = writeln!(out, "# TYPE {name} histogram");
                    for (bound, count) in h.buckets() {
                        let _ = writeln!(out, "{name}_bucket{{le=\"{}\"}} {count}", fmt_f64(bound));
                    }
                    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count());
                    let _ = writeln!(out, "{name}_sum {}", fmt_f64(h.sum()));
                    let _ = writeln!(out, "{name}_count {}", h.count());
                }
            }
        }
        out
    }

    /// Zeroes every registered metric **in place**. Handles cached by
    /// callers (e.g. the planner's hot-path cache counters behind
    /// `OnceLock`s) stay attached to their cells and keep reporting
    /// through the exporter — clearing the map instead would orphan
    /// them silently. Intended for tests and between bench runs.
    pub fn reset(&self) {
        let metrics = lock(&self.metrics);
        for m in metrics.values() {
            match m {
                Metric::Counter(c) => c.value.set(0.0),
                Metric::Gauge(g) => g.value.set(0.0),
                Metric::Histogram(h) => {
                    for c in &h.inner.counts {
                        c.store(0, Ordering::Relaxed);
                    }
                    h.inner.sum.set(0.0);
                    h.inner.count.store(0, Ordering::Relaxed);
                }
            }
        }
    }
}

/// Formats a value the way Prometheus expects: integral values without
/// a fractional part, everything else with full precision.
fn fmt_f64(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn global_registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::new)
}

/// The process-wide registry (what the exporters export).
pub fn registry() -> &'static Registry {
    global_registry()
}

/// A counter in the process-wide registry.
pub fn counter(name: &str) -> Counter {
    global_registry().counter(name)
}

/// A gauge in the process-wide registry.
pub fn gauge(name: &str) -> Gauge {
    global_registry().gauge(name)
}

/// A histogram in the process-wide registry (default buckets).
pub fn histogram(name: &str) -> Histogram {
    global_registry().histogram(name)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use crate::test_guard;

    #[test]
    fn disabled_updates_are_dropped() {
        let _g = test_guard();
        crate::disable();
        let r = Registry::new();
        let c = r.counter("x_total");
        c.inc();
        assert_eq!(c.get(), 0.0);
        let g = r.gauge("g");
        g.set(5.0);
        assert_eq!(g.get(), 0.0);
        let h = r.histogram("h_ms");
        h.observe(3.0);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn counter_gauge_histogram_record_when_enabled() {
        let _g = test_guard();
        crate::enable();
        let r = Registry::new();
        let c = r.counter("x_total");
        c.inc();
        c.inc_by(2.5);
        c.inc_by(-1.0); // ignored: counters only go up
        assert_eq!(c.get(), 3.5);

        let g = r.gauge("depth");
        g.set(2.0);
        g.set(1.0);
        assert_eq!(g.get(), 1.0);

        let h = r.histogram_with_buckets("lat_ms", &[1.0, 10.0]);
        h.observe(0.5);
        h.observe(5.0);
        h.observe(100.0);
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 105.5);
        assert_eq!(h.buckets(), vec![(1.0, 1), (10.0, 2)]);
        crate::disable();
    }

    #[test]
    fn same_name_shares_the_cell() {
        let _g = test_guard();
        crate::enable();
        let r = Registry::new();
        r.counter("shared_total").inc();
        r.counter("shared_total").inc();
        assert_eq!(r.counter("shared_total").get(), 2.0);
        crate::disable();
    }

    #[test]
    fn prometheus_rendering_shape() {
        let _g = test_guard();
        crate::enable();
        let r = Registry::new();
        r.counter("a_total").inc_by(2.0);
        r.gauge("b").set(0.25);
        let h = r.histogram_with_buckets("c_ms", &[1.0]);
        h.observe(0.5);
        h.observe(2.0);
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE a_total counter\na_total 2\n"));
        assert!(text.contains("# TYPE b gauge\nb 0.25\n"));
        assert!(text.contains("c_ms_bucket{le=\"1\"} 1"));
        assert!(text.contains("c_ms_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("c_ms_sum 2.5"));
        assert!(text.contains("c_ms_count 2"));
        crate::disable();
    }

    #[test]
    fn snapshot_reports_each_kind() {
        let _g = test_guard();
        crate::enable();
        let r = Registry::new();
        r.counter("c_total").inc();
        r.gauge("g").set(7.0);
        r.histogram("h_ms").observe(1.0);
        let snap = r.snapshot();
        assert_eq!(snap["c_total"], MetricValue::Counter(1.0));
        assert_eq!(snap["g"], MetricValue::Gauge(7.0));
        assert_eq!(snap["h_ms"], MetricValue::Histogram(1, 1.0));
        crate::disable();
    }
}
