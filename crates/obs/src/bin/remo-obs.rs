//! `remo-obs` — summarize observability exports.
//!
//! ```text
//! remo-obs dump [--trace <file.jsonl>] [--metrics <file.prom>]
//! ```
//!
//! Reads the JSON-lines trace and/or Prometheus text files written by
//! `remo-plan --trace/--metrics` (and the bench binaries) and prints
//! per-name span/event aggregates and metric samples.
//!
//! Exit status: 0 on success, 1 when a file is malformed, 2 on usage
//! or I/O problems.

use remo_obs::summary::{
    parse_prometheus, parse_trace, render_metrics_summary, render_trace_summary,
};
use std::process::ExitCode;

const USAGE: &str = "\
usage: remo-obs dump [--trace <file.jsonl>] [--metrics <file.prom>]

reads exports produced by `remo-plan --trace/--metrics` and the bench
binaries, and prints per-name span/event aggregates and metric samples;
at least one of --trace/--metrics is required
";

fn usage_error(message: &str) -> ExitCode {
    eprintln!("remo-obs: {message}");
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{USAGE}");
        return ExitCode::SUCCESS;
    }

    let mut trace_path: Option<String> = None;
    let mut metrics_path: Option<String> = None;
    let mut saw_dump = false;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "dump" => saw_dump = true,
            "--trace" => match it.next() {
                Some(path) => trace_path = Some(path),
                None => return usage_error("--trace needs a path"),
            },
            "--metrics" => match it.next() {
                Some(path) => metrics_path = Some(path),
                None => return usage_error("--metrics needs a path"),
            },
            other => return usage_error(&format!("unknown argument `{other}`")),
        }
    }
    if !saw_dump {
        return usage_error("expected the `dump` subcommand");
    }
    if trace_path.is_none() && metrics_path.is_none() {
        return usage_error("give at least one of --trace/--metrics");
    }

    let mut malformed = false;
    if let Some(path) = trace_path {
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("remo-obs: cannot read {path}: {e}");
                return ExitCode::from(2);
            }
        };
        match parse_trace(&text) {
            Ok(summary) => {
                println!("trace {path}:");
                print!("{}", render_trace_summary(&summary));
            }
            Err(e) => {
                eprintln!("remo-obs: {path}: {e}");
                malformed = true;
            }
        }
    }
    if let Some(path) = metrics_path {
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("remo-obs: cannot read {path}: {e}");
                return ExitCode::from(2);
            }
        };
        match parse_prometheus(&text) {
            Ok(samples) => {
                println!("metrics {path}: {} sample(s)", samples.len());
                print!("{}", render_metrics_summary(&samples));
            }
            Err(e) => {
                eprintln!("remo-obs: {path}: {e}");
                malformed = true;
            }
        }
    }

    if malformed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
