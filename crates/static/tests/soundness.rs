//! Soundness of the static analyzer against the dynamic layers.
//!
//! Random (deployment spec, NetSpec, degrade policy) triples are
//! pushed through the *real* threaded lossy runtime and every
//! observation is checked against the analyzer's closed-form bounds:
//!
//! * the concrete plan the planner picks lands inside the symbolic
//!   per-node / collector usage intervals,
//! * per-epoch traffic volume never exceeds the token-bucket ceiling
//!   the analyzer assumes,
//! * the collector ingress depth never exceeds the static queue
//!   bound, a shed-free certification is never contradicted, and the
//!   degrade factor stays within the configured ladder,
//! * on certified triples, once the network heals the end-to-end
//!   snapshot age settles under the worst-case staleness bound.
//!
//! Precision (bound / observed) is logged per case so looseness is
//! visible, not silent.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use proptest::prelude::*;
use remo::spec::{AttrSpec, DeploymentSpec, TaskSpec};
use remo_core::planner::Planner;
use remo_core::{AttrId, NodeId};
use remo_runtime::{
    Deployment, HealthConfig, NetConfig, NetSpec, PartitionWindow, Sampler, TransportSpec,
};
use remo_static::{analyze, StaticBundle};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Epoch the random network faults cease.
const FAULTY_END: u64 = 12;

fn sampler() -> Sampler {
    Arc::new(|n: NodeId, a: AttrId, e: u64| (n.0 as f64) * 100.0 + (a.0 as f64) * 10.0 + e as f64)
}

#[derive(Debug, Clone)]
struct Triple {
    bundle: StaticBundle,
}

fn freq_of(ix: u8) -> f64 {
    [1.0, 0.5, 0.25][ix as usize % 3]
}

#[allow(clippy::too_many_arguments)]
fn build_triple(
    nodes: u32,
    attrs: u32,
    freq_ix: u8,
    node_budget: f64,
    seed: u64,
    drop: f64,
    delay_max: u64,
    dup: f64,
    reorder: f64,
    part: Option<(u32, u64, u64)>,
    base_rto: u64,
    max_attempts: u32,
    ingress_capacity: usize,
    max_degrade_level: u32,
) -> Triple {
    let spec = DeploymentSpec {
        nodes: nodes as usize,
        node_capacity: node_budget,
        capacity_overrides: BTreeMap::new(),
        collector_capacity: 1_000_000.0,
        per_message_cost: 2.0,
        per_value_cost: 1.0,
        attributes: (0..attrs)
            .map(|a| AttrSpec {
                name: format!("m{a}"),
                aggregation: None,
                frequency: Some(freq_of(freq_ix.wrapping_add(a as u8))),
            })
            .collect(),
        tasks: vec![TaskSpec {
            attrs: (0..attrs).collect(),
            nodes: (0..nodes).collect(),
        }],
        aggregation_aware: false,
        frequency_aware: false,
    };
    let partitions = match part {
        Some((member, from, len)) => vec![PartitionWindow {
            name: "window".into(),
            members: [NodeId(member % nodes)].into_iter().collect(),
            from_epoch: 3 + from % 6,
            until_epoch: Some(3 + from % 6 + 1 + len % 4),
        }],
        None => Vec::new(),
    };
    let net = NetSpec {
        seed,
        drop,
        delay_max,
        dup,
        reorder,
        partitions,
        active_until: Some(FAULTY_END),
        ..NetSpec::default()
    };
    let cfg = NetConfig {
        base_rto,
        max_attempts,
        ingress_capacity,
        max_degrade_level,
        ..NetConfig::default()
    };
    Triple {
        bundle: StaticBundle {
            spec,
            net: Some(net),
            net_config: Some(cfg),
            staleness_slo: None,
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn static_bounds_hold_against_the_lossy_runtime(
        nodes in 2u32..5,
        attrs in 1u32..3,
        freq_ix in 0u8..3,
        tight_nodes in 0u8..2,
        seed in 0u64..u64::MAX,
        drop in 0.0f64..0.25,
        delay_max in 0u64..3,
        dup in 0.0f64..0.15,
        reorder in 0.0f64..0.15,
        part_member in 0u32..9,
        part_from in 0u64..8,
        part_len in 0u64..8,
        base_rto in 1u64..3,
        max_attempts in 1u32..4,
        ingress_ix in 0usize..3,
        max_degrade_level in 0u32..3,
    ) {
        let node_budget = if tight_nodes == 0 { 60.0 } else { 10_000.0 };
        let ingress_capacity = [16usize, 2048, 4096][ingress_ix];
        // part_member == 8 (out of node range for every size we draw)
        // doubles as "no partition window".
        let part = (part_member < 8).then_some((part_member, part_from, part_len));
        let triple = build_triple(
            nodes, attrs, freq_ix, node_budget, seed, drop, delay_max, dup, reorder,
            part, base_rto, max_attempts, ingress_capacity, max_degrade_level,
        );
        let report = analyze(&triple.bundle).expect("triple analyzes");

        // Concrete plan vs the symbolic cost intervals.
        let spec = &triple.bundle.spec;
        let pairs = spec.pairs().unwrap();
        let caps = spec.capacities().unwrap();
        let cost = spec.cost().unwrap();
        let catalog = spec.catalog().unwrap();
        let plan = Planner::default().plan_with_catalog(&pairs, &caps, cost, &catalog);
        let fully_collected = plan.collected_pairs() == pairs.len();
        for (n, u) in plan.node_usage() {
            let iv = report.cost.node(n);
            prop_assert!(
                u <= iv.hi() * (1.0 + 1e-6),
                "node {} usage {} escapes static hi {}", n, u, iv.hi()
            );
            if fully_collected {
                prop_assert!(
                    u >= iv.lo() * (1.0 - 1e-6),
                    "node {} usage {} undercuts static lo {}", n, u, iv.lo()
                );
            }
        }
        prop_assert!(plan.collector_usage() <= report.cost.collector.hi() * (1.0 + 1e-6));
        if fully_collected {
            prop_assert!(plan.collector_usage() >= report.cost.collector.lo() * (1.0 - 1e-6));
        }

        // Drive the lossy runtime: faulty phase, then a quiet tail at
        // least as long as the worst staleness bound.
        let worst = report.staleness.worst().expect("attrs demanded");
        let total = FAULTY_END + worst + 4;
        let net = triple.bundle.net.clone().unwrap();
        let cfg = triple.bundle.net_config.unwrap();
        let budget_ceiling: f64 = caps.iter().map(|(_, b)| b).sum();
        let mut dep = Deployment::launch_with_transport(
            &plan, &pairs, &caps, cost, &catalog, sampler(),
            HealthConfig::default(), TransportSpec::Lossy(net, cfg),
        );
        let mut peak_depth = 0u64;
        let mut shed_total = 0u64;
        let mut peak_volume = 0.0f64;
        for _ in 0..total {
            let r = dep.run(1);
            peak_depth = peak_depth.max(r.ingress_depth);
            shed_total += r.shed_readings;
            peak_volume = peak_volume.max(r.volume);
            prop_assert!(
                r.volume <= budget_ceiling * (1.0 + 1e-6),
                "epoch volume {} escapes the token-bucket ceiling {}", r.volume, budget_ceiling
            );
            prop_assert!(
                r.ingress_depth <= report.degrade.queue_bound as u64,
                "ingress depth {} escapes the static queue bound {}",
                r.ingress_depth, report.degrade.queue_bound
            );
            prop_assert!(
                r.degrade_factor <= report.staleness.max_degrade_factor,
                "degrade factor {} escapes the ladder cap {}",
                r.degrade_factor, report.staleness.max_degrade_factor
            );
        }
        if report.degrade.shed_free {
            prop_assert!(
                shed_total == 0,
                "analyzer certified shed-freedom but {} readings were shed", shed_total
            );
        }

        // Certified staleness: after the quiet tail every collected
        // pair's snapshot age sits under its closed-form bound.
        if fully_collected && report.staleness_certified() {
            let epoch = dep.epoch();
            let mut worst_age = 0u64;
            for (n, a) in pairs.iter() {
                let obs = dep.observed(n, a);
                prop_assert!(obs.is_some(), "certified pair {}/{} never observed", n, a);
                let age = epoch - obs.unwrap().produced;
                let bound = report.staleness.per_attr[&a];
                prop_assert!(
                    age <= bound,
                    "pair {}/{} age {} escapes the static staleness bound {}", n, a, age, bound
                );
                worst_age = worst_age.max(age);
            }
            eprintln!(
                "precision: staleness bound {worst} / observed {worst_age}; \
                 queue bound {} / observed {peak_depth}; \
                 volume ceiling {budget_ceiling:.0} / observed {peak_volume:.0}",
                report.degrade.queue_bound
            );
        }
        dep.shutdown();
    }
}
