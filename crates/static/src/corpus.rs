//! Known-bad bundles, one per static rule.
//!
//! Mirrors `remo_audit::corpus`: each case is a minimal deployment
//! bundle engineered to trip exactly one of RA018–RA021, used as
//! regression anchors for the analyzer and as `--example` seeds for
//! the CLI.

use crate::StaticBundle;
use remo::spec::{DeploymentSpec, TaskSpec};
use remo_core::NodeId;
use remo_runtime::{NetConfig, NetSpec, PartitionWindow};
use std::collections::BTreeMap;

/// One known-bad bundle and the single rule it must trip.
#[derive(Debug, Clone)]
pub struct CorpusCase {
    /// Short case name.
    pub name: &'static str,
    /// The rule every finding must carry.
    pub rule: &'static str,
    /// Its stable code.
    pub code: &'static str,
    /// The offending bundle.
    pub bundle: StaticBundle,
}

fn base_spec(nodes: usize, node_capacity: f64, collector_capacity: f64) -> DeploymentSpec {
    DeploymentSpec {
        nodes,
        node_capacity,
        capacity_overrides: BTreeMap::new(),
        collector_capacity,
        per_message_cost: 4.0,
        per_value_cost: 1.0,
        attributes: Vec::new(),
        tasks: vec![TaskSpec {
            attrs: vec![0],
            nodes: (0..nodes as u32).collect(),
        }],
        aggregation_aware: false,
        frequency_aware: false,
    }
}

/// The four known-bad cases, in rule order.
pub fn cases() -> Vec<CorpusCase> {
    // RA018: a node budget below even the single-leaf message cost
    // (C + a·1 = 5 > 1). Collector budget is ample, so the degrade
    // fixed point converges and nothing else fires.
    let infeasible = StaticBundle {
        spec: base_spec(2, 1.0, 1_000.0),
        net: None,
        net_config: None,
        staleness_slo: None,
    };

    // RA019: generous budgets, but node 1 sits inside a partition
    // window that never ends while a staleness SLO is declared.
    let severed = StaticBundle {
        spec: base_spec(2, 100.0, 1_000.0),
        net: Some(NetSpec {
            partitions: vec![PartitionWindow {
                name: "island".into(),
                members: [NodeId(1)].into_iter().collect(),
                from_epoch: 0,
                until_epoch: None,
            }],
            ..NetSpec::default()
        }),
        net_config: None,
        staleness_slo: Some(50.0),
    };

    // RA020: eight holistic attributes on two nodes with a heavy
    // per-message overhead. Collector lower bound 100 + 16 = 116 fits
    // the 200 budget (no RA018), but the worst-case service rate is
    // (200 − 100·8)/1 < 0 — no degrade level can ever keep up.
    let diverging_spec = DeploymentSpec {
        per_message_cost: 100.0,
        tasks: vec![TaskSpec {
            attrs: (0..8).collect(),
            nodes: vec![0, 1],
        }],
        ..base_spec(2, 10_000.0, 200.0)
    };
    let diverging = StaticBundle {
        spec: diverging_spec.clone(),
        net: None,
        net_config: None,
        staleness_slo: None,
    };

    // RA021: the same overload with the degrade ladder disabled —
    // the queue is bounded only by shedding.
    let unbounded = StaticBundle {
        spec: diverging_spec,
        net: None,
        net_config: Some(NetConfig {
            max_degrade_level: 0,
            ..NetConfig::default()
        }),
        staleness_slo: None,
    };

    vec![
        CorpusCase {
            name: "infeasible-capacity",
            rule: "static-infeasible-capacity",
            code: "RA018",
            bundle: infeasible,
        },
        CorpusCase {
            name: "severed-slo",
            rule: "slo-unreachable-under-netspec",
            code: "RA019",
            bundle: severed,
        },
        CorpusCase {
            name: "degrade-divergence",
            rule: "degrade-divergence",
            code: "RA020",
            bundle: diverging,
        },
        CorpusCase {
            name: "unbounded-queue",
            rule: "unbounded-queue",
            code: "RA021",
            bundle: unbounded,
        },
    ]
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use crate::analyze;

    /// Every corpus case trips its rule — and *only* its rule.
    #[test]
    fn each_case_trips_exactly_its_rule() {
        for case in cases() {
            let report = analyze(&case.bundle)
                .unwrap_or_else(|e| panic!("corpus case {} failed to analyze: {e}", case.name));
            assert!(
                !report.findings.is_empty(),
                "corpus case {} produced no findings",
                case.name
            );
            for f in &report.findings {
                assert_eq!(
                    (f.rule.as_str(), f.code.as_str()),
                    (case.rule, case.code),
                    "corpus case {} tripped a foreign rule: {f}",
                    case.name
                );
            }
        }
    }

    /// The cases survive a JSON roundtrip (they double as CLI
    /// `--example` seeds).
    #[test]
    fn cases_roundtrip_through_json() {
        for case in cases() {
            let json = case.bundle.to_json().unwrap();
            let back = StaticBundle::from_json(&json).unwrap();
            assert_eq!(back.spec, case.bundle.spec, "case {}", case.name);
            assert_eq!(back.staleness_slo, case.bundle.staleness_slo);
        }
    }
}
