//! # remo-static
//!
//! Pre-flight abstract interpretation for REMO deployments: given only
//! the *declarative* inputs — a [`DeploymentSpec`], an optional
//! [`NetSpec`]/[`NetConfig`], and an optional staleness SLO — compute
//! sound bounds on what any concrete plan and any run of the lossy
//! runtime can do, before a single agent thread is spawned:
//!
//! * **Capacity** ([`cost`]): per-node and collector usage intervals
//!   over the `C + a·x` model, valid for every partition shape the
//!   planner could pick. A best-shape lower bound exceeding a budget
//!   is infeasibility, not a tuning problem → **RA018**.
//! * **Staleness** ([`latency`]): closed-form worst-case snapshot age
//!   under the ARQ transport (geometric backoff series, delivery
//!   delay, degrade-widened reporting gaps). Permanently severed
//!   nodes make a declared SLO unreachable → **RA019**.
//! * **Degradation** ([`degrade`]): fluid fixed point of the
//!   backpressure loop. A degrade ladder too short to shed load is
//!   **RA020**; a disabled ladder over an overloaded collector is
//!   **RA021**. When the system keeps up at level 0 and every
//!   outstanding reading fits the ingress queue, the analysis
//!   certifies the run shed-free and tightens the queue bound.
//!
//! The dynamic layers prove these bounds honest: a property test
//! drives random triples through the real lossy runtime and asserts
//! observations never escape the intervals, and the `remo-mc`
//! exhaustive sweep cross-checks every explored plan state against
//! the capacity bounds.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod corpus;
pub mod cost;
pub mod degrade;
pub mod latency;

use remo::spec::DeploymentSpec;
use remo_audit::{rule, AuditOutcome, Finding, Severity};
use remo_core::NodeId;
use remo_runtime::{NetConfig, NetSpec};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

pub use cost::{cost_bounds, CostBounds, CostFlags};
pub use degrade::{degrade_analysis, DegradeAnalysis};
pub use latency::{period_of, staleness_bounds, StalenessBounds};

/// Everything the analyzer consumes, as one serializable document.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StaticBundle {
    /// The monitoring problem.
    pub spec: DeploymentSpec,
    /// Network fault model (defaults to a perfect network).
    #[serde(default)]
    pub net: Option<NetSpec>,
    /// ARQ / backpressure configuration (defaults to
    /// [`NetConfig::default`]).
    #[serde(default)]
    pub net_config: Option<NetConfig>,
    /// Declared end-to-end staleness SLO, in epochs.
    #[serde(default)]
    pub staleness_slo: Option<f64>,
}

impl StaticBundle {
    /// Parses a bundle from JSON. A bare [`DeploymentSpec`] document
    /// is accepted too (net model and SLO default).
    ///
    /// # Errors
    ///
    /// Returns the underlying parse error as a string.
    pub fn from_json(json: &str) -> Result<Self, String> {
        if let Ok(bundle) = serde_json::from_str::<StaticBundle>(json) {
            return Ok(bundle);
        }
        DeploymentSpec::from_json(json).map(|spec| StaticBundle {
            spec,
            net: None,
            net_config: None,
            staleness_slo: None,
        })
    }

    /// Serializes the bundle to pretty JSON.
    ///
    /// # Errors
    ///
    /// Returns the underlying serialization error as a string.
    pub fn to_json(&self) -> Result<String, String> {
        serde_json::to_string_pretty(self).map_err(|e| e.to_string())
    }
}

/// The full analysis result.
#[derive(Debug, Clone)]
pub struct AnalysisReport {
    /// Shape-independent usage intervals.
    pub cost: CostBounds,
    /// Worst-case staleness closed forms.
    pub staleness: StalenessBounds,
    /// Backpressure fixed point.
    pub degrade: DegradeAnalysis,
    /// RA018–RA021 findings.
    pub findings: Vec<Finding>,
}

impl AnalysisReport {
    /// `true` when no error-severity finding was produced.
    pub fn is_clean(&self) -> bool {
        !self.findings.iter().any(|f| f.severity == Severity::Error)
    }

    /// Whether the staleness bounds are *certified*: no demanded node
    /// is permanently severed and the collector is proven shed-free,
    /// so no reading can be silently lost to abandonment-after-
    /// partition or ingress shedding.
    pub fn staleness_certified(&self) -> bool {
        self.staleness.unreachable.is_empty() && self.degrade.shed_free
    }

    /// Repackages the report as an [`AuditOutcome`] (findings plus the
    /// worst-case usage figures) so the SARIF renderer and the audit
    /// tooling can consume it unchanged.
    pub fn outcome(&self) -> AuditOutcome {
        AuditOutcome {
            findings: self.findings.clone(),
            node_usage: self
                .cost
                .per_node
                .iter()
                .map(|(&n, iv)| (n, iv.hi()))
                .collect(),
            collector_usage: self.cost.collector.hi(),
        }
    }

    /// Human-readable rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "pre-flight analysis: {} nodes, {} attrs",
            self.cost.participants, self.cost.attrs
        );
        let _ = writeln!(
            out,
            "  collector usage in [{:.2}, {:.2}]",
            self.cost.collector.lo(),
            self.cost.collector.hi()
        );
        if let Some((n, iv)) = self
            .cost
            .per_node
            .iter()
            .max_by(|a, b| a.1.lo().total_cmp(&b.1.lo()))
        {
            let _ = writeln!(
                out,
                "  hottest node {} usage in [{:.2}, {:.2}]",
                n,
                iv.lo(),
                iv.hi()
            );
        }
        if let Some(worst) = self.staleness.worst() {
            let _ = writeln!(
                out,
                "  staleness ≤ {} epochs ({}, per-hop {}, degrade ×{})",
                worst,
                if self.staleness_certified() {
                    "certified"
                } else {
                    "uncertified"
                },
                self.staleness.per_hop,
                self.staleness.max_degrade_factor
            );
        }
        match self.degrade.converges_at {
            Some(l) => {
                let _ = writeln!(
                    out,
                    "  backpressure converges at degrade level {l} \
                     (service {:.2}/epoch); queue ≤ {} readings{}",
                    self.degrade.service_worst,
                    self.degrade.queue_bound,
                    if self.degrade.shed_free {
                        ", shed-free"
                    } else {
                        ""
                    }
                );
            }
            None => {
                let _ = writeln!(
                    out,
                    "  backpressure diverges at every degrade level \
                     (service {:.2}/epoch < arrival {:.2}/epoch)",
                    self.degrade.service_worst,
                    self.degrade.arrival.last().copied().unwrap_or(0.0)
                );
            }
        }
        for f in &self.findings {
            let _ = writeln!(out, "  {f}");
        }
        if self.findings.is_empty() {
            let _ = writeln!(out, "  no findings");
        }
        out
    }
}

/// Builds a finding from the rule registry, like the mc harness does.
fn static_finding(
    name: &str,
    message: String,
    node: Option<NodeId>,
    actual: Option<f64>,
    limit: Option<f64>,
) -> Option<Finding> {
    let meta = rule(name)?;
    Some(Finding {
        rule: meta.name.to_string(),
        code: meta.code.to_string(),
        severity: meta.severity,
        message,
        tree: None,
        node,
        attr: None,
        actual,
        limit,
        fix_hint: meta.fix_hint.to_string(),
    })
}

/// Runs the full pre-flight analysis on a bundle.
///
/// # Errors
///
/// Returns a message when the spec itself is malformed (bad costs,
/// capacities, aggregations, or empty tasks).
pub fn analyze(bundle: &StaticBundle) -> Result<AnalysisReport, String> {
    let spec = &bundle.spec;
    let pairs = spec.pairs().map_err(|e| e.to_string())?;
    let caps = spec.capacities().map_err(|e| e.to_string())?;
    let cost = spec.cost().map_err(|e| e.to_string())?;
    let catalog = spec.catalog()?;
    let flags = CostFlags {
        aggregation_aware: spec.aggregation_aware,
        frequency_aware: spec.frequency_aware,
    };
    let net = bundle.net.clone().unwrap_or_default();
    let cfg = bundle.net_config.unwrap_or_default();

    let bounds = cost_bounds(&pairs, &catalog, cost, flags);
    let staleness = staleness_bounds(&pairs, &catalog, &net, &cfg);
    let degrade = degrade_analysis(&pairs, &catalog, cost, caps.collector(), &net, &cfg);

    let mut findings = Vec::new();

    // RA018: even the cheapest shape overruns a budget — the pairs
    // cannot all be collected, no matter how the planner partitions.
    for (&n, iv) in &bounds.per_node {
        let budget = caps.node(n).unwrap_or(0.0);
        if iv.lo() > budget * (1.0 + 1e-6) {
            findings.extend(static_finding(
                remo_core::validate::rules::STATIC_INFEASIBLE_CAPACITY,
                format!(
                    "node {n}: best-shape usage lower bound {:.2} exceeds its budget {budget:.2}; \
                     its pairs are uncollectable under any partition",
                    iv.lo()
                ),
                Some(n),
                Some(iv.lo()),
                Some(budget),
            ));
        }
    }
    if bounds.collector.lo() > caps.collector() * (1.0 + 1e-6) {
        findings.extend(static_finding(
            remo_core::validate::rules::STATIC_INFEASIBLE_CAPACITY,
            format!(
                "collector: best-shape intake lower bound {:.2} exceeds the collector budget {:.2}",
                bounds.collector.lo(),
                caps.collector()
            ),
            None,
            Some(bounds.collector.lo()),
            Some(caps.collector()),
        ));
    }

    // RA019: an SLO was declared but some demanded node can never
    // deliver again under this fault model.
    if let Some(slo) = bundle.staleness_slo {
        for &n in &staleness.unreachable {
            findings.extend(static_finding(
                remo_core::validate::rules::SLO_UNREACHABLE_UNDER_NETSPEC,
                format!(
                    "node {n} is permanently severed from the collector under this NetSpec; \
                     the {slo}-epoch staleness SLO can never be met for its pairs"
                ),
                Some(n),
                None,
                Some(slo),
            ));
        }
    }

    // RA020 / RA021: the backpressure loop cannot reach a stable
    // level. Mutually exclusive on whether a degrade ladder exists.
    if degrade.converges_at.is_none() {
        let arrival_floor = degrade.arrival.last().copied().unwrap_or(0.0);
        if cfg.max_degrade_level > 0 {
            findings.extend(static_finding(
                remo_core::validate::rules::DEGRADE_DIVERGENCE,
                format!(
                    "arrival rate at the deepest degrade level ({arrival_floor:.2}/epoch) still \
                     exceeds the worst-case collector service rate ({:.2}/epoch); \
                     the backpressure loop pins at level {} and sheds forever",
                    degrade.service_worst, cfg.max_degrade_level
                ),
                None,
                Some(arrival_floor),
                Some(degrade.service_worst),
            ));
        } else {
            findings.extend(static_finding(
                remo_core::validate::rules::UNBOUNDED_QUEUE,
                format!(
                    "degradation is disabled (max_degrade_level = 0) but the arrival rate \
                     ({arrival_floor:.2}/epoch) exceeds the worst-case collector service rate \
                     ({:.2}/epoch); the ingress queue is bounded only by shedding",
                    degrade.service_worst
                ),
                None,
                Some(arrival_floor),
                Some(degrade.service_worst),
            ));
        }
    }

    Ok(AnalysisReport {
        cost: bounds,
        staleness,
        degrade,
        findings,
    })
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;

    #[test]
    fn a_bare_spec_document_parses_as_a_bundle() {
        let json = r#"{
            "nodes": 3,
            "node_capacity": 20.0,
            "collector_capacity": 100.0,
            "per_message_cost": 2.0,
            "per_value_cost": 1.0,
            "tasks": [{"attrs": [0], "nodes": [0, 1, 2]}]
        }"#;
        let bundle = StaticBundle::from_json(json).unwrap();
        assert!(bundle.net.is_none());
        let report = analyze(&bundle).unwrap();
        assert!(report.is_clean());
        assert!(report.findings.is_empty());
        // Roundtrip through the bundle shape.
        let back = StaticBundle::from_json(&bundle.to_json().unwrap()).unwrap();
        assert_eq!(back.spec, bundle.spec);
    }

    #[test]
    fn report_outcome_feeds_the_sarif_renderer() {
        let bundle = corpus::cases()
            .into_iter()
            .find(|c| c.rule == "static-infeasible-capacity")
            .unwrap()
            .bundle;
        let report = analyze(&bundle).unwrap();
        let sarif = remo_audit::sarif::sarif_json(&report.outcome());
        assert!(sarif.contains("RA018"));
        assert!(sarif.contains("static-infeasible-capacity"));
    }
}
