//! Fixed-point analysis of the collector's backpressure loop.
//!
//! Under load the collector widens every agent's effective reporting
//! interval by `2^ℓ` (degrade level ℓ, capped at
//! `max_degrade_level`). Modeled as a fluid system:
//!
//! ```text
//! arrival(ℓ)   = Σ_pairs 1 / (period(attr) · 2^ℓ)      readings/epoch
//! service_worst = (B_c − C·#attrs) / a                  readings/epoch
//! ```
//!
//! `service_worst` charges the collector a full message overhead for
//! every demanded attribute each epoch (the worst shape: one root per
//! attribute) before spending the remainder on per-value intake. The
//! degrade loop stabilizes iff some level `ℓ ≤ max_degrade_level` has
//! `arrival(ℓ) ≤ service_worst` — the least such level is the fixed
//! point the runtime can settle at. If no level suffices, the queue
//! is bounded only by shedding: RA020 when the degrade ladder exists
//! but is too short, RA021 when it was disabled outright.

use crate::latency::period_of;
use remo_core::{AttrCatalog, CostModel, PairSet};
use remo_runtime::{NetConfig, NetSpec};

/// Outcome of the backpressure fixed-point search.
#[derive(Debug, Clone)]
pub struct DegradeAnalysis {
    /// Worst-case readings/epoch the collector budget can absorb.
    pub service_worst: f64,
    /// `arrival(ℓ)` for `ℓ = 0..=max_degrade_level`.
    pub arrival: Vec<f64>,
    /// Least degrade level whose arrival rate fits the worst-case
    /// service rate, if any.
    pub converges_at: Option<u32>,
    /// Upper bound on readings simultaneously outstanding (produced
    /// but not yet processed) at degrade level 0.
    pub in_flight_hi: u64,
    /// The collector is certified never to shed: the system keeps up
    /// without degrading at all and every outstanding reading fits the
    /// ingress queue.
    pub shed_free: bool,
    /// Sound ingress-depth bound in readings. Always at most the
    /// configured capacity (shedding enforces it); tightened to the
    /// in-flight bound when shed-freedom is certified.
    pub queue_bound: usize,
}

/// Runs the fluid fixed-point analysis.
pub fn degrade_analysis(
    pairs: &PairSet,
    catalog: &AttrCatalog,
    cost: CostModel,
    collector_budget: f64,
    net: &NetSpec,
    cfg: &NetConfig,
) -> DegradeAnalysis {
    let attrs = pairs.attr_universe().len();
    let service_worst = (collector_budget - cost.per_message() * attrs as f64)
        / cost.per_value().max(f64::MIN_POSITIVE);

    let base_rate: f64 = pairs
        .iter()
        .map(|(_, b)| 1.0 / period_of(catalog.get_or_default(b).frequency()) as f64)
        .sum();
    let arrival: Vec<f64> = (0..=cfg.max_degrade_level)
        .map(|l| base_rate / NetConfig::degrade_factor_at(l) as f64)
        .collect();
    let converges_at = arrival
        .iter()
        .position(|&r| r <= service_worst)
        .map(|i| i as u32);

    // A reading lives at most `retry_window + delay_max + 1` epochs
    // between production and intake (full retry schedule, then the
    // slowest delivery, then the intake epoch), per hop, over at most
    // `depth` hops; each pair has at most ⌈lifetime / period⌉ readings
    // younger than that at any instant.
    let depth = pairs.nodes().count().max(1) as u64;
    let lifetime = cfg
        .retry_window()
        .saturating_add(net.delay_max)
        .saturating_add(1)
        .saturating_mul(depth);
    let in_flight_hi: u64 = pairs
        .iter()
        .map(|(_, b)| {
            let period = period_of(catalog.get_or_default(b).frequency());
            lifetime.div_ceil(period)
        })
        .sum();

    let shed_free = converges_at == Some(0) && in_flight_hi <= cfg.ingress_capacity as u64;
    let queue_bound = if shed_free {
        (in_flight_hi as usize).min(cfg.ingress_capacity)
    } else {
        cfg.ingress_capacity
    };

    DegradeAnalysis {
        service_worst,
        arrival,
        converges_at,
        in_flight_hi,
        shed_free,
        queue_bound,
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use remo_core::{AttrId, NodeId};

    fn dense(nodes: u32, attrs: u32) -> PairSet {
        (0..nodes)
            .flat_map(|n| (0..attrs).map(move |a| (NodeId(n), AttrId(a))))
            .collect()
    }

    #[test]
    fn ample_budget_converges_immediately_and_certifies_shed_freedom() {
        let pairs = dense(4, 2);
        let a = degrade_analysis(
            &pairs,
            &AttrCatalog::new(),
            CostModel::default(),
            10_000.0,
            &NetSpec::default(),
            &NetConfig::default(),
        );
        assert_eq!(a.converges_at, Some(0));
        assert!(a.shed_free);
        assert!(a.queue_bound <= NetConfig::default().ingress_capacity);
    }

    #[test]
    fn degrade_ladder_rescues_a_starved_collector() {
        // 8 pairs/epoch at level 0; service ≈ (20 − 2·2)/1 = 16 … make
        // it tighter: budget 8 → service 4 < 8, level 1 halves the
        // arrival to 4 → converges at 1.
        let pairs = dense(4, 2);
        let cost = CostModel::new(1.0, 1.0).unwrap();
        let a = degrade_analysis(
            &pairs,
            &AttrCatalog::new(),
            cost,
            6.0,
            &NetSpec::default(),
            &NetConfig::default(),
        );
        assert_eq!(a.converges_at, Some(1));
        assert!(!a.shed_free);
        assert_eq!(a.queue_bound, NetConfig::default().ingress_capacity);
    }

    #[test]
    fn too_short_a_ladder_diverges() {
        let pairs = dense(64, 4); // 256 readings/epoch
        let cost = CostModel::new(1.0, 1.0).unwrap();
        let cfg = NetConfig {
            max_degrade_level: 2, // best factor 4 → 64/epoch
            ..NetConfig::default()
        };
        let a = degrade_analysis(
            &pairs,
            &AttrCatalog::new(),
            cost,
            16.0,
            &NetSpec::default(),
            &cfg,
        );
        assert_eq!(a.converges_at, None);
        assert_eq!(a.arrival.len(), 3);
    }
}
