//! Symbolic message-cost bounds over the `C + a·x` model (paper §2.3).
//!
//! The planner searches partition shapes; this module *abstracts over
//! them*. For every node (and the collector) it computes an interval
//! `[lo, hi]` such that any monitoring plan built for the pair set —
//! any attribute partition, any tree shape, any allocation scheme —
//! lands inside it, provided the plan collects the node's demanded
//! pairs:
//!
//! * `lo` is the usage of the *cheapest* shape: the node rides as a
//!   leaf in a single tree carrying all of its attributes in one
//!   piggybacked message (`C + a·Σ funnel(w)`).
//! * `hi` is the usage of the *worst* shape: the node relays for every
//!   tree its attributes can pull it into, paying receive cost for
//!   every other participant's message and forwarding every value in
//!   the forest (each value is charged at most twice at one node:
//!   once received, once sent).
//!
//! Both ends use the exact interval transfer functions from
//! [`remo_core::Interval`]; because the cost model is affine and every
//! funnel is monotone, endpoint evaluation is exact — there is no
//! widening loss.

use remo_core::{AttrCatalog, AttrId, CostModel, Interval, NodeId, PairSet};
use std::collections::BTreeMap;

/// Planner-flag context the bounds are computed under (the same two
/// switches [`remo_core::evaluate::EvalContext`] carries).
#[derive(Debug, Clone, Copy, Default)]
pub struct CostFlags {
    /// Funnel functions applied at relays (paper §6.1).
    pub aggregation_aware: bool,
    /// Values weighted by update frequency (paper §6.3).
    pub frequency_aware: bool,
}

/// Plan-shape-independent usage bounds.
#[derive(Debug, Clone)]
pub struct CostBounds {
    /// Per-node usage interval, for every node demanded in the pair
    /// set. Sound for any plan that collects all of the node's pairs.
    pub per_node: BTreeMap<NodeId, Interval>,
    /// Collector intake interval. The lower end assumes every demanded
    /// pair is collected; the upper end holds unconditionally.
    pub collector: Interval,
    /// Number of distinct participant nodes.
    pub participants: usize,
    /// Number of distinct demanded attributes.
    pub attrs: usize,
}

impl CostBounds {
    /// The bound interval for `node` (empty-demand nodes get `[0,0]`).
    pub fn node(&self, node: NodeId) -> Interval {
        self.per_node.get(&node).copied().unwrap_or(Interval::ZERO)
    }
}

/// Per-value weight interval for one attribute.
///
/// Frequency-aware plans charge exactly the update frequency; unaware
/// plans charge full weight while the runtime still *sends* on the
/// frequency-derived period, so the long-run per-epoch weight floats
/// in `[freq, 1]`.
fn weight(catalog: &AttrCatalog, attr: AttrId, flags: CostFlags) -> Interval {
    let freq = catalog.get_or_default(attr).frequency();
    if flags.frequency_aware {
        Interval::point(freq)
    } else {
        Interval::new(freq, 1.0)
    }
}

/// Funnel transfer for one attribute's value interval: applied only
/// when planning is aggregation-aware, mirroring how
/// `make_request` builds the funnel table.
fn funnel(catalog: &AttrCatalog, attr: AttrId, values: Interval, flags: CostFlags) -> Interval {
    let agg = catalog.get_or_default(attr).aggregation();
    if flags.aggregation_aware && !agg.is_identity() {
        agg.funnel_interval(values)
    } else {
        values
    }
}

/// Computes usage bounds for every node and the collector.
///
/// Soundness argument, end by end:
///
/// * Node `lo`: collecting all of `n`'s pairs requires at least one
///   message out of `n` carrying (a funneled image of) each owned
///   value — cost `C + a·Σ funnel(w_lo)`. Every real plan pays at
///   least this.
/// * Node `hi`: trees are attribute-disjoint, so `n` participates in
///   at most `|A_n|` trees, sending one message in each and receiving
///   at most `P−1` messages per tree (`P` = total participants). Each
///   attribute's total weight `W_b` crosses `n` at most twice
///   (received from disjoint subtrees, then forwarded — funneled —
///   upstream).
/// * Collector `lo`: at least one root message arrives; per attribute
///   the root's outgoing is at least the globally-funneled demand
///   (hop-by-hop funnel application never reduces below
///   `funnel(W_b)` for the monotone, superadditive-under-min funnels
///   REMO uses).
/// * Collector `hi`: at most one root message per demanded attribute
///   (a partition has at most `#attrs` non-empty sets), each carrying
///   at most the (funneled) full demand of its attributes.
pub fn cost_bounds(
    pairs: &PairSet,
    catalog: &AttrCatalog,
    cost: CostModel,
    flags: CostFlags,
) -> CostBounds {
    let participants = pairs.nodes().count();
    let attr_ids: Vec<AttrId> = pairs.attr_universe().into_iter().collect();

    // Total demand weight per attribute, and its funneled image.
    let mut demand: BTreeMap<AttrId, Interval> = BTreeMap::new();
    let mut funneled: BTreeMap<AttrId, Interval> = BTreeMap::new();
    for &b in &attr_ids {
        let owners = pairs.nodes_of(b).map_or(0, |s| s.len());
        let w = weight(catalog, b, flags);
        let total = w.scale(owners as f64);
        demand.insert(b, total);
        funneled.insert(b, funnel(catalog, b, total, flags));
    }

    // Forest-wide value flow through one relay: received (≤ raw
    // demand) plus sent (≤ funneled demand), per attribute.
    let flow_hi: f64 = attr_ids
        .iter()
        .map(|b| demand[b].hi() + funneled[b].hi())
        .sum();

    let mut per_node = BTreeMap::new();
    for n in pairs.nodes() {
        let owned = pairs.attrs_of(n).map_or(0, |s| s.len());
        // Best shape: leaf, one piggybacked message.
        let own_values: Interval = pairs
            .attrs_of(n)
            .into_iter()
            .flatten()
            .map(|&b| funnel(catalog, b, weight(catalog, b, flags), flags))
            .fold(Interval::ZERO, |acc, v| acc.add(v));
        let lo = cost.message_cost_interval(own_values).lo();
        // Worst shape: relay in |A_n| trees, each with every other
        // participant underneath.
        let messages_hi = (owned * participants) as f64;
        let hi = cost.per_message() * messages_hi + cost.per_value() * flow_hi;
        per_node.insert(n, Interval::new(lo, hi.max(lo)));
    }

    let collector = if attr_ids.is_empty() {
        Interval::ZERO
    } else {
        let values_lo: f64 = attr_ids.iter().map(|b| funneled[b].lo()).sum();
        let values_hi: f64 = attr_ids.iter().map(|b| funneled[b].hi()).sum();
        let lo = cost.per_message() + cost.per_value() * values_lo;
        let hi = cost.per_message() * attr_ids.len() as f64 + cost.per_value() * values_hi;
        Interval::new(lo, hi.max(lo))
    };

    CostBounds {
        per_node,
        collector,
        participants,
        attrs: attr_ids.len(),
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use remo_core::evaluate::{build_forest, EvalContext};
    use remo_core::{AttrInfo, CapacityMap, Partition};

    fn dense(nodes: u32, attrs: u32) -> PairSet {
        (0..nodes)
            .flat_map(|n| (0..attrs).map(move |a| (NodeId(n), AttrId(a))))
            .collect()
    }

    /// Every concrete partition shape must land inside the interval.
    #[test]
    fn concrete_forests_land_inside_the_bounds() {
        let pairs = dense(6, 3);
        let catalog = AttrCatalog::new();
        let cost = CostModel::default();
        // Generous capacity so nothing is excluded (lo assumes full
        // collection).
        let caps = CapacityMap::uniform(6, 1e6, 1e7).unwrap();
        let bounds = cost_bounds(&pairs, &catalog, cost, CostFlags::default());

        let ctx = EvalContext::basic(&pairs, &caps, cost, &catalog);
        for partition in [
            Partition::one_set(pairs.attr_universe()),
            Partition::singleton(pairs.attr_universe()),
        ] {
            let plan = build_forest(&partition, &ctx);
            assert_eq!(plan.collected_pairs(), 18, "nothing excluded");
            for (n, u) in plan.node_usage() {
                let iv = bounds.node(n);
                assert!(
                    iv.contains(u),
                    "node {n} usage {u} outside [{}, {}]",
                    iv.lo(),
                    iv.hi()
                );
            }
            assert!(bounds.collector.contains(plan.collector_usage()));
        }
    }

    #[test]
    fn aggregation_awareness_tightens_the_collector_bound() {
        let mut catalog = AttrCatalog::new();
        let m = catalog.register(AttrInfo::new("m").with_aggregation(remo_core::Aggregation::Max));
        let pairs: PairSet = (0..10).map(|n| (NodeId(n), m)).collect();
        let cost = CostModel::default();
        let naive = cost_bounds(&pairs, &catalog, cost, CostFlags::default());
        let aware = cost_bounds(
            &pairs,
            &catalog,
            cost,
            CostFlags {
                aggregation_aware: true,
                ..CostFlags::default()
            },
        );
        assert!(aware.collector.hi() < naive.collector.hi());
        // A max funnel collapses ten values to one at the collector.
        assert!((aware.collector.hi() - cost.message_cost(1.0)).abs() < 1e-9);
    }

    #[test]
    fn frequency_awareness_pins_the_weight() {
        let mut catalog = AttrCatalog::new();
        let slow = catalog.register(AttrInfo::new("slow").with_frequency(0.25).unwrap());
        let pairs: PairSet = (0..4).map(|n| (NodeId(n), slow)).collect();
        let cost = CostModel::default();
        let unaware = cost_bounds(&pairs, &catalog, cost, CostFlags::default());
        let aware = cost_bounds(
            &pairs,
            &catalog,
            cost,
            CostFlags {
                frequency_aware: true,
                ..CostFlags::default()
            },
        );
        // Unaware: weight floats in [0.25, 1]; aware: pinned at 0.25.
        assert!(aware.collector.width() < unaware.collector.width());
        assert!((aware.collector.lo() - unaware.collector.lo()).abs() < 1e-9);
    }

    #[test]
    fn empty_pairs_give_zero_bounds() {
        let bounds = cost_bounds(
            &PairSet::new(),
            &AttrCatalog::new(),
            CostModel::default(),
            CostFlags::default(),
        );
        assert!(bounds.per_node.is_empty());
        assert_eq!(bounds.collector, Interval::ZERO);
    }
}
