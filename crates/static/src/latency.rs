//! Closed-form worst-case staleness under the ARQ transport.
//!
//! The lossy runtime (PR 6) retransmits unacked frames on an
//! exponential backoff and the collector widens reporting intervals
//! under backpressure. Both mechanisms have closed forms exported by
//! [`remo_runtime::NetConfig`]; this module composes them into a
//! per-attribute worst-case snapshot-age bound:
//!
//! ```text
//! staleness(attr) ≤ period(attr) · 2^max_degrade_level      (production gap)
//!                 + depth_max · per_hop                      (forwarding)
//!                 + 1                                        (collector records at epoch+1)
//!
//! per_hop = last_attempt_offset + delay_max + 2
//! ```
//!
//! `last_attempt_offset` is the geometric backoff series
//! `base_rto·(2^(A−1)−1)`; `delay_max` the network's delivery delay
//! cap; the `+2` covers the send epoch itself and ack turnaround. The
//! bound is *conditional*: it holds when the degrade analysis
//! certifies the collector keeps up (no shedding, no unbounded queue
//! wait) and no permanent partition window or certain-loss link cuts a
//! demanded node off — those conditions are what [`crate::analyze`]
//! turns into RA019 findings when violated.

use remo_core::{AttrCatalog, AttrId, NodeId, PairSet};
use remo_runtime::{NetConfig, NetSpec};
use std::collections::{BTreeMap, BTreeSet};

/// The reporting period the runtime derives from an update frequency
/// (mirrors `plan_assignments`: `round(1/f)`, at least 1).
pub fn period_of(freq: f64) -> u64 {
    let p = (1.0 / freq).round();
    if p.is_finite() && p >= 1.0 {
        p as u64
    } else {
        1
    }
}

/// Worst-case end-to-end staleness bounds.
#[derive(Debug, Clone)]
pub struct StalenessBounds {
    /// Epochs one tree hop can hold a reading: full retry schedule,
    /// maximum delivery delay, send + ack turnaround.
    pub per_hop: u64,
    /// Maximum forwarding depth (root has depth 1; a path can thread
    /// every node).
    pub depth_max: u64,
    /// Worst-case production gap multiplier, `2^max_degrade_level`.
    pub max_degrade_factor: u64,
    /// Per-attribute snapshot-age bound (epochs).
    pub per_attr: BTreeMap<AttrId, u64>,
    /// Probability a frame survives its full retry budget on the
    /// default link.
    pub delivery_probability: f64,
    /// Demanded nodes severed forever: members of a permanent
    /// partition window, or behind a certain-loss network that never
    /// heals. Their pairs can never reach the collector.
    pub unreachable: BTreeSet<NodeId>,
}

impl StalenessBounds {
    /// The loosest per-attribute bound, if any attribute is demanded.
    pub fn worst(&self) -> Option<u64> {
        self.per_attr.values().copied().max()
    }
}

/// Computes the closed-form staleness bounds for `pairs` under `net`
/// and `cfg`.
pub fn staleness_bounds(
    pairs: &PairSet,
    catalog: &AttrCatalog,
    net: &NetSpec,
    cfg: &NetConfig,
) -> StalenessBounds {
    let per_hop = cfg
        .last_attempt_offset()
        .saturating_add(net.delay_max)
        .saturating_add(2);
    let depth_max = pairs.nodes().count().max(1) as u64;
    let factor = cfg.max_degrade_factor();

    let mut per_attr = BTreeMap::new();
    for b in pairs.attrs() {
        let period = period_of(catalog.get_or_default(b).frequency());
        let bound = period
            .saturating_mul(factor)
            .saturating_add(depth_max.saturating_mul(per_hop))
            .saturating_add(1);
        per_attr.insert(b, bound);
    }

    // Permanently severed nodes: a partition window with no end epoch
    // cuts its members off from the collector (always outside), and a
    // default drop probability of 1.0 with no healing epoch kills
    // every retransmission forever.
    let mut unreachable = BTreeSet::new();
    let certain_loss = net.drop >= 1.0 && net.active_until.is_none();
    for n in pairs.nodes() {
        if certain_loss {
            unreachable.insert(n);
            continue;
        }
        if net
            .partitions
            .iter()
            .any(|p| p.until_epoch.is_none() && p.members.contains(&n))
        {
            unreachable.insert(n);
        }
    }

    StalenessBounds {
        per_hop,
        depth_max,
        max_degrade_factor: factor,
        per_attr,
        delivery_probability: cfg.delivery_probability(net.drop),
        unreachable,
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use remo_core::AttrInfo;
    use remo_runtime::PartitionWindow;

    fn pairs(n: u32) -> PairSet {
        (0..n).map(|i| (NodeId(i), AttrId(0))).collect()
    }

    #[test]
    fn closed_form_matches_the_arq_schedule() {
        let net = NetSpec {
            delay_max: 3,
            ..NetSpec::default()
        };
        let cfg = NetConfig::default(); // base_rto 2, 5 attempts, level 3
        let b = staleness_bounds(&pairs(4), &AttrCatalog::new(), &net, &cfg);
        // last_attempt_offset = 2·(1+2+4+8) = 30; per_hop = 30+3+2.
        assert_eq!(b.per_hop, 35);
        assert_eq!(b.depth_max, 4);
        assert_eq!(b.max_degrade_factor, 8);
        // period 1 · 8 + 4·35 + 1
        assert_eq!(b.per_attr[&AttrId(0)], 149);
        assert!(b.unreachable.is_empty());
    }

    #[test]
    fn slow_attrs_loosen_the_bound_by_their_period() {
        let mut catalog = AttrCatalog::new();
        let slow = catalog.register(AttrInfo::new("slow").with_frequency(0.25).unwrap());
        let fast = catalog.register(AttrInfo::new("fast"));
        let mut ps = PairSet::new();
        ps.insert(NodeId(0), slow);
        ps.insert(NodeId(0), fast);
        let b = staleness_bounds(&ps, &catalog, &NetSpec::default(), &NetConfig::default());
        assert_eq!(b.per_attr[&slow] - b.per_attr[&fast], 3 * 8);
    }

    #[test]
    fn permanent_partitions_and_certain_loss_mark_nodes_unreachable() {
        let mut net = NetSpec::default();
        net.partitions.push(PartitionWindow {
            name: "forever".into(),
            members: [NodeId(1)].into_iter().collect(),
            from_epoch: 5,
            until_epoch: None,
        });
        let b = staleness_bounds(&pairs(3), &AttrCatalog::new(), &net, &NetConfig::default());
        assert_eq!(
            b.unreachable.iter().copied().collect::<Vec<_>>(),
            [NodeId(1)]
        );

        // A bounded window is fine.
        net.partitions[0].until_epoch = Some(9);
        let b = staleness_bounds(&pairs(3), &AttrCatalog::new(), &net, &NetConfig::default());
        assert!(b.unreachable.is_empty());

        // Certain loss that never heals severs everyone.
        let dead = NetSpec {
            drop: 1.0,
            ..NetSpec::default()
        };
        let b = staleness_bounds(&pairs(3), &AttrCatalog::new(), &dead, &NetConfig::default());
        assert_eq!(b.unreachable.len(), 3);
        assert_eq!(b.delivery_probability, 0.0);

        // Certain loss that heals does not.
        let healing = NetSpec {
            drop: 1.0,
            active_until: Some(20),
            ..NetSpec::default()
        };
        let b = staleness_bounds(
            &pairs(3),
            &AttrCatalog::new(),
            &healing,
            &NetConfig::default(),
        );
        assert!(b.unreachable.is_empty());
    }
}
