//! `remo-static` — pre-flight analysis of a deployment bundle:
//! capacity feasibility, worst-case staleness, and backpressure
//! convergence, from the declarative inputs alone.
//!
//! ```text
//! remo-static analyze <bundle.json> [--sarif <out.json>]
//! remo-static --list-rules
//! remo-static --example [<rule>]
//! ```
//!
//! Exit status: 0 when no finding fired, 1 when at least one did,
//! 2 on usage or I/O problems.

use remo_static::{analyze, corpus, StaticBundle};
use std::process::ExitCode;

const USAGE: &str = "\
usage: remo-static analyze <bundle.json> [options]
       remo-static --list-rules
       remo-static --example [<rule>]

The bundle is a JSON document {spec, net?, net_config?,
staleness_slo?}; a bare deployment spec is accepted too.

options:
  --sarif <out.json>  also write a SARIF-style report
  --list-rules        print the static rule registry (RA018-RA021)
                      and exit
  --example [<rule>]  print a known-bad bundle from the corpus
                      (default: the first case) and exit
";

/// The static analyzer's slice of the shared rule registry.
const STATIC_CODES: [&str; 4] = ["RA018", "RA019", "RA020", "RA021"];

fn list_rules() {
    println!(
        "{:<7} {:<30} {:<8} {:<12} summary",
        "code", "rule", "level", "paper"
    );
    for r in remo_audit::RULES {
        if STATIC_CODES.contains(&r.code) {
            println!(
                "{:<7} {:<30} {:<8} {:<12} {}",
                r.code,
                r.name,
                r.severity.to_string(),
                r.paper_section,
                r.summary
            );
        }
    }
}

fn usage_error(message: &str) -> ExitCode {
    eprintln!("remo-static: {message}");
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

fn print_example(which: Option<&str>) -> ExitCode {
    let cases = corpus::cases();
    let case = match which {
        None => &cases[0],
        Some(name) => {
            let Some(case) = cases
                .iter()
                .find(|c| c.name == name || c.rule == name || c.code == name)
            else {
                eprintln!("remo-static: no corpus case named `{name}`");
                return ExitCode::from(2);
            };
            case
        }
    };
    match case.bundle.to_json() {
        Ok(text) => {
            println!("{text}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("remo-static: cannot render example: {e}");
            ExitCode::from(2)
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    if args.iter().any(|a| a == "--list-rules") {
        list_rules();
        return ExitCode::SUCCESS;
    }
    if let Some(i) = args.iter().position(|a| a == "--example") {
        return print_example(args.get(i + 1).map(String::as_str));
    }

    let mut it = args.into_iter();
    match it.next().as_deref() {
        Some("analyze") => {}
        Some(other) => return usage_error(&format!("unknown command `{other}`")),
        None => return usage_error("no command given"),
    }

    let mut bundle_path: Option<String> = None;
    let mut sarif_path: Option<String> = None;
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--sarif" => match it.next() {
                Some(path) => sarif_path = Some(path),
                None => return usage_error("--sarif needs a path"),
            },
            other if other.starts_with("--") => {
                return usage_error(&format!("unknown option `{other}`"));
            }
            path => {
                if bundle_path.replace(path.to_string()).is_some() {
                    return usage_error("more than one bundle path given");
                }
            }
        }
    }

    let Some(path) = bundle_path else {
        return usage_error("no bundle path given");
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("remo-static: cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let bundle = match StaticBundle::from_json(&text) {
        Ok(bundle) => bundle,
        Err(e) => {
            eprintln!("remo-static: {path} is not a valid bundle: {e}");
            return ExitCode::from(2);
        }
    };
    let report = match analyze(&bundle) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("remo-static: {path}: {e}");
            return ExitCode::from(2);
        }
    };

    if let Some(out) = sarif_path {
        if let Err(e) = std::fs::write(&out, remo_audit::sarif::sarif_json(&report.outcome())) {
            eprintln!("remo-static: cannot write {out}: {e}");
            return ExitCode::from(2);
        }
    }

    print!("{}", report.render());
    if report.findings.is_empty() {
        println!("{path}: clean");
        ExitCode::SUCCESS
    } else {
        println!(
            "{path}: {} finding(s), {} error(s)",
            report.findings.len(),
            report
                .findings
                .iter()
                .filter(|f| f.severity == remo_audit::Severity::Error)
                .count()
        );
        ExitCode::FAILURE
    }
}
