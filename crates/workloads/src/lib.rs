//! # remo-workloads
//!
//! Synthetic workloads for REMO experiments:
//!
//! - [`taskgen`] — the paper's §7 synthetic monitoring tasks
//!   (small-scale vs. large-scale);
//! - [`appmodel`] — a System-S-like application (200 nodes, 30–50
//!   observable attributes each) standing in for IBM's YieldMonitor
//!   deployment;
//! - [`dataflow`] — an explicit operator-DAG stream application with
//!   dashboard and bottleneck-diagnosis task generation;
//! - [`churn`] — the runtime-adaptation churn generator (5% of nodes
//!   swap 50% of their attributes per batch);
//! - [`scenario`] — canned experiment environments shared by figure
//!   harnesses, tests, and examples.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod appmodel;
pub mod churn;
pub mod dataflow;
pub mod scenario;
pub mod taskchurn;
pub mod taskgen;

pub use appmodel::{AppModel, AppModelConfig};
pub use churn::{churn_pairs, churn_schedule, ChurnConfig};
pub use dataflow::{DataflowApp, DataflowConfig, Operator, OperatorId, OperatorKind};
pub use scenario::{Scenario, ScenarioConfig};
pub use taskchurn::{churn_batch, churn_step, TaskChurnConfig};
pub use taskgen::TaskGenConfig;
