//! Task-level churn: add / remove / modify events against a live
//! [`TaskManager`].
//!
//! [`churn`](crate::churn) perturbs the *pair set* directly (the §7
//! experiment shorthand). This module models churn the way the paper
//! describes it happening (§1, §4): short-lived ad hoc tasks are
//! submitted and withdrawn, and debugging tasks have their attribute
//! sets modified in place.

use crate::taskgen::TaskGenConfig;
use rand::rngs::SmallRng;
use rand::seq::IteratorRandom;
use rand::Rng;
use remo_core::{AttrId, MonitoringTask, TaskChange, TaskManager};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Relative weights of the three churn event kinds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TaskChurnConfig {
    /// Weight of submitting a fresh (often ad hoc) task.
    pub add_weight: f64,
    /// Weight of withdrawing an existing task.
    pub remove_weight: f64,
    /// Weight of modifying an existing task's attribute set (the
    /// paper's debugging scenario: swap attributes to find the
    /// informative one).
    pub modify_weight: f64,
    /// Generator for fresh tasks.
    pub gen: TaskGenConfig,
    /// Fraction of a modified task's attributes replaced.
    pub modify_fraction: f64,
}

impl TaskChurnConfig {
    /// A balanced default over the given universe.
    pub fn balanced(nodes: usize, attrs: usize) -> Self {
        TaskChurnConfig {
            add_weight: 1.0,
            remove_weight: 1.0,
            modify_weight: 2.0,
            gen: TaskGenConfig::small_scale(nodes, attrs),
            modify_fraction: 0.5,
        }
    }
}

/// Draws one churn event against the current task set and applies it.
/// Returns the applied change, or `None` when nothing was applicable
/// (e.g. a remove drawn against an empty manager).
pub fn churn_step(
    tm: &mut TaskManager,
    cfg: &TaskChurnConfig,
    rng: &mut SmallRng,
) -> Option<TaskChange> {
    let total = cfg.add_weight + cfg.remove_weight + cfg.modify_weight;
    if total <= 0.0 {
        return None;
    }
    let roll = rng.gen_range(0.0..total);
    let change = if roll < cfg.add_weight || tm.is_empty() {
        let task = cfg.gen.generate_one(tm.next_id(), rng);
        TaskChange::Add(task)
    } else if roll < cfg.add_weight + cfg.remove_weight {
        let victim = tm.iter().map(MonitoringTask::id).choose(rng)?;
        TaskChange::Remove(victim)
    } else {
        let victim = tm.iter().choose(rng)?.clone();
        let mut attrs: BTreeSet<AttrId> = victim.attrs().clone();
        let swap = ((attrs.len() as f64 * cfg.modify_fraction).round() as usize).max(1);
        let removed: Vec<AttrId> = attrs.iter().copied().choose_multiple(rng, swap);
        for a in &removed {
            attrs.remove(a);
        }
        for _ in 0..swap {
            for _ in 0..64 {
                let cand = AttrId(rng.gen_range(0..cfg.gen.attrs.max(1)) as u32);
                if attrs.insert(cand) {
                    break;
                }
            }
        }
        if attrs.is_empty() {
            return None;
        }
        TaskChange::Modify {
            id: victim.id(),
            attrs,
            nodes: victim.nodes().clone(),
        }
    };
    tm.apply(change.clone()).ok()?;
    Some(change)
}

/// Applies `events` churn steps, returning the changes that took
/// effect.
pub fn churn_batch(
    tm: &mut TaskManager,
    cfg: &TaskChurnConfig,
    events: usize,
    rng: &mut SmallRng,
) -> Vec<TaskChange> {
    (0..events)
        .filter_map(|_| churn_step(tm, cfg, rng))
        .collect()
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use rand::SeedableRng;
    use remo_core::TaskId;

    fn seeded_manager(n: usize) -> (TaskManager, SmallRng) {
        let mut rng = SmallRng::seed_from_u64(77);
        let gen = TaskGenConfig::small_scale(20, 15);
        let mut tm = TaskManager::new();
        for t in gen.generate(n, TaskId(0), &mut rng) {
            tm.add(t).unwrap();
        }
        (tm, rng)
    }

    #[test]
    fn churn_keeps_manager_consistent() {
        let (mut tm, mut rng) = seeded_manager(10);
        let cfg = TaskChurnConfig::balanced(20, 15);
        let changes = churn_batch(&mut tm, &cfg, 50, &mut rng);
        assert!(!changes.is_empty());
        // Every surviving task is non-empty and pairs dedup cleanly.
        for t in tm.iter() {
            assert!(!t.is_empty());
        }
        let _ = tm.pairs();
    }

    #[test]
    fn adds_only_grow_the_set() {
        let (mut tm, mut rng) = seeded_manager(3);
        let cfg = TaskChurnConfig {
            add_weight: 1.0,
            remove_weight: 0.0,
            modify_weight: 0.0,
            ..TaskChurnConfig::balanced(20, 15)
        };
        churn_batch(&mut tm, &cfg, 5, &mut rng);
        assert_eq!(tm.len(), 8);
    }

    #[test]
    fn removes_only_shrink_until_empty_then_add() {
        let (mut tm, mut rng) = seeded_manager(3);
        let cfg = TaskChurnConfig {
            add_weight: 0.0,
            remove_weight: 1.0,
            modify_weight: 0.0,
            ..TaskChurnConfig::balanced(20, 15)
        };
        churn_batch(&mut tm, &cfg, 3, &mut rng);
        assert_eq!(tm.len(), 0);
        // Empty manager: a remove-only config still degrades to adds
        // (there is nothing to remove), keeping the stream alive.
        let change = churn_step(&mut tm, &cfg, &mut rng);
        assert!(matches!(change, Some(TaskChange::Add(_))));
    }

    #[test]
    fn modify_preserves_node_set_and_task_count() {
        let (mut tm, mut rng) = seeded_manager(5);
        let before: Vec<_> = tm.iter().map(|t| (t.id(), t.nodes().clone())).collect();
        let cfg = TaskChurnConfig {
            add_weight: 0.0,
            remove_weight: 0.0,
            modify_weight: 1.0,
            ..TaskChurnConfig::balanced(20, 15)
        };
        churn_batch(&mut tm, &cfg, 10, &mut rng);
        assert_eq!(tm.len(), 5);
        for (id, nodes) in before {
            assert_eq!(tm.get(id).unwrap().nodes(), &nodes, "nodes must not change");
        }
    }

    #[test]
    fn churn_stream_is_deterministic() {
        let run = || {
            let (mut tm, mut rng) = seeded_manager(6);
            let cfg = TaskChurnConfig::balanced(20, 15);
            churn_batch(&mut tm, &cfg, 30, &mut rng);
            tm.pairs()
        };
        assert_eq!(run(), run());
    }
}
