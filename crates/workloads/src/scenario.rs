//! Canned experiment scenarios shared by the figure harnesses, tests,
//! and examples.
//!
//! The paper keeps "relatively heavy monitoring workloads" so coverage
//! stays below 100% and schemes become distinguishable (§7). These
//! helpers pick capacities with that property.

use crate::taskgen::TaskGenConfig;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use remo_core::{CapacityMap, CostModel, MonitoringTask, PairSet, TaskId};
use serde::{Deserialize, Serialize};

/// A ready-to-run experiment environment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Scenario {
    /// Node and collector budgets.
    pub caps: CapacityMap,
    /// Message cost model.
    pub cost: CostModel,
    /// The deduplicated monitoring demand.
    pub pairs: PairSet,
    /// The tasks the demand came from.
    pub tasks: Vec<MonitoringTask>,
}

/// Parameters for [`Scenario::synthetic`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScenarioConfig {
    /// System size.
    pub nodes: usize,
    /// Attribute-universe size.
    pub attrs: usize,
    /// Number of monitoring tasks.
    pub tasks: usize,
    /// Per-node budget in cost units per epoch.
    pub node_budget: f64,
    /// Collector budget.
    pub collector_budget: f64,
    /// Per-message overhead `C` (with `a = 1`).
    pub c_over_a: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            nodes: 50,
            attrs: 40,
            tasks: 30,
            node_budget: 30.0,
            collector_budget: 400.0,
            c_over_a: 2.0,
            seed: 17,
        }
    }
}

impl Scenario {
    /// Builds a synthetic scenario with small-scale tasks.
    pub fn synthetic(cfg: &ScenarioConfig) -> Self {
        Self::with_taskgen(cfg, &TaskGenConfig::small_scale(cfg.nodes, cfg.attrs))
    }

    /// Builds a synthetic scenario with an explicit task generator.
    pub fn with_taskgen(cfg: &ScenarioConfig, gen: &TaskGenConfig) -> Self {
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let tasks = gen.generate(cfg.tasks, TaskId(0), &mut rng);
        let pairs: PairSet = tasks.iter().flat_map(MonitoringTask::pairs).collect();
        let caps = CapacityMap::uniform(cfg.nodes, cfg.node_budget, cfg.collector_budget)
            .unwrap_or_else(|e| panic!("scenario budgets must be non-negative: {e}"));
        let cost = CostModel::from_ratio(cfg.c_over_a)
            .unwrap_or_else(|e| panic!("scenario C/a ratio must be positive: {e}"));
        Scenario {
            caps,
            cost,
            pairs,
            tasks,
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    #[test]
    fn synthetic_scenario_is_consistent() {
        let s = Scenario::synthetic(&ScenarioConfig::default());
        assert_eq!(s.caps.len(), 50);
        assert!(!s.pairs.is_empty());
        assert_eq!(s.tasks.len(), 30);
        // Every pair's node has a capacity entry.
        for (n, _) in s.pairs.iter() {
            assert!(s.caps.node(n).is_some());
        }
    }

    #[test]
    fn scenario_is_deterministic() {
        let a = Scenario::synthetic(&ScenarioConfig::default());
        let b = Scenario::synthetic(&ScenarioConfig::default());
        assert_eq!(a.pairs, b.pairs);
    }

    #[test]
    fn heavy_load_keeps_coverage_below_one() {
        use remo_core::planner::Planner;
        let s = Scenario::synthetic(&ScenarioConfig {
            nodes: 30,
            attrs: 40,
            tasks: 60,
            node_budget: 12.0,
            collector_budget: 120.0,
            ..ScenarioConfig::default()
        });
        let plan = Planner::default().plan(&s.pairs, &s.caps, s.cost);
        assert!(plan.coverage() < 1.0, "workload should saturate the system");
        assert!(plan.coverage() > 0.0);
    }
}
