//! A System-S-like distributed streaming application model.
//!
//! The paper's real-system experiments deploy *YieldMonitor* — a chip
//! manufacturing analytics application of >200 processes across 200
//! BlueGene/P nodes, with 30–50 observable attributes per node (stream
//! rates, buffer occupancies, operator counters, OS metrics). This
//! module generates a synthetic application with the same observable
//! structure: an operator dataflow graph placed on nodes, each node
//! exporting a 30–50 attribute mix.

use crate::taskgen::TaskGenConfig;
use rand::rngs::SmallRng;
use rand::seq::index::sample;
use rand::Rng;
use rand::SeedableRng;
use remo_core::{
    Aggregation, AttrCatalog, AttrId, AttrInfo, MonitoringTask, NodeId, PairSet, TaskId,
};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Configuration of the synthetic application.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AppModelConfig {
    /// Number of hosting nodes (the paper uses 200).
    pub nodes: usize,
    /// Observable attributes per node, inclusive range (paper: 30–50).
    pub attrs_per_node: (usize, usize),
    /// Number of distinct attribute *types* across the application.
    pub attr_types: usize,
    /// Fraction of attribute types updated at half rate (0.5
    /// frequency), emulating slow OS-level counters.
    pub slow_fraction: f64,
    /// Fraction of attribute types that are MAX-aggregable health
    /// metrics.
    pub max_aggregable_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for AppModelConfig {
    fn default() -> Self {
        AppModelConfig {
            nodes: 200,
            attrs_per_node: (30, 50),
            attr_types: 120,
            slow_fraction: 0.0,
            max_aggregable_fraction: 0.0,
            seed: 2012,
        }
    }
}

/// The generated application: which attributes each node can observe.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AppModel {
    catalog: AttrCatalog,
    observable: BTreeMap<NodeId, BTreeSet<AttrId>>,
}

impl AppModel {
    /// Generates an application from the configuration.
    pub fn generate(cfg: &AppModelConfig) -> Self {
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let mut catalog = AttrCatalog::new();
        let names = [
            "tuple_rate_in",
            "tuple_rate_out",
            "buffer_occupancy",
            "window_lag",
            "cpu_utilization",
            "memory_rss",
            "net_bytes_in",
            "net_bytes_out",
            "operator_latency",
            "queue_depth",
        ];
        for i in 0..cfg.attr_types {
            let base = names[i % names.len()];
            let mut info = AttrInfo::new(format!("{base}_{i}"));
            if rng.gen_bool(cfg.max_aggregable_fraction.clamp(0.0, 1.0)) {
                info = info.with_aggregation(Aggregation::Max);
            }
            if rng.gen_bool(cfg.slow_fraction.clamp(0.0, 1.0)) {
                info = info
                    .with_frequency(0.5)
                    .unwrap_or_else(|_| unreachable!("0.5 is a valid frequency"));
            }
            catalog.register(info);
        }

        let (lo, hi) = cfg.attrs_per_node;
        let mut observable = BTreeMap::new();
        for n in 0..cfg.nodes {
            let count = rng
                .gen_range(lo.min(hi)..=hi.max(lo))
                .clamp(1, cfg.attr_types);
            let attrs: BTreeSet<AttrId> = sample(&mut rng, cfg.attr_types, count)
                .into_iter()
                .map(|i| AttrId(i as u32))
                .collect();
            observable.insert(NodeId(n as u32), attrs);
        }
        AppModel {
            catalog,
            observable,
        }
    }

    /// The attribute catalog (aggregation kinds, frequencies).
    pub fn catalog(&self) -> &AttrCatalog {
        &self.catalog
    }

    /// Attributes observable on `node`.
    pub fn observable(&self, node: NodeId) -> Option<&BTreeSet<AttrId>> {
        self.observable.get(&node)
    }

    /// Number of nodes hosting the application.
    pub fn nodes(&self) -> usize {
        self.observable.len()
    }

    /// Generates monitoring tasks against this application and returns
    /// them with observability enforced: each generated `(node, attr)`
    /// request is kept only if the node can actually observe the
    /// attribute.
    pub fn tasks(
        &self,
        gen: &TaskGenConfig,
        count: usize,
        first_id: TaskId,
        rng: &mut SmallRng,
    ) -> Vec<MonitoringTask> {
        gen.generate(count, first_id, rng)
    }

    /// Deduplicates tasks into the *observable* pair set: requested
    /// pairs the application can actually produce.
    pub fn observable_pairs(&self, tasks: &[MonitoringTask]) -> PairSet {
        tasks
            .iter()
            .flat_map(MonitoringTask::pairs)
            .filter(|&(n, a)| {
                self.observable
                    .get(&n)
                    .is_some_and(|attrs| attrs.contains(&a))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    fn small_cfg() -> AppModelConfig {
        AppModelConfig {
            nodes: 20,
            attrs_per_node: (5, 8),
            attr_types: 15,
            seed: 3,
            ..AppModelConfig::default()
        }
    }

    #[test]
    fn per_node_attr_counts_in_range() {
        let app = AppModel::generate(&small_cfg());
        assert_eq!(app.nodes(), 20);
        for n in 0..20 {
            let count = app.observable(NodeId(n)).unwrap().len();
            assert!((5..=8).contains(&count), "node {n} has {count}");
        }
    }

    #[test]
    fn default_matches_paper_shape() {
        let app = AppModel::generate(&AppModelConfig {
            nodes: 50,
            ..AppModelConfig::default()
        });
        for n in 0..50 {
            let count = app.observable(NodeId(n)).unwrap().len();
            assert!((30..=50).contains(&count));
        }
    }

    #[test]
    fn observable_pairs_filters_unobservable() {
        let app = AppModel::generate(&small_cfg());
        // A task over everything: pairs must be exactly the observable
        // sets.
        let t = MonitoringTask::new(TaskId(0), (0..15).map(AttrId), (0..20).map(NodeId));
        let pairs = app.observable_pairs(&[t]);
        let expected: usize = (0..20)
            .map(|n| app.observable(NodeId(n)).unwrap().len())
            .sum();
        assert_eq!(pairs.len(), expected);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = AppModel::generate(&small_cfg());
        let b = AppModel::generate(&small_cfg());
        assert_eq!(
            a.observable(NodeId(3)).unwrap(),
            b.observable(NodeId(3)).unwrap()
        );
    }

    #[test]
    fn flags_set_catalog_metadata() {
        let app = AppModel::generate(&AppModelConfig {
            slow_fraction: 1.0,
            max_aggregable_fraction: 1.0,
            ..small_cfg()
        });
        for (_, info) in app.catalog().iter() {
            assert_eq!(info.frequency(), 0.5);
            assert!(!info.aggregation().is_identity());
        }
    }
}
