//! Task-churn generation (paper §7, "Runtime adaptation").
//!
//! The adaptation experiments emulate a dynamic monitoring environment
//! by repeatedly selecting 5 percent of the monitoring nodes and
//! replacing 50 percent of their monitored attributes.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::Rng;
use remo_core::{AttrId, NodeId, PairSet};
use serde::{Deserialize, Serialize};

/// Churn parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChurnConfig {
    /// Fraction of monitoring nodes whose tasks change per batch
    /// (paper: 0.05).
    pub node_fraction: f64,
    /// Fraction of a selected node's attributes replaced (paper: 0.5).
    pub attr_fraction: f64,
    /// Attribute-universe size replacements are drawn from.
    pub attr_universe: usize,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        ChurnConfig {
            node_fraction: 0.05,
            attr_fraction: 0.5,
            attr_universe: 200,
        }
    }
}

/// Produces the next pair set after one churn batch: on each selected
/// node, the chosen attributes are swapped for different ones from the
/// universe.
///
/// # Examples
///
/// ```
/// use remo_workloads::churn::{churn_pairs, ChurnConfig};
/// use remo_core::{PairSet, NodeId, AttrId};
/// use rand::{rngs::SmallRng, SeedableRng};
///
/// let pairs: PairSet = (0..20)
///     .flat_map(|n| (0..4).map(move |a| (NodeId(n), AttrId(a))))
///     .collect();
/// let mut rng = SmallRng::seed_from_u64(1);
/// let next = churn_pairs(&pairs, &ChurnConfig::default(), &mut rng);
/// assert_eq!(next.len(), pairs.len(), "churn swaps, never grows");
/// assert_ne!(next, pairs);
/// ```
pub fn churn_pairs(pairs: &PairSet, cfg: &ChurnConfig, rng: &mut SmallRng) -> PairSet {
    let mut out = pairs.clone();
    let nodes: Vec<NodeId> = pairs.nodes().collect();
    if nodes.is_empty() {
        return out;
    }
    let pick = ((nodes.len() as f64 * cfg.node_fraction).round() as usize).max(1);
    let mut shuffled = nodes;
    shuffled.shuffle(rng);
    for &node in shuffled.iter().take(pick) {
        let owned: Vec<AttrId> = pairs
            .attrs_of(node)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default();
        if owned.is_empty() {
            continue;
        }
        let replace = ((owned.len() as f64 * cfg.attr_fraction).round() as usize).max(1);
        let mut victims = owned.clone();
        victims.shuffle(rng);
        for &old in victims.iter().take(replace) {
            out.remove(node, old);
            // Draw a replacement the node does not already monitor.
            for _ in 0..64 {
                let cand = AttrId(rng.gen_range(0..cfg.attr_universe.max(1)) as u32);
                if !out.contains(node, cand) {
                    out.insert(node, cand);
                    break;
                }
            }
        }
    }
    out
}

/// Builds a schedule of `batches` churn batches, one every
/// `interval` epochs starting at `first_epoch`, each derived from the
/// previous state. Returns `(epoch, pair set effective from then)`.
pub fn churn_schedule(
    initial: &PairSet,
    cfg: &ChurnConfig,
    batches: usize,
    first_epoch: u64,
    interval: u64,
    rng: &mut SmallRng,
) -> Vec<(u64, PairSet)> {
    let mut out = Vec::with_capacity(batches);
    let mut cur = initial.clone();
    for b in 0..batches {
        cur = churn_pairs(&cur, cfg, rng);
        out.push((first_epoch + b as u64 * interval, cur.clone()));
    }
    out
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use rand::SeedableRng;

    fn pairs(nodes: u32, attrs: u32) -> PairSet {
        (0..nodes)
            .flat_map(|n| (0..attrs).map(move |a| (NodeId(n), AttrId(a))))
            .collect()
    }

    #[test]
    fn churn_preserves_pair_count() {
        let p = pairs(40, 5);
        let mut rng = SmallRng::seed_from_u64(9);
        let next = churn_pairs(&p, &ChurnConfig::default(), &mut rng);
        assert_eq!(next.len(), p.len());
    }

    #[test]
    fn churn_touches_expected_node_count() {
        let p = pairs(100, 4);
        let mut rng = SmallRng::seed_from_u64(9);
        let next = churn_pairs(
            &p,
            &ChurnConfig {
                node_fraction: 0.05,
                attr_fraction: 0.5,
                attr_universe: 300,
            },
            &mut rng,
        );
        let changed_nodes = p
            .nodes()
            .filter(|&n| p.attrs_of(n) != next.attrs_of(n))
            .count();
        assert!(
            (4..=6).contains(&changed_nodes),
            "expected ~5 changed nodes, got {changed_nodes}"
        );
    }

    #[test]
    fn schedule_epochs_are_spaced() {
        let p = pairs(20, 3);
        let mut rng = SmallRng::seed_from_u64(2);
        let sched = churn_schedule(&p, &ChurnConfig::default(), 4, 10, 5, &mut rng);
        assert_eq!(
            sched.iter().map(|(e, _)| *e).collect::<Vec<_>>(),
            vec![10, 15, 20, 25]
        );
        // Each batch differs from the previous.
        assert_ne!(sched[0].1, sched[1].1);
    }

    #[test]
    fn empty_pairs_survive_churn() {
        let p = PairSet::new();
        let mut rng = SmallRng::seed_from_u64(2);
        let next = churn_pairs(&p, &ChurnConfig::default(), &mut rng);
        assert!(next.is_empty());
    }
}
