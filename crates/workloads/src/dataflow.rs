//! An explicit stream-processing dataflow model.
//!
//! Where [`appmodel`](crate::appmodel) only reproduces the *observable
//! surface* of a System S deployment (attributes per node), this module
//! models the application itself: a layered DAG of operators placed on
//! nodes, each exporting the metrics the paper's motivation names
//! (data receiving/sending rate, buffer occupancy, operator latency —
//! §1). It can then generate the monitoring tasks operators actually
//! submit: dashboards over whole layers and *diagnosis tasks* covering
//! the upstream path of a suspect operator.

use rand::rngs::SmallRng;
use rand::Rng;
use rand::SeedableRng;
use remo_core::{AttrCatalog, AttrId, AttrInfo, MonitoringTask, NodeId, TaskId};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Role of an operator in the dataflow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OperatorKind {
    /// Ingests external data.
    Source,
    /// Stateless transformation.
    Filter,
    /// Windowed aggregation.
    Aggregate,
    /// Multi-input join.
    Join,
    /// Egress.
    Sink,
}

/// Identifier of an operator within the dataflow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct OperatorId(pub u32);

/// One placed operator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Operator {
    /// Its id.
    pub id: OperatorId,
    /// Its role.
    pub kind: OperatorKind,
    /// The node hosting it.
    pub node: NodeId,
    /// Operators it feeds.
    pub downstream: Vec<OperatorId>,
    /// Metrics it exports (registered in the app's catalog).
    pub metrics: Vec<AttrId>,
}

/// Configuration for dataflow generation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DataflowConfig {
    /// Hosting nodes.
    pub nodes: usize,
    /// DAG layers (sources → … → sinks).
    pub layers: usize,
    /// Operators per layer.
    pub operators_per_layer: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DataflowConfig {
    fn default() -> Self {
        DataflowConfig {
            nodes: 50,
            layers: 5,
            operators_per_layer: 10,
            seed: 7,
        }
    }
}

/// A generated, placed dataflow application.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DataflowApp {
    operators: Vec<Operator>,
    catalog: AttrCatalog,
    nodes: usize,
}

impl DataflowApp {
    /// Generates a layered DAG and places it round-robin-with-jitter
    /// across the nodes. Each operator exports four metrics:
    /// `rate_in`, `rate_out`, `buffer_occupancy`, `latency`.
    pub fn generate(cfg: &DataflowConfig) -> Self {
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let mut catalog = AttrCatalog::new();
        let mut operators = Vec::new();
        let per = cfg.operators_per_layer.max(1);
        let layers = cfg.layers.max(2);
        let total = layers * per;

        for i in 0..total {
            let layer = i / per;
            let kind = if layer == 0 {
                OperatorKind::Source
            } else if layer == layers - 1 {
                OperatorKind::Sink
            } else {
                match rng.gen_range(0..3) {
                    0 => OperatorKind::Filter,
                    1 => OperatorKind::Aggregate,
                    _ => OperatorKind::Join,
                }
            };
            let node = NodeId(((i + rng.gen_range(0..cfg.nodes.max(1))) % cfg.nodes.max(1)) as u32);
            let metrics = ["rate_in", "rate_out", "buffer_occupancy", "latency"]
                .iter()
                .map(|m| catalog.register(AttrInfo::new(format!("op{i}_{m}"))))
                .collect();
            // Each non-sink operator feeds 1-2 operators in the next
            // layer.
            let downstream = if layer + 1 < layers {
                let fanout = rng.gen_range(1..=2usize);
                (0..fanout)
                    .map(|_| OperatorId(((layer + 1) * per + rng.gen_range(0..per)) as u32))
                    .collect::<BTreeSet<_>>()
                    .into_iter()
                    .collect()
            } else {
                Vec::new()
            };
            operators.push(Operator {
                id: OperatorId(i as u32),
                kind,
                node,
                downstream,
                metrics,
            });
        }
        DataflowApp {
            operators,
            catalog,
            nodes: cfg.nodes,
        }
    }

    /// All operators.
    pub fn operators(&self) -> &[Operator] {
        &self.operators
    }

    /// The metric catalog.
    pub fn catalog(&self) -> &AttrCatalog {
        &self.catalog
    }

    /// Number of hosting nodes.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Looks up an operator.
    pub fn operator(&self, id: OperatorId) -> Option<&Operator> {
        self.operators.get(id.0 as usize)
    }

    /// The operators feeding `id` (reverse edges).
    pub fn upstream_of(&self, id: OperatorId) -> Vec<OperatorId> {
        self.operators
            .iter()
            .filter(|op| op.downstream.contains(&id))
            .map(|op| op.id)
            .collect()
    }

    /// The full upstream closure of `id` (everything whose output can
    /// reach it), including `id` itself — the scope of a bottleneck
    /// diagnosis.
    pub fn upstream_closure(&self, id: OperatorId) -> BTreeSet<OperatorId> {
        let mut seen: BTreeSet<OperatorId> = BTreeSet::new();
        let mut stack = vec![id];
        while let Some(cur) = stack.pop() {
            if seen.insert(cur) {
                stack.extend(self.upstream_of(cur));
            }
        }
        seen
    }

    /// A dashboard task: one metric type class (e.g. every operator's
    /// `buffer_occupancy`) across all hosting nodes.
    pub fn dashboard_task(&self, id: TaskId, metric_index: usize) -> MonitoringTask {
        let attrs: Vec<AttrId> = self
            .operators
            .iter()
            .filter_map(|op| op.metrics.get(metric_index % 4).copied())
            .collect();
        let nodes: BTreeSet<NodeId> = self.operators.iter().map(|op| op.node).collect();
        MonitoringTask::new(id, attrs, nodes)
    }

    /// A diagnosis task for a perceived bottleneck at `suspect`: all
    /// four metrics of every operator in its upstream closure, on the
    /// nodes hosting them (paper §1's diagnosis scenario).
    pub fn diagnosis_task(&self, id: TaskId, suspect: OperatorId) -> MonitoringTask {
        let scope = self.upstream_closure(suspect);
        let mut attrs = BTreeSet::new();
        let mut nodes = BTreeSet::new();
        for op_id in scope {
            if let Some(op) = self.operator(op_id) {
                attrs.extend(op.metrics.iter().copied());
                nodes.insert(op.node);
            }
        }
        MonitoringTask::new(id, attrs, nodes)
    }

    /// The observable pairs of a task set: a pair survives only if the
    /// node actually hosts an operator exporting that metric.
    pub fn observable_pairs(&self, tasks: &[MonitoringTask]) -> remo_core::PairSet {
        let mut hosted: BTreeMap<NodeId, BTreeSet<AttrId>> = BTreeMap::new();
        for op in &self.operators {
            hosted
                .entry(op.node)
                .or_default()
                .extend(op.metrics.iter().copied());
        }
        tasks
            .iter()
            .flat_map(MonitoringTask::pairs)
            .filter(|(n, a)| hosted.get(n).is_some_and(|s| s.contains(a)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    fn app() -> DataflowApp {
        DataflowApp::generate(&DataflowConfig {
            nodes: 20,
            layers: 4,
            operators_per_layer: 5,
            seed: 3,
        })
    }

    #[test]
    fn generates_layered_dag() {
        let a = app();
        assert_eq!(a.operators().len(), 20);
        // Sources in layer 0, sinks in the last.
        for op in &a.operators()[0..5] {
            assert_eq!(op.kind, OperatorKind::Source);
        }
        for op in &a.operators()[15..20] {
            assert_eq!(op.kind, OperatorKind::Sink);
            assert!(op.downstream.is_empty());
        }
        // Edges only go to the next layer.
        for (i, op) in a.operators().iter().enumerate() {
            let layer = i / 5;
            for d in &op.downstream {
                assert_eq!((d.0 as usize) / 5, layer + 1, "edge skips a layer");
            }
        }
    }

    #[test]
    fn every_operator_exports_four_metrics() {
        let a = app();
        for op in a.operators() {
            assert_eq!(op.metrics.len(), 4);
            for &m in &op.metrics {
                assert!(a.catalog().get(m).is_some());
            }
        }
    }

    #[test]
    fn upstream_closure_contains_only_reaching_operators() {
        let a = app();
        let sink = a.operators()[16].id;
        let scope = a.upstream_closure(sink);
        assert!(scope.contains(&sink));
        // Everything in scope reaches the sink by following downstream
        // edges.
        for &op_id in &scope {
            if op_id == sink {
                continue;
            }
            let mut frontier = vec![op_id];
            let mut reached = false;
            let mut visited = BTreeSet::new();
            while let Some(cur) = frontier.pop() {
                if cur == sink {
                    reached = true;
                    break;
                }
                if visited.insert(cur) {
                    frontier.extend(a.operator(cur).unwrap().downstream.iter().copied());
                }
            }
            assert!(reached, "{op_id:?} in closure but does not reach sink");
        }
    }

    #[test]
    fn diagnosis_task_scopes_to_upstream_hosts() {
        let a = app();
        let sink = a.operators()[15].id;
        let t = a.diagnosis_task(TaskId(0), sink);
        let scope = a.upstream_closure(sink);
        assert_eq!(t.attrs().len(), scope.len() * 4);
        assert!(!t.nodes().is_empty());
    }

    #[test]
    fn dashboard_task_covers_all_operators() {
        let a = app();
        let t = a.dashboard_task(TaskId(1), 2);
        assert_eq!(t.attrs().len(), 20, "one metric per operator");
    }

    #[test]
    fn observable_pairs_respect_placement() {
        let a = app();
        let t = a.dashboard_task(TaskId(0), 0);
        let pairs = a.observable_pairs(&[t]);
        // Every surviving pair's node hosts an operator with that metric.
        for (n, attr) in pairs.iter() {
            let hosts = a
                .operators()
                .iter()
                .any(|op| op.node == n && op.metrics.contains(&attr));
            assert!(hosts, "pair {n}/{attr} not hosted");
        }
        assert_eq!(
            pairs.len(),
            20,
            "each operator's metric observable at its host"
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let a = app();
        let b = app();
        assert_eq!(a.operators(), b.operators());
    }
}
