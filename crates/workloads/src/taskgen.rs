//! Synthetic monitoring-task generators (paper §7, "Synthetic data set
//! experiments").
//!
//! Tasks pick `|A_t|` attributes and `|N_t|` nodes uniformly at random
//! from the universe. The paper distinguishes *small-scale* tasks (few
//! attributes from few nodes) and *large-scale* tasks (many nodes or
//! many attributes).

use rand::rngs::SmallRng;
use rand::seq::index::sample;
use rand::Rng;
use remo_core::{AttrId, MonitoringTask, NodeId, TaskId};
use serde::{Deserialize, Serialize};

/// Parameters of the synthetic task generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskGenConfig {
    /// System size: nodes are `NodeId(0..nodes)`.
    pub nodes: usize,
    /// Attribute universe size: `AttrId(0..attrs)`.
    pub attrs: usize,
    /// Attributes per task (`|A_t|`), inclusive range.
    pub attrs_per_task: (usize, usize),
    /// Nodes per task (`|N_t|`), inclusive range.
    pub nodes_per_task: (usize, usize),
}

impl TaskGenConfig {
    /// Small-scale tasks: a handful of attributes from a handful of
    /// nodes (paper §7: "small set of attributes from a small set of
    /// nodes").
    pub fn small_scale(nodes: usize, attrs: usize) -> Self {
        TaskGenConfig {
            nodes,
            attrs,
            attrs_per_task: (2, (attrs / 10).clamp(2, 8)),
            nodes_per_task: (2, (nodes / 10).clamp(2, 10)),
        }
    }

    /// Large-scale tasks: many nodes or many attributes.
    pub fn large_scale(nodes: usize, attrs: usize) -> Self {
        TaskGenConfig {
            nodes,
            attrs,
            attrs_per_task: ((attrs / 4).max(2), (attrs / 2).max(3)),
            nodes_per_task: ((nodes / 2).max(2), nodes.max(3)),
        }
    }

    /// Fixed task shape (used by the `|A_t|`/`|N_t|` sweeps of
    /// Fig. 5a/5b).
    pub fn fixed(nodes: usize, attrs: usize, attrs_per_task: usize, nodes_per_task: usize) -> Self {
        TaskGenConfig {
            nodes,
            attrs,
            attrs_per_task: (attrs_per_task, attrs_per_task),
            nodes_per_task: (nodes_per_task, nodes_per_task),
        }
    }

    /// Generates one task with the given id.
    pub fn generate_one(&self, id: TaskId, rng: &mut SmallRng) -> MonitoringTask {
        let (alo, ahi) = self.attrs_per_task;
        let (nlo, nhi) = self.nodes_per_task;
        let n_attrs = rng
            .gen_range(alo.min(ahi)..=ahi.max(alo))
            .clamp(1, self.attrs);
        let n_nodes = rng
            .gen_range(nlo.min(nhi)..=nhi.max(nlo))
            .clamp(1, self.nodes);
        let attrs = sample(rng, self.attrs, n_attrs)
            .into_iter()
            .map(|i| AttrId(i as u32));
        let nodes = sample(rng, self.nodes, n_nodes)
            .into_iter()
            .map(|i| NodeId(i as u32));
        MonitoringTask::new(id, attrs, nodes)
    }

    /// Generates `count` tasks with ids `first_id..`.
    pub fn generate(
        &self,
        count: usize,
        first_id: TaskId,
        rng: &mut SmallRng,
    ) -> Vec<MonitoringTask> {
        (0..count)
            .map(|i| self.generate_one(TaskId(first_id.0 + i as u32), rng))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(11)
    }

    #[test]
    fn tasks_respect_universe_bounds() {
        let cfg = TaskGenConfig::small_scale(20, 30);
        let tasks = cfg.generate(50, TaskId(0), &mut rng());
        for t in &tasks {
            assert!(!t.is_empty());
            for &a in t.attrs() {
                assert!(a.0 < 30);
            }
            for &n in t.nodes() {
                assert!(n.0 < 20);
            }
        }
    }

    #[test]
    fn small_tasks_are_smaller_than_large() {
        let small = TaskGenConfig::small_scale(100, 100);
        let large = TaskGenConfig::large_scale(100, 100);
        let mut r = rng();
        let avg = |cfg: &TaskGenConfig, r: &mut SmallRng| {
            let tasks = cfg.generate(40, TaskId(0), r);
            tasks.iter().map(MonitoringTask::pair_count).sum::<usize>() as f64 / 40.0
        };
        assert!(avg(&small, &mut r) * 4.0 < avg(&large, &mut r));
    }

    #[test]
    fn fixed_shape_is_exact() {
        let cfg = TaskGenConfig::fixed(50, 50, 7, 9);
        let t = cfg.generate_one(TaskId(3), &mut rng());
        assert_eq!(t.attrs().len(), 7);
        assert_eq!(t.nodes().len(), 9);
        assert_eq!(t.id(), TaskId(3));
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let cfg = TaskGenConfig::small_scale(30, 30);
        let a = cfg.generate(5, TaskId(0), &mut SmallRng::seed_from_u64(1));
        let b = cfg.generate(5, TaskId(0), &mut SmallRng::seed_from_u64(1));
        assert_eq!(a, b);
    }

    #[test]
    fn ids_are_sequential() {
        let cfg = TaskGenConfig::small_scale(10, 10);
        let tasks = cfg.generate(3, TaskId(7), &mut rng());
        assert_eq!(
            tasks.iter().map(|t| t.id()).collect::<Vec<_>>(),
            vec![TaskId(7), TaskId(8), TaskId(9)]
        );
    }
}
