//! The monitoring plan: a forest of collection trees plus bookkeeping.

use crate::ids::{AttrId, NodeId};
use crate::partition::Partition;
use crate::tree::Tree;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One constructed tree together with its evaluation figures.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PlannedTree {
    /// The tree, or `None` when not a single participant could be
    /// placed (the attribute set is then entirely uncollected).
    pub tree: Option<Tree>,
    /// Per-node resource usage attributable to this tree.
    pub usage: BTreeMap<NodeId, f64>,
    /// Collector-side usage of this tree (receive cost of the root's
    /// message).
    pub collector_usage: f64,
    /// Node-attribute pairs collected by this tree.
    pub collected_pairs: usize,
    /// Node-attribute pairs demanded of this tree.
    pub demanded_pairs: usize,
    /// Nodes that could not be included.
    pub excluded: Vec<NodeId>,
    /// Per-epoch message volume in cost units (Σ send costs).
    pub message_volume: f64,
}

impl PlannedTree {
    /// Number of nodes included in this tree.
    pub fn len(&self) -> usize {
        self.tree.as_ref().map_or(0, Tree::len)
    }

    /// Returns `true` if the tree includes no nodes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A complete monitoring plan: the attribute partition and one
/// [`PlannedTree`] per partition set (parallel vectors).
///
/// # Examples
///
/// ```
/// use remo_core::{CapacityMap, CostModel, NodeId, AttrId, PairSet};
/// use remo_core::planner::{Planner, PlannerConfig};
///
/// # fn main() -> Result<(), remo_core::PlanError> {
/// let caps = CapacityMap::uniform(6, 20.0, 100.0)?;
/// let pairs: PairSet = (0..6)
///     .flat_map(|n| (0..2).map(move |a| (NodeId(n), AttrId(a))))
///     .collect();
/// let plan = Planner::new(PlannerConfig::default())
///     .plan(&pairs, &caps, CostModel::default());
/// assert_eq!(plan.demanded_pairs(), 12);
/// assert!(plan.coverage() > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MonitoringPlan {
    partition: Partition,
    trees: Vec<PlannedTree>,
}

impl MonitoringPlan {
    /// Assembles a plan; `trees` must parallel `partition.sets()`.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ (construction code upholds this).
    pub fn new(partition: Partition, trees: Vec<PlannedTree>) -> Self {
        assert_eq!(
            partition.len(),
            trees.len(),
            "one planned tree per partition set"
        );
        MonitoringPlan { partition, trees }
    }

    /// The attribute partition this plan realizes.
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// The planned trees, parallel to `partition().sets()`.
    pub fn trees(&self) -> &[PlannedTree] {
        &self.trees
    }

    /// Total node-attribute pairs demanded.
    pub fn demanded_pairs(&self) -> usize {
        self.trees.iter().map(|t| t.demanded_pairs).sum()
    }

    /// Total node-attribute pairs collected.
    pub fn collected_pairs(&self) -> usize {
        self.trees.iter().map(|t| t.collected_pairs).sum()
    }

    /// Fraction of demanded pairs collected, in `[0, 1]`; `1.0` for an
    /// empty plan.
    pub fn coverage(&self) -> f64 {
        let demanded = self.demanded_pairs();
        if demanded == 0 {
            1.0
        } else {
            self.collected_pairs() as f64 / demanded as f64
        }
    }

    /// Aggregate per-node usage across all trees.
    pub fn node_usage(&self) -> BTreeMap<NodeId, f64> {
        let mut out: BTreeMap<NodeId, f64> = BTreeMap::new();
        for t in &self.trees {
            for (&n, &u) in &t.usage {
                *out.entry(n).or_insert(0.0) += u;
            }
        }
        out
    }

    /// Aggregate collector usage across all trees.
    pub fn collector_usage(&self) -> f64 {
        self.trees.iter().map(|t| t.collector_usage).sum()
    }

    /// Total per-epoch message volume in cost units — the `C_cur` of
    /// the cost-benefit throttling threshold (paper §4.2).
    pub fn message_volume(&self) -> f64 {
        self.trees.iter().map(|t| t.message_volume).sum()
    }

    /// Total number of monitoring messages per epoch (each included
    /// node sends one).
    pub fn message_count(&self) -> usize {
        self.trees.iter().map(PlannedTree::len).sum()
    }

    /// Index of the tree delivering `attr`, if any.
    pub fn tree_of_attr(&self, attr: AttrId) -> Option<usize> {
        self.partition.set_of(attr)
    }

    /// Number of tree edges that differ between two plans — the
    /// adaptation message volume `M_adapt` (paper §4.2). Trees are
    /// matched by attribute set; unmatched trees count every edge
    /// (plus the root's collector link) as changed.
    pub fn edge_diff(&self, other: &MonitoringPlan) -> usize {
        let mut diff = 0;
        let mut matched_other = vec![false; other.trees.len()];
        for (i, set) in self.partition.sets().iter().enumerate() {
            let this_tree = self.trees[i].tree.as_ref();
            match other.partition.sets().iter().position(|s| s == set) {
                Some(j) => {
                    matched_other[j] = true;
                    match (this_tree, other.trees[j].tree.as_ref()) {
                        (Some(a), Some(b)) => diff += a.edge_diff(b),
                        (Some(t), None) | (None, Some(t)) => diff += t.len(),
                        (None, None) => {}
                    }
                }
                None => {
                    if let Some(t) = this_tree {
                        diff += t.len();
                    }
                }
            }
        }
        for (j, t) in other.trees.iter().enumerate() {
            if !matched_other[j] {
                if let Some(tree) = t.tree.as_ref() {
                    diff += tree.len();
                }
            }
        }
        diff
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use crate::ids::AttrId;
    use crate::partition::AttrSet;

    fn leaf_tree(attr: u32, nodes: &[u32]) -> PlannedTree {
        let attrs: AttrSet = [AttrId(attr)].into_iter().collect();
        let mut tree = Tree::new(attrs, NodeId(nodes[0]));
        for &n in &nodes[1..] {
            tree.attach(NodeId(n), NodeId(nodes[0]));
        }
        let usage = nodes.iter().map(|&n| (NodeId(n), 1.0)).collect();
        PlannedTree {
            tree: Some(tree),
            usage,
            collector_usage: 3.0,
            collected_pairs: nodes.len(),
            demanded_pairs: nodes.len() + 1,
            excluded: Vec::new(),
            message_volume: nodes.len() as f64 * 3.0,
        }
    }

    fn sample_plan() -> MonitoringPlan {
        let partition = Partition::singleton([AttrId(0), AttrId(1)]);
        MonitoringPlan::new(
            partition,
            vec![leaf_tree(0, &[0, 1, 2]), leaf_tree(1, &[0, 3])],
        )
    }

    #[test]
    fn totals_aggregate_over_trees() {
        let plan = sample_plan();
        assert_eq!(plan.collected_pairs(), 5);
        assert_eq!(plan.demanded_pairs(), 7);
        assert!((plan.coverage() - 5.0 / 7.0).abs() < 1e-12);
        assert_eq!(plan.collector_usage(), 6.0);
        assert_eq!(plan.message_count(), 5);
    }

    #[test]
    fn node_usage_sums_across_trees() {
        let plan = sample_plan();
        let usage = plan.node_usage();
        assert_eq!(usage[&NodeId(0)], 2.0, "n0 is in both trees");
        assert_eq!(usage[&NodeId(3)], 1.0);
    }

    #[test]
    fn tree_of_attr_follows_partition() {
        let plan = sample_plan();
        assert_eq!(plan.tree_of_attr(AttrId(1)), Some(1));
        assert_eq!(plan.tree_of_attr(AttrId(9)), None);
    }

    #[test]
    fn edge_diff_zero_for_identical() {
        let plan = sample_plan();
        assert_eq!(plan.edge_diff(&plan.clone()), 0);
    }

    #[test]
    fn edge_diff_counts_reparenting_and_set_changes() {
        let a = sample_plan();
        // Re-parent node 2 in the first tree.
        let mut b = sample_plan();
        let attrs: AttrSet = [AttrId(0)].into_iter().collect();
        let mut t = Tree::new(attrs, NodeId(0));
        t.attach(NodeId(1), NodeId(0));
        t.attach(NodeId(2), NodeId(1));
        b.trees[0].tree = Some(t);
        assert_eq!(a.edge_diff(&b), 1);

        // A plan with a different partition counts whole trees.
        let merged = Partition::one_set([AttrId(0), AttrId(1)]);
        let c = MonitoringPlan::new(merged, vec![leaf_tree(0, &[0, 1, 2, 3])]);
        // a's two trees (3 + 2 nodes) all differ, plus c's 4 nodes.
        assert_eq!(a.edge_diff(&c), 9);
    }

    #[test]
    #[should_panic(expected = "one planned tree per partition set")]
    fn mismatched_lengths_panic() {
        let partition = Partition::singleton([AttrId(0), AttrId(1)]);
        let _ = MonitoringPlan::new(partition, vec![leaf_tree(0, &[0])]);
    }

    #[test]
    fn empty_plan_coverage_is_one() {
        let plan = MonitoringPlan::new(Partition::one_set([]), Vec::new());
        assert_eq!(plan.coverage(), 1.0);
        assert_eq!(plan.message_volume(), 0.0);
    }
}
