//! Attribute-set partitions and their merge/split neighborhood
//! (paper §3.1).
//!
//! A partition divides the monitored attribute universe into disjoint
//! non-empty sets; each set is delivered by one monitoring tree. The
//! two classical extremes are the *singleton-set* partition (one
//! attribute per tree, à la PIER) and the *one-set* partition (a single
//! tree for everything). REMO searches the space between them by
//! repeatedly applying `merge` and `split` operations (Definitions 2
//! and 3).

use crate::error::PlanError;
use crate::ids::AttrId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// An attribute set within a partition.
pub type AttrSet = BTreeSet<AttrId>;

/// A partition of the attribute universe into disjoint non-empty sets.
///
/// Invariants (enforced by all mutating operations):
/// - sets are pairwise disjoint,
/// - no set is empty,
/// - the union of all sets equals the universe the partition was built
///   over.
///
/// # Examples
///
/// ```
/// use remo_core::{Partition, AttrId};
/// let universe: Vec<AttrId> = (0..4).map(AttrId).collect();
/// let mut p = Partition::singleton(universe.iter().copied());
/// assert_eq!(p.len(), 4);
/// p.merge(0, 1)?;
/// assert_eq!(p.len(), 3);
/// let one = Partition::one_set(universe);
/// assert_eq!(one.len(), 1);
/// # Ok::<(), remo_core::PlanError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Partition {
    sets: Vec<AttrSet>,
}

impl Partition {
    /// Builds the singleton-set partition (SP): one set per attribute.
    pub fn singleton(universe: impl IntoIterator<Item = AttrId>) -> Self {
        let sets = universe
            .into_iter()
            .collect::<BTreeSet<_>>()
            .into_iter()
            .map(|a| {
                let mut s = AttrSet::new();
                s.insert(a);
                s
            })
            .collect();
        Partition { sets }
    }

    /// Builds the one-set partition (OP): all attributes in one set.
    /// An empty universe yields an empty partition.
    pub fn one_set(universe: impl IntoIterator<Item = AttrId>) -> Self {
        let set: AttrSet = universe.into_iter().collect();
        if set.is_empty() {
            Partition { sets: Vec::new() }
        } else {
            Partition { sets: vec![set] }
        }
    }

    /// Builds a partition from explicit sets.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError::BadPartitionIndex`] if any set is empty or
    /// two sets overlap (the index in the error is the offending set's
    /// position).
    pub fn from_sets(sets: Vec<AttrSet>) -> Result<Self, PlanError> {
        let mut seen = AttrSet::new();
        for (i, set) in sets.iter().enumerate() {
            if set.is_empty() {
                return Err(PlanError::BadPartitionIndex(i));
            }
            for attr in set {
                if !seen.insert(*attr) {
                    return Err(PlanError::BadPartitionIndex(i));
                }
            }
        }
        Ok(Partition { sets })
    }

    /// Number of sets (= number of monitoring trees).
    pub fn len(&self) -> usize {
        self.sets.len()
    }

    /// Returns `true` if the partition has no sets.
    pub fn is_empty(&self) -> bool {
        self.sets.is_empty()
    }

    /// The sets, in stable order.
    pub fn sets(&self) -> &[AttrSet] {
        &self.sets
    }

    /// One set by index.
    pub fn set(&self, index: usize) -> Option<&AttrSet> {
        self.sets.get(index)
    }

    /// The index of the set containing `attr`, if any.
    pub fn set_of(&self, attr: AttrId) -> Option<usize> {
        self.sets.iter().position(|s| s.contains(&attr))
    }

    /// The union of all sets.
    pub fn universe(&self) -> AttrSet {
        self.sets.iter().flatten().copied().collect()
    }

    /// Merge operation (Definition 2): replaces sets `i` and `j` with
    /// their union. The merged set takes position `min(i, j)`; later
    /// set indexes shift down by one.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError::BadPartitionIndex`] if `i == j` or either
    /// index is out of bounds.
    pub fn merge(&mut self, i: usize, j: usize) -> Result<usize, PlanError> {
        if i == j {
            return Err(PlanError::BadPartitionIndex(j));
        }
        if i >= self.sets.len() || j >= self.sets.len() {
            return Err(PlanError::BadPartitionIndex(i.max(j)));
        }
        let (lo, hi) = (i.min(j), i.max(j));
        let taken = self.sets.remove(hi);
        self.sets[lo].extend(taken);
        Ok(lo)
    }

    /// Split operation (Definition 2): removes `attr` from set `i` and
    /// appends `{attr}` as a new set at the end.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError::BadPartitionIndex`] if `i` is out of
    /// bounds, or [`PlanError::BadSplit`] if `attr` is not in set `i`
    /// or set `i` is a singleton (splitting it would leave an empty
    /// set).
    pub fn split(&mut self, i: usize, attr: AttrId) -> Result<usize, PlanError> {
        let set = self
            .sets
            .get_mut(i)
            .ok_or(PlanError::BadPartitionIndex(i))?;
        if set.len() <= 1 || !set.contains(&attr) {
            return Err(PlanError::BadSplit(attr));
        }
        set.remove(&attr);
        let mut fresh = AttrSet::new();
        fresh.insert(attr);
        self.sets.push(fresh);
        Ok(self.sets.len() - 1)
    }

    /// Adds a brand-new attribute as a singleton set (used by
    /// DIRECT-APPLY when task churn introduces an attribute type not in
    /// the current partition). Returns the new set's index; if the
    /// attribute is already present, returns its existing set index.
    pub fn add_attr(&mut self, attr: AttrId) -> usize {
        if let Some(i) = self.set_of(attr) {
            return i;
        }
        let mut fresh = AttrSet::new();
        fresh.insert(attr);
        self.sets.push(fresh);
        self.sets.len() - 1
    }

    /// Removes an attribute entirely (used when task churn drops the
    /// last pair of an attribute type). Empty sets are dropped. Returns
    /// `true` if the attribute was present.
    pub fn remove_attr(&mut self, attr: AttrId) -> bool {
        match self.set_of(attr) {
            None => false,
            Some(i) => {
                self.sets[i].remove(&attr);
                if self.sets[i].is_empty() {
                    self.sets.remove(i);
                }
                true
            }
        }
    }

    /// Enumerates all neighboring solutions (Definition 3): every
    /// pairwise merge and every single-attribute split.
    ///
    /// The count is `O(k²)` merges plus `O(|A|)` splits; callers rank
    /// these with [`estimate`](crate::estimate) rather than evaluating
    /// all of them.
    pub fn neighbors(&self) -> Vec<PartitionOp> {
        let mut ops = Vec::new();
        for i in 0..self.sets.len() {
            for j in (i + 1)..self.sets.len() {
                ops.push(PartitionOp::Merge(i, j));
            }
        }
        for (i, set) in self.sets.iter().enumerate() {
            if set.len() > 1 {
                for &attr in set {
                    ops.push(PartitionOp::Split(i, attr));
                }
            }
        }
        ops
    }

    /// Applies a [`PartitionOp`], returning the index of the modified
    /// or created set.
    ///
    /// # Errors
    ///
    /// Propagates the errors of [`merge`](Self::merge) and
    /// [`split`](Self::split).
    pub fn apply(&mut self, op: PartitionOp) -> Result<usize, PlanError> {
        match op {
            PartitionOp::Merge(i, j) => self.merge(i, j),
            PartitionOp::Split(i, attr) => self.split(i, attr),
        }
    }

    /// Checks the partition invariants; used by tests and
    /// `debug_assert!`s.
    pub fn is_valid(&self) -> bool {
        let mut seen = AttrSet::new();
        for set in &self.sets {
            if set.is_empty() {
                return false;
            }
            for attr in set {
                if !seen.insert(*attr) {
                    return false;
                }
            }
        }
        true
    }
}

impl fmt::Display for Partition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, set) in self.sets.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{{")?;
            for (k, attr) in set.iter().enumerate() {
                if k > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{attr}")?;
            }
            write!(f, "}}")?;
        }
        write!(f, "}}")
    }
}

/// A one-step modification to a partition: the neighborhood moves of
/// the guided local search (paper Definition 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PartitionOp {
    /// Union of sets at the two indexes.
    Merge(usize, usize),
    /// Extraction of one attribute from the set at the index into a
    /// new singleton set.
    Split(usize, AttrId),
}

impl fmt::Display for PartitionOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartitionOp::Merge(i, j) => write!(f, "merge({i}, {j})"),
            PartitionOp::Split(i, a) => write!(f, "split({i}, {a})"),
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    fn universe(n: u32) -> Vec<AttrId> {
        (0..n).map(AttrId).collect()
    }

    #[test]
    fn singleton_and_one_set() {
        let sp = Partition::singleton(universe(4));
        assert_eq!(sp.len(), 4);
        assert!(sp.is_valid());
        let op = Partition::one_set(universe(4));
        assert_eq!(op.len(), 1);
        assert_eq!(op.set(0).unwrap().len(), 4);
        assert!(Partition::one_set(universe(0)).is_empty());
    }

    #[test]
    fn merge_unions_and_shifts() {
        let mut p = Partition::singleton(universe(3));
        let idx = p.merge(0, 2).unwrap();
        assert_eq!(idx, 0);
        assert_eq!(p.len(), 2);
        assert!(p.set(0).unwrap().contains(&AttrId(0)));
        assert!(p.set(0).unwrap().contains(&AttrId(2)));
        assert!(p.is_valid());
    }

    #[test]
    fn merge_rejects_bad_indexes() {
        let mut p = Partition::singleton(universe(2));
        assert!(p.merge(0, 0).is_err());
        assert!(p.merge(0, 5).is_err());
    }

    #[test]
    fn split_extracts_singleton() {
        let mut p = Partition::one_set(universe(3));
        let idx = p.split(0, AttrId(1)).unwrap();
        assert_eq!(idx, 1);
        assert_eq!(p.len(), 2);
        assert!(!p.set(0).unwrap().contains(&AttrId(1)));
        assert_eq!(p.set(1).unwrap().len(), 1);
        assert!(p.is_valid());
    }

    #[test]
    fn split_rejects_singleton_set_and_missing_attr() {
        let mut p = Partition::singleton(universe(2));
        assert_eq!(p.split(0, AttrId(0)), Err(PlanError::BadSplit(AttrId(0))));
        let mut p = Partition::one_set(universe(2));
        assert_eq!(p.split(0, AttrId(9)), Err(PlanError::BadSplit(AttrId(9))));
    }

    #[test]
    fn neighbors_cover_merges_and_splits() {
        let p = Partition::from_sets(vec![
            [AttrId(0), AttrId(1)].into_iter().collect(),
            [AttrId(2)].into_iter().collect(),
            [AttrId(3)].into_iter().collect(),
        ])
        .unwrap();
        let ops = p.neighbors();
        let merges = ops
            .iter()
            .filter(|o| matches!(o, PartitionOp::Merge(..)))
            .count();
        let splits = ops
            .iter()
            .filter(|o| matches!(o, PartitionOp::Split(..)))
            .count();
        assert_eq!(merges, 3); // C(3,2)
        assert_eq!(splits, 2); // only the 2-element set can split
    }

    #[test]
    fn from_sets_validates() {
        assert!(Partition::from_sets(vec![AttrSet::new()]).is_err());
        let overlapping = vec![
            [AttrId(0)].into_iter().collect::<AttrSet>(),
            [AttrId(0)].into_iter().collect::<AttrSet>(),
        ];
        assert!(Partition::from_sets(overlapping).is_err());
    }

    #[test]
    fn add_and_remove_attr() {
        let mut p = Partition::singleton(universe(2));
        let i = p.add_attr(AttrId(5));
        assert_eq!(i, 2);
        assert_eq!(p.add_attr(AttrId(5)), 2, "idempotent");
        assert!(p.remove_attr(AttrId(5)));
        assert!(!p.remove_attr(AttrId(5)));
        assert_eq!(p.len(), 2);
        assert!(p.is_valid());
    }

    #[test]
    fn set_of_finds_owner() {
        let mut p = Partition::one_set(universe(3));
        p.split(0, AttrId(2)).unwrap();
        assert_eq!(p.set_of(AttrId(2)), Some(1));
        assert_eq!(p.set_of(AttrId(0)), Some(0));
        assert_eq!(p.set_of(AttrId(9)), None);
    }

    #[test]
    fn display_is_readable() {
        let p = Partition::one_set(universe(2));
        assert_eq!(p.to_string(), "{{a0 a1}}");
    }
}
