//! Memoized tree construction — the incremental-search optimization of
//! the journal version's §5 ("efficient adaptive" planning).
//!
//! The guided local search evaluates each merge/split candidate by
//! building the affected trees from scratch. Across a round, and across
//! the epochs of a self-healing deployment, the same (attribute set,
//! residual budgets) construction problem recurs constantly: a rejected
//! candidate is re-ranked next round against unchanged budgets, a
//! recovered node restores exactly the capacity snapshot a tree was
//! last built under. [`TreeCache`] memoizes finished [`PlannedTree`]s
//! under a *structural* key — the attribute set, every participant's
//! budget (bit pattern), the collector budget, and a construction-config
//! fingerprint — so any such recurrence is a map lookup instead of an
//! `O(n log n)` build.
//!
//! Tree construction is a pure, deterministic function of the key plus
//! the pair set and attribute catalog. The latter two are *not* part of
//! the key; they are pinned by the cache **generation**. Callers that
//! mutate demand (task churn) or attribute metadata must call
//! [`TreeCache::invalidate`], which bumps the generation and drops all
//! entries. Capacity changes need no invalidation: budgets are in the
//! key, so a changed budget simply misses.
//!
//! The cache is `Sync` (a mutexed map) so the planner's parallel
//! candidate evaluation can share one instance across worker threads.

use crate::alloc::AllocationScheme;
use crate::build::BuilderKind;
use crate::evaluate::{build_tree_for_set, BudgetView, EvalContext};
use crate::index::PairIndex;
use crate::partition::AttrSet;
use crate::plan::PlannedTree;
use std::collections::HashMap;
use std::sync::Mutex;

/// Entry cap; reaching it deterministically drops every entry (a full
/// clear beats LRU bookkeeping here: keys recur in bursts within a
/// search, and a cleared cache refills within one round).
const MAX_ENTRIES: usize = 8192;

/// Construction-configuration fingerprint: every knob outside the
/// budgets that changes what `build_tree_for_set` would produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct CfgKey {
    builder: u8,
    branch_based: bool,
    subtree_only: bool,
    allocation: u8,
    aggregation_aware: bool,
    frequency_aware: bool,
    per_message: u64,
    per_value: u64,
}

impl CfgKey {
    fn of(ctx: &EvalContext<'_>) -> Self {
        let (builder, branch_based, subtree_only) = match ctx.builder {
            BuilderKind::Star => (0, false, false),
            BuilderKind::Chain => (1, false, false),
            BuilderKind::MaxAvb => (2, false, false),
            BuilderKind::Adaptive(adj) => (3, adj.branch_based, adj.subtree_only),
        };
        let allocation = match ctx.allocation {
            AllocationScheme::Uniform => 0,
            AllocationScheme::Proportional => 1,
            AllocationScheme::OnDemand => 2,
            AllocationScheme::Ordered => 3,
        };
        CfgKey {
            builder,
            branch_based,
            subtree_only,
            allocation,
            aggregation_aware: ctx.aggregation_aware,
            frequency_aware: ctx.frequency_aware,
            per_message: ctx.cost.per_message().to_bits(),
            per_value: ctx.cost.per_value().to_bits(),
        }
    }
}

/// One memoized construction problem. Budgets are stored as bit
/// patterns: bit-equality is exactly the guarantee under which a replay
/// of the deterministic builder yields the identical tree.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CacheKey {
    generation: u64,
    cfg: CfgKey,
    attrs: Vec<u32>,
    budgets: Vec<(u32, u64)>,
    collector: u64,
}

impl CacheKey {
    fn new<B: BudgetView + ?Sized>(
        generation: u64,
        ctx: &EvalContext<'_>,
        set: &AttrSet,
        avail: &B,
        collector_avail: f64,
    ) -> Self {
        // Participants via the dense index: the bitset OR iterated
        // ascending yields the same (node, budget) sequence the old
        // `BTreeSet` walk produced, so keys are unchanged.
        let idx = ctx.pairs.index();
        let mut row = Vec::new();
        idx.or_participants(set, &mut row);
        let mut dense = Vec::new();
        PairIndex::iter_bits(&row, &mut dense);
        CacheKey {
            generation,
            cfg: CfgKey::of(ctx),
            attrs: set.iter().map(|a| a.0).collect(),
            budgets: dense
                .iter()
                .map(|&d| {
                    let n = idx.node_id(d);
                    (n.0, avail.budget(n).to_bits())
                })
                .collect(),
            collector: collector_avail.to_bits(),
        }
    }
}

/// Cache counters (monotone across [`TreeCache::invalidate`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that fell through to a fresh build.
    pub misses: u64,
    /// Generation bumps (demand/catalog churn).
    pub invalidations: u64,
    /// Full clears forced by the entry cap.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
}

impl CacheStats {
    /// Hit fraction over all lookups (0.0 when none yet).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Registry handles, resolved once: `get_or_build` sits on the
/// planner's hot path, and a name lookup per call would serialize the
/// parallel candidate evaluation on the registry mutex.
fn hit_counter() -> &'static remo_obs::Counter {
    static HANDLE: std::sync::OnceLock<remo_obs::Counter> = std::sync::OnceLock::new();
    HANDLE.get_or_init(|| remo_obs::counter("remo_planner_cache_hits_total"))
}

fn miss_counter() -> &'static remo_obs::Counter {
    static HANDLE: std::sync::OnceLock<remo_obs::Counter> = std::sync::OnceLock::new();
    HANDLE.get_or_init(|| remo_obs::counter("remo_planner_cache_misses_total"))
}

#[derive(Debug, Default)]
struct Inner {
    map: HashMap<CacheKey, PlannedTree>,
    generation: u64,
    hits: u64,
    misses: u64,
    invalidations: u64,
    evictions: u64,
}

/// A thread-safe memo table of built trees (see module docs).
#[derive(Debug, Default)]
pub struct TreeCache {
    inner: Mutex<Inner>,
}

impl TreeCache {
    /// An empty cache at generation zero.
    pub fn new() -> Self {
        TreeCache::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // A panicking worker thread poisons the mutex; the map itself
        // is never left mid-update, so recover the guard.
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Returns the cached tree for this exact construction problem, or
    /// builds, stores, and returns it.
    pub fn get_or_build<B: BudgetView + ?Sized>(
        &self,
        set: &AttrSet,
        ctx: &EvalContext<'_>,
        avail: &B,
        collector_avail: f64,
    ) -> PlannedTree {
        // Assemble the key outside the lock (it walks participant
        // bitsets); only the generation stamp needs the mutex.
        let mut key = CacheKey::new(0, ctx, set, avail, collector_avail);
        let cached = {
            let mut inner = self.lock();
            key.generation = inner.generation;
            match inner.map.get(&key).cloned() {
                Some(tree) => {
                    inner.hits += 1;
                    if remo_obs::enabled() {
                        hit_counter().inc();
                    }
                    Some(tree)
                }
                None => {
                    inner.misses += 1;
                    if remo_obs::enabled() {
                        miss_counter().inc();
                    }
                    None
                }
            }
        };
        if let Some(tree) = cached {
            return tree;
        }
        let tree = build_tree_for_set(set, ctx, avail, collector_avail);
        let mut inner = self.lock();
        if key.generation == inner.generation {
            if inner.map.len() >= MAX_ENTRIES {
                inner.map.clear();
                inner.evictions += 1;
            }
            inner.map.insert(key, tree.clone());
        }
        tree
    }

    /// Drops every entry and bumps the generation. Must be called when
    /// the pair set or the attribute catalog changes — both feed tree
    /// construction without appearing in the key.
    pub fn invalidate(&self) {
        let mut inner = self.lock();
        inner.map.clear();
        inner.generation += 1;
        inner.invalidations += 1;
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        let inner = self.lock();
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            invalidations: inner.invalidations,
            evictions: inner.evictions,
            entries: inner.map.len(),
        }
    }
}

impl Clone for TreeCache {
    /// Clones contents and counters (the clone starts un-poisoned and
    /// unshared).
    fn clone(&self) -> Self {
        let inner = self.lock();
        TreeCache {
            inner: Mutex::new(Inner {
                map: inner.map.clone(),
                generation: inner.generation,
                hits: inner.hits,
                misses: inner.misses,
                invalidations: inner.invalidations,
                evictions: inner.evictions,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use crate::attribute::AttrCatalog;
    use crate::capacity::CapacityMap;
    use crate::cost::CostModel;
    use crate::ids::{AttrId, NodeId};
    use crate::pairs::PairSet;
    use std::collections::BTreeMap;

    fn dense_pairs(nodes: u32, attrs: u32) -> PairSet {
        (0..nodes)
            .flat_map(|n| (0..attrs).map(move |a| (NodeId(n), AttrId(a))))
            .collect()
    }

    fn set_of(attrs: &[u32]) -> AttrSet {
        attrs.iter().map(|&a| AttrId(a)).collect()
    }

    #[test]
    fn identical_problem_hits() {
        let pairs = dense_pairs(8, 3);
        let caps = CapacityMap::uniform(8, 20.0, 200.0).unwrap();
        let catalog = AttrCatalog::new();
        let ctx = EvalContext::basic(&pairs, &caps, CostModel::default(), &catalog);
        let avail: BTreeMap<NodeId, f64> = caps.iter().collect();
        let cache = TreeCache::new();

        let a = cache.get_or_build(&set_of(&[0, 1]), &ctx, &avail, caps.collector());
        let b = cache.get_or_build(&set_of(&[0, 1]), &ctx, &avail, caps.collector());
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.entries, 1);
        // A hit is bit-identical to the fresh build.
        assert_eq!(a.usage, b.usage);
        assert_eq!(a.collected_pairs, b.collected_pairs);
        assert_eq!(a.message_volume.to_bits(), b.message_volume.to_bits());
    }

    #[test]
    fn merged_and_split_sets_are_distinct_problems() {
        let pairs = dense_pairs(8, 3);
        let caps = CapacityMap::uniform(8, 20.0, 200.0).unwrap();
        let catalog = AttrCatalog::new();
        let ctx = EvalContext::basic(&pairs, &caps, CostModel::default(), &catalog);
        let avail: BTreeMap<NodeId, f64> = caps.iter().collect();
        let cache = TreeCache::new();

        cache.get_or_build(&set_of(&[0]), &ctx, &avail, caps.collector());
        cache.get_or_build(&set_of(&[1]), &ctx, &avail, caps.collector());
        // The merged set misses: it is a different construction problem.
        cache.get_or_build(&set_of(&[0, 1]), &ctx, &avail, caps.collector());
        // Splitting back re-hits the singleton entries.
        cache.get_or_build(&set_of(&[0]), &ctx, &avail, caps.collector());
        cache.get_or_build(&set_of(&[1]), &ctx, &avail, caps.collector());
        let stats = cache.stats();
        assert_eq!(stats.misses, 3);
        assert_eq!(stats.hits, 2);
    }

    #[test]
    fn capacity_change_misses_and_restore_hits() {
        let pairs = dense_pairs(6, 2);
        let caps = CapacityMap::uniform(6, 20.0, 100.0).unwrap();
        let catalog = AttrCatalog::new();
        let ctx = EvalContext::basic(&pairs, &caps, CostModel::default(), &catalog);
        let cache = TreeCache::new();
        let set = set_of(&[0, 1]);

        let full: BTreeMap<NodeId, f64> = caps.iter().collect();
        cache.get_or_build(&set, &ctx, &full, caps.collector());

        // One node loses capacity (failure): key differs, so a miss —
        // no explicit invalidation needed.
        let mut failed = full.clone();
        failed.insert(NodeId(2), 0.0);
        cache.get_or_build(&set, &ctx, &failed, caps.collector());
        assert_eq!(cache.stats().misses, 2);
        assert_eq!(cache.stats().hits, 0);

        // Recovery restores the exact snapshot: warm-start hit.
        cache.get_or_build(&set, &ctx, &full, caps.collector());
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn invalidate_bumps_generation_and_clears() {
        let pairs = dense_pairs(6, 2);
        let caps = CapacityMap::uniform(6, 20.0, 100.0).unwrap();
        let catalog = AttrCatalog::new();
        let ctx = EvalContext::basic(&pairs, &caps, CostModel::default(), &catalog);
        let avail: BTreeMap<NodeId, f64> = caps.iter().collect();
        let cache = TreeCache::new();
        let set = set_of(&[0]);

        cache.get_or_build(&set, &ctx, &avail, caps.collector());
        cache.invalidate();
        assert_eq!(cache.stats().entries, 0);
        assert_eq!(cache.stats().invalidations, 1);
        // Same arguments, new generation: a miss, not a stale hit.
        cache.get_or_build(&set, &ctx, &avail, caps.collector());
        assert_eq!(cache.stats().misses, 2);
        assert_eq!(cache.stats().hits, 0);
    }

    #[test]
    fn different_config_is_a_different_key() {
        let pairs = dense_pairs(6, 2);
        let caps = CapacityMap::uniform(6, 20.0, 100.0).unwrap();
        let catalog = AttrCatalog::new();
        let ctx = EvalContext::basic(&pairs, &caps, CostModel::default(), &catalog);
        let star = EvalContext {
            builder: BuilderKind::Star,
            ..ctx
        };
        let avail: BTreeMap<NodeId, f64> = caps.iter().collect();
        let cache = TreeCache::new();
        let set = set_of(&[0, 1]);
        cache.get_or_build(&set, &ctx, &avail, caps.collector());
        cache.get_or_build(&set, &star, &avail, caps.collector());
        assert_eq!(cache.stats().misses, 2);
        assert_eq!(cache.stats().hits, 0);
    }

    #[test]
    fn hit_rate_reports_fraction() {
        let stats = CacheStats {
            hits: 3,
            misses: 1,
            ..CacheStats::default()
        };
        assert!((stats.hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }
}
